//! Integration tests of the `hisvsim-service` job service: cancellation
//! (queued, in-flight, after completion), resident-slot release, concurrent
//! submit/poll, warm-start persistence, and the clean-drain smoke the CI
//! workflow runs under a timeout.

use hisvsim_circuit::generators;
use hisvsim_runtime::{EngineKind, EngineSelector, Scheduler, SchedulerConfig, SimJob};
use hisvsim_service::prelude::*;
use std::time::{Duration, Instant};

fn scaled_config(workers: usize) -> SchedulerConfig {
    SchedulerConfig::default()
        .with_workers(workers)
        .with_selector(EngineSelector::scaled(4, 8))
}

fn service(workers: usize) -> SimService {
    SimService::start(ServiceConfig::new().with_scheduler(scaled_config(workers)))
}

/// A job big enough that cancellation lands mid-execution: a wide QFT
/// forced onto the hierarchical engine with a tight limit, so the run
/// spans many parts × many gather assignments (each a cancellation
/// checkpoint).
fn long_job() -> SimJob {
    SimJob::new(generators::qft(16))
        .with_engine(EngineKind::Hier)
        .with_limit(5)
}

#[test]
fn in_flight_cancellation_stops_mid_execution_with_ordered_events() {
    let service = service(1);
    let handle = service.submit(long_job());
    let events = handle.progress();
    // Drain the stream until execution starts, then cancel.
    loop {
        match events.recv().expect("stream must not end before Executing") {
            JobEvent::Executing { .. } => break,
            _ => continue,
        }
    }
    handle.cancel();
    assert!(matches!(handle.wait(), Err(JobFailure::Cancelled)));
    assert_eq!(handle.poll(), JobStatus::Cancelled);
    // The remaining stream ends with Cancelled (never Done).
    let mut saw_cancelled = false;
    while let Ok(event) = events.recv() {
        assert!(!matches!(event, JobEvent::Done));
        saw_cancelled |= matches!(event, JobEvent::Cancelled);
    }
    assert!(saw_cancelled, "terminal Cancelled event missing");
}

#[test]
fn cancelled_job_releases_its_resident_state_slot() {
    // One residency slot: if a cancelled job leaked its permit, the next
    // job could never start.
    let mut config = scaled_config(2);
    config.max_resident = 1;
    let service = SimService::start(ServiceConfig::new().with_scheduler(config));

    let victim = service.submit(long_job());
    let events = victim.progress();
    loop {
        match events.recv().expect("stream must not end before Executing") {
            JobEvent::Executing { .. } => break,
            _ => continue,
        }
    }
    victim.cancel();
    assert!(matches!(victim.wait(), Err(JobFailure::Cancelled)));

    let successor = service.submit(SimJob::new(generators::qft(7)));
    let result = successor
        .wait()
        .expect("slot must be free after a cancellation");
    assert_eq!(result.circuit_name, "qft7");
}

#[test]
fn cancelling_a_queued_job_never_runs_it() {
    let service = service(1);
    let blocker = service.submit(long_job());
    let queued = service.submit(SimJob::new(generators::qft(7)));
    queued.cancel();
    assert_eq!(queued.poll(), JobStatus::Cancelled);
    assert!(matches!(queued.wait(), Err(JobFailure::Cancelled)));
    // The queued job's stream holds Queued then Cancelled — no Planning.
    let events: Vec<JobEvent> = {
        let rx = queued.progress();
        let mut out = Vec::new();
        while let Ok(e) = rx.recv() {
            out.push(e);
        }
        out
    };
    assert_eq!(events, vec![JobEvent::Queued, JobEvent::Cancelled]);
    blocker.cancel();
    let _ = blocker.wait();
}

#[test]
fn cancel_after_complete_is_a_noop() {
    let service = service(2);
    let handle = service.submit(SimJob::new(generators::qft(7)).with_shots(16));
    let result = handle.wait().expect("job succeeded");
    handle.cancel();
    handle.cancel(); // idempotent, twice
    assert_eq!(handle.poll(), JobStatus::Done);
    let again = handle.wait().expect("outcome must be stable");
    assert_eq!(result.counts, again.counts);
    assert_eq!(service.stats().cancelled, 0);
}

#[test]
fn concurrent_submit_and_poll_from_many_threads_never_deadlocks() {
    let service = service(4);
    let deadline = Instant::now() + Duration::from_secs(120);
    std::thread::scope(|scope| {
        for thread in 0..8u64 {
            let service = &service;
            scope.spawn(move || {
                let mut handles = Vec::new();
                for i in 0..4u64 {
                    let priority = match (thread + i) % 3 {
                        0 => JobPriority::Low,
                        1 => JobPriority::Normal,
                        _ => JobPriority::High,
                    };
                    handles.push(
                        service.submit_with_priority(
                            SimJob::new(generators::random_circuit(6, 20, thread * 10 + i))
                                .with_shots(8),
                            priority,
                        ),
                    );
                }
                // Poll-spin a little (exercising the status lock from many
                // threads), then block.
                for handle in &handles {
                    while !handle.is_finished() {
                        assert!(Instant::now() < deadline, "deadlock suspected");
                        match handle.poll() {
                            JobStatus::Failed => panic!("job failed"),
                            _ => std::thread::yield_now(),
                        }
                    }
                }
                for handle in handles {
                    handle.wait().expect("job succeeded");
                }
            });
        }
    });
    let stats = service.stats();
    assert_eq!(stats.submitted, 32);
    assert_eq!(stats.completed, 32);
    assert_eq!(stats.queue_depth, 0);
}

#[test]
fn persisted_then_reloaded_plan_cache_is_bit_identical_and_replans_nothing() {
    let dir = std::env::temp_dir().join(format!("hisvsim-service-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("plans.json");
    std::fs::remove_file(&path).ok();

    let job = || {
        SimJob::new(generators::qft(12))
            .with_engine(EngineKind::Hier)
            .with_limit(6)
    };

    // Cold reference: no persistence anywhere.
    let cold = Scheduler::new(scaled_config(2)).run_batch(vec![job()]);
    let cold_state = cold.results[0].state.as_ref().unwrap().clone();

    // "Process 1": plan, execute, persist at shutdown.
    let first = SimService::start(
        ServiceConfig::new()
            .with_scheduler(scaled_config(2))
            .with_persistence(&path),
    );
    let state_one = first.submit(job()).wait().unwrap().state.unwrap();
    assert_eq!(first.cache_stats().misses, 1, "cold service plans once");
    first.shutdown().unwrap();
    assert!(path.exists(), "snapshot must be written at shutdown");

    // "Process 2": restart warm — the repeated batch replans 0 circuits.
    let second = SimService::start(
        ServiceConfig::new()
            .with_scheduler(scaled_config(2))
            .with_persistence(&path),
    );
    let handles: Vec<_> = (0..3).map(|_| second.submit(job())).collect();
    let mut warm_states = Vec::new();
    for handle in handles {
        let result = handle.wait().unwrap();
        assert!(result.plan_cache_hit, "warm restart must hit the cache");
        warm_states.push(result.state.unwrap());
    }
    let stats = second.cache_stats();
    assert_eq!(stats.misses, 0, "a warm restart replans nothing");
    assert_eq!(stats.warm_hits, 1, "one disk rebuild, then memory hits");
    assert_eq!(stats.hits, 2);

    // Same partition + same fusion width ⇒ bit-identical amplitudes, both
    // across the restart and against the cold plan.
    for warm in &warm_states {
        assert_eq!(warm, &state_one, "restart changed the result");
        assert_eq!(warm, &cold_state, "warm plan diverged from a cold plan");
    }
    std::fs::remove_file(&path).ok();
}

/// The CI smoke test (run under `timeout`): submit a batch, cancel half
/// mid-flight, assert every job reaches a terminal state and the service
/// drains cleanly on shutdown.
#[test]
fn smoke_submit_batch_cancel_half_drain_cleanly() {
    let service = service(2);
    let handles: Vec<_> = (0..10)
        .map(|i| {
            if i % 2 == 0 {
                service.submit(long_job())
            } else {
                service.submit(SimJob::new(generators::qft(7)).with_shots(8))
            }
        })
        .collect();
    // Cancel the even (long) half while the batch is in flight.
    for handle in handles.iter().step_by(2) {
        handle.cancel();
    }
    let mut cancelled = 0;
    let mut completed = 0;
    for (i, handle) in handles.iter().enumerate() {
        match handle.wait() {
            Ok(result) => {
                completed += 1;
                assert_eq!(i % 2, 1);
                assert_eq!(result.counts.values().sum::<usize>(), 8);
            }
            Err(JobFailure::Cancelled) => cancelled += 1,
            Err(other) => panic!("unexpected failure: {other}"),
        }
        assert!(handle.poll().is_terminal());
    }
    assert_eq!(cancelled, 5);
    assert_eq!(completed, 5);
    service.shutdown().expect("clean drain");
}

#[test]
fn deadline_fires_mid_run_and_surfaces_deadline_exceeded() {
    let service = service(1);
    let handle = service.submit(long_job().with_deadline(Duration::from_millis(150)));
    match handle.wait() {
        Err(JobFailure::Failed(message)) => {
            assert!(
                message.starts_with(hisvsim_service::DEADLINE_EXCEEDED),
                "expected a DeadlineExceeded failure, got: {message}"
            );
        }
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    assert_eq!(handle.poll(), JobStatus::Failed);
    // The progress stream ends with the same Failed { DeadlineExceeded }.
    let mut saw_deadline_failure = false;
    while let Ok(event) = handle.progress().recv() {
        assert!(!matches!(event, JobEvent::Done | JobEvent::Cancelled));
        if let JobEvent::Failed { message } = event {
            assert!(message.starts_with(hisvsim_service::DEADLINE_EXCEEDED));
            saw_deadline_failure = true;
        }
    }
    assert!(saw_deadline_failure, "terminal Failed event missing");
    let stats = service.stats();
    assert_eq!(stats.failed, 1);
    assert_eq!(stats.deadline_exceeded, 1);
    assert_eq!(stats.cancelled, 0, "a deadline is not a user cancellation");
    service.shutdown().unwrap();
}

#[test]
fn two_hundred_deadlined_jobs_share_one_timer_thread() {
    // The ROADMAP-named scaling debt: every deadlined job used to park its
    // own watcher thread until it finalized. The deadline machinery now
    // owns a single min-heap timer thread, however many deadlines are
    // armed — and the deadlines must still fire on time.
    let service = service(1);
    assert_eq!(
        service.deadline_timer_threads(),
        0,
        "no timer thread before the first armed deadline"
    );

    // Block the only worker so every deadlined job expires while queued.
    let blocker = service.submit(long_job());
    let deadline = Duration::from_millis(200);
    let armed = Instant::now();
    let handles: Vec<_> = (0..200)
        .map(|_| service.submit(SimJob::new(generators::qft(6)).with_deadline(deadline)))
        .collect();
    assert_eq!(
        service.deadline_timer_threads(),
        1,
        "200 armed deadlines must share exactly one timer thread"
    );

    for handle in &handles {
        match handle.wait() {
            Err(JobFailure::Failed(message)) => {
                assert!(
                    message.starts_with(hisvsim_service::DEADLINE_EXCEEDED),
                    "expected DeadlineExceeded, got: {message}"
                );
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
    }
    // Tolerance: all 200 deadlines fired from one thread without serial
    // drift — well inside a few seconds of the 200 ms due time.
    let elapsed = armed.elapsed();
    assert!(
        elapsed >= deadline,
        "deadlines must not fire early ({elapsed:?})"
    );
    assert!(
        elapsed < deadline + Duration::from_secs(10),
        "deadlines drifted far past due ({elapsed:?})"
    );
    let stats = service.stats();
    assert_eq!(stats.deadline_exceeded, 200);
    assert_eq!(stats.failed, 200);

    blocker.cancel();
    let _ = blocker.wait();
    assert_eq!(service.deadline_timer_threads(), 1);
    service.shutdown().unwrap();
}

#[test]
fn shutdown_returns_promptly_with_far_future_deadlines_armed() {
    // Regression for the timer-shutdown handshake: a job that finishes
    // well inside a one-hour deadline leaves an inert entry in the
    // deadline heap; shutdown must wake the timer thread (no lost-wakeup
    // window) and join it promptly instead of sleeping out the hour.
    let service = service(2);
    let handle =
        service.submit(SimJob::new(generators::qft(7)).with_deadline(Duration::from_secs(3600)));
    handle.wait().expect("well within the deadline");
    assert_eq!(service.deadline_timer_threads(), 1);
    let start = Instant::now();
    service.shutdown().unwrap();
    assert!(
        start.elapsed() < Duration::from_secs(30),
        "shutdown must not wait out armed deadlines ({:?})",
        start.elapsed()
    );
}

#[test]
fn deadline_expires_while_queued_behind_other_work() {
    // One worker, blocked by a long job: the deadlined job's timer fires
    // while it still sits in the queue.
    let service = service(1);
    let blocker = service.submit(long_job());
    let deadlined =
        service.submit(SimJob::new(generators::qft(7)).with_deadline(Duration::from_millis(100)));
    match deadlined.wait() {
        Err(JobFailure::Failed(message)) => {
            assert!(message.starts_with(hisvsim_service::DEADLINE_EXCEEDED));
        }
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    // The finalized entry still sits in the heap until a worker skips it,
    // but it is not backlog: the metrics must not report a phantom queue.
    assert_eq!(service.stats().queue_depth, 0);
    blocker.cancel();
    let _ = blocker.wait();
    let stats = service.stats();
    assert_eq!(stats.deadline_exceeded, 1);
    service.shutdown().unwrap();
}

#[test]
fn job_finishing_inside_its_deadline_is_untouched() {
    let service = service(2);
    let handle = service.submit(
        SimJob::new(generators::qft(7))
            .with_shots(16)
            .with_deadline(Duration::from_secs(60)),
    );
    let result = handle.wait().expect("well within the deadline");
    assert_eq!(result.counts.values().sum::<usize>(), 16);
    let stats = service.stats();
    assert_eq!(stats.deadline_exceeded, 0);
    assert_eq!(stats.completed, 1);
    service.shutdown().unwrap();
}

#[test]
fn metrics_text_exposes_service_and_cache_counters() {
    let service = service(2);
    service
        .submit(SimJob::new(generators::qft(7)))
        .wait()
        .unwrap();
    service
        .submit(SimJob::new(generators::qft(7)))
        .wait()
        .unwrap();
    let text = service.metrics_text();
    // Prometheus shape: HELP/TYPE per metric, then `name value`.
    assert!(text.contains("# TYPE hisvsim_service_jobs_submitted_total counter"));
    assert!(text.contains("hisvsim_service_jobs_submitted_total 2"));
    assert!(text.contains("hisvsim_service_jobs_completed_total 2"));
    assert!(text.contains("hisvsim_service_jobs_deadline_exceeded_total 0"));
    assert!(text.contains("# TYPE hisvsim_service_queue_depth gauge"));
    assert!(text.contains("hisvsim_service_queue_depth 0"));
    // Identical circuits: one miss, one memory hit.
    assert!(text.contains("hisvsim_plan_cache_misses_total 1"));
    assert!(text.contains("hisvsim_plan_cache_hits_total 1"));
    assert!(text.contains("hisvsim_plan_cache_hit_rate 0.5"));
    service.shutdown().unwrap();
}

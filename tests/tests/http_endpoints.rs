//! End-to-end coverage of the observability front door over real TCP:
//! `/metrics` must survive the strict Prometheus parser when fetched
//! through the wire, error handling must stay bounded (404/400/405/431),
//! and a traced job's `/jobs/<id>/trace` download must round-trip as
//! valid Chrome trace-event JSON.

use hisvsim_circuit::generators;
use hisvsim_http::{client, HttpServer};
use hisvsim_obs::validate_prometheus;
use hisvsim_runtime::{EngineSelector, SchedulerConfig, SimJob};
use hisvsim_service::prelude::*;
use std::sync::Arc;

fn service(workers: usize) -> ServiceConfig {
    ServiceConfig::new().with_scheduler(
        SchedulerConfig::default()
            .with_workers(workers)
            .with_selector(EngineSelector::scaled(4, 8)),
    )
}

#[test]
fn live_metrics_pass_the_strict_parser_and_include_http_series() {
    let service = Arc::new(SimService::start(service(2)));
    service
        .submit(SimJob::new(generators::qft(8)).with_shots(16))
        .wait()
        .expect("job must complete");
    let server = HttpServer::start(Arc::clone(&service), "127.0.0.1:0").expect("bind");
    let addr = server.local_addr();

    let first = client::http_get(addr, "/metrics").expect("GET /metrics");
    assert_eq!(first.status, 200);
    assert!(first
        .header("content-type")
        .is_some_and(|ct| ct.starts_with("text/plain")));
    validate_prometheus(&first.body_string()).expect("live exposition must be valid");

    // The server observes each request *after* writing its response, so
    // poll until the first scrape's own series lands in the registry.
    let mut last = String::new();
    let http_series_present = (0..50).any(|_| {
        let scrape = client::http_get(addr, "/metrics").expect("GET /metrics");
        last = scrape.body_string();
        last.contains("hisvsim_http_requests_total{code=\"200\",endpoint=\"/metrics\"}")
            && last.contains("hisvsim_http_request_seconds_bucket")
    });
    assert!(
        http_series_present,
        "self-instrumentation series missing from the exposition:\n{last}"
    );
    // Labeled counter families must also survive the strict parser.
    validate_prometheus(&last).expect("exposition with http series must be valid");
    server.shutdown();
}

#[test]
fn bad_requests_get_bounded_error_codes() {
    let service = Arc::new(SimService::start(service(1)));
    let server = HttpServer::start(Arc::clone(&service), "127.0.0.1:0").expect("bind");
    let addr = server.local_addr();

    let missing = client::http_get(addr, "/no/such/endpoint").expect("GET unknown path");
    assert_eq!(missing.status, 404);
    assert!(missing.body_string().contains("\"error\""));

    let unknown_job = client::http_get(addr, "/jobs/999999").expect("GET unknown job");
    assert_eq!(unknown_job.status, 404);
    assert!(unknown_job.body_string().contains("unknown job id"));

    let post = client::http_raw(
        addr,
        b"POST /metrics HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n",
    )
    .expect("POST probe");
    assert_eq!(post.status, 405);

    let malformed = client::http_raw(addr, b"garbage\r\n\r\n").expect("malformed probe");
    assert_eq!(malformed.status, 400);

    // ~10 KiB of header in one write: small enough to fit the socket
    // buffer (the client must finish writing before the server answers
    // and closes), large enough to trip the 8 KiB bound.
    let mut oversized = b"GET /metrics HTTP/1.1\r\nX-Padding: ".to_vec();
    oversized.extend(std::iter::repeat_n(b'a', 10 * 1024));
    oversized.extend_from_slice(b"\r\n\r\n");
    let too_large = client::http_raw(addr, &oversized).expect("oversized probe");
    assert_eq!(too_large.status, 431);

    server.shutdown();
}

#[test]
fn traced_job_trace_round_trips_as_chrome_trace_json() {
    hisvsim_obs::set_enabled(true);
    let service = Arc::new(SimService::start(service(1).with_trace_artifacts(true)));
    let handle = service.submit(
        SimJob::new(generators::qft(8))
            .with_shots(16)
            .with_observables(vec![0]),
    );
    let id = handle.id();
    handle.wait().expect("job must complete");
    let server = HttpServer::start(Arc::clone(&service), "127.0.0.1:0").expect("bind");
    let addr = server.local_addr();

    let status = client::http_get(addr, &format!("/jobs/{id}")).expect("GET status");
    assert_eq!(status.status, 200);
    let report = serde_json::value_from_str(&status.body_string()).expect("status is JSON");
    assert_eq!(
        report.get_field("phase").and_then(|v| v.as_str()),
        Some("done")
    );
    assert!(
        report.get_field("decision").is_some(),
        "status must carry the engine-decision audit"
    );

    let trace = client::http_get(addr, &format!("/jobs/{id}/trace")).expect("GET trace");
    assert_eq!(trace.status, 200);
    assert!(trace
        .header("content-type")
        .is_some_and(|ct| ct.starts_with("application/json")));
    let parsed = serde_json::value_from_str(&trace.body_string()).expect("trace is JSON");
    let events = parsed
        .get_field("traceEvents")
        .and_then(|e| e.as_array())
        .expect("traceEvents array");
    // Chrome trace-event shape: every event is a complete ("X") or
    // instant event with the mandatory fields.
    for event in events {
        for field in ["name", "ph", "ts", "pid", "tid"] {
            assert!(
                event.get_field(field).is_some(),
                "trace event missing `{field}`"
            );
        }
    }
    for phase in ["plan", "execute", "postprocess"] {
        assert!(
            events
                .iter()
                .any(|e| e.get_field("name").and_then(|n| n.as_str()) == Some(phase)),
            "trace must contain the `{phase}` phase"
        );
    }
    // The drained spans ride along with the phase timeline, so a traced
    // run's document is strictly richer than the three phases.
    assert!(
        events.len() > 3,
        "a traced run must carry kernel spans beyond the phase timeline, got {}",
        events.len()
    );

    let profile = client::http_get(addr, &format!("/jobs/{id}/profile")).expect("GET profile");
    assert_eq!(profile.status, 200);
    assert!(
        serde_json::value_from_str(&profile.body_string()).is_ok(),
        "profile delta must be JSON"
    );
    server.shutdown();
}

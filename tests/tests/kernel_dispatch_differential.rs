//! Forced-scalar vs auto kernel-dispatch differential suite.
//!
//! The SIMD kernels claim *bit-identity* with the portable scalar fallback:
//! they replay the exact scalar IEEE-754 operation sequence (no true FMA
//! contraction), so `KernelDispatch::Scalar` and `KernelDispatch::Auto`
//! must produce the same `f64` bits amplitude for amplitude — on random
//! initial states, not just `|0…0⟩`. This suite pins that claim for every
//! kernel the sweeps dispatch to: the specialised per-gate paths (flat
//! execution across all benchmark families), and the fused paths (two-qubit
//! dense, prepared k-qubit, diagonal runs, cache-blocked tiling) under both
//! fusion strategies.
//!
//! On machines without AVX2+FMA both dispatches resolve to scalar and the
//! suite degenerates to a determinism check — still meaningful, never wrong.

use hisvsim_circuit::{generators, Circuit, Complex64};
use hisvsim_integration_tests::{prop_layered_interleaved, prop_random_interleaved};
use hisvsim_statevec::{
    kernels, ApplyOptions, FusedCircuit, FusionStrategy, KernelDispatch, StateVector,
};
use proptest::prelude::*;

/// A deterministic pseudo-random normalized state (splitmix64 amplitudes).
fn random_state(num_qubits: usize, seed: u64) -> StateVector {
    let mut s = seed;
    let mut next = move || -> u64 {
        s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = s;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let mut uniform = move || (next() >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
    let amps = (0..1usize << num_qubits)
        .map(|_| Complex64::new(uniform(), uniform()))
        .collect();
    let mut state = StateVector::from_amplitudes(amps);
    state.normalize();
    state
}

fn scalar_opts() -> ApplyOptions {
    ApplyOptions::sequential().with_dispatch(KernelDispatch::Scalar)
}

fn auto_opts() -> ApplyOptions {
    ApplyOptions::sequential().with_dispatch(KernelDispatch::Auto)
}

/// Flat per-gate execution and fused execution (both strategies) of
/// `circuit` on a random initial state: forced-scalar and auto dispatch
/// must agree bit for bit.
fn assert_dispatch_bit_identical(circuit: &Circuit, seed: u64) {
    let base = random_state(circuit.num_qubits(), seed);

    // Flat path: every gate dispatches to its specialised kernel.
    let mut scalar = base.clone();
    kernels::apply_circuit_with(&mut scalar, circuit, &scalar_opts());
    let mut auto = base.clone();
    kernels::apply_circuit_with(&mut auto, circuit, &auto_opts());
    assert_eq!(
        scalar, auto,
        "{}: flat sweep diverges between Scalar and Auto dispatch",
        circuit.name
    );

    // Fused paths: two-qubit dense, prepared k-qubit, diagonal-run and
    // (for large enough states) cache-blocked tiled sweeps.
    for strategy in [FusionStrategy::Window, FusionStrategy::Dag] {
        let fused = FusedCircuit::with_strategy(circuit, 3, strategy);
        let mut scalar = base.clone();
        fused.apply(&mut scalar, &scalar_opts());
        let mut auto = base.clone();
        fused.apply(&mut auto, &auto_opts());
        assert_eq!(
            scalar,
            auto,
            "{}: fused ({}) sweep diverges between Scalar and Auto dispatch",
            circuit.name,
            strategy.name()
        );
    }
}

/// Every benchmark family — QFT's controlled phases and Hadamards, QAOA's
/// diagonal runs, Ising/Grover entanglers — on random initial states.
#[test]
fn all_gate_families_scalar_and_auto_dispatch_bit_identical() {
    for (i, name) in generators::FAMILY_NAMES.iter().enumerate() {
        let circuit = generators::by_name(name, 9);
        assert_dispatch_bit_identical(&circuit, 0xD15_BA7C4 ^ (i as u64) << 32);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // Deep random circuits mixing every gate family in adversarial orders.
    #[test]
    fn random_interleaved_scalar_and_auto_dispatch_bit_identical(
        circuit in prop_random_interleaved(),
        seed in any::<u64>(),
    ) {
        assert_dispatch_bit_identical(&circuit, seed);
    }

    // Long-dependency-chain circuits: diagonal runs and dense groups
    // separated by full register sweeps.
    #[test]
    fn layered_interleaved_scalar_and_auto_dispatch_bit_identical(
        circuit in prop_layered_interleaved(),
        seed in any::<u64>(),
    ) {
        assert_dispatch_bit_identical(&circuit, seed);
    }
}

/// A state big enough to cross the tiled-sweep threshold (> 2^14
/// amplitudes): the cache-blocked path must stay bit-identical across
/// dispatches and against the untiled reference semantics already pinned by
/// the statevec unit tests.
#[test]
fn tiled_sweep_scalar_and_auto_dispatch_bit_identical() {
    let circuit = generators::random_circuit(16, 160, 0x0007_117E);
    assert_dispatch_bit_identical(&circuit, 0x0007_117E);
}

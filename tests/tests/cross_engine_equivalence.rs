//! The correctness anchor of the whole reproduction: every execution mode
//! (hierarchical single-node, distributed, multi-level, IQS-style baseline)
//! must produce the same final state as the flat reference simulator, for
//! every benchmark family, every partitioning strategy, and a range of rank
//! counts and working-set limits.

use hisvsim_core::{
    BaselineConfig, DistConfig, DistributedSimulator, HierConfig, HierarchicalSimulator,
    IqsBaseline, MultilevelConfig, MultilevelSimulator,
};
use hisvsim_dag::CircuitDag;
use hisvsim_integration_tests::{assert_states_match, reference_state, small_suite};
use hisvsim_partition::Strategy;

#[test]
fn hierarchical_engine_matches_reference_for_all_strategies() {
    for circuit in small_suite(9) {
        let expected = reference_state(&circuit);
        let dag = CircuitDag::from_circuit(&circuit);
        for strategy in Strategy::ALL {
            for limit in [4usize, 6, 9] {
                let partition = match strategy.partition(&dag, limit) {
                    Ok(p) => p,
                    Err(_) => continue, // limit below a gate's arity
                };
                let run =
                    HierarchicalSimulator::new(HierConfig::new(limit).with_strategy(strategy))
                        .run_with_partition(&circuit, &dag, partition);
                assert_states_match(
                    &format!("{} hier {} limit {limit}", circuit.name, strategy.name()),
                    &run.state,
                    &expected,
                );
            }
        }
    }
}

#[test]
fn distributed_engine_matches_reference_across_rank_counts() {
    for circuit in small_suite(8) {
        let expected = reference_state(&circuit);
        for ranks in [2usize, 4] {
            let run =
                DistributedSimulator::new(DistConfig::new(ranks).with_strategy(Strategy::DagP))
                    .run(&circuit)
                    .expect("partitioning failed");
            assert_states_match(
                &format!("{} dist {ranks} ranks", circuit.name),
                &run.state,
                &expected,
            );
            assert_eq!(run.report.num_ranks, ranks);
        }
    }
}

#[test]
fn baseline_engine_matches_reference() {
    for circuit in small_suite(8) {
        let expected = reference_state(&circuit);
        let run = IqsBaseline::new(BaselineConfig::new(4)).run(&circuit);
        assert_states_match(&format!("{} baseline", circuit.name), &run.state, &expected);
    }
}

#[test]
fn multilevel_engine_matches_reference() {
    for circuit in small_suite(8) {
        let expected = reference_state(&circuit);
        let run = MultilevelSimulator::new(MultilevelConfig::new(4, 3))
            .run(&circuit)
            .expect("partitioning failed");
        assert_states_match(
            &format!("{} multilevel", circuit.name),
            &run.state,
            &expected,
        );
    }
}

#[test]
fn engines_agree_with_each_other_on_a_deep_circuit() {
    // qpe has the largest gate count of the suite; run it once through every
    // engine and compare them pairwise.
    let circuit = hisvsim_circuit::generators::qpe(10);
    let expected = reference_state(&circuit);
    let hier = HierarchicalSimulator::new(HierConfig::new(5))
        .run(&circuit)
        .unwrap();
    let dist = DistributedSimulator::new(DistConfig::new(4))
        .run(&circuit)
        .unwrap();
    let multi = MultilevelSimulator::new(MultilevelConfig::new(4, 4))
        .run(&circuit)
        .unwrap();
    let base = IqsBaseline::new(BaselineConfig::new(4)).run(&circuit);
    for (label, state) in [
        ("hier", &hier.state),
        ("dist", &dist.state),
        ("multilevel", &multi.state),
        ("baseline", &base.state),
    ] {
        assert_states_match(label, state, &expected);
    }
}

//! The cross-engine differential suite for DAG-driven fusion — the
//! correctness backstop of the `FusionStrategy` work. Every case runs
//! through all four engines × {Window, Dag} × fused/flat via the shared
//! harness [`hisvsim_integration_tests::assert_all_engines_bit_identical`]:
//! agreement with the flat reference within tolerance, and bitwise
//! run-to-run reproducibility of every configuration (the property the
//! plan cache and the process workers rely on).

use hisvsim_circuit::generators;
use hisvsim_integration_tests::{
    assert_all_engines_bit_identical, prop_layered_interleaved, prop_random_interleaved,
    random_interleaved, reference_state, TOL,
};
use hisvsim_statevec::{ApplyOptions, FusedCircuit, FusionStrategy};
use proptest::prelude::*;

const STRATEGIES: [FusionStrategy; 2] = [FusionStrategy::Window, FusionStrategy::Dag];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    // The adversarial distribution: the `random` interleaved family, the
    // workload DAG fusion exists for.
    #[test]
    fn random_interleaved_family_all_engines_all_strategies(
        circuit in prop_random_interleaved()
    ) {
        assert_all_engines_bit_identical(&circuit, &[0, 3], &STRATEGIES);
    }

    // Long-dependency-chain circuits: every mergeable pair is separated by
    // a full register sweep, maximally hostile to the bounded window.
    #[test]
    fn layered_interleaved_family_all_engines_all_strategies(
        circuit in prop_layered_interleaved()
    ) {
        assert_all_engines_bit_identical(&circuit, &[0, 3], &STRATEGIES);
    }
}

/// Fixed benchmark families at a few widths, including `Auto` (which must
/// resolve deterministically to one of the two concrete strategies).
#[test]
fn benchmark_families_differential_with_auto() {
    for name in ["qft", "qaoa", "ising", "grover"] {
        let circuit = generators::by_name(name, 8);
        assert_all_engines_bit_identical(
            &circuit,
            &[0, 2, 3],
            &[
                FusionStrategy::Window,
                FusionStrategy::Dag,
                FusionStrategy::Auto,
            ],
        );
    }
}

/// The deep `random` family at benchmark-like depth (scaled down to a
/// testable width): Dag-fused output must match flat across all engines
/// even when the circuit is hundreds of gates deep.
#[test]
fn deep_random_family_differential() {
    let circuit = random_interleaved(9, 9 * 48, 0x5EED);
    assert_all_engines_bit_identical(&circuit, &[0, 3], &STRATEGIES);
}

/// `Auto` resolves to exactly one of the concrete strategies and its
/// output is bit-identical to that strategy's own build — no third
/// behaviour hides behind the knob.
#[test]
fn auto_is_bit_identical_to_its_resolved_strategy() {
    for (qubits, gates, seed) in [(8usize, 120usize, 1u64), (8, 40, 2), (7, 200, 3)] {
        let circuit = random_interleaved(qubits, gates, seed);
        let auto = FusedCircuit::with_strategy(&circuit, 3, FusionStrategy::Auto);
        let resolved = auto.strategy();
        assert_ne!(resolved, FusionStrategy::Auto, "auto must resolve");
        let concrete = FusedCircuit::with_strategy(&circuit, 3, resolved);
        let opts = ApplyOptions::sequential();
        assert_eq!(
            auto.run(&opts),
            concrete.run(&opts),
            "auto output must be bit-identical to its resolved strategy"
        );
        assert!(auto.run(&opts).approx_eq(&reference_state(&circuit), TOL));
    }
}

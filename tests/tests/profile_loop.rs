//! End-to-end calibrate-then-rerun smoke for the measured-cost loop: a
//! first service run traces real 16-qubit jobs, absorbs the spans into its
//! profile store, and persists the profile next to the plan snapshot; a
//! second service at the same persistence path warms from disk and makes a
//! *calibrated* decision (measured pass cost adjudicating `Auto` fusion),
//! visible both on the `JobResult` audit trail and the `/metrics`
//! exposition.
//!
//! 16-qubit circuits are deliberate: full-state sweeps at 2^16 amplitudes
//! are always recorded (below that the tracer samples 1-in-64), so the
//! calibration pass is deterministic.

use hisvsim_circuit::generators;
use hisvsim_runtime::{FusionStrategy, SchedulerConfig, SimJob};
use hisvsim_service::prelude::*;

#[test]
fn persisted_profile_warms_a_restart_and_calibrates_decisions() {
    let dir = std::env::temp_dir().join(format!("hisvsim-profile-loop-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let persist = dir.join("plans.json");
    let profile_path = dir.join("plans.profile.json");
    let _ = std::fs::remove_file(&persist);
    let _ = std::fs::remove_file(&profile_path);

    hisvsim_obs::set_enabled(true);

    // --- Run 1: cold service measures its own traffic. ---
    let service = SimService::start(
        ServiceConfig::new()
            .with_scheduler(SchedulerConfig::default().with_workers(2))
            .with_persistence(&persist),
    );
    assert!(
        !service.profile_store().warm(),
        "a fresh service with no persisted profile must start cold"
    );
    // QFT exercises dense sweeps, QAOA's cost layers collapse to diagonal
    // runs — together they populate both kernel cells the measured
    // pass-cost signal needs.
    for job in [
        SimJob::new(generators::qft(16)),
        SimJob::new(generators::by_name("qaoa", 16)),
    ] {
        service.submit(job).wait().expect("calibration job failed");
    }
    let absorbed = service.absorb_trace();
    assert!(absorbed > 0, "16-qubit sweeps must record spans");
    let snapshot = service.profile_store().snapshot();
    assert!(
        snapshot.pass_cost().is_some(),
        "dense + diagonal cells must yield a measured pass cost"
    );
    assert!(service.profile_store().warm());
    service
        .shutdown()
        .expect("shutdown persists plans + profile");
    assert!(
        profile_path.exists(),
        "profile must persist beside the plan snapshot"
    );

    // --- Run 2: a restarted service warms from disk and calibrates. ---
    let service = SimService::start(
        ServiceConfig::new()
            .with_scheduler(SchedulerConfig::default().with_workers(2))
            .with_persistence(&persist),
    );
    assert!(
        service.profile_store().warm(),
        "restart must reload the persisted profile"
    );
    let result = service
        .submit(SimJob::new(generators::qft(16)).with_fusion_strategy(FusionStrategy::Auto))
        .wait()
        .expect("warm job failed");
    assert!(
        result.decision.calibrated,
        "warm profile must calibrate the decision: {}",
        result.decision.reason
    );
    assert!(
        result.decision.reason.contains("auto fusion ->"),
        "Auto must resolve against the measured pass cost: {}",
        result.decision.reason
    );
    assert!(
        result.verdict.measured_execute_s > 0.0 && result.verdict.predicted_execute_s > 0.0,
        "audit trail must carry a predicted-vs-measured verdict"
    );

    let metrics = service.metrics_text();
    assert!(
        metrics.contains("hisvsim_profile_warm 1"),
        "warm gauge missing:\n{metrics}"
    );
    assert!(
        metrics.contains("hisvsim_selector_calibrated_decisions_total 1"),
        "calibrated counter missing:\n{metrics}"
    );
    service.shutdown().unwrap();

    hisvsim_obs::set_enabled(false);
    let _ = std::fs::remove_dir_all(&dir);
}

//! Integration tests of the *performance-shaping* claims: the quantities the
//! paper's evaluation section measures must move in the right direction in
//! this reproduction (HiSVSIM communicates less than the baseline, dagP
//! communicates no more than Nat, communication volume falls as ranks grow,
//! the multi-level engine adds no communication).

use hisvsim_circuit::generators;
use hisvsim_core::{
    BaselineConfig, DistConfig, DistributedSimulator, IqsBaseline, MultilevelConfig,
    MultilevelSimulator,
};
use hisvsim_partition::Strategy;

#[test]
fn hisvsim_moves_fewer_bytes_than_the_baseline_on_comm_heavy_circuits() {
    // Circuits whose gates repeatedly touch the top (process) qubits force a
    // static-mapping simulator to exchange once per such gate; HiSVSIM pays
    // once per part.
    for family in ["ising", "qnn", "grover"] {
        let circuit = generators::by_name(family, 10);
        let baseline = IqsBaseline::new(BaselineConfig::new(4)).run(&circuit);
        let hisvsim = DistributedSimulator::new(DistConfig::new(4).with_strategy(Strategy::DagP))
            .run(&circuit)
            .unwrap();
        assert!(
            hisvsim.report.comm.bytes_sent <= baseline.report.comm.bytes_sent,
            "{family}: HiSVSIM {} bytes > baseline {} bytes",
            hisvsim.report.comm.bytes_sent,
            baseline.report.comm.bytes_sent
        );
        assert!(
            hisvsim.report.avg_comm_time_s <= baseline.report.avg_comm_time_s + 1e-12,
            "{family}: HiSVSIM modelled comm exceeds baseline"
        );
    }
}

#[test]
fn dagp_communicates_no_more_than_nat() {
    for family in ["qft", "qaoa", "ising"] {
        let circuit = generators::by_name(family, 10);
        let nat = DistributedSimulator::new(DistConfig::new(4).with_strategy(Strategy::Nat))
            .run(&circuit)
            .unwrap();
        let dagp = DistributedSimulator::new(DistConfig::new(4).with_strategy(Strategy::DagP))
            .run(&circuit)
            .unwrap();
        assert!(dagp.report.num_parts <= nat.report.num_parts, "{family}");
        assert!(
            dagp.report.comm.bytes_sent <= nat.report.comm.bytes_sent,
            "{family}: dagP {} bytes > Nat {} bytes",
            dagp.report.comm.bytes_sent,
            nat.report.comm.bytes_sent
        );
    }
}

#[test]
fn per_rank_communication_volume_shrinks_with_more_ranks() {
    // Strong scaling: the state is fixed, so each rank owns (and therefore
    // re-sends) a smaller slice as the rank count grows.
    let circuit = generators::by_name("ising", 12);
    let mut previous_per_rank = f64::INFINITY;
    for ranks in [2usize, 4, 8] {
        let run = DistributedSimulator::new(DistConfig::new(ranks).with_strategy(Strategy::DagP))
            .run(&circuit)
            .unwrap();
        let per_rank = run.report.comm.bytes_sent as f64 / ranks as f64;
        assert!(
            per_rank <= previous_per_rank,
            "per-rank bytes grew from {previous_per_rank} to {per_rank} at {ranks} ranks"
        );
        previous_per_rank = per_rank;
    }
}

#[test]
fn multilevel_does_not_add_communication_over_single_level() {
    let circuit = generators::by_name("qft", 10);
    let single = DistributedSimulator::new(DistConfig::new(4).with_strategy(Strategy::DagP))
        .run(&circuit)
        .unwrap();
    let multi = MultilevelSimulator::new(MultilevelConfig::new(4, 4))
        .run(&circuit)
        .unwrap();
    assert_eq!(single.report.num_exchanges, multi.report.num_exchanges);
    assert_eq!(single.report.comm.bytes_sent, multi.report.comm.bytes_sent);
}

#[test]
fn improvement_factor_over_baseline_is_positive_for_comm_bound_runs() {
    // With the HDR-100 model the modelled wire time dominates the tiny local
    // compute at these sizes, so the improvement factor reflects the
    // communication reduction (the regime of the paper's ≥35-qubit circuits).
    let circuit = generators::by_name("ising", 11);
    let baseline = IqsBaseline::new(BaselineConfig::new(4)).run(&circuit);
    let hisvsim = DistributedSimulator::new(DistConfig::new(4).with_strategy(Strategy::DagP))
        .run(&circuit)
        .unwrap();
    let factor = baseline.report.avg_comm_time_s / hisvsim.report.avg_comm_time_s.max(1e-12);
    assert!(
        factor >= 1.0,
        "expected a communication-side improvement, got factor {factor}"
    );
}

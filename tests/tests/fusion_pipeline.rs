//! The fused execution pipeline, cross-crate: property tests that
//! [`FusedCircuit`] execution matches the flat reference through every
//! engine's entry point, and a regression test that fused plans served from
//! a warm `PlanCache` are bit-identical to cold planning.

use hisvsim_circuit::generators;
use hisvsim_core::{
    BaselineConfig, DistConfig, DistributedSimulator, HierConfig, HierarchicalSimulator,
    IqsBaseline, MultilevelConfig, MultilevelSimulator,
};
use hisvsim_runtime::prelude::*;
use hisvsim_statevec::{run_circuit, ApplyOptions, FusedCircuit};
use proptest::prelude::*;

/// Strategy: a random circuit described by (qubits, gates, seed).
fn circuit_params() -> impl proptest::strategy::Strategy<Value = (usize, usize, u64)> {
    (4usize..8, 8usize..50, any::<u64>())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn fused_circuit_matches_flat_at_every_width(
        (qubits, gates, seed) in circuit_params(),
        width in 1usize..6,
    ) {
        let circuit = generators::random_circuit(qubits, gates, seed);
        let expected = run_circuit(&circuit);
        let fused = FusedCircuit::new(&circuit, width);
        let total: usize = fused.ops().iter().map(|op| op.fused_count()).sum();
        prop_assert_eq!(total, circuit.num_gates(), "gates lost in fusion");
        for opts in [ApplyOptions::sequential(), ApplyOptions::default()] {
            let got = fused.run(&opts);
            prop_assert!(
                got.approx_eq(&expected, 1e-9),
                "width {width} parallel={} diverges: max diff {}",
                opts.parallel,
                got.max_abs_diff(&expected)
            );
        }
    }

    #[test]
    fn every_engine_runs_fused_by_default_and_matches_flat(
        (qubits, gates, seed) in circuit_params(),
        width in 1usize..5,
    ) {
        let circuit = generators::random_circuit(qubits, gates, seed);
        let expected = run_circuit(&circuit);
        let limit = (qubits / 2).max(3).min(qubits);

        let hier = HierarchicalSimulator::new(HierConfig::new(limit).with_fusion(width))
            .run(&circuit)
            .unwrap();
        prop_assert!(hier.state.approx_eq(&expected, 1e-9), "hier diverged");

        let dist = DistributedSimulator::new(DistConfig::new(4).with_fusion(width))
            .run(&circuit)
            .unwrap();
        prop_assert!(dist.state.approx_eq(&expected, 1e-9), "dist diverged");

        let ml = MultilevelSimulator::new(MultilevelConfig::new(2, limit).with_fusion(width))
            .run(&circuit)
            .unwrap();
        prop_assert!(ml.state.approx_eq(&expected, 1e-9), "multilevel diverged");

        let baseline = IqsBaseline::new(BaselineConfig::new(2).with_fusion(width)).run(&circuit);
        prop_assert!(baseline.state.approx_eq(&expected, 1e-9), "baseline diverged");
    }
}

/// Regression: a fused plan retrieved from a warm `PlanCache` must produce
/// results bit-identical to the cold-planned run — same partition, same
/// fused matrices, same execution order, so the floating-point streams are
/// exactly equal.
#[test]
fn warm_plan_cache_results_are_bit_identical_to_cold() {
    let scheduler = Scheduler::new(
        SchedulerConfig::default()
            .with_workers(2)
            .with_selector(EngineSelector::scaled(4, 8)),
    );
    for (name, n) in [("qft", 7usize), ("ising", 9), ("grover", 6)] {
        let circuit = generators::by_name(name, n);
        let cold = scheduler.run_batch(vec![SimJob::new(circuit.clone())]);
        let warm = scheduler.run_batch(vec![SimJob::new(circuit.clone())]);
        assert!(
            !cold.results[0].plan_cache_hit,
            "{name}: first submission must plan"
        );
        assert!(
            warm.results[0].plan_cache_hit,
            "{name}: second submission must hit the warm cache"
        );
        assert_eq!(cold.results[0].engine, warm.results[0].engine);
        assert_eq!(
            cold.results[0].state, warm.results[0].state,
            "{name}: warm-cache execution diverged from cold planning"
        );
        assert!(cold.results[0]
            .state
            .as_ref()
            .unwrap()
            .approx_eq(&run_circuit(&circuit), 1e-9));
    }
}

/// Stale-plan hazard regression: two jobs identical except for their fusion
/// *strategy* must never share a `PlanCache` entry — a window-fused plan
/// served to a Dag job (or vice versa) would silently execute the wrong
/// fused form. Extends the fusion-width cache-key test below to the
/// strategy axis.
#[test]
fn fusion_strategy_is_part_of_the_cache_key() {
    let scheduler = Scheduler::new(
        SchedulerConfig::default()
            .with_workers(2)
            .with_selector(EngineSelector::scaled(4, 8)),
    );
    let circuit = generators::random_circuit(8, 90, 0xD1FF);
    let expected = run_circuit(&circuit);
    let job = |strategy| {
        SimJob::new(circuit.clone())
            .with_fusion(3)
            .with_fusion_strategy(strategy)
    };
    let batch = scheduler.run_batch(vec![
        job(hisvsim_runtime::FusionStrategy::Window),
        job(hisvsim_runtime::FusionStrategy::Dag),
        job(hisvsim_runtime::FusionStrategy::Window),
        job(hisvsim_runtime::FusionStrategy::Dag),
    ]);
    let hits: Vec<bool> = batch.results.iter().map(|r| r.plan_cache_hit).collect();
    assert_eq!(
        hits.iter().filter(|&&h| h).count(),
        2,
        "only the repeated (circuit, strategy) pairs may hit: {hits:?}"
    );
    // The two strategies planned separately: two misses, two hits.
    assert_eq!(
        batch.stats.cache.misses, 2,
        "strategies must not share an entry"
    );
    for result in &batch.results {
        assert!(result.state.as_ref().unwrap().approx_eq(&expected, 1e-9));
    }
    // Same strategy twice ⇒ the very same cached plan ⇒ bit-identical.
    assert_eq!(batch.results[0].state, batch.results[2].state);
    assert_eq!(batch.results[1].state, batch.results[3].state);
}

/// Different fusion widths are distinct cache entries (no cross-width
/// contamination) and all match the reference.
#[test]
fn fusion_width_is_part_of_the_cache_key() {
    let scheduler = Scheduler::new(
        SchedulerConfig::default()
            .with_workers(2)
            .with_selector(EngineSelector::scaled(4, 8)),
    );
    let circuit = generators::by_name("qaoa", 7);
    let expected = run_circuit(&circuit);
    let batch = scheduler.run_batch(vec![
        SimJob::new(circuit.clone()).with_fusion(2),
        SimJob::new(circuit.clone()).with_fusion(4),
        SimJob::new(circuit.clone()).with_fusion(2),
    ]);
    let hits: Vec<bool> = batch.results.iter().map(|r| r.plan_cache_hit).collect();
    assert_eq!(
        hits.iter().filter(|&&h| h).count(),
        1,
        "only the repeated (circuit, width) pair may hit: {hits:?}"
    );
    for result in &batch.results {
        assert!(result.state.as_ref().unwrap().approx_eq(&expected, 1e-9));
    }
}

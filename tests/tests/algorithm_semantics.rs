//! End-to-end algorithm-level checks: the benchmark circuits are not just
//! gate soups — each implements a known quantum algorithm whose output
//! distribution is predictable. Running them through the *partitioned*
//! engines and checking the algorithmic answer exercises the full stack
//! (generator → DAG → partitioner → engine → measurement).

use hisvsim_circuit::generators;
use hisvsim_core::{DistConfig, DistributedSimulator, HierConfig, HierarchicalSimulator};
use hisvsim_partition::Strategy;
use hisvsim_statevec::measure;

#[test]
fn cat_state_is_maximally_correlated_after_partitioned_execution() {
    let n = 12;
    let circuit = generators::cat_state(n);
    let run = HierarchicalSimulator::new(HierConfig::new(4))
        .run(&circuit)
        .unwrap();
    let probs = measure::marginal_probabilities(&run.state, &(0..n).collect::<Vec<_>>());
    assert!((probs[0] - 0.5).abs() < 1e-9, "P(|0…0⟩) = {}", probs[0]);
    assert!(
        (probs[(1 << n) - 1] - 0.5).abs() < 1e-9,
        "P(|1…1⟩) = {}",
        probs[(1 << n) - 1]
    );
}

#[test]
fn bernstein_vazirani_recovers_its_secret_through_the_distributed_engine() {
    let n = 11;
    let circuit = generators::bv(n, 0xB5);
    let run = DistributedSimulator::new(DistConfig::new(4).with_strategy(Strategy::DagP))
        .run(&circuit)
        .unwrap();
    let data: Vec<usize> = (0..n - 1).collect();
    let marg = measure::marginal_probabilities(&run.state, &data);
    let (_best, p) = marg
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .unwrap();
    assert!(*p > 0.999, "BV output not deterministic: p = {p}");
}

#[test]
fn grover_amplifies_the_marked_state() {
    let n = 9;
    let circuit = generators::grover(n, 2, 0x6F);
    let run = HierarchicalSimulator::new(HierConfig::new(5))
        .run(&circuit)
        .unwrap();
    // The search register is the largest s with s + 1 + (s-2) <= n (s = 5
    // here); after 2 Grover iterations the marked state dominates the
    // uniform 1/2^s background.
    let search: Vec<usize> = (0..5).collect();
    let marg = measure::marginal_probabilities(&run.state, &search);
    let max = marg.iter().cloned().fold(0.0f64, f64::max);
    let uniform = 1.0 / 32.0;
    assert!(
        max > 5.0 * uniform,
        "Grover peak {max} not amplified above uniform {uniform}"
    );
}

#[test]
fn qft_implements_the_standard_dft_and_inverse_restores_it() {
    use hisvsim_circuit::Circuit;
    use hisvsim_statevec::{run_circuit, StateVector};
    // QFT|k⟩ must equal the DFT column: amplitudes e^{2πi k m / N} / √N.
    let n = 5;
    let k = 11usize;
    let mut prep = Circuit::new(n);
    for bit in 0..n {
        if (k >> bit) & 1 == 1 {
            prep.x(bit);
        }
    }
    prep.extend(&generators::qft(n));
    let state = run_circuit(&prep);
    let dim = 1usize << n;
    for m in 0..dim {
        let phase = 2.0 * std::f64::consts::PI * (k * m) as f64 / dim as f64;
        let expected_re = phase.cos() / (dim as f64).sqrt();
        let expected_im = phase.sin() / (dim as f64).sqrt();
        assert!(
            (state.amp(m).re - expected_re).abs() < 1e-9
                && (state.amp(m).im - expected_im).abs() < 1e-9,
            "QFT amplitude at |{m}⟩ is {}, expected {expected_re}+{expected_im}i",
            state.amp(m)
        );
    }
    // And the generator's inverse QFT undoes it.
    let mut roundtrip = Circuit::new(n);
    roundtrip.extend(&generators::qft(n));
    generators::append_inverse_qft(&mut roundtrip, &(0..n).collect::<Vec<_>>());
    let back = run_circuit(&roundtrip);
    assert!(back.approx_eq(&StateVector::zero_state(n), 1e-9));
}

#[test]
fn qpe_estimates_the_programmed_phase() {
    // qpe(n) estimates phase 0.34375 = 0.01011 in binary with n-1 counting
    // qubits; with ≥ 5 counting qubits the estimate is exact, so the
    // counting register collapses to a single value.
    let n = 10;
    let circuit = generators::qpe(n);
    let run = HierarchicalSimulator::new(HierConfig::new(5))
        .run(&circuit)
        .unwrap();
    let counting: Vec<usize> = (0..n - 1).collect();
    let marg = measure::marginal_probabilities(&run.state, &counting);
    let (best, p) = marg
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .unwrap();
    // The inverse QFT writes the phase bits most-significant-first; account
    // for the register ordering by checking the estimated phase value.
    let estimated = best as f64 / (1u64 << (n - 1)) as f64;
    assert!(*p > 0.99, "QPE not sharp: p = {p}");
    assert!(
        (estimated - 0.34375).abs() < 1e-9 || (1.0 - (estimated - 0.34375).abs()) < 1e-9,
        "estimated phase {estimated} != 0.34375"
    );
}

#[test]
fn adder_produces_a_plus_b_on_computational_inputs() {
    // The Cuccaro adder circuit prepares A in superposition; instead check
    // unitarity plus the carry-structure invariant: the output distribution
    // over (A, B+A) pairs must only contain consistent sums.
    let n = 10; // k = 4-bit operands
    let circuit = generators::adder(n);
    let run = HierarchicalSimulator::new(HierConfig::new(5))
        .run(&circuit)
        .unwrap();
    let k = (n - 2) / 2;
    let a_qubits: Vec<usize> = (0..k).map(|i| 1 + 2 * i).collect();
    let b_qubits: Vec<usize> = (0..k).map(|i| 2 + 2 * i).collect();
    let cout = 2 * k + 1;
    let mut all: Vec<usize> = a_qubits.clone();
    all.extend(&b_qubits);
    all.push(cout);
    let marg = measure::marginal_probabilities(&run.state, &all);
    // Initial B value set by the generator: bits i with i % 3 == 0.
    let b_init: usize = (0..k)
        .filter(|i| i % 3 == 0)
        .fold(0, |acc, i| acc | (1 << i));
    let mut checked = 0usize;
    for (pattern, p) in marg.iter().enumerate() {
        if *p < 1e-9 {
            continue;
        }
        let a = pattern & ((1 << k) - 1);
        let b_out = (pattern >> k) & ((1 << k) - 1);
        let carry = (pattern >> (2 * k)) & 1;
        let sum = a + b_init;
        assert_eq!(
            (carry << k) | b_out,
            sum,
            "inconsistent adder output: a={a}, b_init={b_init}, got {b_out} carry {carry}"
        );
        checked += 1;
    }
    assert!(
        checked >= 1 << (k - 1),
        "too few populated outcomes: {checked}"
    );
}

#[test]
fn qaoa_state_is_normalised_and_entangled() {
    let circuit = generators::qaoa(12, 2, 0xA0A);
    let run = HierarchicalSimulator::new(HierConfig::new(6))
        .run(&circuit)
        .unwrap();
    assert!((run.state.norm_sqr() - 1.0).abs() < 1e-9);
    // Entanglement proxy: the marginal of qubit 0 is mixed (not 0 or 1).
    let p1 = measure::probability_of_one(&run.state, 0);
    assert!(
        p1 > 0.01 && p1 < 0.99,
        "qubit 0 marginal suspiciously pure: {p1}"
    );
}

//! Property-based tests over the core data structures and invariants:
//! random circuits, random partitioning limits, random rank counts — the
//! hierarchical/distributed engines must always agree with the flat
//! reference, partitions must always validate, and serialisation must
//! round-trip.

use hisvsim_circuit::{generators, qasm, Circuit};
use hisvsim_core::{DistConfig, DistributedSimulator, HierConfig, HierarchicalSimulator};
use hisvsim_dag::{CircuitDag, PartGraph};
use hisvsim_partition::Strategy;
use hisvsim_statevec::{run_circuit, GatherMap, StateVector};
use proptest::prelude::*;

/// Strategy: a random circuit described by (qubits, gates, seed).
fn circuit_params() -> impl proptest::strategy::Strategy<Value = (usize, usize, u64)> {
    (3usize..8, 5usize..60, any::<u64>())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn hierarchical_always_matches_flat((qubits, gates, seed) in circuit_params(), limit_frac in 2usize..4) {
        let circuit = generators::random_circuit(qubits, gates, seed);
        let limit = (qubits / limit_frac).max(2);
        let expected = run_circuit(&circuit);
        let run = HierarchicalSimulator::new(HierConfig::new(limit).with_parallel(false))
            .run(&circuit)
            .unwrap();
        prop_assert!(run.state.approx_eq(&expected, 1e-9),
            "max diff {}", run.state.max_abs_diff(&expected));
    }

    #[test]
    fn distributed_always_matches_flat((qubits, gates, seed) in circuit_params(), log_ranks in 0u32..3) {
        let circuit = generators::random_circuit(qubits, gates, seed);
        let ranks = 1usize << log_ranks.min(qubits as u32 - 2);
        let expected = run_circuit(&circuit);
        let run = DistributedSimulator::new(DistConfig::new(ranks)).run(&circuit).unwrap();
        prop_assert!(run.state.approx_eq(&expected, 1e-9),
            "ranks={ranks}, max diff {}", run.state.max_abs_diff(&expected));
    }

    #[test]
    fn partitions_always_validate_and_are_acyclic((qubits, gates, seed) in circuit_params(), limit in 2usize..8) {
        let circuit = generators::random_circuit(qubits, gates, seed);
        let dag = CircuitDag::from_circuit(&circuit);
        for strategy in Strategy::ALL {
            match strategy.partition(&dag, limit) {
                Ok(p) => {
                    prop_assert!(p.validate(&dag, limit).is_ok());
                    prop_assert!(PartGraph::build(&dag, &p).is_acyclic());
                    // every gate is covered exactly once
                    prop_assert_eq!(p.num_gates(), circuit.num_gates());
                    prop_assert!(p.max_working_set(&dag) <= limit);
                }
                Err(_) => {
                    // Only acceptable when some gate's arity exceeds the limit.
                    let max_arity = circuit.gates().iter().map(|g| g.arity()).max().unwrap_or(0);
                    prop_assert!(max_arity > limit);
                }
            }
        }
    }

    #[test]
    fn unitarity_is_preserved_by_every_engine((qubits, gates, seed) in circuit_params()) {
        let circuit = generators::random_circuit(qubits, gates, seed);
        let run = HierarchicalSimulator::new(HierConfig::new((qubits / 2).max(2)))
            .run(&circuit)
            .unwrap();
        prop_assert!((run.state.norm_sqr() - 1.0).abs() < 1e-9);
        prop_assert!(run.state.is_finite());
    }

    #[test]
    fn gather_scatter_roundtrip_is_identity(qubits in 2usize..8, seed in any::<u64>()) {
        use rand::{Rng, SeedableRng};
        use rand::rngs::StdRng;
        let mut rng = StdRng::seed_from_u64(seed);
        // random non-empty subset of qubits as the part working set
        let mut part: Vec<usize> = (0..qubits).filter(|_| rng.gen_bool(0.5)).collect();
        if part.is_empty() {
            part.push(rng.gen_range(0..qubits));
        }
        let circuit = generators::random_circuit(qubits, 20, seed);
        let original = run_circuit(&circuit);
        let map = GatherMap::new(qubits, &part);
        let mut rebuilt = StateVector::uninitialized(qubits);
        for assignment in 0..(1usize << map.num_free_qubits()) {
            let inner = map.gather(&original, assignment);
            map.scatter(&inner, &mut rebuilt, assignment);
        }
        prop_assert!(rebuilt.approx_eq(&original, 0.0));
    }

    #[test]
    fn qasm_roundtrip_preserves_random_circuits((qubits, gates, seed) in circuit_params()) {
        let circuit = generators::random_circuit(qubits, gates, seed);
        let text = qasm::to_qasm(&circuit);
        let parsed = qasm::parse_qasm(&text).unwrap();
        prop_assert_eq!(parsed.num_qubits(), circuit.num_qubits());
        prop_assert_eq!(parsed.num_gates(), circuit.num_gates());
        // The parsed circuit must be *functionally* identical.
        let a = run_circuit(&circuit);
        let b = run_circuit(&parsed);
        prop_assert!(a.approx_eq(&b, 1e-9));
    }

    #[test]
    fn inverse_circuit_restores_the_initial_state((qubits, gates, seed) in circuit_params()) {
        let circuit = generators::random_circuit(qubits, gates, seed);
        let mut full = Circuit::new(qubits);
        full.extend(&circuit);
        full.extend(&circuit.inverse());
        let state = run_circuit(&full);
        let zero = StateVector::zero_state(qubits);
        prop_assert!(state.approx_eq(&zero, 1e-8));
    }
}

//! Integration tests of the batch runtime: N heterogeneous jobs over M
//! workers must reproduce the flat reference simulator exactly (within the
//! workspace tolerance), the plan cache must account hits correctly, and the
//! memory bound must never deadlock the pool.

use hisvsim_circuit::generators;
use hisvsim_integration_tests::{assert_states_match, reference_state, TOL};
use hisvsim_runtime::prelude::*;

/// A mixed workload touching every selector tier and several circuit
/// families, some repeated (templated), some random.
fn heterogeneous_jobs() -> Vec<SimJob> {
    let mut jobs = vec![
        SimJob::new(generators::qft(4)),              // baseline tier
        SimJob::new(generators::by_name("ising", 7)), // hier tier
        SimJob::new(generators::qft(9)),              // distributed tier
        SimJob::new(generators::qft(9)),              // repeat: plan cache hit
        SimJob::new(generators::by_name("bv", 8)).with_shots(256),
        SimJob::new(generators::cat_state(8)).with_observables(vec![0, 7]),
        SimJob::new(generators::by_name("qaoa", 8)),
        SimJob::new(generators::grover(7, 2, 3)),
    ];
    for seed in 0..4 {
        jobs.push(SimJob::new(generators::random_circuit(7, 40, seed)));
    }
    jobs
}

fn scaled_scheduler(workers: usize, max_resident: usize) -> Scheduler {
    Scheduler::new(
        SchedulerConfig::default()
            .with_workers(workers)
            .with_max_resident(max_resident)
            .with_selector(EngineSelector::scaled(4, 8)),
    )
}

#[test]
fn heterogeneous_batch_matches_flat_reference_across_worker_counts() {
    let jobs = heterogeneous_jobs();
    let expected: Vec<_> = jobs.iter().map(|j| reference_state(&j.circuit)).collect();

    for workers in [1usize, 3, 8] {
        let scheduler = scaled_scheduler(workers, workers);
        let batch = scheduler.run_batch(jobs.clone());
        assert_eq!(batch.results.len(), jobs.len());
        for (result, expected) in batch.results.iter().zip(&expected) {
            assert_eq!(result.job_index, batch.results[result.job_index].job_index);
            assert_states_match(
                &format!(
                    "workers={workers} job={} engine={}",
                    result.job_index, result.engine
                ),
                result.state.as_ref().expect("states retained by default"),
                expected,
            );
        }
        // The repeated qft(9) must be served from the plan cache.
        assert!(
            batch.stats.cache.hits >= 1,
            "workers={workers}: expected ≥1 plan-cache hit, got {:?}",
            batch.stats.cache
        );
    }
}

#[test]
fn memory_bound_stricter_than_worker_count_still_completes() {
    // 8 workers but only 2 jobs may hold state at once: the semaphore must
    // throttle, not deadlock, and results must stay correct.
    let jobs = heterogeneous_jobs();
    let expected: Vec<_> = jobs.iter().map(|j| reference_state(&j.circuit)).collect();
    let scheduler = scaled_scheduler(8, 2);
    let batch = scheduler.run_batch(jobs);
    for (result, expected) in batch.results.iter().zip(&expected) {
        assert_states_match(
            &format!("K=2 job={}", result.job_index),
            result.state.as_ref().unwrap(),
            expected,
        );
    }
}

#[test]
fn second_identical_submission_hits_the_cache_with_identical_amplitudes() {
    let scheduler = scaled_scheduler(2, 2);
    let circuit = generators::qft(8);

    let first = scheduler.run_batch(vec![SimJob::new(circuit.clone())]);
    assert!(!first.results[0].plan_cache_hit, "cold cache must plan");

    let second = scheduler.run_batch(vec![SimJob::new(circuit.clone())]);
    assert!(second.results[0].plan_cache_hit, "warm cache must hit");
    assert!(second.stats.cache_hit_rate() > 0.0);

    // Identical plan ⇒ identical gate schedule ⇒ bitwise identical result.
    assert_eq!(
        first.results[0].state.as_ref().unwrap(),
        second.results[0].state.as_ref().unwrap(),
    );
    assert_states_match(
        "cached run vs flat reference",
        second.results[0].state.as_ref().unwrap(),
        &reference_state(&circuit),
    );
}

#[test]
fn cache_disabled_runs_remain_correct_but_never_hit() {
    let scheduler = Scheduler::new(
        SchedulerConfig::default()
            .with_workers(4)
            .with_selector(EngineSelector::scaled(4, 8))
            .without_cache(),
    );
    let circuit = generators::qft(8);
    let jobs: Vec<SimJob> = (0..4).map(|_| SimJob::new(circuit.clone())).collect();
    let expected = reference_state(&circuit);
    let batch = scheduler.run_batch(jobs);
    assert_eq!(batch.stats.cache.hits + batch.stats.cache.misses, 0);
    for result in &batch.results {
        assert!(!result.plan_cache_hit);
        assert!(result.state.as_ref().unwrap().approx_eq(&expected, TOL));
    }
}

#[test]
fn sampling_and_observables_survive_concurrency() {
    // Shots and expectations are computed per job on worker threads; verify
    // they match a direct measurement of the reference state.
    let scheduler = scaled_scheduler(4, 4);
    let circuit = generators::by_name("bv", 9);
    let batch = scheduler.run_batch(vec![
        SimJob::new(circuit.clone()).with_shots(512).with_seed(42),
        SimJob::new(circuit.clone()).with_observables((0..9).collect()),
    ]);

    // BV ends in a computational basis state on the data register: sampling
    // must concentrate on one outcome modulo the ancilla qubit.
    let counts = &batch.results[0].counts;
    assert_eq!(counts.values().sum::<usize>(), 512);
    let data_patterns: std::collections::BTreeSet<usize> =
        counts.keys().map(|k| k & ((1 << 8) - 1)).collect();
    assert_eq!(data_patterns.len(), 1, "BV data register is deterministic");

    let expected = reference_state(&circuit);
    for &(q, z) in &batch.results[1].z_expectations {
        let direct = hisvsim_statevec::measure::expectation_z(&expected, q);
        assert!((z - direct).abs() < TOL, "qubit {q}: {z} vs {direct}");
    }
}

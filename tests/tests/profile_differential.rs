//! Differential validation of the measured-cost profiling loop's critical
//! invariant: a warm profile may change *which* engine or fusion strategy a
//! job runs, but it must never change the amplitudes any given engine
//! produces. With the decision inputs pinned (forced engine, explicit
//! strategy and limit), a profile-calibrated run must be **bit-identical**
//! to a cold run — calibration decorates the decision, it never leaks into
//! execution.
//!
//! `FusionStrategy::Auto` is deliberately excluded from the bit-identity
//! matrix: with a warm profile, Auto is *meant* to resolve differently
//! (that is the loop closing). Its resolved forms are themselves members of
//! the explicit-strategy matrix checked here, and
//! `cross_engine_equivalence` pins each of those against the reference.
//!
//! Also here: proptest round-trip and merge laws for the `CostProfile`
//! wire/disk format, which both the persisted warm-start file and the
//! per-rank `RankReport` deltas rely on.

use hisvsim_circuit::generators;
use hisvsim_integration_tests::assert_states_match;
use hisvsim_obs::{CostProfile, ProfileMode, ProfileStore};
use hisvsim_runtime::{
    EngineKind, EngineSelector, FusionStrategy, Scheduler, SchedulerConfig, SimJob,
};
use proptest::prelude::*;
use std::sync::Arc;

/// A profile warm enough to trip every calibration signal: four qualifying
/// cache-cliff bands (the 40 GB/s drop at band 22 puts the measured cliff
/// at 21 qubits), > 64 KiB of collective traffic, and dense + diagonal
/// kernel cells whose per-amplitude ratio r = 2 yields a measured pass
/// cost of 2.0.
fn warm_profile() -> CostProfile {
    let mut p = CostProfile::new();
    for (band, gbps) in [(19u32, 100.0), (20, 95.0), (21, 90.0), (22, 40.0)] {
        let bytes = 32u64 << band;
        p.absorb_kernel(
            "sweep:dense",
            "avx2",
            band,
            1,
            bytes as f64 / (gbps * 1e9),
            bytes,
        );
    }
    // Diagonal at half the dense per-amplitude cost: r = 2 → pass = 2.0.
    let bytes = 32u64 << 19;
    let dense_gbps = p.kernel_gbps("sweep:dense", 19).unwrap();
    p.absorb_kernel(
        "sweep:diagonal",
        "avx2",
        19,
        1,
        bytes as f64 / (2.0 * dense_gbps * 1e9),
        bytes,
    );
    p.absorb_collective("alltoallv", 4, 0.1, 1 << 28);
    assert!(
        p.cache_qubits().is_some(),
        "fixture must trip the cliff signal"
    );
    assert!(
        p.pass_cost().is_some(),
        "fixture must trip the pass-cost signal"
    );
    assert!(
        p.exchange_seconds(1 << 20).is_some(),
        "fixture must trip the exchange signal"
    );
    p
}

#[test]
fn warm_profile_never_changes_amplitudes_for_a_pinned_decision() {
    let selector = EngineSelector::scaled(4, 8);
    let circuit = generators::qft(8);
    // limit 4 equals the cold cache limit, so the explicit override pins
    // every structural parameter against calibration: the measured cache
    // cliff would otherwise raise the multilevel second_limit (the one
    // knob a job cannot override directly), but `min(second_limit, 4)`
    // lands on 4 cold and warm alike. Rank counts never depend on the
    // cache signal, so the whole decision shape is identical either way.
    let limit = 4usize;

    for strategy in [FusionStrategy::Window, FusionStrategy::Dag] {
        for engine in [
            EngineKind::Baseline,
            EngineKind::Hier,
            EngineKind::Dist,
            EngineKind::Multilevel,
        ] {
            let job = || {
                SimJob::new(circuit.clone())
                    .with_engine(engine)
                    .with_limit(limit)
                    .with_fusion_strategy(strategy)
            };
            let cold = Scheduler::new(SchedulerConfig::default().with_selector(selector.clone()))
                .run_batch(vec![job()]);
            let warm_store = Arc::new(ProfileStore::with_profile(
                ProfileMode::Frozen,
                warm_profile(),
            ));
            let warm = Scheduler::new(
                SchedulerConfig::default()
                    .with_selector(selector.clone())
                    .with_profile_store(warm_store),
            )
            .run_batch(vec![job()]);

            let label = format!("{} strategy={}", engine.name(), strategy.name());
            let cold_state = cold.results[0].state.as_ref().unwrap();
            let warm_state = warm.results[0].state.as_ref().unwrap();
            assert_eq!(
                cold_state, warm_state,
                "{label}: calibration changed amplitudes with the decision pinned"
            );
            // The warm run must actually have consulted the profile — a
            // no-op "calibrated" path would make the bit-identity above
            // vacuous.
            let decision = &warm.results[0].decision;
            assert!(
                decision.calibrated,
                "{label}: warm run did not calibrate: {}",
                decision.reason
            );
            assert!(
                decision.reason.starts_with("calibrated["),
                "{label}: unexpected reason {}",
                decision.reason
            );
            assert!(
                !cold.results[0].decision.calibrated,
                "{label}: cold run must not claim calibration"
            );
            // Sanity against the flat reference (not just self-agreement).
            assert_states_match(
                &label,
                warm_state,
                &hisvsim_integration_tests::reference_state(&circuit),
            );
        }
    }
}

#[test]
fn frozen_store_keeps_decisions_reproducible_while_jobs_run() {
    // A frozen store must ignore the measurements the batch itself feeds
    // back, so two identical batches decide identically.
    let store = Arc::new(ProfileStore::with_profile(
        ProfileMode::Frozen,
        warm_profile(),
    ));
    let snapshot_before = store.snapshot();
    let config = SchedulerConfig::default()
        .with_selector(EngineSelector::scaled(4, 8))
        .with_profile_store(Arc::clone(&store));
    let batch = Scheduler::new(config).run_batch(vec![
        SimJob::new(generators::qft(8)),
        SimJob::new(generators::by_name("qaoa", 8)),
    ]);
    assert_eq!(batch.results.len(), 2);
    assert_eq!(
        store.snapshot(),
        snapshot_before,
        "a frozen store must not absorb the batch's own measurements"
    );
}

/// Strategy over profiles built exactly like production builds them: by
/// folding cell measurements in one at a time (which also exercises the
/// canonical sort order `merge` and `PartialEq` rely on). The vendored
/// proptest stub draws the seed and cell counts; the cells themselves come
/// from a deterministic splitmix64 stream over that seed, so every failing
/// case reproduces exactly.
fn profile_from_seed(seed: u64) -> CostProfile {
    const KERNELS: [&str; 4] = ["sweep:dense", "sweep:solo", "sweep:diagonal", "sweep:tiled"];
    const DISPATCHES: [&str; 2] = ["scalar", "avx2"];
    const ENGINES: [&str; 4] = ["baseline", "hier", "dist", "multilevel"];
    const PHASES: [&str; 3] = ["plan", "execute", "postprocess"];
    let mut s = seed;
    let mut next = move || -> u64 {
        s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = s;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let (kernels, collectives, phases) = (next() % 12, next() % 6, next() % 8);
    let mut p = CostProfile::new();
    for _ in 0..kernels {
        p.absorb_kernel(
            KERNELS[(next() % 4) as usize],
            DISPATCHES[(next() % 2) as usize],
            4 + (next() % 26) as u32,
            1 + next() % 1_000,
            (1 + next() % 100_000_000) as f64 * 1e-6,
            1 + next() % (1 << 40),
        );
    }
    for _ in 0..collectives {
        p.absorb_collective(
            if next() % 2 == 0 { "alltoallv" } else { "recv" },
            1 + next() % 100,
            (1 + next() % 10_000_000) as f64 * 1e-6,
            1 + next() % (1 << 34),
        );
    }
    for _ in 0..phases {
        p.absorb_phase(
            ENGINES[(next() % 4) as usize],
            PHASES[(next() % 3) as usize],
            (1 + next() % 100_000_000) as f64 * 1e-6,
            next() % (1 << 36),
        );
    }
    p
}

proptest! {
    // The JSON format round-trips **exactly** — the persisted warm-start
    // profile and the per-rank wire deltas reload as the same f64 sums
    // (the writer prints shortest-round-trip floats).
    #[test]
    fn profile_json_roundtrip_is_exact(seed in any::<u64>()) {
        let profile = profile_from_seed(seed);
        let reloaded = CostProfile::from_json(&profile.to_json()).unwrap();
        prop_assert_eq!(reloaded, profile);
    }

    // Merging rank deltas is commutative: the launcher may gather worker
    // reports in any order and still converge on the same profile.
    #[test]
    fn profile_merge_is_commutative(seeds in (any::<u64>(), any::<u64>())) {
        let a = profile_from_seed(seeds.0);
        let b = profile_from_seed(seeds.1);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(ab, ba);
    }

    // A merged profile survives the disk format too (merge then round-trip).
    #[test]
    fn merged_profile_roundtrips(seeds in (any::<u64>(), any::<u64>())) {
        let mut merged = profile_from_seed(seeds.0);
        merged.merge(&profile_from_seed(seeds.1));
        let reloaded = CostProfile::from_json(&merged.to_json()).unwrap();
        prop_assert_eq!(reloaded, merged);
    }
}

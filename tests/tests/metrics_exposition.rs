//! Validation of the unified metrics exposition and the per-job timeline:
//! every line `SimService::metrics_text()` emits must be well-formed
//! Prometheus text format (HELP/TYPE pairs, monotone histogram buckets, no
//! duplicate series), the service/cache/comm series must all be present,
//! and `JobResult::timeline()` must cover every runner phase.

use hisvsim_circuit::generators;
use hisvsim_obs::validate_prometheus;
use hisvsim_runtime::{EngineKind, EngineSelector, SchedulerConfig, SimJob};
use hisvsim_service::prelude::*;

fn service(workers: usize) -> SimService {
    SimService::start(
        ServiceConfig::new().with_scheduler(
            SchedulerConfig::default()
                .with_workers(workers)
                .with_selector(EngineSelector::scaled(4, 8)),
        ),
    )
}

#[test]
fn metrics_text_is_valid_prometheus_exposition() {
    let service = service(2);
    // Cold scrape: valid before any job has run.
    validate_prometheus(&service.metrics_text()).expect("cold exposition must be valid");

    for width in [8usize, 9, 8] {
        let job = SimJob::new(generators::qft(width)).with_shots(16);
        service.submit(job).wait().expect("job must complete");
    }
    let text = service.metrics_text();
    validate_prometheus(&text).expect("exposition after jobs must be valid");

    // The unified registry must expose all three families: service
    // counters, plan-cache counters (including the in-flight dedups), and
    // the comm/job series fed from completed JobResults.
    for series in [
        "hisvsim_service_jobs_submitted_total 3",
        "hisvsim_service_jobs_completed_total 3",
        "hisvsim_service_queue_depth",
        // Occupancy gauges: pool size, in-flight jobs (0 — every wait()
        // above returned), resident-slot capacity/usage, and the artifact
        // LRU's retention counters.
        "hisvsim_service_workers 2",
        "hisvsim_service_jobs_in_flight 0",
        "hisvsim_service_resident_slots",
        "hisvsim_service_resident_slots_in_use 0",
        "hisvsim_service_job_artifacts_retained 3",
        "hisvsim_service_job_artifacts_evicted_total 0",
        "hisvsim_plan_cache_hits_total",
        "hisvsim_plan_cache_warm_hits_total",
        "hisvsim_plan_cache_misses_total",
        "hisvsim_plan_cache_inflight_dedups_total",
        "hisvsim_plan_cache_entries",
        "hisvsim_job_wall_seconds_bucket",
        "hisvsim_job_wall_seconds_count 3",
        "hisvsim_job_plan_seconds_sum",
        "hisvsim_comm_bytes_sent_total",
        "hisvsim_comm_wall_seconds_total",
        // The measured-cost loop's audit series: predicted-vs-measured
        // ratio per job, calibrated-decision counter (0 here — phase
        // timings alone trip no calibration signal), profile warmth (1 —
        // the jobs above fed the store their own phase measurements), and
        // the tracer's drop counter.
        "hisvsim_selector_misprediction_ratio_bucket",
        "hisvsim_selector_misprediction_ratio_count 3",
        "hisvsim_selector_calibrated_decisions_total 0",
        "hisvsim_profile_warm 1",
        "hisvsim_obs_spans_dropped_total",
    ] {
        assert!(
            text.contains(series),
            "exposition is missing `{series}`:\n{text}"
        );
    }
    // The repeated qft-8 must have hit the plan cache.
    let cache = service.cache_stats();
    assert!(cache.hits >= 1, "repeat submission must hit the cache");
}

#[test]
fn job_result_timeline_covers_every_phase() {
    let service = service(1);
    let job = SimJob::new(generators::qft(10))
        .with_engine(EngineKind::Hier)
        .with_shots(8)
        .with_observables(vec![0, 1]);
    let result = service.submit(job).wait().expect("job must complete");
    let names: Vec<&str> = result.timeline().iter().map(|s| s.name.as_str()).collect();
    assert_eq!(
        names,
        ["plan", "execute", "postprocess"],
        "timeline must record the three runner phases in order"
    );
    for span in result.timeline() {
        assert_eq!(span.cat, "job");
        assert!(span.dur_us >= 1, "phases record at least 1µs");
    }
    // The timeline is exportable as-is.
    let json = hisvsim_obs::chrome_trace_json(result.timeline());
    assert!(json.contains("\"traceEvents\""));
}

#[test]
fn http_front_door_series_join_the_unified_exposition() {
    use hisvsim_http::{client, HttpServer};
    use std::sync::Arc;

    let service = Arc::new(service(1));
    let server = HttpServer::start(Arc::clone(&service), "127.0.0.1:0").expect("bind");
    let health = client::http_get(server.local_addr(), "/healthz").expect("GET /healthz");
    assert_eq!(health.status, 200);
    // The request is observed after its response is written, so poll the
    // in-process exposition until the probe's series lands.
    let mut text = String::new();
    let landed = (0..100).any(|_| {
        std::thread::sleep(std::time::Duration::from_millis(10));
        text = service.metrics_text();
        text.contains("hisvsim_http_requests_total{code=\"200\",endpoint=\"/healthz\"} 1")
    });
    assert!(landed, "healthz probe never reached the registry:\n{text}");
    assert!(text.contains("hisvsim_http_request_seconds_count"));
    validate_prometheus(&text).expect("exposition with http series must be valid");
    server.shutdown();
}

#[test]
fn histogram_buckets_are_cumulative_and_terminated() {
    // Drive a histogram through the registry directly and check the
    // rendered bucket structure survives the strict parser (the same
    // parser CI runs over the service exposition).
    let registry = hisvsim_obs::Registry::new();
    let h = registry.histogram("t_seconds", "test");
    for v in [1e-7, 1e-3, 0.5, 2.0, 1e6] {
        h.observe(v);
    }
    let text = registry.render();
    validate_prometheus(&text).expect("rendered histogram must be valid");
    assert!(text.contains("t_seconds_bucket{le=\"+Inf\"} 5"));
    assert!(text.contains("t_seconds_count 5"));
}

//! Validation of the unified metrics exposition and the per-job timeline:
//! every line `SimService::metrics_text()` emits must be well-formed
//! Prometheus text format (HELP/TYPE pairs, monotone histogram buckets, no
//! duplicate series), the service/cache/comm series must all be present,
//! and `JobResult::timeline()` must cover every runner phase.

use hisvsim_circuit::generators;
use hisvsim_obs::validate_prometheus;
use hisvsim_runtime::{EngineKind, EngineSelector, SchedulerConfig, SimJob};
use hisvsim_service::prelude::*;

fn service(workers: usize) -> SimService {
    SimService::start(
        ServiceConfig::new().with_scheduler(
            SchedulerConfig::default()
                .with_workers(workers)
                .with_selector(EngineSelector::scaled(4, 8)),
        ),
    )
}

#[test]
fn metrics_text_is_valid_prometheus_exposition() {
    let service = service(2);
    // Cold scrape: valid before any job has run.
    validate_prometheus(&service.metrics_text()).expect("cold exposition must be valid");

    for width in [8usize, 9, 8] {
        let job = SimJob::new(generators::qft(width)).with_shots(16);
        service.submit(job).wait().expect("job must complete");
    }
    let text = service.metrics_text();
    validate_prometheus(&text).expect("exposition after jobs must be valid");

    // The unified registry must expose all three families: service
    // counters, plan-cache counters (including the in-flight dedups), and
    // the comm/job series fed from completed JobResults.
    for series in [
        "hisvsim_service_jobs_submitted_total 3",
        "hisvsim_service_jobs_completed_total 3",
        "hisvsim_service_queue_depth",
        "hisvsim_plan_cache_hits_total",
        "hisvsim_plan_cache_warm_hits_total",
        "hisvsim_plan_cache_misses_total",
        "hisvsim_plan_cache_inflight_dedups_total",
        "hisvsim_plan_cache_entries",
        "hisvsim_job_wall_seconds_bucket",
        "hisvsim_job_wall_seconds_count 3",
        "hisvsim_job_plan_seconds_sum",
        "hisvsim_comm_bytes_sent_total",
        "hisvsim_comm_wall_seconds_total",
        // The measured-cost loop's audit series: predicted-vs-measured
        // ratio per job, calibrated-decision counter (0 here — phase
        // timings alone trip no calibration signal), profile warmth (1 —
        // the jobs above fed the store their own phase measurements), and
        // the tracer's drop counter.
        "hisvsim_selector_misprediction_ratio_bucket",
        "hisvsim_selector_misprediction_ratio_count 3",
        "hisvsim_selector_calibrated_decisions_total 0",
        "hisvsim_profile_warm 1",
        "hisvsim_obs_spans_dropped_total",
    ] {
        assert!(
            text.contains(series),
            "exposition is missing `{series}`:\n{text}"
        );
    }
    // The repeated qft-8 must have hit the plan cache.
    let cache = service.cache_stats();
    assert!(cache.hits >= 1, "repeat submission must hit the cache");
}

#[test]
fn job_result_timeline_covers_every_phase() {
    let service = service(1);
    let job = SimJob::new(generators::qft(10))
        .with_engine(EngineKind::Hier)
        .with_shots(8)
        .with_observables(vec![0, 1]);
    let result = service.submit(job).wait().expect("job must complete");
    let names: Vec<&str> = result.timeline().iter().map(|s| s.name.as_str()).collect();
    assert_eq!(
        names,
        ["plan", "execute", "postprocess"],
        "timeline must record the three runner phases in order"
    );
    for span in result.timeline() {
        assert_eq!(span.cat, "job");
        assert!(span.dur_us >= 1, "phases record at least 1µs");
    }
    // The timeline is exportable as-is.
    let json = hisvsim_obs::chrome_trace_json(result.timeline());
    assert!(json.contains("\"traceEvents\""));
}

#[test]
fn histogram_buckets_are_cumulative_and_terminated() {
    // Drive a histogram through the registry directly and check the
    // rendered bucket structure survives the strict parser (the same
    // parser CI runs over the service exposition).
    let registry = hisvsim_obs::Registry::new();
    let h = registry.histogram("t_seconds", "test");
    for v in [1e-7, 1e-3, 0.5, 2.0, 1e6] {
        h.observe(v);
    }
    let text = registry.render();
    validate_prometheus(&text).expect("rendered histogram must be valid");
    assert!(text.contains("t_seconds_bucket{le=\"+Inf\"} 5"));
    assert!(text.contains("t_seconds_count 5"));
}

//! Shared helpers for the cross-crate integration tests.

use hisvsim_circuit::Circuit;
use hisvsim_statevec::{run_circuit, StateVector};

/// Tolerance used when comparing engine outputs against the flat reference.
pub const TOL: f64 = 1e-9;

/// Run the flat reference simulator.
pub fn reference_state(circuit: &Circuit) -> StateVector {
    run_circuit(circuit)
}

/// Assert two states are equal within [`TOL`], with a readable message.
pub fn assert_states_match(label: &str, got: &StateVector, expected: &StateVector) {
    assert!(
        got.approx_eq(expected, TOL),
        "{label}: states diverge (max |Δ| = {:.3e})",
        got.max_abs_diff(expected)
    );
}

/// The benchmark families small enough to cross-check exhaustively in
/// integration tests.
pub fn small_suite(width: usize) -> Vec<Circuit> {
    hisvsim_circuit::generators::FAMILY_NAMES
        .iter()
        .map(|name| hisvsim_circuit::generators::by_name(name, width))
        .collect()
}

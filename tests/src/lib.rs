//! Shared helpers for the cross-crate integration tests, including the
//! cross-engine differential harness backing the DAG-fusion work: every
//! engine × every fusion strategy × fused/flat, checked against the flat
//! reference and for bitwise run-to-run reproducibility.

use hisvsim_circuit::{generators, Circuit};
use hisvsim_core::{
    BaselineConfig, DistConfig, DistributedSimulator, HierConfig, HierarchicalSimulator,
    IqsBaseline, MultilevelConfig, MultilevelSimulator,
};
use hisvsim_statevec::{run_circuit, FusionStrategy, KernelDispatch, StateVector};
use proptest::prelude::*;

/// Tolerance used when comparing engine outputs against the flat reference.
pub const TOL: f64 = 1e-9;

/// Run the flat reference simulator.
pub fn reference_state(circuit: &Circuit) -> StateVector {
    run_circuit(circuit)
}

/// Assert two states are equal within [`TOL`], with a readable message.
pub fn assert_states_match(label: &str, got: &StateVector, expected: &StateVector) {
    assert!(
        got.approx_eq(expected, TOL),
        "{label}: states diverge (max |Δ| = {:.3e})",
        got.max_abs_diff(expected)
    );
}

/// The benchmark families small enough to cross-check exhaustively in
/// integration tests.
pub fn small_suite(width: usize) -> Vec<Circuit> {
    hisvsim_circuit::generators::FAMILY_NAMES
        .iter()
        .map(|name| hisvsim_circuit::generators::by_name(name, width))
        .collect()
}

/// The cross-engine differential harness.
///
/// For every `(strategy, width)` combination — width `0` means fusion off
/// (the flat per-gate execution path) — run the circuit through **all four
/// engines** (baseline, hier, dist, multilevel) and demand:
///
/// 1. **agreement with the flat reference** within [`TOL`] — fusion (either
///    strategy) reorders commuting floating-point work, so exact equality
///    with the unfused stream is not defined, but the amplitudes must agree
///    to reference precision;
/// 2. **bitwise determinism** — the same engine, width and strategy run
///    twice produces *bit-identical* amplitudes. This is the property the
///    plan cache, the SPMD rank bodies, and the process workers (which
///    re-fuse the shipped partition independently) all build on: fusion is
///    a pure function, so a DAG-fused job is exactly reproducible anywhere;
/// 3. **dispatch bit-identity** — forced-scalar and auto kernel dispatch
///    produce *bit-identical* amplitudes. The SIMD kernels replay the exact
///    scalar operation sequence (no true FMA contraction), so on AVX2
///    machines this pins the vector paths against the portable fallback,
///    and elsewhere it degenerates to the determinism check.
///
/// Engines run at a limit derived from the circuit (at least the largest
/// gate arity), with 4 virtual ranks for dist and 2 for multilevel —
/// circuits need ≥ 6 qubits so every rank keeps a wide-enough local slice.
pub fn assert_all_engines_bit_identical(
    circuit: &Circuit,
    widths: &[usize],
    strategies: &[FusionStrategy],
) {
    let n = circuit.num_qubits();
    assert!(n >= 6, "harness circuits need ≥ 6 qubits, got {n}");
    let expected = reference_state(circuit);
    let arity_floor = circuit.gates().iter().map(|g| g.arity()).max().unwrap_or(1);
    let limit = (n / 2).max(arity_floor).max(3).min(n);

    for &strategy in strategies {
        for &width in widths {
            for engine in ["baseline", "hier", "dist", "multilevel"] {
                let label = format!(
                    "{} engine={engine} strategy={} width={width}",
                    circuit.name,
                    strategy.name()
                );
                let run = |dispatch: KernelDispatch, pass: usize| -> StateVector {
                    match engine {
                        "baseline" => {
                            IqsBaseline::new(
                                BaselineConfig::new(2)
                                    .with_fusion(width)
                                    .with_fusion_strategy(strategy)
                                    .with_kernel_dispatch(dispatch),
                            )
                            .run(circuit)
                            .state
                        }
                        "hier" => {
                            HierarchicalSimulator::new(
                                HierConfig::new(limit)
                                    .with_fusion(width)
                                    .with_fusion_strategy(strategy)
                                    .with_kernel_dispatch(dispatch),
                            )
                            .run(circuit)
                            .unwrap_or_else(|e| panic!("{label} (pass {pass}): {e}"))
                            .state
                        }
                        "dist" => {
                            DistributedSimulator::new(
                                DistConfig::new(4)
                                    .with_fusion(width)
                                    .with_fusion_strategy(strategy)
                                    .with_kernel_dispatch(dispatch),
                            )
                            .run(circuit)
                            .unwrap_or_else(|e| panic!("{label} (pass {pass}): {e}"))
                            .state
                        }
                        "multilevel" => {
                            MultilevelSimulator::new(
                                MultilevelConfig::new(2, limit)
                                    .with_fusion(width)
                                    .with_fusion_strategy(strategy)
                                    .with_kernel_dispatch(dispatch),
                            )
                            .run(circuit)
                            .unwrap_or_else(|e| panic!("{label} (pass {pass}): {e}"))
                            .state
                        }
                        _ => unreachable!(),
                    }
                };
                let scalar = run(KernelDispatch::Scalar, 1);
                assert_states_match(&label, &scalar, &expected);
                let second = run(KernelDispatch::Scalar, 2);
                assert_eq!(
                    scalar, second,
                    "{label}: two runs of the identical configuration must be bit-identical"
                );
                let auto = run(KernelDispatch::Auto, 1);
                assert_eq!(
                    scalar, auto,
                    "{label}: forced-scalar and auto kernel dispatch must be bit-identical"
                );
            }
        }
    }
}

/// Build one member of the `random` interleaved family: the benchmark
/// workload whose mergeable gates are buried far apart in program order
/// (where window fusion degenerates and DAG fusion must not).
pub fn random_interleaved(qubits: usize, gates: usize, seed: u64) -> Circuit {
    generators::random_circuit(qubits, gates, seed)
}

/// Proptest generator over the `random` interleaved family: deep random
/// circuits of 6–8 qubits, shrinkable in gate count and seed. Used by the
/// differential suite as the adversarial input distribution for the
/// DAG-fusion correctness backstop.
pub fn prop_random_interleaved() -> impl Strategy<Value = Circuit> {
    (6usize..9, 20usize..90, any::<u64>())
        .prop_map(|(qubits, gates, seed)| random_interleaved(qubits, gates, seed))
}

/// A denser variant biased toward long dependency chains: interleaves a
/// round-robin entangling layer with random single-qubit rotations, so
/// every qubit pair's gates are separated by a full register sweep —
/// maximally hostile to the bounded fusion window.
pub fn prop_layered_interleaved() -> impl Strategy<Value = Circuit> {
    (6usize..9, 2usize..6, any::<u64>()).prop_map(|(qubits, rounds, seed)| {
        let mut circuit = Circuit::named(format!("interleaved{qubits}x{rounds}"), qubits);
        let mut phase = seed as f64 % 1.0 + 0.1;
        for round in 0..rounds {
            for q in 0..qubits {
                circuit.cx(q, (q + 1 + round % (qubits - 1)) % qubits);
                circuit.rz(phase, q);
                phase += 0.37;
            }
            for q in 0..qubits {
                circuit.ry(phase * 0.5, (q * 3) % qubits);
                circuit.t(q);
            }
        }
        circuit
    })
}

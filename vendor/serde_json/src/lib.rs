//! Offline stand-in for `serde_json`: renders the vendored serde crate's
//! [`Value`] tree to JSON text and parses JSON text back.
//!
//! Supports the subset of JSON the workspace emits: objects, arrays,
//! strings (with standard escapes), integers, floats, booleans and null.

pub use serde::value::Value;
pub use serde::Error;
use serde::{Deserialize, Serialize};

/// Serialise a value to its intermediate tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Serialise to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialise to a pretty-printed JSON string (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parse a JSON string into any deserialisable type.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    T::from_value(&value)
}

/// Parse a JSON string into the intermediate tree.
pub fn value_from_str(text: &str) -> Result<Value, Error> {
    from_str::<ValueWrapper>(text).map(|w| w.0)
}

struct ValueWrapper(Value);

impl Deserialize for ValueWrapper {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(ValueWrapper(v.clone()))
    }
}

// ---- writer ---------------------------------------------------------------

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // `{}` prints integral floats without a fraction ("1"), which
                // round-trips as an integer token; `Deserialize for f64`
                // accepts both, so the representation stays interchangeable.
                out.push_str(&format!("{f}"));
            } else {
                // JSON has no NaN/infinity; mirror serde_json's `null`.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => write_seq(
            out,
            indent,
            depth,
            '[',
            ']',
            items.iter(),
            |item, out, d| write_value(item, out, indent, d),
        ),
        Value::Object(fields) => write_seq(
            out,
            indent,
            depth,
            '{',
            '}',
            fields.iter(),
            |(k, v), out, d| {
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(v, out, indent, d);
            },
        ),
    }
}

fn write_seq<I, F>(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    items: I,
    mut write_item: F,
) where
    I: ExactSizeIterator,
    F: FnMut(I::Item, &mut String, usize),
{
    out.push(open);
    let empty = items.len() == 0;
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(step * (depth + 1)));
        }
        write_item(item, out, depth + 1);
    }
    if let Some(step) = indent {
        if !empty {
            out.push('\n');
            out.push_str(&" ".repeat(step * depth));
        }
    }
    out.push(close);
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ---------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b't') => self.parse_literal("true", Value::Bool(true)),
            Some(b'f') => self.parse_literal("false", Value::Bool(false)),
            Some(b'n') => self.parse_literal("null", Value::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::custom(format!(
                "unexpected byte {other:?} at offset {}",
                self.pos
            ))),
        }
    }

    fn parse_literal(&mut self, lit: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(Error::custom(format!(
                "invalid literal at offset {}",
                self.pos
            )))
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                other => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}`, got {other:?} at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]`, got {other:?} at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::custom("truncated \\u escape".to_string()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::custom("bad \\u escape".to_string()))?,
                                16,
                            )
                            .map_err(|_| Error::custom("bad \\u escape".to_string()))?;
                            out.push(
                                char::from_u32(code).ok_or_else(|| {
                                    Error::custom("bad \\u codepoint".to_string())
                                })?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::custom(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::custom("invalid UTF-8".to_string()))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::custom("unterminated string".to_string())),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number".to_string()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::custom(format!("invalid number `{text}`")))
        } else {
            text.parse::<i128>()
                .map(Value::Int)
                .or_else(|_| text.parse::<f64>().map(Value::Float))
                .map_err(|_| Error::custom(format!("invalid number `{text}`")))
        }
    }
}

//! The intermediate value tree both the derive macros and `serde_json`
//! operate on — the stub's replacement for serde's visitor machinery.

/// A JSON-shaped value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// An integer (JSON number without fraction/exponent).
    Int(i128),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Human-readable name of the variant, for error messages.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "a boolean",
            Value::Int(_) => "an integer",
            Value::Float(_) => "a number",
            Value::Str(_) => "a string",
            Value::Array(_) => "an array",
            Value::Object(_) => "an object",
        }
    }

    /// Look up a field of an object by name.
    pub fn get_field(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}

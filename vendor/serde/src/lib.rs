//! Offline stand-in for the `serde` crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors a minimal, API-compatible subset of the serde
//! ecosystem. Data is serialised through an intermediate [`value::Value`]
//! tree (the same design `serde_json::Value` uses); the derive macros in
//! `serde_derive` generate `to_value`/`from_value` implementations for
//! structs and enums, and `serde_json` renders the tree to/from JSON text.
//!
//! Only the surface the HiSVSIM crates use is implemented: the `Serialize`
//! and `Deserialize` traits (no `Serializer`/`Deserializer` visitor
//! machinery), implementations for the primitive types, strings, vectors,
//! options, tuples and maps, and the two derive macros.

pub mod value;

pub use serde_derive::{Deserialize, Serialize};
pub use value::Value;

/// Error produced by deserialisation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// A custom error with the given message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }

    /// The standard "missing field" error.
    pub fn missing_field(name: &str) -> Self {
        Error(format!("missing field `{name}`"))
    }

    /// The standard "type mismatch" error.
    pub fn expected(what: &str, got: &Value) -> Self {
        Error(format!("expected {what}, got {}", got.kind_name()))
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// A type that can be converted into the intermediate [`Value`] tree.
pub trait Serialize {
    /// Convert `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// A type that can be reconstructed from the intermediate [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuild `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---- primitive impls ------------------------------------------------------

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| Error::custom(format!("integer {i} out of range"))),
                    Value::Float(f) if f.fract() == 0.0 => Ok(*f as $t),
                    other => Err(Error::expected("an integer", other)),
                }
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for u128 {
    fn to_value(&self) -> Value {
        match i128::try_from(*self) {
            Ok(i) => Value::Int(i),
            Err(_) => Value::Str(self.to_string()),
        }
    }
}

impl Deserialize for u128 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Int(i) => {
                u128::try_from(*i).map_err(|_| Error::custom(format!("integer {i} out of range")))
            }
            Value::Str(s) => s
                .parse()
                .map_err(|_| Error::custom(format!("invalid u128 `{s}`"))),
            other => Err(Error::expected("an integer", other)),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            other => Err(Error::expected("a number", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::expected("a boolean", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::expected("a string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::expected("a single-character string", other)),
        }
    }
}

// ---- container impls ------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::expected("an array", other)),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize + Copy + Default, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(v)?;
        if items.len() != N {
            return Err(Error::custom(format!(
                "expected an array of {N} elements, got {}",
                items.len()
            )));
        }
        let mut out = [T::default(); N];
        out.copy_from_slice(&items);
        Ok(out)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => Err(Error::expected("a 2-element array", other)),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) if items.len() == 3 => Ok((
                A::from_value(&items[0])?,
                B::from_value(&items[1])?,
                C::from_value(&items[2])?,
            )),
            other => Err(Error::expected("a 3-element array", other)),
        }
    }
}

impl<K: Serialize + ToString, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(Error::expected("an object", other)),
        }
    }
}

impl<K: Serialize + ToString, V: Serialize> Serialize for std::collections::HashMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::expected("an array", other)),
        }
    }
}

//! Offline stand-in for `parking_lot`: thin wrappers over `std::sync` with
//! parking_lot's panic-free (non-`Result`) locking API.

use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// A mutex whose `lock` returns the guard directly (poisoning is treated as
/// a fatal error, as parking_lot has no poisoning).
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Create a mutex.
    pub const fn new(value: T) -> Self {
        Self {
            inner: StdMutex::new(value),
        }
    }

    /// Acquire the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().expect("mutex poisoned")
    }

    /// Consume the mutex and return the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().expect("mutex poisoned")
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().expect("mutex poisoned")
    }
}

/// A reader–writer lock with parking_lot's non-`Result` API.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: StdRwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a lock.
    pub const fn new(value: T) -> Self {
        Self {
            inner: StdRwLock::new(value),
        }
    }

    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().expect("rwlock poisoned")
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().expect("rwlock poisoned")
    }

    /// Consume the lock and return the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().expect("rwlock poisoned")
    }
}

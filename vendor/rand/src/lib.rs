//! Offline stand-in for the `rand` crate (0.8-style API subset).
//!
//! Implements exactly the surface the HiSVSIM workspace uses: the [`Rng`]
//! extension trait with `gen_range`/`gen_bool`/`gen`, [`SeedableRng`] with
//! `seed_from_u64`, the [`rngs::StdRng`] generator, and
//! [`seq::SliceRandom::shuffle`]. The generator is SplitMix64 — a small,
//! well-mixed, deterministic PRNG that is more than adequate for the
//! statistical tests and randomized circuit generators in this repository
//! (it is *not* cryptographically secure, and neither was the original's
//! default for these uses).

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Build the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;

    /// Build the generator from OS entropy (stubbed: mixes the current time
    /// and a counter; adequate for non-cryptographic sampling).
    fn from_entropy() -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        Self::seed_from_u64(t ^ COUNTER.fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed))
    }
}

/// Types that can be produced by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo bias is < span / 2^64 — negligible for every span
                // this workspace samples.
                let offset = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (start as i128 + offset) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + (self.end - self.start) * f64::draw(rng)
    }
}

/// The user-facing random-value API, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::draw(self) < p
    }

    /// Draw a value of any [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The stub's standard generator: SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    /// Alias: the "small" generator is the same SplitMix64 here.
    pub type SmallRng = StdRng;
}

/// Slice helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random slice operations (the rand 0.8 `SliceRandom` subset).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// A thread-local generator seeded from entropy, matching `rand::thread_rng`
/// call sites.
pub fn thread_rng() -> rngs::StdRng {
    SeedableRng::from_entropy()
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let f = rng.gen_range(-2.5f64..4.5);
            assert!((-2.5..4.5).contains(&f));
        }
    }

    #[test]
    fn f64_draws_are_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((hits as f64 / 100_000.0 - 0.25).abs() < 0.01);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "shuffle left the slice in order (astronomically unlikely)"
        );
    }

    #[test]
    fn seeding_is_deterministic() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(99);
            (0..5).map(|_| r.gen()).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(99);
            (0..5).map(|_| r.gen()).collect()
        };
        assert_eq!(a, b);
    }
}

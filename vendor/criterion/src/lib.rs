//! Offline stand-in for `criterion`.
//!
//! Same API shape (`criterion_group!`/`criterion_main!`, benchmark groups,
//! `Bencher::iter`, throughput annotations), much simpler statistics: each
//! benchmark is warmed up once, then timed over a fixed number of batches,
//! and the median batch time is printed as a plain table row. Good enough to
//! compare kernels and track regressions by eye; not a confidence-interval
//! engine.
//!
//! Respects `--test` / `CRITERION_TEST=1` (run every benchmark body exactly
//! once, no timing), so `cargo test --benches` stays fast.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Just the parameter as the id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// Drives one benchmark's timing loop.
pub struct Bencher {
    /// Measured median batch time, populated by [`Bencher::iter`].
    median: Duration,
    /// Iterations per batch.
    iters_per_batch: u64,
    test_mode: bool,
    sample_count: usize,
}

impl Bencher {
    /// Time `f`, storing the median batch duration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            black_box(f());
            self.median = Duration::ZERO;
            self.iters_per_batch = 1;
            return;
        }
        // Warm-up & batch sizing: aim for batches of at least ~1 ms.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(50));
        let iters = (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;

        let mut samples: Vec<Duration> = Vec::with_capacity(self.sample_count);
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            samples.push(start.elapsed());
        }
        samples.sort_unstable();
        self.median = samples[samples.len() / 2];
        self.iters_per_batch = iters;
    }

    /// `iter_batched` compatibility: setup is run outside the timed section.
    pub fn iter_batched<I, O, S: FnMut() -> I, F: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut f: F,
        _size: BatchSize,
    ) {
        let input = setup();
        if self.test_mode {
            black_box(f(input));
            self.median = Duration::ZERO;
            self.iters_per_batch = 1;
            return;
        }
        let mut samples: Vec<Duration> = Vec::with_capacity(self.sample_count);
        for _ in 0..self.sample_count {
            let input = setup();
            let start = Instant::now();
            black_box(f(input));
            samples.push(start.elapsed());
        }
        samples.sort_unstable();
        self.median = samples[samples.len() / 2];
        self.iters_per_batch = 1;
    }
}

/// Batch sizing hint (ignored by the stub).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small input.
    SmallInput,
    /// Large input.
    LargeInput,
}

/// The top-level benchmark manager.
pub struct Criterion {
    test_mode: bool,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let test_mode = args.iter().any(|a| a == "--test")
            || std::env::var("CRITERION_TEST")
                .map(|v| v == "1")
                .unwrap_or(false);
        Self {
            test_mode,
            sample_size: 10,
        }
    }
}

impl Criterion {
    /// Set the per-benchmark sample count.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        if !self.test_mode {
            println!("\n== {name} ==");
        }
        BenchmarkGroup {
            criterion: self,
            _name: name,
            throughput: None,
            sample_size: None,
        }
    }

    /// Benchmark a single function outside a group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let sample_size = self.sample_size;
        let test_mode = self.test_mode;
        run_one(id.into(), None, sample_size, test_mode, f);
        self
    }
}

/// A group of related benchmarks sharing throughput/sample configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    _name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Set the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Set the measurement time (accepted, ignored by the stub).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        run_one(
            id.into(),
            self.throughput,
            self.sample_size.unwrap_or(self.criterion.sample_size),
            self.criterion.test_mode,
            f,
        );
        self
    }

    /// Benchmark a closure with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Close the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    id: BenchmarkId,
    throughput: Option<Throughput>,
    sample_size: usize,
    test_mode: bool,
    mut f: F,
) {
    let mut bencher = Bencher {
        median: Duration::ZERO,
        iters_per_batch: 1,
        test_mode,
        sample_count: sample_size,
    };
    f(&mut bencher);
    if test_mode {
        println!("test-mode: {id} ... ok");
        return;
    }
    let per_iter_ns = bencher.median.as_nanos() as f64 / bencher.iters_per_batch as f64;
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!("  ({:.1} Melem/s)", n as f64 / per_iter_ns * 1e3),
        Throughput::Bytes(n) => format!(
            "  ({:.1} MiB/s)",
            n as f64 / per_iter_ns * 1e9 / (1 << 20) as f64
        ),
    });
    println!(
        "{id:<50} {:>12}{}",
        format_ns(per_iter_ns),
        rate.unwrap_or_default()
    );
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

//! Offline stand-in for `proptest`.
//!
//! Supports the pattern the HiSVSIM integration tests use:
//!
//! ```text
//! proptest! {
//!     #![proptest_config(ProptestConfig::with_cases(24))]
//!     #[test]
//!     fn property((a, b) in my_strategy(), x in 2usize..8) { ... }
//! }
//! ```
//!
//! Each property becomes a plain `#[test]` that runs `cases` deterministic
//! iterations, drawing every bound variable from its [`strategy::Strategy`].
//! There is no shrinking: a failing case panics with the standard assert
//! message (the deterministic seeding makes failures reproducible).

pub mod strategy;

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 32 }
    }
}

/// Deterministic per-property, per-case RNG.
pub fn case_rng(property_name: &str, case: u64) -> rand::rngs::StdRng {
    use rand::SeedableRng;
    // FNV-1a over the property name, mixed with the case index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in property_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    rand::rngs::StdRng::seed_from_u64(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// A strategy producing values of any [`Arbitrary`] type.
pub fn any<T: Arbitrary>() -> strategy::AnyStrategy<T> {
    strategy::AnyStrategy(std::marker::PhantomData)
}

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut rand::rngs::StdRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut rand::rngs::StdRng) -> Self {
                use rand::Rng;
                rng.gen::<u64>() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut rand::rngs::StdRng) -> Self {
        use rand::Rng;
        rng.gen::<u64>() & 1 == 1
    }
}

/// The commonly imported surface.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, ProptestConfig};
}

/// Assert inside a property (maps to `assert!`; no shrinking in the stub).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Define properties; each becomes a `#[test]` running `cases` iterations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $(#[test] fn $name:ident($($pat:pat_param in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for __case in 0..config.cases as u64 {
                    let mut __rng = $crate::case_rng(stringify!($name), __case);
                    $(
                        let $pat = $crate::strategy::Strategy::generate(&$strat, &mut __rng);
                    )*
                    $body
                }
            }
        )*
    };
}

//! The value-generation strategies of the proptest stub.

use rand::rngs::StdRng;
use rand::Rng;

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform every generated value with `map` (no shrinking in the
    /// stub, so this is a plain post-generation map).
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, map }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        (self.map)(self.source.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

/// Strategy of [`crate::any`]: the whole domain of an [`crate::Arbitrary`]
/// type.
pub struct AnyStrategy<T>(pub(crate) std::marker::PhantomData<T>);

impl<T: crate::Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// A fixed value as a strategy.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
            self.3.generate(rng),
        )
    }
}

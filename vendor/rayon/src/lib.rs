//! Offline stand-in for `rayon`'s data-parallel API subset.
//!
//! Real parallelism, simple machinery: each parallel call splits its input
//! into one contiguous segment per worker and runs the segments on scoped OS
//! threads (`std::thread::scope`). There is no work stealing; the callers in
//! this workspace all have statically balanced loops (block sweeps over the
//! amplitude array), which contiguous splitting handles well.
//!
//! Implemented surface (what the HiSVSIM crates use):
//! `slice.par_iter_mut()` (+ `.enumerate()`, `.zip()`),
//! `slice.par_chunks_mut(n)`, `range.into_par_iter()`, `.for_each(...)`,
//! [`ThreadPoolBuilder`] / [`ThreadPool::install`] and
//! [`current_num_threads`].

use std::cell::Cell;

/// Everything a caller needs in scope for the `par_*` methods.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSlice, ParallelSliceMut};
}

thread_local! {
    /// Thread-count override installed by [`ThreadPool::install`]; 0 = none.
    static POOL_THREADS: Cell<usize> = const { Cell::new(0) };
}

/// Number of worker threads parallel calls on this thread will use.
pub fn current_num_threads() -> usize {
    let installed = POOL_THREADS.with(|t| t.get());
    if installed > 0 {
        installed
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(16)
    }
}

/// Split `len` work items into at most `current_num_threads()` contiguous
/// segments of at least `min_per_worker` items each.
fn segment_count(len: usize, min_per_worker: usize) -> usize {
    if len == 0 {
        return 1;
    }
    current_num_threads()
        .min(len.div_ceil(min_per_worker.max(1)))
        .max(1)
}

// ---------------------------------------------------------------------------
// mutable slice iterators
// ---------------------------------------------------------------------------

/// Parallel extensions on `&mut [T]`.
pub trait ParallelSliceMut<T: Send> {
    /// A parallel iterator over mutable references.
    fn par_iter_mut(&mut self) -> ParIterMut<'_, T>;
    /// A parallel iterator over mutable chunks of `chunk_size` elements
    /// (the final chunk may be shorter).
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParIterMut<'_, T> {
        ParIterMut { slice: self }
    }
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParChunksMut {
            slice: self,
            chunk_size,
        }
    }
}

/// Parallel extensions on `&[T]`.
pub trait ParallelSlice<T: Sync> {
    /// A parallel iterator over shared references.
    fn par_iter(&self) -> ParIter<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<'_, T> {
        ParIter { slice: self }
    }
}

/// Parallel iterator over `&mut T`.
pub struct ParIterMut<'a, T: Send> {
    slice: &'a mut [T],
}

impl<'a, T: Send> ParIterMut<'a, T> {
    /// Pair each element with its index.
    pub fn enumerate(self) -> ParEnumerateMut<'a, T> {
        ParEnumerateMut { slice: self.slice }
    }

    /// Lock-step pairing with another mutable slice iterator of equal length.
    pub fn zip<U: Send>(self, other: ParIterMut<'a, U>) -> ParZipMut<'a, T, U> {
        assert_eq!(
            self.slice.len(),
            other.slice.len(),
            "zip of unequal lengths"
        );
        ParZipMut {
            a: self.slice,
            b: other.slice,
        }
    }

    /// Apply `f` to every element in parallel.
    pub fn for_each<F: Fn(&mut T) + Sync>(self, f: F) {
        let workers = segment_count(self.slice.len(), 1024);
        if workers <= 1 {
            self.slice.iter_mut().for_each(f);
            return;
        }
        let per = self.slice.len().div_ceil(workers);
        let f = &f;
        std::thread::scope(|scope| {
            for segment in self.slice.chunks_mut(per) {
                scope.spawn(move || segment.iter_mut().for_each(f));
            }
        });
    }
}

/// Parallel iterator over `(index, &mut T)`.
pub struct ParEnumerateMut<'a, T: Send> {
    slice: &'a mut [T],
}

impl<T: Send> ParEnumerateMut<'_, T> {
    /// Apply `f` to every `(index, element)` pair in parallel.
    pub fn for_each<F: Fn((usize, &mut T)) + Sync>(self, f: F) {
        let workers = segment_count(self.slice.len(), 1024);
        if workers <= 1 {
            self.slice.iter_mut().enumerate().for_each(f);
            return;
        }
        let per = self.slice.len().div_ceil(workers);
        let f = &f;
        std::thread::scope(|scope| {
            for (seg_index, segment) in self.slice.chunks_mut(per).enumerate() {
                let base = seg_index * per;
                scope.spawn(move || {
                    for (offset, item) in segment.iter_mut().enumerate() {
                        f((base + offset, item));
                    }
                });
            }
        });
    }
}

/// Parallel iterator over `(&mut T, &mut U)`.
pub struct ParZipMut<'a, T: Send, U: Send> {
    a: &'a mut [T],
    b: &'a mut [U],
}

impl<T: Send, U: Send> ParZipMut<'_, T, U> {
    /// Apply `f` to every aligned pair in parallel.
    pub fn for_each<F: Fn((&mut T, &mut U)) + Sync>(self, f: F) {
        let workers = segment_count(self.a.len(), 1024);
        if workers <= 1 {
            self.a.iter_mut().zip(self.b.iter_mut()).for_each(f);
            return;
        }
        let per = self.a.len().div_ceil(workers);
        let f = &f;
        std::thread::scope(|scope| {
            for (sa, sb) in self.a.chunks_mut(per).zip(self.b.chunks_mut(per)) {
                scope.spawn(move || sa.iter_mut().zip(sb.iter_mut()).for_each(f));
            }
        });
    }
}

/// Parallel iterator over mutable chunks.
pub struct ParChunksMut<'a, T: Send> {
    slice: &'a mut [T],
    chunk_size: usize,
}

impl<T: Send> ParChunksMut<'_, T> {
    /// Apply `f` to every chunk in parallel. Worker segment boundaries are
    /// aligned to chunk boundaries so no chunk is split.
    pub fn for_each<F: Fn(&mut [T]) + Sync>(self, f: F) {
        let num_chunks = self.slice.len().div_ceil(self.chunk_size);
        let workers = segment_count(num_chunks, 1);
        if workers <= 1 || self.slice.len() < 2048 {
            self.slice.chunks_mut(self.chunk_size).for_each(f);
            return;
        }
        let chunks_per_worker = num_chunks.div_ceil(workers);
        let per = chunks_per_worker * self.chunk_size;
        let chunk_size = self.chunk_size;
        let f = &f;
        std::thread::scope(|scope| {
            for segment in self.slice.chunks_mut(per) {
                scope.spawn(move || segment.chunks_mut(chunk_size).for_each(f));
            }
        });
    }
}

/// Parallel iterator over `&T`.
pub struct ParIter<'a, T: Sync> {
    slice: &'a [T],
}

impl<T: Sync> ParIter<'_, T> {
    /// Apply `f` to every element in parallel.
    pub fn for_each<F: Fn(&T) + Sync>(self, f: F) {
        let workers = segment_count(self.slice.len(), 1024);
        if workers <= 1 {
            self.slice.iter().for_each(f);
            return;
        }
        let per = self.slice.len().div_ceil(workers);
        let f = &f;
        std::thread::scope(|scope| {
            for segment in self.slice.chunks(per) {
                scope.spawn(move || segment.iter().for_each(f));
            }
        });
    }

    /// Map every element and sum the results.
    pub fn map_sum<O, F>(self, f: F) -> O
    where
        O: Send + std::iter::Sum<O>,
        F: Fn(&T) -> O + Sync,
    {
        let workers = segment_count(self.slice.len(), 1024);
        if workers <= 1 {
            return self.slice.iter().map(f).sum();
        }
        let per = self.slice.len().div_ceil(workers);
        let f = &f;
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .slice
                .chunks(per)
                .map(|segment| scope.spawn(move || segment.iter().map(f).sum::<O>()))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("rayon stub worker panicked"))
                .sum()
        })
    }
}

// ---------------------------------------------------------------------------
// ranges
// ---------------------------------------------------------------------------

/// Conversion into a parallel iterator (ranges of `usize` here).
pub trait IntoParallelIterator {
    /// The parallel iterator type.
    type Iter;
    /// Convert into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Iter = ParRange;
    fn into_par_iter(self) -> ParRange {
        ParRange { range: self }
    }
}

/// Parallel iterator over a `usize` range.
pub struct ParRange {
    range: std::ops::Range<usize>,
}

impl ParRange {
    /// Apply `f` to every index in parallel.
    pub fn for_each<F: Fn(usize) + Sync>(self, f: F) {
        let len = self.range.end.saturating_sub(self.range.start);
        let workers = segment_count(len, 1);
        if workers <= 1 || len < 2 {
            self.range.for_each(f);
            return;
        }
        let per = len.div_ceil(workers);
        let f = &f;
        std::thread::scope(|scope| {
            let mut lo = self.range.start;
            while lo < self.range.end {
                let hi = (lo + per).min(self.range.end);
                scope.spawn(move || (lo..hi).for_each(f));
                lo = hi;
            }
        });
    }
}

// ---------------------------------------------------------------------------
// thread pool facade
// ---------------------------------------------------------------------------

/// Error building a thread pool (the stub never fails).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// A builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the worker-thread count (0 = automatic).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Build the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// A "pool": in the stub, a thread-count override scope. Parallel calls made
/// inside [`ThreadPool::install`] split their work across this many workers.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Run `f` with this pool's thread count installed.
    pub fn install<R, F: FnOnce() -> R>(&self, f: F) -> R {
        let previous = POOL_THREADS.with(|t| t.replace(self.num_threads));
        let result = f();
        POOL_THREADS.with(|t| t.set(previous));
        result
    }

    /// The configured thread count (0 = automatic).
    pub fn current_num_threads(&self) -> usize {
        if self.num_threads > 0 {
            self.num_threads
        } else {
            current_num_threads()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn par_iter_mut_touches_every_element() {
        let mut v = vec![0usize; 100_000];
        v.par_iter_mut().for_each(|x| *x += 1);
        assert!(v.iter().all(|&x| x == 1));
    }

    #[test]
    fn enumerate_passes_correct_indices() {
        let mut v = vec![0usize; 50_000];
        v.par_iter_mut().enumerate().for_each(|(i, x)| *x = i);
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(i, x);
        }
    }

    #[test]
    fn zip_pairs_align() {
        let mut a = vec![1u64; 40_000];
        let mut b: Vec<u64> = (0..40_000).collect();
        a.par_iter_mut()
            .zip(b.par_iter_mut())
            .for_each(|(x, y)| *x += *y);
        for (i, &x) in a.iter().enumerate() {
            assert_eq!(x, 1 + i as u64);
        }
    }

    #[test]
    fn chunks_are_never_split() {
        let mut v = vec![0u8; 10_000];
        v.par_chunks_mut(64).for_each(|chunk| {
            assert!(chunk.len() == 64 || chunk.len() == 10_000 % 64);
            let len = chunk.len() as u8;
            chunk.iter_mut().for_each(|x| *x = len);
        });
        assert!(v.iter().all(|&x| x == 64 || x == (10_000 % 64) as u8));
    }

    #[test]
    fn range_for_each_covers_all_indices() {
        let hits: Vec<std::sync::atomic::AtomicU32> = (0..10_000)
            .map(|_| std::sync::atomic::AtomicU32::new(0))
            .collect();
        (0..10_000usize).into_par_iter().for_each(|i| {
            hits[i].fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        });
        assert!(hits
            .iter()
            .all(|h| h.load(std::sync::atomic::Ordering::Relaxed) == 1));
    }

    #[test]
    fn install_overrides_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        pool.install(|| assert_eq!(current_num_threads(), 3));
        assert_ne!(current_num_threads(), 0);
    }
}

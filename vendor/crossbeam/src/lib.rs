//! Offline stand-in for the `crossbeam` crate: an unbounded MPMC channel
//! built on `Mutex<VecDeque>` + `Condvar`.
//!
//! Not lock-free like the original, but fully correct: cloneable senders and
//! receivers, blocking `recv`, and disconnect detection when all senders are
//! dropped. The virtual-MPI communicator exchanges few, large messages, so
//! channel overhead is irrelevant next to payload movement.

/// Channel types (the `crossbeam::channel` module subset).
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<Inner<T>>,
        ready: Condvar,
    }

    struct Inner<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Sending half of an unbounded channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error: the channel is disconnected (no receivers remain).
    #[derive(Clone, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // Like the original, printable regardless of whether `T: Debug`.
    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T> std::error::Error for SendError<T> {}

    /// Error: the channel is empty and all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("receiving on an empty, disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(Inner {
                items: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueue a value; fails only when every receiver was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut inner = self.shared.queue.lock().expect("channel poisoned");
            if inner.receivers == 0 {
                return Err(SendError(value));
            }
            inner.items.push_back(value);
            drop(inner);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().expect("channel poisoned").senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.queue.lock().expect("channel poisoned");
            inner.senders -= 1;
            if inner.senders == 0 {
                drop(inner);
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocking receive; fails when the queue is empty and every sender
        /// was dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.shared.queue.lock().expect("channel poisoned");
            loop {
                if let Some(item) = inner.items.pop_front() {
                    return Ok(item);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self.shared.ready.wait(inner).expect("channel poisoned");
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, RecvError> {
            let mut inner = self.shared.queue.lock().expect("channel poisoned");
            inner.items.pop_front().ok_or(RecvError)
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared
                .queue
                .lock()
                .expect("channel poisoned")
                .receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared
                .queue
                .lock()
                .expect("channel poisoned")
                .receivers -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvError};
    use std::thread;

    #[test]
    fn roundtrip_across_threads() {
        let (tx, rx) = unbounded::<u32>();
        let tx2 = tx.clone();
        let h = thread::spawn(move || {
            for i in 0..100 {
                tx2.send(i).unwrap();
            }
        });
        let mut got: Vec<u32> = (0..100).map(|_| rx.recv().unwrap()).collect();
        got.sort_unstable();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
        h.join().unwrap();
    }

    #[test]
    fn recv_errors_when_all_senders_dropped() {
        let (tx, rx) = unbounded::<u8>();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_errors_when_receiver_dropped() {
        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert!(tx.send(9).is_err());
    }
}

//! Offline stand-in for `num_cpus`.

/// Logical CPU count visible to this process.
pub fn get() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Physical core count — approximated by the logical count here.
pub fn get_physical() -> usize {
    get()
}

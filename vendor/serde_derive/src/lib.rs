//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the vendored serde
//! subset.
//!
//! The build environment has no crates.io access, so `syn`/`quote` are not
//! available; this macro parses the item declaration directly from the
//! `proc_macro` token stream. It supports the shapes the HiSVSIM workspace
//! actually derives on:
//!
//! * structs with named fields,
//! * tuple structs (including newtypes),
//! * enums whose variants are units or carry unnamed (tuple) payloads.
//!
//! Generics, struct variants and `#[serde(...)]` attributes are not
//! supported and produce a compile-time panic with a clear message.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize` (value-tree based; see the `serde` stub crate).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    generate_serialize(&item)
        .parse()
        .expect("generated Serialize impl must parse")
}

/// Derive `serde::Deserialize` (value-tree based; see the `serde` stub crate).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    generate_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl must parse")
}

// ---- item model -----------------------------------------------------------

enum Body {
    /// Struct with named fields.
    NamedStruct(Vec<String>),
    /// Tuple struct with `n` fields.
    TupleStruct(usize),
    /// Enum: variant name plus number of unnamed payload fields (0 = unit).
    Enum(Vec<(String, usize)>),
}

struct Item {
    name: String,
    body: Body,
}

// ---- parsing --------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0usize;
    skip_attrs_and_vis(&tokens, &mut i);

    let keyword = expect_ident(&tokens, &mut i);
    let name = expect_ident(&tokens, &mut i);
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde stub derive: generic type `{name}` is not supported");
    }

    let body = match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::TupleStruct(count_top_level_fields(g.stream()))
            }
            other => panic!("serde stub derive: unsupported struct body for `{name}`: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde stub derive: malformed enum `{name}`: {other:?}"),
        },
        other => panic!("serde stub derive: unsupported item kind `{other}`"),
    };

    Item { name, body }
}

/// Advance past outer attributes (`#[...]`) and a visibility qualifier.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // '#' and the bracketed group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1; // pub(crate) etc.
                }
            }
            _ => return,
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize) -> String {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("serde stub derive: expected identifier, got {other:?}"),
    }
}

/// Parse `name: Type, ...` inside a brace group, returning the field names.
/// Commas inside angle brackets (generic arguments) are skipped; parenthesised
/// and bracketed sub-streams arrive as atomic groups and need no handling.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut i);
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde stub derive: expected `:` after field `{name}`, got {other:?}"),
        }
        skip_type_until_comma(&tokens, &mut i);
        fields.push(name);
    }
    fields
}

/// Advance past a type, stopping after the comma that terminates it (or at
/// end of stream). Tracks `<`/`>` depth so commas inside generic arguments
/// are not mistaken for field separators.
fn skip_type_until_comma(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0isize;
    while let Some(tok) = tokens.get(*i) {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    *i += 1;
                    return;
                }
                _ => {}
            }
        }
        *i += 1;
    }
}

/// Count top-level comma-separated entries of a tuple-struct body.
fn count_top_level_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0usize;
    let mut i = 0usize;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_type_until_comma(&tokens, &mut i);
        count += 1;
    }
    count
}

/// Parse enum variants: `Name`, `Name(T, ...)`. Explicit discriminants and
/// struct variants are rejected.
fn parse_variants(stream: TokenStream) -> Vec<(String, usize)> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut i);
        let arity = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_top_level_fields(g.stream());
                i += 1;
                n
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                panic!("serde stub derive: struct variant `{name}` is not supported")
            }
            _ => 0,
        };
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                panic!("serde stub derive: explicit discriminant on `{name}` is not supported")
            }
            None => {}
            other => {
                panic!("serde stub derive: unexpected token after variant `{name}`: {other:?}")
            }
        }
        variants.push((name, arity));
    }
    variants
}

// ---- code generation ------------------------------------------------------

fn generate_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::NamedStruct(fields) => {
            let mut pushes = String::new();
            for f in fields {
                pushes.push_str(&format!(
                    "__fields.push((::std::string::String::from(\"{f}\"), \
                     ::serde::Serialize::to_value(&self.{f})));\n"
                ));
            }
            format!(
                "let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                 ::std::vec::Vec::new();\n{pushes}::serde::Value::Object(__fields)"
            )
        }
        Body::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Body::TupleStruct(n) => {
            let mut pushes = String::new();
            for idx in 0..*n {
                pushes.push_str(&format!(
                    "__items.push(::serde::Serialize::to_value(&self.{idx}));\n"
                ));
            }
            format!(
                "let mut __items: ::std::vec::Vec<::serde::Value> = ::std::vec::Vec::new();\n\
                 {pushes}::serde::Value::Array(__items)"
            )
        }
        Body::Enum(variants) => {
            let mut arms = String::new();
            for (v, arity) in variants {
                match arity {
                    0 => arms.push_str(&format!(
                        "{name}::{v} => ::serde::Value::Str(::std::string::String::from(\"{v}\")),\n"
                    )),
                    1 => arms.push_str(&format!(
                        "{name}::{v}(__f0) => {{\n\
                         let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                         ::std::vec::Vec::new();\n\
                         __fields.push((::std::string::String::from(\"{v}\"), \
                         ::serde::Serialize::to_value(__f0)));\n\
                         ::serde::Value::Object(__fields)\n}}\n"
                    )),
                    n => {
                        let binders: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        let mut pushes = String::new();
                        for b in &binders {
                            pushes.push_str(&format!(
                                "__items.push(::serde::Serialize::to_value({b}));\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{v}({binds}) => {{\n\
                             let mut __items: ::std::vec::Vec<::serde::Value> = \
                             ::std::vec::Vec::new();\n{pushes}\
                             let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                             ::std::vec::Vec::new();\n\
                             __fields.push((::std::string::String::from(\"{v}\"), \
                             ::serde::Value::Array(__items)));\n\
                             ::serde::Value::Object(__fields)\n}}\n",
                            binds = binders.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}"
    )
}

fn generate_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::NamedStruct(fields) => {
            let mut inits = String::new();
            for f in fields {
                inits.push_str(&format!(
                    "{f}: ::serde::Deserialize::from_value(__v.get_field(\"{f}\")\
                     .ok_or_else(|| ::serde::Error::missing_field(\"{f}\"))?)?,\n"
                ));
            }
            format!("::std::result::Result::Ok({name} {{\n{inits}}})")
        }
        Body::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Body::TupleStruct(n) => {
            let mut args = String::new();
            for idx in 0..*n {
                args.push_str(&format!(
                    "::serde::Deserialize::from_value(&__items[{idx}])?,\n"
                ));
            }
            format!(
                "let __items = __v.as_array()\
                 .ok_or_else(|| ::serde::Error::expected(\"an array\", __v))?;\n\
                 if __items.len() != {n} {{\n\
                 return ::std::result::Result::Err(::serde::Error::custom(\
                 format!(\"expected {n} elements for {name}, got {{}}\", __items.len())));\n}}\n\
                 ::std::result::Result::Ok({name}({args}))"
            )
        }
        Body::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut payload_arms = String::new();
            for (v, arity) in variants {
                match arity {
                    0 => unit_arms.push_str(&format!(
                        "\"{v}\" => return ::std::result::Result::Ok({name}::{v}),\n"
                    )),
                    1 => payload_arms.push_str(&format!(
                        "\"{v}\" => return ::std::result::Result::Ok({name}::{v}(\
                         ::serde::Deserialize::from_value(__payload)?)),\n"
                    )),
                    n => {
                        let mut args = String::new();
                        for idx in 0..*n {
                            args.push_str(&format!(
                                "::serde::Deserialize::from_value(&__items[{idx}])?,\n"
                            ));
                        }
                        payload_arms.push_str(&format!(
                            "\"{v}\" => {{\n\
                             let __items = __payload.as_array()\
                             .ok_or_else(|| ::serde::Error::expected(\"an array\", __payload))?;\n\
                             if __items.len() != {n} {{\n\
                             return ::std::result::Result::Err(::serde::Error::custom(\
                             format!(\"expected {n} elements for {name}::{v}, got {{}}\", \
                             __items.len())));\n}}\n\
                             return ::std::result::Result::Ok({name}::{v}({args}));\n}}\n"
                        ));
                    }
                }
            }
            format!(
                "if let ::serde::Value::Str(__s) = __v {{\n\
                 match __s.as_str() {{\n{unit_arms}_ => {{}}\n}}\n}}\n\
                 if let ::serde::Value::Object(__obj) = __v {{\n\
                 if __obj.len() == 1 {{\n\
                 let (__variant, __payload) = &__obj[0];\n\
                 let _ = __payload;\n\
                 match __variant.as_str() {{\n{payload_arms}_ => {{}}\n}}\n}}\n}}\n\
                 ::std::result::Result::Err(::serde::Error::custom(\
                 format!(\"no variant of {name} matches {{:?}}\", __v)))"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         {body}\n}}\n}}"
    )
}

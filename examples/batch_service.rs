//! `batch_service` — the runtime serving a mixed workload.
//!
//! Two demonstrations:
//!
//! 1. **Mixed batch.** QFT, GHZ and random circuits at several widths, some
//!    repeated, through the concurrent scheduler: per-job engine choice,
//!    wall time and plan-cache outcome, plus the batch summary.
//! 2. **Plan-cache ablation.** A templated workload (8 identical 20-qubit
//!    QFT jobs) run with the cache enabled vs disabled, reporting the
//!    speedup; every runtime result is cross-checked against the flat
//!    reference simulator.
//!
//! Run with `cargo run --release --example batch_service`.
//! `HISVSIM_BATCH_QUBITS` overrides the ablation width (default 20).

use hisvsim_circuit::generators;
use hisvsim_runtime::prelude::*;
use hisvsim_statevec::run_circuit;
use std::time::Instant;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    mixed_batch();
    cache_ablation();
}

/// Part 1: a heterogeneous batch with per-job reporting.
fn mixed_batch() {
    println!("== mixed workload through the scheduler ==");
    let scheduler =
        Scheduler::new(SchedulerConfig::default().with_selector(EngineSelector::scaled(6, 10)));

    let mut jobs = Vec::new();
    for width in [5usize, 8, 11] {
        jobs.push(SimJob::new(generators::qft(width)));
        jobs.push(SimJob::new(generators::cat_state(width)).with_shots(256));
    }
    // Templated submissions: the same 11-qubit QFT structure again (cache
    // hits), and random circuits (distinct structures, misses).
    jobs.push(SimJob::new(generators::qft(11)));
    jobs.push(SimJob::new(generators::qft(11)));
    for seed in 0..3 {
        jobs.push(SimJob::new(generators::random_circuit(9, 60, seed)));
    }

    let batch = scheduler.run_batch(jobs);
    println!(
        "{:<12} {:>7} {:>11} {:>11} {:>7}",
        "circuit", "qubits", "engine", "wall", "plan"
    );
    for r in &batch.results {
        println!(
            "{:<12} {:>7} {:>11} {:>9.1} ms {:>7}",
            r.circuit_name,
            r.report.num_qubits,
            r.engine.name(),
            r.wall_time_s * 1e3,
            match (r.engine, r.plan_cache_hit) {
                (EngineKind::Baseline, _) => "-", // baseline plans nothing
                (_, true) => "hit",
                (_, false) => "miss",
            }
        );
    }
    println!("{}", batch.stats);
}

/// Part 2: the cache ablation on a templated 20-qubit QFT workload.
fn cache_ablation() {
    let qubits = env_usize("HISVSIM_BATCH_QUBITS", 20);
    let copies = 8usize;
    println!("== plan-cache ablation: {copies} identical {qubits}-qubit QFT jobs ==");

    let circuit = generators::qft(qubits);
    let make_jobs =
        || -> Vec<SimJob> { (0..copies).map(|_| SimJob::new(circuit.clone())).collect() };
    // Thorough planning is the production configuration for cached
    // workloads: the portfolio cost is paid once, then amortised.
    let config = |cached: bool| {
        // Cache budget 12 qubits, node budget ≥ the circuit: the selector
        // routes these jobs to the hierarchical engine, whose plans get the
        // full portfolio + locality-scoring treatment.
        let base = SchedulerConfig::default()
            .with_selector(EngineSelector::scaled(12, qubits.max(12)))
            .with_effort(PlanEffort::Thorough);
        if cached {
            base
        } else {
            base.without_cache()
        }
    };

    let start = Instant::now();
    let warm = Scheduler::new(config(true));
    let cached_batch = warm.run_batch(make_jobs());
    let cached_s = start.elapsed().as_secs_f64();

    let start = Instant::now();
    let cold = Scheduler::new(config(false));
    let uncached_batch = cold.run_batch(make_jobs());
    let uncached_s = start.elapsed().as_secs_f64();

    // Correctness first: every runtime result must match the flat reference.
    let reference = run_circuit(&circuit);
    for batch in [&cached_batch, &uncached_batch] {
        for r in &batch.results {
            let state = r.state.as_ref().expect("states retained");
            assert!(
                state.approx_eq(&reference, 1e-9),
                "job {} ({}) diverged from the flat reference (max |Δ| = {:.3e})",
                r.job_index,
                r.engine,
                state.max_abs_diff(&reference)
            );
        }
    }
    println!(
        "all {} runtime results match the flat reference within 1e-9",
        2 * copies
    );

    println!(
        "with cache:    {:.3} s  ({} plan misses, {} hits, {:.3} s planning)",
        cached_s,
        cached_batch.stats.cache.misses,
        cached_batch.stats.cache.hits,
        cached_batch.stats.plan_time_s
    );
    println!(
        "without cache: {:.3} s  ({:.3} s planning)",
        uncached_s, uncached_batch.stats.plan_time_s
    );
    println!(
        "cache hit rate: {:.0}%  |  batch speedup from plan caching: {:.2}x",
        100.0 * cached_batch.stats.cache_hit_rate(),
        uncached_s / cached_s
    );
}

//! Shared nothing: the examples are standalone binaries; this library target
//! exists only so `cargo doc` has a crate root to attach the package-level
//! documentation to.
//!
//! See the individual binaries:
//!
//! * `quickstart` — flat vs hierarchical vs distributed on one circuit,
//! * `partition_explorer` — Nat/DFS/dagP/optimal part counts across the suite,
//! * `distributed_scaling` — strong scaling against the IQS-style baseline,
//! * `qasm_runner` — run an OpenQASM 2.0 file end to end,
//! * `batch_service` — a mixed workload through the concurrent runtime
//!   (engine auto-selection, plan-cache hit rates, cache ablation).

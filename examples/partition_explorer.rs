//! Partition explorer: compare the three partitioning strategies (and the
//! exact optimum on small circuits) across the benchmark suite.
//!
//! ```text
//! cargo run --release -p hisvsim-examples --bin partition_explorer [qubits] [limit]
//! ```
//!
//! For each benchmark family this prints the number of parts, the
//! quotient-graph edge cut, and the partitioning time of `Nat`, `DFS` and
//! `dagP` — the quantities Sec. IV of the paper discusses — plus the exact
//! minimum part count when the circuit is small enough for the
//! branch-and-bound reference.

use hisvsim_circuit::generators;
use hisvsim_dag::{CircuitDag, PartGraph};
use hisvsim_partition::{OptimalPartitioner, Strategy};
use std::time::Instant;

fn main() {
    let qubits: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(12);
    let limit: usize = std::env::args()
        .nth(2)
        .and_then(|a| a.parse().ok())
        .unwrap_or((qubits / 2).max(3));

    println!("benchmark suite at {qubits} qubits, working-set limit Lm = {limit}\n");
    println!(
        "{:<10} {:>7} | {:>10} {:>10} {:>10} | {:>9}",
        "circuit", "gates", "Nat", "DFS", "dagP", "optimal"
    );
    println!(
        "{:<10} {:>7} | {:>10} {:>10} {:>10} | {:>9}",
        "", "", "parts/cut", "parts/cut", "parts/cut", "parts"
    );

    for family in generators::FAMILY_NAMES {
        let circuit = generators::by_name(family, qubits);
        let dag = CircuitDag::from_circuit(&circuit);

        let mut cells = Vec::new();
        let mut best_heuristic = usize::MAX;
        let mut partition_micros = Vec::new();
        for strategy in Strategy::ALL {
            let start = Instant::now();
            match strategy.partition(&dag, limit) {
                Ok(p) => {
                    partition_micros.push(start.elapsed().as_micros());
                    let cut = PartGraph::build(&dag, &p).edge_cut();
                    best_heuristic = best_heuristic.min(p.num_parts());
                    cells.push(format!("{}/{}", p.num_parts(), cut));
                }
                Err(_) => {
                    partition_micros.push(0);
                    cells.push("-".to_string());
                }
            }
        }

        // Exact reference only when the instance is small enough to finish
        // quickly (the paper's ILP reference takes minutes even on small
        // circuits; the branch and bound behaves similarly).
        let optimal = if circuit.num_gates() <= 120 && best_heuristic != usize::MAX {
            match OptimalPartitioner::default().partition(&dag, limit, Some(best_heuristic)) {
                Ok(r) if r.proven_optimal => format!("{}", r.partition.num_parts()),
                Ok(r) => format!("≤{}", r.partition.num_parts()),
                Err(_) => "-".to_string(),
            }
        } else {
            "(skipped)".to_string()
        };

        println!(
            "{:<10} {:>7} | {:>10} {:>10} {:>10} | {:>9}   ({} / {} / {} µs)",
            family,
            circuit.num_gates(),
            cells[0],
            cells[1],
            cells[2],
            optimal,
            partition_micros[0],
            partition_micros[1],
            partition_micros[2],
        );
    }

    println!();
    println!("Lower part counts mean fewer outer-state sweeps (single node) and fewer");
    println!("global redistributions (multi node); dagP's global view of the DAG is what");
    println!("the paper credits for its advantage over the Nat and DFS cutoffs.");
}

//! Quickstart: build a circuit, partition it, and simulate it three ways.
//!
//! ```text
//! cargo run --release -p hisvsim-examples --bin quickstart [qubits]
//! ```
//!
//! Runs a QFT circuit through (1) the flat reference simulator, (2) the
//! single-node hierarchical engine with each partitioning strategy, and
//! (3) the distributed engine on four virtual ranks, prints the
//! timing/communication report of each, and checks that all produce the same
//! quantum state.

use hisvsim_circuit::generators;
use hisvsim_core::{DistConfig, DistributedSimulator, HierConfig, HierarchicalSimulator};
use hisvsim_dag::CircuitDag;
use hisvsim_partition::Strategy;
use hisvsim_statevec::{measure, run_circuit};
use std::time::Instant;

fn main() {
    let qubits: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(16);
    let circuit = generators::qft(qubits);
    println!(
        "circuit: {} — {} qubits, {} gates, depth {}",
        circuit.name,
        circuit.num_qubits(),
        circuit.num_gates(),
        circuit.depth()
    );

    // 1. Flat reference simulation.
    let start = Instant::now();
    let reference = run_circuit(&circuit);
    println!(
        "flat reference      : {:8.3} s",
        start.elapsed().as_secs_f64()
    );

    // 2. Single-node hierarchical simulation (Gather–Execute–Scatter).
    let limit = (qubits / 2).max(2);
    let dag = CircuitDag::from_circuit(&circuit);
    for strategy in Strategy::ALL {
        let partition = strategy
            .partition(&dag, limit)
            .expect("partitioning failed");
        let sim = HierarchicalSimulator::new(HierConfig::new(limit).with_strategy(strategy));
        let run = sim.run_with_partition(&circuit, &dag, partition);
        let ok = run.state.approx_eq(&reference, 1e-9);
        println!(
            "hierarchical {:>5}  : {:8.3} s   parts={:<3} correct={}",
            strategy.name(),
            run.report.total_time_s,
            run.report.num_parts,
            ok
        );
        assert!(ok, "hierarchical result diverged from the reference");
    }

    // 3. Distributed simulation on 4 virtual ranks.
    let run = DistributedSimulator::new(DistConfig::new(4).with_strategy(Strategy::DagP))
        .run(&circuit)
        .expect("distributed run failed");
    let ok = run.state.approx_eq(&reference, 1e-9);
    println!(
        "distributed dagP    : {:8.3} s   ranks={} parts={} exchanges={} comm(model)={:.6} s correct={}",
        run.report.total_time_s,
        run.report.num_ranks,
        run.report.num_parts,
        run.report.num_exchanges,
        run.report.avg_comm_time_s,
        ok
    );
    assert!(ok, "distributed result diverged from the reference");

    // A quick physics sanity check: QFT of |0…0⟩ is the uniform superposition.
    let p0 = measure::probabilities(&run.state)[0];
    println!(
        "P(|0…0⟩) = {:.3e} (uniform superposition expects {:.3e})",
        p0,
        1.0 / (1u64 << qubits) as f64
    );
}

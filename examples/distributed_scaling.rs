//! Distributed strong-scaling demo: one circuit, growing virtual-rank counts,
//! HiSVSIM (three strategies) against the IQS-style baseline.
//!
//! ```text
//! cargo run --release -p hisvsim-examples --bin distributed_scaling [family] [qubits]
//! ```
//!
//! This is a miniature of the paper's Figs. 5–7: for every rank count it
//! prints the end-to-end modelled time, the computation time, the modelled
//! communication time and the improvement factor over the baseline.

use hisvsim_circuit::generators;
use hisvsim_core::{BaselineConfig, DistConfig, DistributedSimulator, IqsBaseline};
use hisvsim_partition::Strategy;
use hisvsim_statevec::run_circuit;

fn main() {
    let family = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "ising".to_string());
    let qubits: usize = std::env::args()
        .nth(2)
        .and_then(|a| a.parse().ok())
        .unwrap_or(16);
    let circuit = generators::by_name(&family, qubits);
    let reference = run_circuit(&circuit);
    println!(
        "strong scaling of {} ({} qubits, {} gates)\n",
        circuit.name,
        circuit.num_qubits(),
        circuit.num_gates()
    );
    println!(
        "{:>6} {:>14} | {:>10} {:>10} {:>10} {:>12} | {:>8}",
        "ranks", "engine", "total (s)", "compute(s)", "comm (s)", "bytes moved", "speedup"
    );

    // Virtual ranks are threads, so oversubscription is harmless; floor the
    // sweep at 8 ranks so small hosts still produce a table.
    let max_ranks = num_cpus::get().next_power_of_two().clamp(8, 16);
    let mut ranks = 2usize;
    while ranks <= max_ranks {
        let baseline = IqsBaseline::new(BaselineConfig::new(ranks)).run(&circuit);
        assert!(baseline.state.approx_eq(&reference, 1e-9));
        let baseline_total = baseline.report.modeled_total_time_s();
        println!(
            "{:>6} {:>14} | {:>10.4} {:>10.4} {:>10.6} {:>12} | {:>8}",
            ranks,
            "IQS-baseline",
            baseline_total,
            baseline.report.compute_time_s,
            baseline.report.avg_comm_time_s,
            baseline.report.comm.bytes_sent,
            "1.00x"
        );
        for strategy in Strategy::ALL {
            let run = DistributedSimulator::new(DistConfig::new(ranks).with_strategy(strategy))
                .run(&circuit)
                .expect("partitioning failed");
            assert!(run.state.approx_eq(&reference, 1e-9));
            println!(
                "{:>6} {:>14} | {:>10.4} {:>10.4} {:>10.6} {:>12} | {:>7.2}x",
                ranks,
                format!("HiSVSIM-{}", strategy.name()),
                run.report.modeled_total_time_s(),
                run.report.compute_time_s,
                run.report.avg_comm_time_s,
                run.report.comm.bytes_sent,
                baseline_total / run.report.modeled_total_time_s()
            );
        }
        println!();
        ranks *= 2;
    }
}

//! `job_service` — the async job service end to end.
//!
//! Three demonstrations:
//!
//! 1. **Submit / poll / progress.** A mixed-priority workload through
//!    [`SimService`]: non-blocking submission, handle polling, the progress
//!    event stream, and per-job reporting including the engine's modelled
//!    communication share.
//! 2. **Mid-flight cancellation.** A large (default 28-qubit) hierarchical
//!    job is cancelled as soon as its progress stream shows execution under
//!    way; the service stops it at the next cooperative checkpoint and the
//!    wall time is compared against the projected uncancelled run.
//! 3. **Disk-backed warm start.** A service with persistence enabled plans
//!    a templated workload, shuts down (writing the plan-cache snapshot),
//!    and a "restarted" service replays the workload with **zero** planning
//!    misses and bit-identical amplitudes.
//!
//! Run with `cargo run --release --example job_service`.
//! `HISVSIM_SERVICE_QUBITS` overrides the cancellation-demo width
//! (default 28; use 16–20 on small machines).

use hisvsim_circuit::generators;
use hisvsim_runtime::{EngineKind, EngineSelector, PlanEffort, SchedulerConfig, SimJob};
use hisvsim_service::prelude::*;
use std::time::Instant;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    submit_poll_progress();
    cancel_in_flight();
    warm_start();
}

/// Part 1: non-blocking submission, polling and the event stream.
fn submit_poll_progress() {
    println!("== submit / poll / progress ==");
    let service =
        SimService::start(ServiceConfig::new().with_scheduler(
            SchedulerConfig::default().with_selector(EngineSelector::scaled(6, 10)),
        ));

    let mut handles = Vec::new();
    for (width, priority) in [
        (11usize, JobPriority::Low),
        (8, JobPriority::Normal),
        (11, JobPriority::High),
        (11, JobPriority::Normal), // repeats the Low job's structure: cache hit
        (9, JobPriority::Normal),
    ] {
        let job = SimJob::new(generators::qft(width)).with_shots(128);
        handles.push((priority, service.submit_with_priority(job, priority)));
    }
    // All submissions returned immediately; poll while the pool works.
    let queued_now = handles.iter().filter(|(_, h)| !h.is_finished()).count();
    println!(
        "submitted {} jobs ({queued_now} still pending right after submit)",
        handles.len()
    );

    println!(
        "{:>4} {:>8} {:<12} {:>11} {:>9} {:>6} {:>10}",
        "job", "priority", "circuit", "engine", "wall", "plan", "comm"
    );
    for (priority, handle) in &handles {
        let result = handle.wait().expect("job succeeded");
        println!(
            "{:>4} {:>8} {:<12} {:>11} {:>7.1} ms {:>6} {:>9.1}%",
            handle.id(),
            format!("{priority:?}"),
            result.circuit_name,
            result.engine.name(),
            result.wall_time_s * 1e3,
            if result.plan_cache_hit { "hit" } else { "miss" },
            100.0 * result.comm_ratio(),
        );
    }
    // One job's full event history.
    let (_, last) = handles.last().unwrap();
    let events: Vec<JobEvent> = {
        let rx = last.progress();
        let mut out = Vec::new();
        while let Ok(e) = rx.try_recv() {
            out.push(e);
        }
        out
    };
    println!("job {} lifecycle: {events:?}", last.id());
    let stats = service.stats();
    println!(
        "service: {} submitted, {} completed; cache {:?}\n",
        stats.submitted,
        stats.completed,
        service.cache_stats()
    );
}

/// Part 2: cancel a large in-flight job between fused parts.
fn cancel_in_flight() {
    let qubits = env_usize("HISVSIM_SERVICE_QUBITS", 28);
    let limit = env_usize(
        "HISVSIM_SERVICE_LIMIT",
        qubits.saturating_sub(8).clamp(5, 21),
    );
    println!("== mid-flight cancellation: {qubits}-qubit QFT (hier, limit {limit}) ==");
    let service = SimService::start(
        ServiceConfig::new().with_scheduler(SchedulerConfig::default().with_workers(1)),
    );

    let submit_time = Instant::now();
    let handle = service.submit(
        SimJob::new(generators::qft(qubits))
            .with_engine(EngineKind::Hier)
            .with_limit(limit),
    );
    let events = handle.progress();

    // Follow the stream; cancel as soon as real execution progress shows.
    let mut exec_started_at = None;
    let mut last_fraction = 0.0f64;
    while let Ok(event) = events.recv() {
        match event {
            JobEvent::Planning | JobEvent::Queued => {}
            JobEvent::PlanReady { cache_hit } => {
                println!(
                    "  [{:7.2} s] plan ready ({})",
                    submit_time.elapsed().as_secs_f64(),
                    if cache_hit { "cache hit" } else { "planned" }
                );
            }
            JobEvent::Executing {
                gates_done,
                gates_total,
            } => {
                let now = Instant::now();
                let started = *exec_started_at.get_or_insert(now);
                last_fraction = gates_done as f64 / gates_total.max(1) as f64;
                println!(
                    "  [{:7.2} s] executing: {gates_done}/{gates_total} gates ({:.0}%)",
                    submit_time.elapsed().as_secs_f64(),
                    100.0 * last_fraction
                );
                if gates_done > 0 {
                    println!(
                        "  cancelling after {:.2} s of execution…",
                        now.duration_since(started).as_secs_f64()
                    );
                    handle.cancel();
                }
            }
            JobEvent::Cancelled => {
                println!(
                    "  [{:7.2} s] cancelled (status {:?})",
                    submit_time.elapsed().as_secs_f64(),
                    handle.poll()
                );
            }
            other => println!("  event: {other:?}"),
        }
    }
    assert!(
        matches!(handle.wait(), Err(JobFailure::Cancelled)),
        "the demo job must end cancelled"
    );
    let wall = submit_time.elapsed().as_secs_f64();
    if let Some(started) = exec_started_at {
        let exec_s = started.elapsed().as_secs_f64();
        if last_fraction > 0.0 {
            println!(
                "cancelled at {:.0}% through execution: {wall:.2} s wall vs \
                 ~{:.2} s projected uncancelled ({:.1}x saved)\n",
                100.0 * last_fraction,
                exec_s / last_fraction,
                1.0 / last_fraction
            );
        } else {
            println!("cancelled before the first part completed ({wall:.2} s wall)\n");
        }
    }
}

/// Part 3: plan-cache persistence across a service restart.
fn warm_start() {
    println!("== disk-backed warm start ==");
    let qubits = env_usize("HISVSIM_SERVICE_QUBITS", 28).min(20);
    let path = std::env::temp_dir().join("hisvsim-job-service-plans.json");
    std::fs::remove_file(&path).ok();
    let config = || {
        ServiceConfig::new()
            .with_scheduler(
                SchedulerConfig::default()
                    .with_selector(EngineSelector::scaled(10, qubits))
                    .with_effort(PlanEffort::Thorough),
            )
            .with_persistence(&path)
    };
    let template = generators::qft(qubits);

    // "Process 1": plan the template (expensively), execute, persist.
    let first = SimService::start(config());
    let start = Instant::now();
    let baseline = first.submit(SimJob::new(template.clone())).wait().unwrap();
    let cold_s = start.elapsed().as_secs_f64();
    let persisted = first.persist_plans().expect("snapshot written");
    drop(first); // shutdown also persists; explicit call shows the count
    println!(
        "cold run: {cold_s:.3} s (plan {:.3} s), {persisted} plan(s) persisted",
        baseline.plan_time_s
    );

    // "Process 2": a fresh service, warm from disk — replans nothing.
    let second = SimService::start(config());
    let start = Instant::now();
    let handles: Vec<_> = (0..4)
        .map(|_| second.submit(SimJob::new(template.clone())))
        .collect();
    let mut identical = true;
    for handle in handles {
        let result = handle.wait().unwrap();
        assert!(result.plan_cache_hit, "warm restart must not replan");
        identical &= result.state.as_ref() == baseline.state.as_ref();
    }
    let warm_s = start.elapsed().as_secs_f64();
    let stats = second.cache_stats();
    println!(
        "warm restart: 4 jobs in {warm_s:.3} s — {} planning misses, {} disk rebuild(s), \
         {} memory hit(s); amplitudes bit-identical to the cold run: {identical}",
        stats.misses, stats.warm_hits, stats.hits
    );
    assert_eq!(stats.misses, 0, "a warm restart replans nothing");
    assert!(identical, "persistence must not change results");
    std::fs::remove_file(&path).ok();
}

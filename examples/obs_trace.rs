//! `obs_trace` — capture a Chrome trace and a metrics snapshot of one run.
//!
//! Enables the span recorder, runs a QFT circuit through the job service
//! (plan → execute → postprocess, with sampled kernel sweeps underneath),
//! merges the job's phase timeline with the recorder's spans, writes the
//! result as Chrome trace-event JSON, and prints the service's Prometheus
//! exposition. The trace file opens directly in `chrome://tracing` or
//! <https://ui.perfetto.dev>.
//!
//! Run with `cargo run --release --example obs_trace [trace.json]`.
//! `HISVSIM_OBS_QUBITS` overrides the circuit width (default 24; use
//! 14–18 on small machines). The example validates its own output: it
//! exits non-zero if the trace is missing a phase or the metrics text is
//! not well-formed Prometheus format.

use hisvsim_circuit::generators;
use hisvsim_runtime::{EngineSelector, SchedulerConfig, SimJob};
use hisvsim_service::{ServiceConfig, SimService};
use std::process::ExitCode;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() -> ExitCode {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "obs_trace.json".to_string());
    let qubits = env_usize("HISVSIM_OBS_QUBITS", 24);

    hisvsim_obs::set_enabled(true);
    let service =
        SimService::start(ServiceConfig::new().with_scheduler(
            SchedulerConfig::default().with_selector(EngineSelector::scaled(6, 10)),
        ));

    println!("running qft-{qubits} with the span recorder on ...");
    let handle = service.submit(SimJob::new(generators::qft(qubits)).with_shots(64));
    let result = match handle.wait() {
        Ok(result) => result,
        Err(failure) => {
            eprintln!("obs_trace: job failed: {failure:?}");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "done in {:.2}s (plan {:.3}s); per-phase timeline:",
        result.wall_time_s, result.plan_time_s
    );
    for span in result.timeline() {
        println!(
            "  {:<12} {:>9.3}s  {}",
            span.name,
            span.dur_us as f64 / 1e6,
            span.detail
        );
    }

    // Merge the recorder's spans (kernel sweeps, comm collectives, the
    // mirrored job phases) with the job's own timeline and export.
    let mut spans = hisvsim_obs::drain();
    spans.extend(result.timeline().iter().cloned());
    let json = hisvsim_obs::chrome_trace_json(&spans);
    if let Err(e) = std::fs::write(&path, &json) {
        eprintln!("obs_trace: cannot write {path}: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "wrote {} spans to {path} (open in chrome://tracing or ui.perfetto.dev)",
        spans.len()
    );

    // Self-validation: every runner phase must appear, kernel sweeps must
    // have been sampled, and the trace JSON must parse back.
    for phase in ["plan", "execute", "postprocess"] {
        if !spans.iter().any(|s| s.name == phase) {
            eprintln!("obs_trace: no `{phase}` span in the trace");
            return ExitCode::FAILURE;
        }
    }
    if !spans.iter().any(|s| s.name.starts_with("sweep:")) {
        eprintln!("obs_trace: no sampled kernel sweep spans in the trace");
        return ExitCode::FAILURE;
    }
    if let Err(e) = serde_json::value_from_str(&json) {
        eprintln!("obs_trace: emitted trace is not valid JSON: {e}");
        return ExitCode::FAILURE;
    }

    let metrics = service.metrics_text();
    println!("\nmetrics exposition:\n{metrics}");
    if let Err(msg) = hisvsim_obs::validate_prometheus(&metrics) {
        eprintln!("obs_trace: metrics exposition is malformed: {msg}");
        return ExitCode::FAILURE;
    }
    println!("obs_trace: OK");
    ExitCode::SUCCESS
}

//! `cluster_mode` — the multi-process cluster end to end.
//!
//! Three demonstrations:
//!
//! 1. **Process-backed execution.** A QFT job runs twice through the
//!    runtime scheduler — once on the in-process channel world, once on a
//!    4-worker localhost process cluster (`Backend::Process` via
//!    `hisvsim-net`'s `ClusterLauncher`) — and the amplitudes are compared
//!    **bit for bit**.
//! 2. **Remote plan shipping.** The process run reuses the exact partition
//!    the plan cache holds: partitions travel over the control channel in
//!    their `PersistedPlan` wire shape, workers re-fuse locally.
//! 3. **Service hardening.** The same launcher behind a `SimService` with a
//!    per-job deadline, plus the operator's `metrics_text()` scrape.
//!
//! Run with `cargo run --release --example cluster_mode` (after building
//! the worker binary: `cargo build --release -p hisvsim-net`).
//! `HISVSIM_CLUSTER_QUBITS` overrides the circuit width (default 16),
//! `HISVSIM_CLUSTER_WORKERS` the worker count (default 4).

use hisvsim_circuit::generators;
use hisvsim_net::ClusterLauncher;
use hisvsim_runtime::{Backend, EngineKind, EngineSelector, Scheduler, SchedulerConfig, SimJob};
use hisvsim_service::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let qubits = env_usize("HISVSIM_CLUSTER_QUBITS", 16);
    let workers = env_usize("HISVSIM_CLUSTER_WORKERS", 4);
    let launcher = match ClusterLauncher::new(workers) {
        Ok(launcher) => Arc::new(launcher),
        Err(e) => {
            eprintln!("cluster_mode: {e}");
            eprintln!("hint: cargo build --release -p hisvsim-net");
            std::process::exit(1);
        }
    };
    println!("== cluster mode: qft-{qubits} on {workers} worker processes ==");
    process_vs_local(&launcher, qubits);
    service_with_deadline_and_metrics(&launcher, qubits);
}

/// Parts 1 + 2: the same job through both backends, bit-identical results,
/// the plan shipped from the shared cache.
fn process_vs_local(launcher: &Arc<ClusterLauncher>, qubits: usize) {
    let scheduler = Scheduler::new(
        SchedulerConfig::default()
            .with_selector(EngineSelector::scaled(4, 8))
            .with_process_backend(Arc::clone(launcher) as _),
    );
    for engine in [EngineKind::Hier, EngineKind::Dist] {
        let circuit = generators::qft(qubits);
        let report = scheduler.run_batch(vec![
            SimJob::new(circuit.clone()).with_engine(engine),
            SimJob::new(circuit)
                .with_engine(engine)
                .with_backend(Backend::Process),
        ]);
        let local = &report.results[0];
        let process = &report.results[1];
        // The process job shipped the *same cached partition* the local job
        // planned (one cache miss for the pair at most).
        println!(
            "{engine}: local {:.3}s | {} worker processes {:.3}s \
             ({} parts, {:.1} MiB over TCP, plan cache hit: {})",
            local.wall_time_s,
            process.report.num_ranks,
            process.wall_time_s,
            process.report.num_parts,
            process.comm_stats().bytes_sent as f64 / (1024.0 * 1024.0),
            process.plan_cache_hit,
        );
        let (a, b) = (
            local.state.as_ref().expect("states retained"),
            process.state.as_ref().expect("states retained"),
        );
        match a.approx_eq(b, 0.0) {
            true => println!("{engine}: process run is BIT-IDENTICAL to the local run"),
            false => {
                eprintln!(
                    "{engine}: runs diverged (max |diff| = {:.3e})",
                    a.max_abs_diff(b)
                );
                std::process::exit(1);
            }
        }
    }
}

/// Part 3: the launcher behind the job service — deadlines and metrics.
fn service_with_deadline_and_metrics(launcher: &Arc<ClusterLauncher>, qubits: usize) {
    let service = SimService::start(
        ServiceConfig::new().with_scheduler(
            SchedulerConfig::default()
                .with_selector(EngineSelector::scaled(4, 8))
                .with_process_backend(Arc::clone(launcher) as _),
        ),
    );
    // A comfortable deadline: the job completes normally.
    let ok = service.submit(
        SimJob::new(generators::qft(qubits))
            .with_engine(EngineKind::Dist)
            .with_backend(Backend::Process)
            .with_deadline(Duration::from_secs(600)),
    );
    ok.wait().expect("well within the deadline");
    // An impossible deadline on a deliberately heavy job: the service
    // cancels it cooperatively and reports DeadlineExceeded on the stream.
    let doomed = service.submit(
        SimJob::new(generators::qft(qubits.max(18)))
            .with_engine(EngineKind::Hier)
            .with_limit(4)
            .with_deadline(Duration::from_millis(5)),
    );
    match doomed.wait() {
        Err(JobFailure::Failed(message)) => println!("deadline demo: {message}"),
        Err(other) => println!("deadline demo: unexpected failure {other}"),
        Ok(result) => println!(
            "deadline demo: job beat its deadline in {:.3}s (machine too fast)",
            result.wall_time_s
        ),
    }
    println!("-- metrics_text() --");
    for line in service
        .metrics_text()
        .lines()
        .filter(|l| !l.starts_with('#'))
    {
        println!("{line}");
    }
    service.shutdown().expect("clean drain");
}

//! Run an OpenQASM 2.0 file through HiSVSIM and print the most likely
//! measurement outcomes.
//!
//! ```text
//! cargo run --release -p hisvsim-examples --bin qasm_runner <file.qasm> [limit]
//! cargo run --release -p hisvsim-examples --bin qasm_runner --demo
//! ```
//!
//! With `--demo` (or no argument) a Bernstein–Vazirani circuit is generated,
//! written to OpenQASM, parsed back and executed — demonstrating the full
//! text → circuit → partition → simulate pipeline on external circuits such
//! as the QASMBench files the paper uses.

use hisvsim_circuit::{generators, qasm};
use hisvsim_core::{HierConfig, HierarchicalSimulator};
use hisvsim_partition::Strategy;
use hisvsim_statevec::measure;

fn main() {
    let arg = std::env::args().nth(1);
    let source = match arg.as_deref() {
        None | Some("--demo") => {
            let circuit = generators::bv(14, 0xB5);
            println!(
                "(demo mode: generated {} and round-tripping it through OpenQASM)\n",
                circuit.name
            );
            qasm::to_qasm(&circuit)
        }
        Some(path) => std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(1);
        }),
    };

    let circuit = match qasm::parse_qasm(&source) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("QASM parse error: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "parsed circuit: {} qubits, {} gates, depth {}",
        circuit.num_qubits(),
        circuit.num_gates(),
        circuit.depth()
    );
    let limit: usize = std::env::args()
        .nth(2)
        .and_then(|a| a.parse().ok())
        .unwrap_or((circuit.num_qubits() / 2).max(3));

    let run = HierarchicalSimulator::new(HierConfig::new(limit).with_strategy(Strategy::DagP))
        .run(&circuit)
        .expect("partitioning failed");
    println!(
        "simulated with dagP: {} parts, {:.3} s\n",
        run.report.num_parts, run.report.total_time_s
    );

    // Print the five most likely outcomes.
    let mut probs: Vec<(usize, f64)> = measure::probabilities(&run.state)
        .into_iter()
        .enumerate()
        .collect();
    probs.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!("most likely basis states:");
    for (state, p) in probs.into_iter().take(5).filter(|(_, p)| *p > 1e-12) {
        println!(
            "  |{state:0width$b}⟩   p = {p:.6}",
            width = circuit.num_qubits()
        );
    }
}

//! The batch job model: what a caller submits ([`SimJob`]) and what the
//! scheduler returns ([`JobResult`]).

use crate::selector::{EngineDecision, EngineKind};
use hisvsim_circuit::{Circuit, Qubit};
use hisvsim_cluster::CommStats;
use hisvsim_core::RunReport;
use hisvsim_obs::SpanRecord;
use hisvsim_statevec::{FusionStrategy, KernelDispatch, StateVector};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::time::Duration;

/// Where a job's (distributed) execution runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Backend {
    /// In-process virtual ranks: threads plus channels
    /// ([`hisvsim_cluster::LocalComm`]).
    #[default]
    Local,
    /// Real OS processes over the TCP transport: the job's partition plan
    /// is shipped to worker processes through the registered
    /// [`ProcessBackend`](crate::pool::ProcessBackend) (see
    /// `hisvsim_net::ClusterLauncher`). Requires
    /// [`SchedulerConfig::with_process_backend`](crate::scheduler::SchedulerConfig::with_process_backend).
    Process,
}

/// One simulation job: a circuit plus everything the runtime needs to
/// execute and post-process it.
#[derive(Debug, Clone)]
pub struct SimJob {
    /// The circuit to simulate.
    pub circuit: Circuit,
    /// Measurement shots to sample from the final state (0 = none).
    pub shots: usize,
    /// Qubits whose Pauli-Z expectation values are reported.
    pub observables: Vec<Qubit>,
    /// Engine preference; `None` lets the
    /// [`EngineSelector`](crate::selector::EngineSelector) decide.
    pub engine: Option<EngineKind>,
    /// Working-set limit override; `None` uses the selector's limit.
    pub limit: Option<usize>,
    /// Gate-fusion width override (≥ 1); `None` uses the runtime's auto
    /// default ([`hisvsim_statevec::DEFAULT_FUSION_WIDTH`]). Width 1 still
    /// merges runs of same-wire gates and collapses diagonal runs; 3–4 is
    /// the CPU sweet spot.
    pub fusion: Option<usize>,
    /// How fusion groups are discovered: the bounded-window scanner, the
    /// DAG antichain grouper, or [`FusionStrategy::Auto`] (window unless
    /// its group-size histogram degenerates). Part of the plan-cache key —
    /// jobs differing only in strategy never share a cached plan.
    pub fusion_strategy: FusionStrategy,
    /// Kernel dispatch for every sweep the job runs:
    /// [`KernelDispatch::Auto`] (runtime-detected SIMD) or
    /// [`KernelDispatch::Scalar`] (the bit-identical portable fallback).
    /// Process-backed jobs ship it to their workers.
    pub kernel_dispatch: KernelDispatch,
    /// Seed for shot sampling (deterministic per job).
    pub seed: u64,
    /// Execution backend: in-process virtual ranks (default) or real worker
    /// processes via the registered process backend.
    pub backend: Backend,
    /// Wall-clock deadline. The runtime itself does not arm a timer — the
    /// service layer does (firing the job's `CancelToken` and reporting
    /// `DeadlineExceeded`); batch mode ignores it.
    pub deadline: Option<Duration>,
}

impl SimJob {
    /// A job with no shots, no observables, automatic engine selection.
    pub fn new(circuit: Circuit) -> Self {
        Self {
            circuit,
            shots: 0,
            observables: Vec::new(),
            engine: None,
            limit: None,
            fusion: None,
            fusion_strategy: FusionStrategy::default(),
            kernel_dispatch: KernelDispatch::default(),
            seed: 0,
            backend: Backend::Local,
            deadline: None,
        }
    }

    /// Sample this many measurement shots from the final state.
    pub fn with_shots(mut self, shots: usize) -> Self {
        self.shots = shots;
        self
    }

    /// Report Pauli-Z expectations on these qubits.
    pub fn with_observables(mut self, qubits: Vec<Qubit>) -> Self {
        self.observables = qubits;
        self
    }

    /// Force a specific engine.
    pub fn with_engine(mut self, engine: EngineKind) -> Self {
        self.engine = Some(engine);
        self
    }

    /// Force a specific working-set limit.
    pub fn with_limit(mut self, limit: usize) -> Self {
        self.limit = Some(limit);
        self
    }

    /// Force a specific gate-fusion width (≥ 1).
    pub fn with_fusion(mut self, fusion: usize) -> Self {
        assert!(fusion >= 1, "fusion width must be at least 1");
        self.fusion = Some(fusion);
        self
    }

    /// Use a specific fusion strategy (see [`FusionStrategy`]). The
    /// strategy is part of the plan-cache key, and process-backed jobs ship
    /// it to their workers, which re-fuse with the same strategy.
    pub fn with_fusion_strategy(mut self, strategy: FusionStrategy) -> Self {
        self.fusion_strategy = strategy;
        self
    }

    /// Use a specific kernel dispatch (see [`KernelDispatch`]). Forcing
    /// [`KernelDispatch::Scalar`] is the differential-validation lever: the
    /// scalar fallback is bit-identical to the SIMD kernels by construction.
    pub fn with_kernel_dispatch(mut self, dispatch: KernelDispatch) -> Self {
        self.kernel_dispatch = dispatch;
        self
    }

    /// Use this sampling seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Execute on this backend (e.g. [`Backend::Process`] for a
    /// multi-process cluster run).
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Give the job a wall-clock deadline. The `hisvsim-service` layer arms
    /// a timer that fires the job's cancel token when the deadline passes
    /// and surfaces `Failed { DeadlineExceeded }` on the progress stream.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

/// Predicted-vs-measured audit record for one job's execute phase: what
/// the cost model (static or calibrated) expected the execution to cost
/// against what the wall clock measured. The ratio is exported as the
/// `hisvsim_selector_misprediction_ratio` histogram so model drift is
/// visible on `/metrics`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DecisionVerdict {
    /// Modelled execute-phase seconds: swept amplitude bytes over the
    /// profiled (or nominal) sweep bandwidth, plus the decision's
    /// per-exchange estimate times the exchanges the run performed.
    /// Deliberately coarse — its job is trend visibility, not accuracy.
    pub predicted_execute_s: f64,
    /// Wall-clock seconds of the execute phase.
    pub measured_execute_s: f64,
}

impl DecisionVerdict {
    /// Measured over predicted: 1.0 is a perfect model, > 1 means the
    /// model was optimistic. 0 when the prediction degenerated to zero.
    pub fn ratio(&self) -> f64 {
        if self.predicted_execute_s > 0.0 {
            self.measured_execute_s / self.predicted_execute_s
        } else {
            0.0
        }
    }
}

/// The outcome of one job.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// Index of the job in the submitted batch (results are returned in
    /// submission order regardless of completion order).
    pub job_index: usize,
    /// Name of the job's circuit.
    pub circuit_name: String,
    /// Engine that executed the job.
    pub engine: EngineKind,
    /// The full selector verdict behind the engine choice — limit, rank
    /// count, exchange estimate, whether measured signals calibrated it,
    /// and the human-readable `reason` — so reports can show *why* a job
    /// landed where it did, not just where.
    pub decision: EngineDecision,
    /// Predicted-vs-measured cost audit for the execute phase.
    pub verdict: DecisionVerdict,
    /// The final state vector (`None` when the scheduler was configured to
    /// release states after post-processing).
    pub state: Option<StateVector>,
    /// The engine's own run report (timing, parts, communication).
    pub report: RunReport,
    /// Shot histogram over computational basis states (empty when
    /// `shots == 0`).
    pub counts: BTreeMap<usize, usize>,
    /// `(qubit, ⟨Z⟩)` for each requested observable.
    pub z_expectations: Vec<(Qubit, f64)>,
    /// Wall-clock seconds for the whole job (planning + execution +
    /// post-processing), as observed by the worker thread.
    pub wall_time_s: f64,
    /// Seconds spent obtaining the plan (≈ 0 on a cache hit).
    pub plan_time_s: f64,
    /// Whether the partition plan came from the cache (in-memory hit or a
    /// disk-persisted warm entry) instead of being planned from scratch.
    pub plan_cache_hit: bool,
    /// The kernel dispatch the job executed under
    /// ([`KernelDispatch::resolved_name`] gives the concrete kernel family
    /// it resolved to on this machine).
    pub kernel_dispatch: KernelDispatch,
    /// Per-phase execution timeline (plan → execute → postprocess),
    /// recorded by the worker thread on the shared obs clock. Always
    /// populated, independent of whether the global span recorder is on.
    pub timeline: Vec<SpanRecord>,
}

impl JobResult {
    /// The engine's aggregated communication statistics (bytes, messages,
    /// modelled wire time over all virtual ranks) — so service clients see
    /// the modelled communication behaviour per job, not just wall time.
    pub fn comm_stats(&self) -> &CommStats {
        &self.report.comm
    }

    /// Modelled communication time in seconds, averaged over ranks (zero
    /// for single-node engines).
    pub fn modeled_comm_time_s(&self) -> f64 {
        self.report.avg_comm_time_s
    }

    /// Fraction of the modelled end-to-end time spent communicating
    /// (see [`RunReport::comm_ratio`]).
    pub fn comm_ratio(&self) -> f64 {
        self.report.comm_ratio()
    }

    /// The job's per-phase execution timeline: one span per runner phase
    /// (`plan`, `execute`, `postprocess`), timestamped on the process-wide
    /// obs clock so it can be merged with recorder spans and exported via
    /// [`hisvsim_obs::chrome_trace_json`].
    pub fn timeline(&self) -> &[SpanRecord] {
        &self.timeline
    }
}

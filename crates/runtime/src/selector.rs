//! Engine auto-selection: given a job's circuit, pick the engine (baseline /
//! hierarchical / distributed / multi-level) and its structural parameters
//! (working-set limit, rank count, second-level limit) from the memory- and
//! network-model cost signals the workspace already has.
//!
//! The decision mirrors the paper's own sizing argument:
//!
//! * a state vector that fits the last-level cache needs no hierarchy at all
//!   → run the plain baseline engine on one rank;
//! * a state vector that fits one node but not the LLC benefits from the
//!   Gather–Execute–Scatter hierarchy → `hier` with the cache-derived limit;
//! * anything larger must be distributed; if the per-rank slice itself
//!   still dwarfs the LLC, the two-level engine additionally reorganises the
//!   rank-local computation → `multilevel`, otherwise `dist`.

use hisvsim_circuit::Circuit;
use hisvsim_cluster::NetworkModel;
use hisvsim_memmodel::HierarchyConfig;
use serde::{Deserialize, Serialize};

/// Which engine executes a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EngineKind {
    /// The IQS-style static-mapping engine on one rank — effectively the
    /// flat simulator, with the same report plumbing as the other engines.
    Baseline,
    /// The single-node hierarchical Gather–Execute–Scatter engine.
    Hier,
    /// The distributed engine over virtual MPI ranks.
    Dist,
    /// The two-level (node + cache) distributed engine.
    Multilevel,
}

impl EngineKind {
    /// All engines, for sweeps and reports.
    pub const ALL: [EngineKind; 4] = [
        EngineKind::Baseline,
        EngineKind::Hier,
        EngineKind::Dist,
        EngineKind::Multilevel,
    ];

    /// This engine's slot in [`EngineKind::ALL`] — the index used wherever
    /// per-engine accounting is kept (batch histograms, service metrics).
    /// Infallible by construction, unlike scanning `ALL` with `position`.
    pub const fn index(self) -> usize {
        match self {
            EngineKind::Baseline => 0,
            EngineKind::Hier => 1,
            EngineKind::Dist => 2,
            EngineKind::Multilevel => 3,
        }
    }

    /// Stable lowercase name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            EngineKind::Baseline => "baseline",
            EngineKind::Hier => "hier",
            EngineKind::Dist => "dist",
            EngineKind::Multilevel => "multilevel",
        }
    }
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The selector's verdict for one job.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EngineDecision {
    /// Chosen engine.
    pub engine: EngineKind,
    /// Working-set limit for partitioning (single-level engines) or the
    /// first-level limit (multi-level). Always ≥ the circuit's largest gate
    /// arity, so partitioning cannot fail on arity.
    pub limit: usize,
    /// Virtual rank count (1 for single-node engines); a power of two.
    pub ranks: usize,
    /// Second-level limit (only meaningful for [`EngineKind::Multilevel`]).
    pub second_limit: usize,
    /// Modelled seconds for one full-state redistribution at this size —
    /// the `netmodel` signal backing the dist/multilevel choice. Replaced
    /// by the measured collective bandwidth when a warm profile is used.
    pub est_exchange_s: f64,
    /// Whether any measured-cost signal replaced a modelled one in this
    /// decision (see [`EngineSelector::decide_with_profile`]).
    pub calibrated: bool,
    /// Human-readable justification, surfaced by the batch report.
    /// Calibrated decisions are prefixed with the measured signals used.
    pub reason: String,
}

/// Picks an engine per job from qubit count and the cost models.
///
/// All thresholds are expressed in qubits (log2 of amplitude count) and are
/// derived from a [`HierarchyConfig`] at construction; tests and examples can
/// scale them down with [`EngineSelector::scaled`] so every engine is
/// exercised on toy circuits.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EngineSelector {
    /// Qubits whose state vector fits the last-level cache
    /// (`log2(LLC bytes / 16)`).
    pub cache_qubits: usize,
    /// Qubits whose state vector fits one node's memory.
    pub node_qubits: usize,
    /// Cap on the virtual rank count (power of two).
    pub max_ranks: usize,
    /// Interconnect model used for the communication-cost signal.
    pub network: NetworkModel,
}

impl EngineSelector {
    /// Derive thresholds from a cache hierarchy and a per-node memory budget
    /// (in bytes).
    pub fn from_models(
        hierarchy: &HierarchyConfig,
        node_memory_bytes: u128,
        network: NetworkModel,
    ) -> Self {
        Self {
            cache_qubits: qubits_fitting(hierarchy.l3.capacity_bytes as u128),
            node_qubits: qubits_fitting(node_memory_bytes),
            max_ranks: 64,
            network,
        }
    }

    /// Explicitly scaled thresholds (used by tests and the examples so the
    /// full engine spectrum is exercised on small circuits).
    pub fn scaled(cache_qubits: usize, node_qubits: usize) -> Self {
        assert!(cache_qubits <= node_qubits);
        Self {
            cache_qubits,
            node_qubits,
            max_ranks: 16,
            network: NetworkModel::hdr100(),
        }
    }

    /// Choose the engine and parameters for `circuit`, optionally forcing the
    /// engine kind (the per-job override) while still deriving the
    /// structural parameters.
    pub fn decide(&self, circuit: &Circuit, forced: Option<EngineKind>) -> EngineDecision {
        let n = circuit.num_qubits();
        // Partitioning rejects limits below the largest gate arity; every
        // limit the selector emits respects this floor.
        let arity_floor = circuit.gates().iter().map(|g| g.arity()).max().unwrap_or(1);
        let cache_limit = self.cache_qubits.clamp(arity_floor, n.max(1));

        let engine = forced.unwrap_or_else(|| self.auto_engine(n));

        // Rank count: one rank per node_qubits-sized slice, capped.
        let ranks = if matches!(engine, EngineKind::Dist | EngineKind::Multilevel) {
            let wanted_bits = n.saturating_sub(self.node_qubits).max(1);
            let cap_bits = self.max_ranks.trailing_zeros() as usize;
            // Never more rank bits than would leave each rank at least one
            // local qubit per gate operand.
            let max_bits = n.saturating_sub(arity_floor.max(1));
            1usize << wanted_bits.min(cap_bits).min(max_bits)
        } else {
            1
        };
        let local = n - ranks.trailing_zeros() as usize;

        let (limit, second_limit) = match engine {
            EngineKind::Baseline => (n.max(1), 0),
            EngineKind::Hier => (cache_limit, 0),
            EngineKind::Dist => (local.clamp(arity_floor, n.max(1)), 0),
            EngineKind::Multilevel => {
                let first = local.clamp(arity_floor, n.max(1));
                (first, cache_limit.min(first))
            }
        };

        let est_exchange_s = self
            .network
            .message_time(((16u128 << n) / ranks.max(1) as u128) as usize);

        let reason = match engine {
            EngineKind::Baseline => format!(
                "2^{n} amplitudes fit the {}-qubit LLC budget; no hierarchy needed",
                self.cache_qubits
            ),
            EngineKind::Hier => format!(
                "2^{n} amplitudes exceed the {}-qubit LLC budget but fit one node \
                 ({} qubits); gather/execute/scatter at limit {limit}",
                self.cache_qubits, self.node_qubits
            ),
            EngineKind::Dist => format!(
                "2^{n} amplitudes exceed one node ({} qubits); {ranks} ranks, \
                 local slice ({local} qubits) is cache-friendly enough \
                 (~{:.1e} s/exchange)",
                self.node_qubits, est_exchange_s
            ),
            EngineKind::Multilevel => format!(
                "2^{n} amplitudes exceed one node ({} qubits) and the {local}-qubit \
                 local slice still dwarfs the {}-qubit LLC budget; two-level \
                 partitioning (~{:.1e} s/exchange)",
                self.node_qubits, self.cache_qubits, est_exchange_s
            ),
        };

        EngineDecision {
            engine,
            limit,
            ranks,
            second_limit,
            est_exchange_s,
            calibrated: false,
            reason,
        }
    }

    /// [`EngineSelector::decide`], but with the static model signals
    /// replaced by profile-derived ones wherever the profile has enough
    /// data: the measured cache-residency cliff stands in for
    /// `cache_qubits`, and the measured collective bandwidth stands in
    /// for the `netmodel` exchange estimate. Signals the profile cannot
    /// support fall back to the models, so a cold profile reproduces
    /// [`EngineSelector::decide`] exactly (including `calibrated: false`).
    pub fn decide_with_profile(
        &self,
        circuit: &Circuit,
        forced: Option<EngineKind>,
        profile: &hisvsim_obs::CostProfile,
    ) -> EngineDecision {
        let mut signals: Vec<&'static str> = Vec::new();
        let mut effective = self.clone();
        if let Some(measured) = profile.cache_qubits() {
            // The cache budget can never exceed the node budget.
            effective.cache_qubits = (measured as usize).min(effective.node_qubits);
            signals.push("cache=measured");
        }
        let mut decision = effective.decide(circuit, forced);
        let slice_bytes =
            ((16u128 << circuit.num_qubits()) / decision.ranks.max(1) as u128) as usize;
        if let Some(seconds) = profile.exchange_seconds(slice_bytes) {
            decision.est_exchange_s = seconds;
            signals.push("exchange=measured");
        }
        if !signals.is_empty() {
            decision.calibrated = true;
            decision.reason = format!("calibrated[{}]: {}", signals.join(","), decision.reason);
        }
        decision
    }

    fn auto_engine(&self, n: usize) -> EngineKind {
        if n <= self.cache_qubits {
            EngineKind::Baseline
        } else if n <= self.node_qubits {
            EngineKind::Hier
        } else {
            let local = n - n
                .saturating_sub(self.node_qubits)
                .min(self.max_ranks.trailing_zeros() as usize);
            // The second level pays off when the local slice exceeds the LLC
            // budget by more than one qubit (one gather level of slack).
            if local > self.cache_qubits + 1 {
                EngineKind::Multilevel
            } else {
                EngineKind::Dist
            }
        }
    }
}

impl Default for EngineSelector {
    /// Thresholds of the paper's evaluation machine: Cascade Lake LLC
    /// (32 MB → 21 cache qubits) and a 16 GB-per-node budget (30 qubits).
    fn default() -> Self {
        Self::from_models(
            &HierarchyConfig::cascade_lake(),
            16u128 << 30,
            NetworkModel::hdr100(),
        )
    }
}

/// Largest `n` with `2^n × 16` bytes ≤ `bytes`.
fn qubits_fitting(bytes: u128) -> usize {
    let amps = (bytes / 16).max(1);
    (u128::BITS - 1 - amps.leading_zeros()) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use hisvsim_circuit::generators;

    #[test]
    fn engine_index_matches_the_all_order() {
        for (slot, kind) in EngineKind::ALL.iter().enumerate() {
            assert_eq!(kind.index(), slot, "{kind} index out of sync with ALL");
        }
    }

    #[test]
    fn qubit_budgets_match_powers_of_two() {
        assert_eq!(qubits_fitting(16), 0);
        assert_eq!(qubits_fitting(32 * 1024 * 1024), 21); // 32 MB LLC
        assert_eq!(qubits_fitting(16u128 << 30), 30); // 16 GB node
        assert_eq!(qubits_fitting((16u128 << 30) - 1), 29);
    }

    #[test]
    fn default_selector_uses_paper_scale_thresholds() {
        let s = EngineSelector::default();
        assert_eq!(s.cache_qubits, 21);
        assert_eq!(s.node_qubits, 30);
    }

    #[test]
    fn scaled_selector_walks_the_engine_ladder() {
        let s = EngineSelector::scaled(4, 8);
        assert_eq!(
            s.decide(&generators::qft(4), None).engine,
            EngineKind::Baseline
        );
        assert_eq!(s.decide(&generators::qft(6), None).engine, EngineKind::Hier);
        // 9 qubits: 2 ranks → 8 local qubits > cache+1 → multilevel.
        assert_eq!(
            s.decide(&generators::qft(9), None).engine,
            EngineKind::Multilevel
        );
        // cache 7, node 8: local slice stays near the cache budget → dist.
        let s2 = EngineSelector::scaled(7, 8);
        assert_eq!(
            s2.decide(&generators::qft(9), None).engine,
            EngineKind::Dist
        );
    }

    #[test]
    fn forced_engine_is_respected_with_derived_parameters() {
        let s = EngineSelector::scaled(4, 8);
        let d = s.decide(&generators::qft(6), Some(EngineKind::Dist));
        assert_eq!(d.engine, EngineKind::Dist);
        assert!(d.ranks.is_power_of_two());
        assert!(d.limit >= 2);
    }

    #[test]
    fn limits_never_drop_below_gate_arity() {
        // The adder family contains Toffolis (arity 3).
        let s = EngineSelector::scaled(2, 5);
        let d = s.decide(&generators::adder(10), None);
        assert!(d.limit >= 3, "limit {} below Toffoli arity", d.limit);
        if d.engine == EngineKind::Multilevel {
            assert!(d.second_limit >= 3);
        }
    }

    #[test]
    fn rank_count_is_a_bounded_power_of_two() {
        let s = EngineSelector::scaled(3, 5);
        for n in 6..=12 {
            let d = s.decide(&generators::qft(n), None);
            assert!(d.ranks.is_power_of_two());
            assert!(d.ranks <= s.max_ranks);
            assert!(
                (d.ranks.trailing_zeros() as usize) < n,
                "ranks {} for {n} qubits",
                d.ranks
            );
        }
    }

    #[test]
    fn calibrated_decide_uses_measured_signals_and_cold_falls_back() {
        use hisvsim_obs::CostProfile;

        let s = EngineSelector::scaled(18, 26);
        let circuit = generators::qft(20);

        // Cold profile: identical to the uncalibrated decision.
        let cold = s.decide_with_profile(&circuit, None, &CostProfile::new());
        let plain = s.decide(&circuit, None);
        assert!(!cold.calibrated);
        assert_eq!(cold.engine, plain.engine);
        assert_eq!(cold.reason, plain.reason);

        // Warm profile: near-peak bandwidth through band 21, cliff at 22
        // → measured cache budget 21 qubits, so the 20-qubit job now fits
        // the cache and lands on the baseline engine.
        let mut profile = CostProfile::new();
        for (band, gbps) in [(19u32, 100.0), (20, 95.0), (21, 90.0), (22, 40.0)] {
            let bytes = 64u64 << band;
            profile.absorb_kernel(
                "sweep:dense",
                "avx2",
                band,
                1,
                bytes as f64 / (gbps * 1e9),
                bytes,
            );
        }
        let warm = s.decide_with_profile(&circuit, None, &profile);
        assert_eq!(plain.engine, EngineKind::Hier);
        assert_eq!(warm.engine, EngineKind::Baseline);
        assert!(warm.calibrated);
        assert!(
            warm.reason.starts_with("calibrated[cache=measured]"),
            "reason: {}",
            warm.reason
        );

        // Measured collective bandwidth replaces the netmodel estimate.
        profile.absorb_collective("alltoallv", 4, 0.1, 1 << 28);
        let dist = s.decide_with_profile(&circuit, Some(EngineKind::Dist), &profile);
        assert!(dist.calibrated);
        assert!(dist.reason.contains("exchange=measured"), "{}", dist.reason);
        let slice_bytes = ((16u128 << 20) / dist.ranks as u128) as f64;
        let expected = slice_bytes * 0.1 / (1u64 << 28) as f64;
        assert!((dist.est_exchange_s - expected).abs() < 1e-12);
    }

    #[test]
    fn decisions_explain_themselves() {
        let s = EngineSelector::scaled(4, 8);
        for n in [3usize, 6, 10] {
            let d = s.decide(&generators::qft(n), None);
            assert!(!d.reason.is_empty());
            assert!(d.est_exchange_s >= 0.0);
        }
    }
}

//! Partition planning at configurable effort.
//!
//! A production service amortises planning cost across many executions of
//! the same circuit structure (that is what the [`crate::cache::PlanCache`]
//! is for), which changes the planning-cost trade-off: it is worth spending
//! far more than one `dagP` call on a plan that will be reused. The planner
//! therefore has two effort levels:
//!
//! * [`PlanEffort::Fast`] — one default-configuration `dagP` call, the same
//!   cost profile as calling the engines directly;
//! * [`PlanEffort::Thorough`] — a portfolio sweep plus locality scoring:
//!   `Nat`, a deep best-of-k `DFS`, and `dagP` under several configurations
//!   (coarsening on/off, extra refinement passes, tighter imbalance,
//!   alternative cluster sizes) produce candidates; the candidates with the
//!   fewest parts are then *scored on the modelled cache hierarchy* by
//!   replaying their gather–execute–scatter access trace
//!   (`hisvsim_core::profile` + `hisvsim_memmodel` — the paper's Table II
//!   machinery), and the plan with the lowest modelled average memory
//!   latency wins. This is deliberately expensive — it is the work the
//!   cache saves on every repeat submission.

use hisvsim_circuit::Circuit;
use hisvsim_core::profile::{hierarchical_access_trace, TraceOptions};
use hisvsim_core::{FusedSinglePlan, FusedTwoLevelPlan};
use hisvsim_dag::{CircuitDag, PartGraph, Partition};
use hisvsim_memmodel::{replay_amplitude_indices, HierarchyConfig};
use hisvsim_partition::{
    DagPConfig, DagPPartitioner, DfsPartitioner, MultilevelPartition, MultilevelPartitioner,
    NatPartitioner, PartitionBuildError,
};
use hisvsim_statevec::FusionStrategy;
use serde::{Deserialize, Serialize};

/// How much work to invest in one plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PlanEffort {
    /// One default `dagP` call.
    Fast,
    /// Full strategy portfolio + cache-model locality scoring.
    Thorough,
}

impl PlanEffort {
    /// Stable name for cache keys and reports.
    pub fn name(&self) -> &'static str {
        match self {
            PlanEffort::Fast => "fast",
            PlanEffort::Thorough => "thorough",
        }
    }
}

/// The partition planner.
#[derive(Debug, Clone, Copy)]
pub struct Planner {
    /// Effort level.
    pub effort: PlanEffort,
    /// Trials for the DFS portfolio member under [`PlanEffort::Thorough`].
    pub dfs_trials: usize,
    /// Access-trace sample length per scored candidate under
    /// [`PlanEffort::Thorough`] (0 disables locality scoring).
    pub trace_accesses: usize,
    /// How many minimum-part candidates are locality-scored.
    pub max_scored: usize,
}

impl Planner {
    /// A planner at the given effort.
    pub fn new(effort: PlanEffort) -> Self {
        Self {
            effort,
            dfs_trials: 2048,
            trace_accesses: 4_000_000,
            max_scored: 5,
        }
    }

    /// Plan a single-level partition of `circuit`'s DAG under `limit`.
    pub fn plan_single(
        &self,
        circuit: &Circuit,
        dag: &CircuitDag,
        limit: usize,
    ) -> Result<Partition, PartitionBuildError> {
        match self.effort {
            PlanEffort::Fast => DagPPartitioner::default().partition(dag, limit),
            PlanEffort::Thorough => {
                // The requested limit is an *upper bound* on the working set:
                // the engines derive each part's working set from the plan
                // itself, so a plan built at a tighter limit is equally
                // valid and often more cache-resident (smaller inner vector)
                // at the price of more parts (more outer sweeps). Thorough
                // planning explores that trade-off explicitly: one finalist
                // per candidate limit, then the modelled cache hierarchy
                // picks the operating point — exactly the locality argument
                // of the paper's Table II, applied at plan time.
                let arity_floor = circuit
                    .gates()
                    .iter()
                    .map(|g| g.arity())
                    .max()
                    .unwrap_or(1)
                    .max(2);
                let mut limits = Vec::new();
                for step in 0..self.max_scored.max(1) {
                    let candidate = limit.saturating_sub(2 * step).max(arity_floor.min(limit));
                    if !limits.contains(&candidate) {
                        limits.push(candidate);
                    }
                }

                let mut finalists: Vec<Partition> = Vec::new();
                for &candidate_limit in &limits {
                    if let Some(best) = self.best_at_limit(dag, candidate_limit) {
                        if !finalists.contains(&best) {
                            finalists.push(best);
                        }
                    }
                }
                if finalists.is_empty() {
                    // Every portfolio member failed: surface the canonical
                    // error from the default configuration.
                    return DagPPartitioner::default().partition(dag, limit);
                }
                if finalists.len() == 1 || self.trace_accesses == 0 {
                    return Ok(finalists.remove(0));
                }

                // Locality scoring: replay each finalist's gather–execute–
                // scatter access trace through the modelled cache hierarchy;
                // the plan with the lowest modelled average memory latency
                // wins (earlier = wider-limit finalists win ties).
                let hierarchy = HierarchyConfig::cascade_lake();
                let options = TraceOptions {
                    max_assignments_per_part: 8,
                    max_accesses: self.trace_accesses,
                };
                let best = finalists
                    .into_iter()
                    .enumerate()
                    .map(|(rank, p)| {
                        let trace = hierarchical_access_trace(circuit, dag, &p, options);
                        let stats = replay_amplitude_indices(hierarchy, trace);
                        let latency = stats.average_latency(hierarchy.latency_cycles);
                        (latency, rank, p)
                    })
                    .min_by(|a, b| {
                        a.0.partial_cmp(&b.0)
                            .unwrap_or(std::cmp::Ordering::Equal)
                            .then(a.1.cmp(&b.1))
                    })
                    .map(|(_, _, p)| p)
                    .expect("finalists is non-empty");
                Ok(best)
            }
        }
    }

    /// Plan a single-level partition and fuse every part's inner circuit at
    /// `fusion_width` — the form the runtime caches, so repeat submissions
    /// amortise fusion (the greedy scan and every fused-matrix product)
    /// exactly like they amortise partitioning.
    pub fn plan_single_fused(
        &self,
        circuit: &Circuit,
        dag: &CircuitDag,
        limit: usize,
        fusion_width: usize,
        strategy: FusionStrategy,
    ) -> Result<FusedSinglePlan, PartitionBuildError> {
        let partition = self.plan_single(circuit, dag, limit)?;
        Ok(FusedSinglePlan::build_with_strategy(
            circuit,
            dag,
            partition,
            fusion_width.max(1),
            strategy,
        ))
    }

    /// Plan a two-level partition and fuse every second-level part at
    /// `fusion_width` (see [`Planner::plan_single_fused`]).
    pub fn plan_two_level_fused(
        &self,
        circuit: &Circuit,
        dag: &CircuitDag,
        first_limit: usize,
        second_limit: usize,
        fusion_width: usize,
        strategy: FusionStrategy,
    ) -> Result<FusedTwoLevelPlan, PartitionBuildError> {
        let ml = self.plan_two_level(dag, first_limit, second_limit)?;
        Ok(FusedTwoLevelPlan::build_with_strategy(
            circuit,
            dag,
            ml,
            fusion_width.max(1),
            strategy,
        ))
    }

    /// Plan a two-level partition (first-level `first_limit`, second-level
    /// `second_limit`) for the multi-level engine.
    ///
    /// Under [`PlanEffort::Thorough`] the `dagP` configuration sweep mirrors
    /// the single-level portfolio and the variant whose *first* level has
    /// the fewest parts (= fewest redistributions) wins; the trace model
    /// covers single-level execution only, so no locality scoring here.
    pub fn plan_two_level(
        &self,
        dag: &CircuitDag,
        first_limit: usize,
        second_limit: usize,
    ) -> Result<MultilevelPartition, PartitionBuildError> {
        match self.effort {
            PlanEffort::Fast => {
                MultilevelPartitioner::default().partition(dag, first_limit, second_limit)
            }
            PlanEffort::Thorough => {
                let mut best: Option<MultilevelPartition> = None;
                for config in Self::dagp_portfolio() {
                    let partitioner = MultilevelPartitioner { config };
                    if let Ok(ml) = partitioner.partition(dag, first_limit, second_limit) {
                        if best
                            .as_ref()
                            .is_none_or(|b| ml.num_first_level_parts() < b.num_first_level_parts())
                        {
                            best = Some(ml);
                        }
                    }
                }
                match best {
                    Some(ml) => Ok(ml),
                    None => {
                        MultilevelPartitioner::default().partition(dag, first_limit, second_limit)
                    }
                }
            }
        }
    }

    /// Best portfolio candidate at one limit: fewest parts, ties broken by
    /// quotient edge cut. `None` when every member fails at this limit.
    fn best_at_limit(&self, dag: &CircuitDag, limit: usize) -> Option<Partition> {
        let mut best: Option<(usize, usize, Partition)> = None;
        let mut consider = |candidate: Result<Partition, PartitionBuildError>| {
            if let Ok(p) = candidate {
                let key = (p.num_parts(), PartGraph::build(dag, &p).edge_cut());
                if best
                    .as_ref()
                    .is_none_or(|(parts, cut, _)| key < (*parts, *cut))
                {
                    best = Some((key.0, key.1, p));
                }
            }
        };
        consider(NatPartitioner.partition(dag, limit));
        consider(DfsPartitioner::new(self.dfs_trials, 0x515C).partition(dag, limit));
        for config in Self::dagp_portfolio() {
            consider(DagPPartitioner::new(config).partition(dag, limit));
        }
        best.map(|(_, _, p)| p)
    }

    /// The `dagP` configuration sweep of the Thorough portfolio.
    fn dagp_portfolio() -> Vec<DagPConfig> {
        let base = DagPConfig::default();
        vec![
            base,
            DagPConfig {
                coarsen: false,
                ..base
            },
            DagPConfig {
                refinement_passes: 12,
                ..base
            },
            DagPConfig {
                imbalance: 1.2,
                refinement_passes: 8,
                ..base
            },
            DagPConfig {
                max_cluster_size: 4,
                ..base
            },
            DagPConfig {
                max_cluster_size: 16,
                refinement_passes: 8,
                ..base
            },
        ]
    }
}

impl Default for Planner {
    fn default() -> Self {
        Self::new(PlanEffort::Fast)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hisvsim_circuit::generators;

    #[test]
    fn thorough_at_a_single_limit_never_produces_more_parts_than_fast() {
        // With limit exploration disabled (max_scored = 1), Thorough is a
        // strict portfolio over the requested limit, so it can only match or
        // beat the single default dagP call.
        for name in ["qft", "qaoa", "grover", "adder"] {
            let circuit = generators::by_name(name, 10);
            let dag = CircuitDag::from_circuit(&circuit);
            for limit in [4usize, 6] {
                let fast = Planner::new(PlanEffort::Fast)
                    .plan_single(&circuit, &dag, limit)
                    .unwrap();
                let mut planner = Planner::new(PlanEffort::Thorough);
                planner.max_scored = 1;
                let thorough = planner.plan_single(&circuit, &dag, limit).unwrap();
                thorough.validate(&dag, limit).unwrap();
                assert!(
                    thorough.num_parts() <= fast.num_parts(),
                    "{name}@{limit}: thorough {} parts vs fast {}",
                    thorough.num_parts(),
                    fast.num_parts()
                );
            }
        }
    }

    #[test]
    fn thorough_limit_exploration_stays_within_the_requested_bound() {
        // The locality-scored plan may use a *tighter* limit than requested
        // (smaller inner vectors, more parts) but must always validate under
        // the requested one.
        for name in ["qft", "ising", "qaoa"] {
            let circuit = generators::by_name(name, 11);
            let dag = CircuitDag::from_circuit(&circuit);
            let plan = Planner::new(PlanEffort::Thorough)
                .plan_single(&circuit, &dag, 6)
                .unwrap();
            plan.validate(&dag, 6)
                .unwrap_or_else(|e| panic!("{name}: scored plan invalid at requested limit: {e}"));
            assert!(plan.max_working_set(&dag) <= 6);
        }
    }

    #[test]
    fn two_level_plans_validate_at_both_levels() {
        let circuit = generators::by_name("qpe", 10);
        let dag = CircuitDag::from_circuit(&circuit);
        for effort in [PlanEffort::Fast, PlanEffort::Thorough] {
            let ml = Planner::new(effort).plan_two_level(&dag, 7, 3).unwrap();
            ml.first.validate(&dag, 7).unwrap();
            assert!(ml.total_second_level_parts() >= ml.num_first_level_parts());
        }
    }

    #[test]
    fn arity_violation_error_is_preserved() {
        let circuit = generators::adder(8); // Toffolis: arity 3
        let dag = CircuitDag::from_circuit(&circuit);
        for effort in [PlanEffort::Fast, PlanEffort::Thorough] {
            assert!(matches!(
                Planner::new(effort).plan_single(&circuit, &dag, 2),
                Err(PartitionBuildError::GateExceedsLimit { .. })
            ));
        }
    }

    #[test]
    fn disabling_locality_scoring_still_plans() {
        let circuit = generators::qft(10);
        let dag = CircuitDag::from_circuit(&circuit);
        let mut planner = Planner::new(PlanEffort::Thorough);
        planner.trace_accesses = 0;
        let p = planner.plan_single(&circuit, &dag, 5).unwrap();
        p.validate(&dag, 5).unwrap();
    }
}

//! The worker-pool batch scheduler.
//!
//! [`Scheduler::run_batch`] executes a vector of [`SimJob`]s concurrently on
//! OS threads. Three resources are managed:
//!
//! * **Workers** — at most `workers` jobs execute at once (each distributed
//!   engine may additionally spawn its own rank threads; those are bounded
//!   by the engine's rank count).
//! * **Resident state vectors** — a counting semaphore caps the number of
//!   jobs holding live simulation state at `max_resident`, bounding peak
//!   memory at roughly `max_resident × 2^{n_max} × 16` bytes regardless of
//!   batch size or worker count.
//! * **Plans** — partitioning goes through the shared [`PlanCache`], so
//!   structurally identical jobs plan once (with in-flight deduplication).
//!
//! The plan–execute pipeline itself lives in [`crate::pool::JobRunner`] —
//! the scheduler drives it with inert [`JobControl`]s, and the long-lived
//! `hisvsim-service` drives the very same core with real cancellation
//! tokens and progress callbacks. Results are returned in submission order
//! with per-job and per-batch accounting (engine choice, plan time, cache
//! hit rate).

use crate::cache::{CacheStats, PlanCache};
use crate::job::{JobResult, SimJob};
use crate::planner::PlanEffort;
use crate::pool::{JobControl, JobError, JobRunner, ProcessBackend, Semaphore};
use crate::selector::{EngineKind, EngineSelector};
use hisvsim_obs::{ProfileMode, ProfileStore};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Scheduler configuration.
#[derive(Clone)]
pub struct SchedulerConfig {
    /// Worker threads executing jobs concurrently.
    pub workers: usize,
    /// Maximum jobs holding live simulation state at once (the memory
    /// bound `K`).
    pub max_resident: usize,
    /// Plan-cache capacity in entries; `0` disables caching entirely
    /// (every job plans from scratch — the ablation the batch example
    /// measures).
    pub cache_capacity: usize,
    /// Planning effort invested on cache misses.
    pub effort: PlanEffort,
    /// The engine selector (thresholds + network model).
    pub selector: EngineSelector,
    /// Keep each job's final state in its [`JobResult`]. Disable for
    /// fire-and-forget sampling workloads where only counts/expectations
    /// matter, so batch memory stays bounded by `max_resident`.
    pub retain_states: bool,
    /// The multi-process execution backend jobs with
    /// [`Backend::Process`](crate::job::Backend::Process) run on (e.g.
    /// `hisvsim_net::ClusterLauncher`); `None` rejects such jobs.
    pub process_backend: Option<Arc<dyn ProcessBackend>>,
    /// The measured-cost profile the runner consults for calibrated
    /// engine/strategy decisions and feeds with per-job phase timings.
    /// Each config gets its own store by default (no process-global
    /// calibration state); share one `Arc` to pool measurements across
    /// schedulers, or freeze it ([`ProfileMode::Frozen`]) to pin
    /// decisions.
    pub profile: Arc<ProfileStore>,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .clamp(1, 8);
        Self {
            workers,
            max_resident: workers,
            cache_capacity: 256,
            effort: PlanEffort::Fast,
            selector: EngineSelector::default(),
            retain_states: true,
            process_backend: None,
            profile: Arc::new(ProfileStore::default()),
        }
    }
}

impl std::fmt::Debug for SchedulerConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SchedulerConfig")
            .field("workers", &self.workers)
            .field("max_resident", &self.max_resident)
            .field("cache_capacity", &self.cache_capacity)
            .field("effort", &self.effort)
            .field("selector", &self.selector)
            .field("retain_states", &self.retain_states)
            .field(
                "process_backend",
                &self.process_backend.as_ref().map(|b| b.ranks()),
            )
            .field("profile_mode", &self.profile.mode())
            .field("profile_warm", &self.profile.warm())
            .finish()
    }
}

impl SchedulerConfig {
    /// Builder: set the worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Builder: set the resident-state bound `K`.
    pub fn with_max_resident(mut self, k: usize) -> Self {
        self.max_resident = k.max(1);
        self
    }

    /// Builder: set the planning effort.
    pub fn with_effort(mut self, effort: PlanEffort) -> Self {
        self.effort = effort;
        self
    }

    /// Builder: set the engine selector.
    pub fn with_selector(mut self, selector: EngineSelector) -> Self {
        self.selector = selector;
        self
    }

    /// Builder: disable the plan cache (ablation mode).
    pub fn without_cache(mut self) -> Self {
        self.cache_capacity = 0;
        self
    }

    /// Builder: register the multi-process execution backend serving
    /// [`Backend::Process`](crate::job::Backend::Process) jobs.
    pub fn with_process_backend(mut self, backend: Arc<dyn ProcessBackend>) -> Self {
        self.process_backend = Some(backend);
        self
    }

    /// Builder: share an existing measured-cost profile store (e.g. one
    /// pre-seeded from a persisted profile or a microbench run).
    pub fn with_profile_store(mut self, profile: Arc<ProfileStore>) -> Self {
        self.profile = profile;
        self
    }

    /// Builder: set the profile mode on the current store
    /// ([`ProfileMode::Frozen`] pins calibrated decisions).
    pub fn with_profile_mode(self, mode: ProfileMode) -> Self {
        self.profile.set_mode(mode);
        self
    }
}

/// Per-batch aggregate statistics ([`RunReport`](hisvsim_core::RunReport)-
/// style, one level up).
#[derive(Debug, Clone)]
pub struct BatchStats {
    /// Number of jobs executed.
    pub jobs: usize,
    /// Wall-clock seconds for the whole batch.
    pub total_wall_s: f64,
    /// Sum of per-job wall times (> `total_wall_s` ⇒ concurrency paid off).
    pub job_wall_sum_s: f64,
    /// Seconds spent planning across the batch (cache misses only).
    pub plan_time_s: f64,
    /// Plan-cache counters for this batch (delta, not lifetime).
    pub cache: CacheStats,
    /// Jobs per engine, indexed by [`EngineKind::index`] (the
    /// [`EngineKind::ALL`] order).
    pub engine_counts: [usize; 4],
    /// Total measurement shots sampled.
    pub shots: usize,
}

impl BatchStats {
    /// Cache hit rate within this batch.
    pub fn cache_hit_rate(&self) -> f64 {
        self.cache.hit_rate()
    }
}

impl std::fmt::Display for BatchStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "batch: {} jobs in {:.3} s (sum of job times {:.3} s)",
            self.jobs, self.total_wall_s, self.job_wall_sum_s
        )?;
        write!(f, "engines:")?;
        for (kind, count) in EngineKind::ALL.iter().zip(self.engine_counts) {
            if count > 0 {
                write!(f, " {kind}={count}")?;
            }
        }
        writeln!(f)?;
        writeln!(
            f,
            "plan cache: {} hits / {} misses ({:.0}% hit rate), {:.3} s planning",
            self.cache.hits + self.cache.warm_hits,
            self.cache.misses,
            100.0 * self.cache.hit_rate(),
            self.plan_time_s
        )
    }
}

/// A batch's results (submission order) plus aggregate statistics.
#[derive(Debug)]
pub struct BatchReport {
    /// Per-job results, indexed like the submitted vector.
    pub results: Vec<JobResult>,
    /// Aggregate statistics.
    pub stats: BatchStats,
}

/// The concurrent batch scheduler. Cheap to share behind an `Arc`; the plan
/// cache persists across batches, so a long-lived scheduler keeps getting
/// faster on recurring circuit structures.
pub struct Scheduler {
    runner: JobRunner,
}

impl Scheduler {
    /// Create a scheduler (allocates the persistent plan cache).
    pub fn new(config: SchedulerConfig) -> Self {
        Self {
            runner: JobRunner::new(config),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &SchedulerConfig {
        self.runner.config()
    }

    /// The persistent plan cache (for inspection; stats survive batches).
    pub fn cache(&self) -> &PlanCache {
        self.runner.cache()
    }

    /// The underlying job-execution core (shared with the service layer).
    pub fn runner(&self) -> &JobRunner {
        &self.runner
    }

    /// Execute every job and return results in submission order.
    ///
    /// # Panics
    ///
    /// Panics if a job's *explicit* limit override is below its circuit's
    /// largest gate arity (automatic limits always respect the arity
    /// floor), if a worker thread panics, or if a
    /// [`Backend::Process`](crate::job::Backend::Process) job fails in the
    /// launcher/worker pipeline — batch mode has no per-job error surface;
    /// use `hisvsim-service` for workloads that must survive individual
    /// job failures (it converts the same errors to `JobFailure::Failed`).
    pub fn run_batch(&self, jobs: Vec<SimJob>) -> BatchReport {
        let start = Instant::now();
        let cache_before = self.cache().stats();
        let num_jobs = jobs.len();

        let queue: Mutex<VecDeque<(usize, SimJob)>> =
            Mutex::new(jobs.into_iter().enumerate().collect());
        let results: Mutex<Vec<Option<JobResult>>> =
            Mutex::new((0..num_jobs).map(|_| None).collect());
        let residency = Semaphore::new(self.config().max_resident.max(1));
        let control = JobControl::new();

        let worker_count = self.config().workers.clamp(1, num_jobs.max(1));
        std::thread::scope(|scope| {
            for _ in 0..worker_count {
                scope.spawn(|| loop {
                    let Some((index, job)) = queue.lock().expect("job queue poisoned").pop_front()
                    else {
                        return;
                    };
                    let result = match self.runner.execute_job(index, job, &residency, &control) {
                        Ok(result) => result,
                        Err(e @ (JobError::PlanFailed { .. } | JobError::Backend { .. })) => {
                            panic!("{e}")
                        }
                        Err(JobError::Cancelled) => {
                            unreachable!("run_batch uses an inert control")
                        }
                    };
                    results.lock().expect("result board poisoned")[index] = Some(result);
                });
            }
        });

        let results: Vec<JobResult> = results
            .into_inner()
            .expect("result board poisoned")
            .into_iter()
            .enumerate()
            .map(|(i, slot)| slot.unwrap_or_else(|| panic!("job {i} produced no result")))
            .collect();

        let mut engine_counts = [0usize; 4];
        for r in &results {
            engine_counts[r.engine.index()] += 1;
        }
        let stats = BatchStats {
            jobs: num_jobs,
            total_wall_s: start.elapsed().as_secs_f64(),
            job_wall_sum_s: results.iter().map(|r| r.wall_time_s).sum(),
            plan_time_s: results.iter().map(|r| r.plan_time_s).sum(),
            cache: self.cache().stats().since(&cache_before),
            engine_counts,
            shots: results
                .iter()
                .map(|r| r.counts.values().sum::<usize>())
                .sum(),
        };
        BatchReport { results, stats }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selector::EngineSelector;
    use hisvsim_circuit::generators;
    use hisvsim_statevec::run_circuit;

    fn scaled_config() -> SchedulerConfig {
        SchedulerConfig::default()
            .with_workers(4)
            .with_selector(EngineSelector::scaled(4, 8))
    }

    #[test]
    fn every_engine_choice_matches_the_flat_reference() {
        let scheduler = Scheduler::new(scaled_config());
        // Widths walking the selector ladder: baseline, hier, multilevel.
        let jobs: Vec<SimJob> = [4usize, 6, 9]
            .iter()
            .map(|&n| SimJob::new(generators::qft(n)))
            .collect();
        let expected: Vec<_> = jobs.iter().map(|j| run_circuit(&j.circuit)).collect();
        let batch = scheduler.run_batch(jobs);
        let engines: Vec<EngineKind> = batch.results.iter().map(|r| r.engine).collect();
        assert_eq!(
            engines,
            vec![
                EngineKind::Baseline,
                EngineKind::Hier,
                EngineKind::Multilevel
            ]
        );
        for (result, expected) in batch.results.iter().zip(&expected) {
            assert!(
                result.state.as_ref().unwrap().approx_eq(expected, 1e-9),
                "job {} ({}) diverged",
                result.job_index,
                result.engine
            );
        }
    }

    #[test]
    fn forced_engines_are_used_and_still_correct() {
        let scheduler = Scheduler::new(scaled_config());
        let circuit = generators::by_name("ising", 8);
        let expected = run_circuit(&circuit);
        let jobs: Vec<SimJob> = EngineKind::ALL
            .iter()
            .map(|&engine| SimJob::new(circuit.clone()).with_engine(engine))
            .collect();
        let batch = scheduler.run_batch(jobs);
        for (result, &wanted) in batch.results.iter().zip(EngineKind::ALL.iter()) {
            assert_eq!(result.engine, wanted);
            assert!(result.state.as_ref().unwrap().approx_eq(&expected, 1e-9));
        }
        // Engine histogram: one job each.
        assert_eq!(batch.stats.engine_counts, [1, 1, 1, 1]);
    }

    #[test]
    fn results_return_in_submission_order_under_concurrency() {
        let scheduler = Scheduler::new(scaled_config().with_workers(8));
        let jobs: Vec<SimJob> = (0..12)
            .map(|i| SimJob::new(generators::random_circuit(6, 30 + i, i as u64)))
            .collect();
        let batch = scheduler.run_batch(jobs);
        for (i, result) in batch.results.iter().enumerate() {
            assert_eq!(result.job_index, i);
        }
        assert_eq!(batch.stats.jobs, 12);
    }

    #[test]
    fn tight_residency_bound_completes_without_deadlock() {
        let scheduler = Scheduler::new(scaled_config().with_workers(6).with_max_resident(1));
        let jobs: Vec<SimJob> = (0..8)
            .map(|i| SimJob::new(generators::random_circuit(6, 40, i)))
            .collect();
        let expected: Vec<_> = jobs.iter().map(|j| run_circuit(&j.circuit)).collect();
        let batch = scheduler.run_batch(jobs);
        for (result, expected) in batch.results.iter().zip(&expected) {
            assert!(result.state.as_ref().unwrap().approx_eq(expected, 1e-9));
        }
    }

    #[test]
    fn repeated_structures_hit_the_cache_and_agree_exactly() {
        let scheduler = Scheduler::new(scaled_config());
        // Two submissions of the same structure under different names, plus
        // one structurally different job in between.
        let mut first = generators::qft(7);
        first.name = "tenant-a".into();
        let mut second = generators::qft(7);
        second.name = "tenant-b".into();
        let other = generators::by_name("bv", 7);

        let batch = scheduler.run_batch(vec![
            SimJob::new(first),
            SimJob::new(other),
            SimJob::new(second),
        ]);
        let hits: Vec<bool> = batch.results.iter().map(|r| r.plan_cache_hit).collect();
        assert_eq!(
            hits.iter().filter(|&&h| h).count(),
            1,
            "exactly the repeat hits"
        );
        assert!(batch.results[2].plan_cache_hit || batch.results[0].plan_cache_hit);

        // Identical plans ⇒ identical execution ⇒ identical amplitudes
        // (same engine, same partition, same gate order: bitwise equal).
        let a = batch.results[0].state.as_ref().unwrap();
        let b = batch.results[2].state.as_ref().unwrap();
        assert_eq!(a, b, "cached plan changed the result");
        assert!(batch.stats.cache_hit_rate() > 0.0);
    }

    #[test]
    fn shots_and_observables_are_deterministic_per_seed() {
        let mut config = scaled_config();
        config.retain_states = false;
        let scheduler = Scheduler::new(config);
        let make_jobs = || {
            vec![SimJob::new(generators::cat_state(6))
                .with_shots(2000)
                .with_observables(vec![0, 5])
                .with_seed(7)]
        };
        let a = scheduler.run_batch(make_jobs());
        let b = scheduler.run_batch(make_jobs());
        assert!(
            a.results[0].state.is_none(),
            "retain_states=false must drop states"
        );
        assert_eq!(a.results[0].counts, b.results[0].counts);
        // GHZ: only |00…0⟩ and |11…1⟩ appear; ⟨Z⟩ = 0 on every qubit.
        let total: usize = a.results[0].counts.values().sum();
        assert_eq!(total, 2000);
        for &outcome in a.results[0].counts.keys() {
            assert!(outcome == 0 || outcome == 0b111111);
        }
        for &(_, z) in &a.results[0].z_expectations {
            assert!(z.abs() < 0.1, "GHZ marginals are maximally mixed, got {z}");
        }
    }

    #[test]
    fn explicit_limit_above_local_width_is_clamped_not_fatal() {
        // Regression: a Dist/Multilevel job whose explicit limit exceeds the
        // per-rank local qubit count must be clamped (as the engine's own
        // `run` clamps), not panic inside a worker thread.
        let scheduler = Scheduler::new(scaled_config());
        let circuit = generators::qft(9);
        let expected = run_circuit(&circuit);
        let batch = scheduler.run_batch(vec![
            SimJob::new(circuit.clone())
                .with_engine(EngineKind::Dist)
                .with_limit(9),
            SimJob::new(circuit.clone())
                .with_engine(EngineKind::Multilevel)
                .with_limit(9),
        ]);
        for result in &batch.results {
            assert!(result.state.as_ref().unwrap().approx_eq(&expected, 1e-9));
        }
    }

    #[test]
    fn batch_stats_report_cache_and_planning() {
        let scheduler = Scheduler::new(scaled_config());
        let jobs: Vec<SimJob> = (0..6).map(|_| SimJob::new(generators::qft(7))).collect();
        let batch = scheduler.run_batch(jobs);
        assert_eq!(
            batch.stats.cache.misses, 1,
            "one structure ⇒ one planning miss"
        );
        assert_eq!(batch.stats.cache.hits, 5);
        assert!((batch.stats.cache_hit_rate() - 5.0 / 6.0).abs() < 1e-12);
        let rendered = format!("{}", batch.stats);
        assert!(rendered.contains("hit rate"));
        // Disabled cache: same batch, all misses, zero hits.
        let no_cache = Scheduler::new(scaled_config().without_cache());
        let jobs: Vec<SimJob> = (0..4).map(|_| SimJob::new(generators::qft(7))).collect();
        let batch = no_cache.run_batch(jobs);
        assert_eq!(batch.stats.cache.hits, 0);
        assert_eq!(
            batch.stats.cache.misses, 0,
            "disabled cache records no lookups"
        );
    }
}

//! The partition-plan cache.
//!
//! DAG construction + acyclic partitioning is a pure function of circuit
//! *structure*, and so is gate fusion — which is why the cache stores the
//! plan in its *fused* form ([`FusedSinglePlan`] / [`FusedTwoLevelPlan`]):
//! a warm hit skips partitioning *and* fusion (the greedy scan plus every
//! fused-group matrix product), leaving only the state-vector sweeps. The
//! cache key is the structural
//! [`Circuit::fingerprint`](hisvsim_circuit::Circuit::fingerprint) plus the
//! plan's shape parameters (limit, second-level limit, fusion width, planner
//! effort); the cached value is the immutable fused plan behind an `Arc`,
//! shared by every concurrent execution.
//!
//! Two properties matter under a concurrent scheduler:
//!
//! * **In-flight deduplication** — when eight identical jobs arrive at once,
//!   exactly one worker computes the plan while the other seven block on the
//!   per-key entry lock and then count as hits. Without this, a cold cache
//!   would plan the same circuit once per worker.
//! * **Bounded size** — entries are evicted least-recently-used once
//!   `capacity` is exceeded; pending (in-flight) entries are never evicted.

use hisvsim_core::{FusedSinglePlan, FusedTwoLevelPlan};
use hisvsim_partition::PartitionBuildError;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Cache key: structural fingerprint plus plan shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// [`Circuit::fingerprint`](hisvsim_circuit::Circuit::fingerprint) of
    /// the job's circuit.
    pub fingerprint: u64,
    /// Working-set limit (first-level limit for two-level plans).
    pub limit: usize,
    /// Second-level limit; 0 for single-level plans.
    pub second_limit: usize,
    /// Gate-fusion width the plan's inner circuits were fused at.
    pub fusion: usize,
    /// Planner effort that produced the plan (plans of different effort are
    /// different cache entries).
    pub effort: crate::planner::PlanEffort,
}

/// A memoized plan, stored prefused so warm hits skip partitioning and
/// fusion alike.
#[derive(Debug, Clone)]
pub enum CachedPlan {
    /// Single-level fused plan (hier / dist engines).
    Single(Arc<FusedSinglePlan>),
    /// Two-level fused plan (multilevel engine).
    Two(Arc<FusedTwoLevelPlan>),
}

impl CachedPlan {
    /// The single-level plan, panicking on shape mismatch (the key's
    /// `second_limit` field makes mismatches impossible within the runtime).
    pub fn expect_single(&self) -> &Arc<FusedSinglePlan> {
        match self {
            CachedPlan::Single(p) => p,
            CachedPlan::Two(_) => panic!("expected a single-level plan"),
        }
    }

    /// The two-level plan, panicking on shape mismatch.
    pub fn expect_two(&self) -> &Arc<FusedTwoLevelPlan> {
        match self {
            CachedPlan::Two(p) => p,
            CachedPlan::Single(_) => panic!("expected a two-level plan"),
        }
    }

    /// Number of (first-level) parts — the quantity planning minimises.
    pub fn num_parts(&self) -> usize {
        match self {
            CachedPlan::Single(p) => p.partition.num_parts(),
            CachedPlan::Two(plan) => plan.ml.num_first_level_parts(),
        }
    }
}

/// Hit/miss/eviction counters, surfaced in batch reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from a present (or just-computed-by-another-worker)
    /// entry.
    pub hits: u64,
    /// Lookups that had to compute the plan.
    pub misses: u64,
    /// Entries evicted by the LRU bound.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
}

impl CacheStats {
    /// Hits over total lookups (0.0 when the cache was never consulted).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Counter-wise difference (`self - earlier`), for per-batch deltas.
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            evictions: self.evictions - earlier.evictions,
            entries: self.entries,
        }
    }
}

/// One slot: the plan once computed, plus its LRU stamp.
struct Slot {
    value: Mutex<Option<CachedPlan>>,
    last_used: AtomicU64,
}

/// The concurrent plan cache. Cheap to share (`Arc<PlanCache>`); all methods
/// take `&self`.
#[derive(Default)]
pub struct PlanCache {
    map: Mutex<HashMap<PlanKey, Arc<Slot>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    tick: AtomicU64,
    capacity: usize,
}

impl PlanCache {
    /// A cache holding at most `capacity` plans (LRU-evicted beyond that).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            ..Default::default()
        }
    }

    /// Look up the plan for `key`, computing (and inserting) it with
    /// `compute` on a miss. Concurrent callers with the same key block until
    /// the first finishes and then observe a hit. Failed computations are
    /// not cached; the error is returned and the slot removed so a later
    /// submission can retry.
    pub fn get_or_plan<F>(
        &self,
        key: PlanKey,
        compute: F,
    ) -> Result<(CachedPlan, bool), PartitionBuildError>
    where
        F: FnOnce() -> Result<CachedPlan, PartitionBuildError>,
    {
        let stamp = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        let slot = {
            let mut map = self.map.lock().expect("plan cache poisoned");
            let slot = Arc::clone(map.entry(key).or_insert_with(|| {
                Arc::new(Slot {
                    value: Mutex::new(None),
                    last_used: AtomicU64::new(stamp),
                })
            }));
            slot.last_used.store(stamp, Ordering::Relaxed);
            slot
        };

        // The per-key lock serialises computation for this key only.
        let mut value = slot.value.lock().expect("plan slot poisoned");
        if let Some(plan) = value.as_ref() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok((plan.clone(), true));
        }
        match compute() {
            Ok(plan) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                *value = Some(plan.clone());
                drop(value);
                self.enforce_capacity(&key);
                Ok((plan, false))
            }
            Err(e) => {
                drop(value);
                // Forget the failed slot so future submissions retry.
                self.map.lock().expect("plan cache poisoned").remove(&key);
                Err(e)
            }
        }
    }

    /// Evict least-recently-used completed entries beyond `capacity`,
    /// keeping `just_inserted` and all pending entries.
    fn enforce_capacity(&self, just_inserted: &PlanKey) {
        let mut map = self.map.lock().expect("plan cache poisoned");
        while map.len() > self.capacity {
            let victim = map
                .iter()
                .filter(|(k, slot)| {
                    *k != just_inserted
                        && slot.value.try_lock().map(|v| v.is_some()).unwrap_or(false)
                })
                .min_by_key(|(_, slot)| slot.last_used.load(Ordering::Relaxed))
                .map(|(k, _)| *k);
            match victim {
                Some(k) => {
                    map.remove(&k);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
                None => break, // everything else is pending or protected
            }
        }
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.map.lock().expect("plan cache poisoned").len(),
        }
    }

    /// Drop every entry (counters are kept).
    pub fn clear(&self) {
        self.map.lock().expect("plan cache poisoned").clear();
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

impl std::fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanCache")
            .field("capacity", &self.capacity)
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::{PlanEffort, Planner};
    use hisvsim_circuit::generators;
    use hisvsim_dag::CircuitDag;

    fn key_of(circuit: &hisvsim_circuit::Circuit, limit: usize) -> PlanKey {
        PlanKey {
            fingerprint: circuit.fingerprint(),
            limit,
            second_limit: 0,
            fusion: 3,
            effort: PlanEffort::Fast,
        }
    }

    fn plan_for(circuit: &hisvsim_circuit::Circuit, limit: usize) -> CachedPlan {
        let dag = CircuitDag::from_circuit(circuit);
        CachedPlan::Single(Arc::new(
            Planner::default()
                .plan_single_fused(circuit, &dag, limit, 3)
                .unwrap(),
        ))
    }

    #[test]
    fn second_identical_submit_is_a_hit_with_the_same_plan() {
        let cache = PlanCache::new(8);
        let circuit = generators::qft(10);
        let key = key_of(&circuit, 5);

        let (first, hit1) = cache
            .get_or_plan(key, || Ok(plan_for(&circuit, 5)))
            .unwrap();
        assert!(!hit1, "cold cache must miss");
        let (second, hit2) = cache
            .get_or_plan(key, || panic!("second submit must not recompute"))
            .unwrap();
        assert!(hit2, "identical resubmission must hit");
        // The very same Arc is shared, so the executed plan is identical.
        assert!(Arc::ptr_eq(first.expect_single(), second.expect_single()));

        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn different_limits_are_different_entries() {
        let cache = PlanCache::new(8);
        let circuit = generators::qft(10);
        for limit in [4usize, 5, 6] {
            let (_, hit) = cache
                .get_or_plan(key_of(&circuit, limit), || Ok(plan_for(&circuit, limit)))
                .unwrap();
            assert!(!hit);
        }
        assert_eq!(cache.stats().entries, 3);
    }

    #[test]
    fn lru_eviction_respects_capacity_and_recency() {
        let cache = PlanCache::new(2);
        let a = generators::qft(8);
        let b = generators::cat_state(8);
        let c = generators::by_name("bv", 8);
        cache
            .get_or_plan(key_of(&a, 4), || Ok(plan_for(&a, 4)))
            .unwrap();
        cache
            .get_or_plan(key_of(&b, 4), || Ok(plan_for(&b, 4)))
            .unwrap();
        // Touch `a` so `b` is the LRU victim.
        cache.get_or_plan(key_of(&a, 4), || unreachable!()).unwrap();
        cache
            .get_or_plan(key_of(&c, 4), || Ok(plan_for(&c, 4)))
            .unwrap();

        let stats = cache.stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.evictions, 1);
        // `a` survived; `b` was evicted and must recompute.
        let (_, hit_a) = cache.get_or_plan(key_of(&a, 4), || unreachable!()).unwrap();
        assert!(hit_a);
        let (_, hit_b) = cache
            .get_or_plan(key_of(&b, 4), || Ok(plan_for(&b, 4)))
            .unwrap();
        assert!(!hit_b);
    }

    #[test]
    fn concurrent_identical_submissions_compute_once() {
        use std::sync::atomic::AtomicUsize;
        let cache = Arc::new(PlanCache::new(8));
        let circuit = Arc::new(generators::qft(10));
        let computations = Arc::new(AtomicUsize::new(0));
        let key = key_of(&circuit, 5);

        std::thread::scope(|scope| {
            for _ in 0..8 {
                let cache = Arc::clone(&cache);
                let circuit = Arc::clone(&circuit);
                let computations = Arc::clone(&computations);
                scope.spawn(move || {
                    cache
                        .get_or_plan(key, || {
                            computations.fetch_add(1, Ordering::SeqCst);
                            Ok(plan_for(&circuit, 5))
                        })
                        .unwrap();
                });
            }
        });

        assert_eq!(
            computations.load(Ordering::SeqCst),
            1,
            "in-flight dedup failed"
        );
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 7);
    }

    #[test]
    fn failed_plans_are_not_cached() {
        let cache = PlanCache::new(8);
        let circuit = generators::adder(8); // Toffolis: arity 3
        let dag = CircuitDag::from_circuit(&circuit);
        let key = key_of(&circuit, 2);
        let attempt = cache.get_or_plan(key, || {
            Planner::default()
                .plan_single_fused(&circuit, &dag, 2, 3)
                .map(|p| CachedPlan::Single(Arc::new(p)))
        });
        assert!(attempt.is_err());
        assert_eq!(cache.stats().entries, 0);
        // A later submission retries (and may succeed at a higher limit).
        let (_, hit) = cache
            .get_or_plan(key_of(&circuit, 4), || Ok(plan_for(&circuit, 4)))
            .unwrap();
        assert!(!hit);
    }

    #[test]
    fn plans_serialize_and_roundtrip() {
        // The "plans are serializable" contract: the partition inside a
        // cached plan can be shipped to another process (future sharded
        // runtime) and reused verbatim — the receiver re-fuses locally.
        use hisvsim_dag::Partition;
        use hisvsim_partition::MultilevelPartition;
        let circuit = generators::qft(9);
        let dag = CircuitDag::from_circuit(&circuit);
        let plan = Planner::default().plan_single(&circuit, &dag, 5).unwrap();
        let json = serde_json::to_string(&plan).unwrap();
        let back: Partition = serde_json::from_str(&json).unwrap();
        assert_eq!(plan, back);
        back.validate(&dag, 5).unwrap();

        let ml = Planner::default().plan_two_level(&dag, 6, 3).unwrap();
        let json = serde_json::to_string(&ml).unwrap();
        let back: MultilevelPartition = serde_json::from_str(&json).unwrap();
        assert_eq!(ml.first, back.first);
        assert_eq!(
            ml.total_second_level_parts(),
            back.total_second_level_parts()
        );
    }
}

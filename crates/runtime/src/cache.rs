//! The partition-plan cache.
//!
//! DAG construction + acyclic partitioning is a pure function of circuit
//! *structure*, and so is gate fusion — which is why the cache stores the
//! plan in its *fused* form ([`FusedSinglePlan`] / [`FusedTwoLevelPlan`]):
//! a warm hit skips partitioning *and* fusion (the greedy scan plus every
//! fused-group matrix product), leaving only the state-vector sweeps. The
//! cache key is the structural
//! [`Circuit::fingerprint`](hisvsim_circuit::Circuit::fingerprint) plus the
//! plan's shape parameters (limit, second-level limit, fusion width, planner
//! effort); the cached value is the immutable fused plan behind an `Arc`,
//! shared by every concurrent execution.
//!
//! Two properties matter under a concurrent scheduler:
//!
//! * **In-flight deduplication** — when eight identical jobs arrive at once,
//!   exactly one worker computes the plan while the other seven block on the
//!   per-key entry lock and then count as hits. Without this, a cold cache
//!   would plan the same circuit once per worker.
//! * **Bounded size** — entries are evicted least-recently-used once
//!   `capacity` is exceeded; pending (in-flight) entries are never evicted.

use hisvsim_core::{FusedSinglePlan, FusedTwoLevelPlan};
use hisvsim_dag::Partition;
use hisvsim_partition::{MultilevelPartition, PartitionBuildError};
use hisvsim_statevec::FusionStrategy;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Cache key: structural fingerprint plus plan shape.
///
/// Serde is implemented by hand (not derived) so snapshots written before
/// the `strategy` field existed still deserialize: a missing `strategy`
/// maps to [`FusionStrategy::default`], which is exactly what the jobs
/// that produced those entries run with today.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// [`Circuit::fingerprint`](hisvsim_circuit::Circuit::fingerprint) of
    /// the job's circuit.
    pub fingerprint: u64,
    /// Working-set limit (first-level limit for two-level plans).
    pub limit: usize,
    /// Second-level limit; 0 for single-level plans.
    pub second_limit: usize,
    /// Gate-fusion width the plan's inner circuits were fused at.
    pub fusion: usize,
    /// Fusion strategy the plan's inner circuits were built with (jobs
    /// identical except for strategy must never share an entry — the fused
    /// forms differ).
    pub strategy: FusionStrategy,
    /// Planner effort that produced the plan (plans of different effort are
    /// different cache entries).
    pub effort: crate::planner::PlanEffort,
}

impl Serialize for PlanKey {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("fingerprint".to_string(), self.fingerprint.to_value()),
            ("limit".to_string(), self.limit.to_value()),
            ("second_limit".to_string(), self.second_limit.to_value()),
            ("fusion".to_string(), self.fusion.to_value()),
            ("strategy".to_string(), self.strategy.to_value()),
            ("effort".to_string(), self.effort.to_value()),
        ])
    }
}

impl Deserialize for PlanKey {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let field = |name: &str| {
            value
                .get_field(name)
                .ok_or_else(|| serde::Error::missing_field(name))
        };
        Ok(PlanKey {
            fingerprint: Deserialize::from_value(field("fingerprint")?)?,
            limit: Deserialize::from_value(field("limit")?)?,
            second_limit: Deserialize::from_value(field("second_limit")?)?,
            fusion: Deserialize::from_value(field("fusion")?)?,
            // Snapshots written before the strategy knob existed have no
            // field here; they belong to the default strategy.
            strategy: match value.get_field("strategy") {
                Some(strategy) => Deserialize::from_value(strategy)?,
                None => FusionStrategy::default(),
            },
            effort: Deserialize::from_value(field("effort")?)?,
        })
    }
}

/// A memoized plan, stored prefused so warm hits skip partitioning and
/// fusion alike.
#[derive(Debug, Clone)]
pub enum CachedPlan {
    /// Single-level fused plan (hier / dist engines).
    Single(Arc<FusedSinglePlan>),
    /// Two-level fused plan (multilevel engine).
    Two(Arc<FusedTwoLevelPlan>),
}

impl CachedPlan {
    /// The single-level plan, panicking on shape mismatch (the key's
    /// `second_limit` field makes mismatches impossible within the runtime).
    pub fn expect_single(&self) -> &Arc<FusedSinglePlan> {
        match self {
            CachedPlan::Single(p) => p,
            CachedPlan::Two(_) => panic!("expected a single-level plan"),
        }
    }

    /// The two-level plan, panicking on shape mismatch.
    pub fn expect_two(&self) -> &Arc<FusedTwoLevelPlan> {
        match self {
            CachedPlan::Two(p) => p,
            CachedPlan::Single(_) => panic!("expected a two-level plan"),
        }
    }

    /// Number of (first-level) parts — the quantity planning minimises.
    pub fn num_parts(&self) -> usize {
        match self {
            CachedPlan::Single(p) => p.partition.num_parts(),
            CachedPlan::Two(plan) => plan.ml.num_first_level_parts(),
        }
    }

    /// The plan's partition skeleton in its disk/wire shape — what the
    /// snapshot persists and what a process backend ships to remote workers
    /// (which re-fuse locally).
    pub fn to_persisted(&self) -> PersistedPlan {
        match self {
            CachedPlan::Single(plan) => PersistedPlan::Single(plan.partition.clone()),
            CachedPlan::Two(plan) => PersistedPlan::Two(plan.ml.clone()),
        }
    }
}

/// The partition skeleton of a cached plan in its disk-persistable form:
/// partitioning is the expensive pure function worth keeping across process
/// restarts, while fused matrices are cheap to rebuild and are therefore
/// re-derived ("re-fused") from the partition on first use after a reload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum PersistedPlan {
    /// A single-level partition (hier / dist engines).
    Single(Partition),
    /// A two-level partition (multilevel engine).
    Two(MultilevelPartition),
}

/// Where a served plan came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanSource {
    /// Found fused in memory (or computed by a concurrent worker while this
    /// one waited on the per-key lock).
    Memory,
    /// Rebuilt from a disk-persisted partition: partitioning skipped, only
    /// re-fusion paid.
    Warm,
    /// Planned from scratch.
    Planned,
}

impl PlanSource {
    /// True unless the plan was computed from scratch.
    pub fn is_hit(self) -> bool {
        !matches!(self, PlanSource::Planned)
    }
}

/// Hit/miss/eviction counters, surfaced in batch reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from a present (or just-computed-by-another-worker)
    /// entry.
    pub hits: u64,
    /// Lookups served by re-fusing a disk-persisted partition (no
    /// partitioning work, only re-fusion).
    pub warm_hits: u64,
    /// Lookups that had to compute the plan from scratch.
    pub misses: u64,
    /// Entries evicted by the LRU bound.
    pub evictions: u64,
    /// Lookups that blocked on another worker's in-flight computation of
    /// the same key and then observed its result (deduplicated planning
    /// work; these also count as `hits`).
    pub inflight_dedups: u64,
    /// Entries currently resident.
    pub entries: usize,
}

impl CacheStats {
    /// Hits (in-memory + warm) over total lookups (0.0 when the cache was
    /// never consulted).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.warm_hits + self.misses;
        if total == 0 {
            0.0
        } else {
            (self.hits + self.warm_hits) as f64 / total as f64
        }
    }

    /// Counter-wise difference (`self - earlier`), for per-batch deltas.
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits - earlier.hits,
            warm_hits: self.warm_hits - earlier.warm_hits,
            misses: self.misses - earlier.misses,
            evictions: self.evictions - earlier.evictions,
            inflight_dedups: self.inflight_dedups - earlier.inflight_dedups,
            entries: self.entries,
        }
    }
}

/// One slot: the plan once computed, plus its LRU stamp.
struct Slot {
    value: Mutex<Option<CachedPlan>>,
    last_used: AtomicU64,
}

/// The concurrent plan cache. Cheap to share (`Arc<PlanCache>`); all methods
/// take `&self`.
#[derive(Default)]
pub struct PlanCache {
    map: Mutex<HashMap<PlanKey, Arc<Slot>>>,
    /// Disk-loaded partitions awaiting their first use (each is promoted —
    /// re-fused — into `map` on first lookup, then removed from here).
    warm: Mutex<HashMap<PlanKey, PersistedPlan>>,
    hits: AtomicU64,
    warm_hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    inflight_dedups: AtomicU64,
    tick: AtomicU64,
    capacity: usize,
}

impl PlanCache {
    /// A cache holding at most `capacity` plans (LRU-evicted beyond that).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            ..Default::default()
        }
    }

    /// Look up the plan for `key`, computing (and inserting) it with
    /// `compute` on a miss. Concurrent callers with the same key block until
    /// the first finishes and then observe a hit. Failed computations are
    /// not cached; the error is returned and the slot removed so a later
    /// submission can retry.
    pub fn get_or_plan<F>(
        &self,
        key: PlanKey,
        compute: F,
    ) -> Result<(CachedPlan, bool), PartitionBuildError>
    where
        F: FnOnce() -> Result<CachedPlan, PartitionBuildError>,
    {
        self.get_or_plan_tracked(key, || compute().map(|plan| (plan, PlanSource::Planned)))
            .map(|(plan, source)| (plan, source.is_hit()))
    }

    /// [`PlanCache::get_or_plan`] with provenance: `compute` reports whether
    /// it planned from scratch ([`PlanSource::Planned`]) or rebuilt a
    /// disk-persisted partition ([`PlanSource::Warm`], see
    /// [`PlanCache::take_warm`]), and the counters attribute the lookup
    /// accordingly.
    pub fn get_or_plan_tracked<F>(
        &self,
        key: PlanKey,
        compute: F,
    ) -> Result<(CachedPlan, PlanSource), PartitionBuildError>
    where
        F: FnOnce() -> Result<(CachedPlan, PlanSource), PartitionBuildError>,
    {
        let stamp = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        let slot = {
            let mut map = self.map.lock().expect("plan cache poisoned");
            let slot = Arc::clone(map.entry(key).or_insert_with(|| {
                Arc::new(Slot {
                    value: Mutex::new(None),
                    last_used: AtomicU64::new(stamp),
                })
            }));
            slot.last_used.store(stamp, Ordering::Relaxed);
            slot
        };

        // The per-key lock serialises computation for this key only. A
        // contended lock here means another worker is planning this exact
        // key right now — if its result is there once the lock is acquired,
        // this lookup was an in-flight dedup (a hit that never existed in
        // the map when the lookup started).
        let contended = slot.value.try_lock().is_err();
        let mut value = slot.value.lock().expect("plan slot poisoned");
        if let Some(plan) = value.as_ref() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            if contended {
                self.inflight_dedups.fetch_add(1, Ordering::Relaxed);
            }
            return Ok((plan.clone(), PlanSource::Memory));
        }
        match compute() {
            Ok((plan, source)) => {
                match source {
                    PlanSource::Warm => self.warm_hits.fetch_add(1, Ordering::Relaxed),
                    _ => self.misses.fetch_add(1, Ordering::Relaxed),
                };
                *value = Some(plan.clone());
                drop(value);
                self.enforce_capacity(&key);
                Ok((plan, source))
            }
            Err(e) => {
                drop(value);
                // Forget the failed slot so future submissions retry.
                self.map.lock().expect("plan cache poisoned").remove(&key);
                Err(e)
            }
        }
    }

    /// Remove and return the disk-persisted partition for `key`, if one was
    /// loaded. Called from inside a `compute` closure: the caller re-fuses
    /// the partition against its circuit and returns the rebuilt plan with
    /// [`PlanSource::Warm`], so the entry graduates into the in-memory map.
    pub fn take_warm(&self, key: &PlanKey) -> Option<PersistedPlan> {
        self.warm.lock().expect("warm store poisoned").remove(key)
    }

    /// Number of disk-loaded partitions not yet promoted into memory.
    pub fn warm_len(&self) -> usize {
        self.warm.lock().expect("warm store poisoned").len()
    }

    /// Load a snapshot written by [`PlanCache::save_snapshot`] into the warm
    /// store (merging over whatever is already there). Returns the number of
    /// entries loaded.
    pub fn load_snapshot(&self, path: impl AsRef<Path>) -> std::io::Result<usize> {
        let text = std::fs::read_to_string(path)?;
        let entries: Vec<(PlanKey, PersistedPlan)> = serde_json::from_str(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        let count = entries.len();
        let mut warm = self.warm.lock().expect("warm store poisoned");
        for (key, plan) in entries {
            warm.insert(key, plan);
        }
        Ok(count)
    }

    /// Persist every completed entry's partition (plus any still-unpromoted
    /// warm entries) to `path` as JSON, so the next process starts warm.
    /// Fused matrices are intentionally not persisted — receivers re-fuse on
    /// first use, keeping the snapshot small and the fused form
    /// process-local. Returns the number of entries written.
    pub fn save_snapshot(&self, path: impl AsRef<Path>) -> std::io::Result<usize> {
        let mut entries: Vec<(PlanKey, PersistedPlan)> = {
            let warm = self.warm.lock().expect("warm store poisoned");
            warm.iter().map(|(k, v)| (*k, v.clone())).collect()
        };
        {
            let map = self.map.lock().expect("plan cache poisoned");
            for (key, slot) in map.iter() {
                let Ok(value) = slot.value.try_lock() else {
                    continue; // in-flight: nothing completed to persist
                };
                if let Some(plan) = value.as_ref() {
                    entries.push((*key, plan.to_persisted()));
                }
            }
        }
        // Deterministic order keeps snapshots diffable (the full key sorts,
        // so identical keys are adjacent for the dedup below).
        entries.sort_by_key(|(k, _)| {
            (
                k.fingerprint,
                k.limit,
                k.second_limit,
                k.fusion,
                k.strategy.name(),
                k.effort.name(),
            )
        });
        entries.dedup_by_key(|(k, _)| *k);
        let json = serde_json::to_string(&entries)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        let count = entries.len();
        std::fs::write(path, json)?;
        Ok(count)
    }

    /// Evict least-recently-used completed entries beyond `capacity`,
    /// keeping `just_inserted` and all pending entries.
    fn enforce_capacity(&self, just_inserted: &PlanKey) {
        let mut map = self.map.lock().expect("plan cache poisoned");
        while map.len() > self.capacity {
            let victim = map
                .iter()
                .filter(|(k, slot)| {
                    *k != just_inserted
                        && slot.value.try_lock().map(|v| v.is_some()).unwrap_or(false)
                })
                .min_by_key(|(_, slot)| slot.last_used.load(Ordering::Relaxed))
                .map(|(k, _)| *k);
            match victim {
                Some(k) => {
                    map.remove(&k);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
                None => break, // everything else is pending or protected
            }
        }
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            warm_hits: self.warm_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            inflight_dedups: self.inflight_dedups.load(Ordering::Relaxed),
            entries: self.map.lock().expect("plan cache poisoned").len(),
        }
    }

    /// Drop every entry (counters are kept).
    pub fn clear(&self) {
        self.map.lock().expect("plan cache poisoned").clear();
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

impl std::fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanCache")
            .field("capacity", &self.capacity)
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::{PlanEffort, Planner};
    use hisvsim_circuit::generators;
    use hisvsim_dag::CircuitDag;

    fn key_of(circuit: &hisvsim_circuit::Circuit, limit: usize) -> PlanKey {
        PlanKey {
            fingerprint: circuit.fingerprint(),
            limit,
            second_limit: 0,
            fusion: 3,
            strategy: FusionStrategy::Auto,
            effort: PlanEffort::Fast,
        }
    }

    fn plan_for(circuit: &hisvsim_circuit::Circuit, limit: usize) -> CachedPlan {
        let dag = CircuitDag::from_circuit(circuit);
        CachedPlan::Single(Arc::new(
            Planner::default()
                .plan_single_fused(circuit, &dag, limit, 3, FusionStrategy::Auto)
                .unwrap(),
        ))
    }

    #[test]
    fn second_identical_submit_is_a_hit_with_the_same_plan() {
        let cache = PlanCache::new(8);
        let circuit = generators::qft(10);
        let key = key_of(&circuit, 5);

        let (first, hit1) = cache
            .get_or_plan(key, || Ok(plan_for(&circuit, 5)))
            .unwrap();
        assert!(!hit1, "cold cache must miss");
        let (second, hit2) = cache
            .get_or_plan(key, || panic!("second submit must not recompute"))
            .unwrap();
        assert!(hit2, "identical resubmission must hit");
        // The very same Arc is shared, so the executed plan is identical.
        assert!(Arc::ptr_eq(first.expect_single(), second.expect_single()));

        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn different_limits_are_different_entries() {
        let cache = PlanCache::new(8);
        let circuit = generators::qft(10);
        for limit in [4usize, 5, 6] {
            let (_, hit) = cache
                .get_or_plan(key_of(&circuit, limit), || Ok(plan_for(&circuit, limit)))
                .unwrap();
            assert!(!hit);
        }
        assert_eq!(cache.stats().entries, 3);
    }

    #[test]
    fn lru_eviction_respects_capacity_and_recency() {
        let cache = PlanCache::new(2);
        let a = generators::qft(8);
        let b = generators::cat_state(8);
        let c = generators::by_name("bv", 8);
        cache
            .get_or_plan(key_of(&a, 4), || Ok(plan_for(&a, 4)))
            .unwrap();
        cache
            .get_or_plan(key_of(&b, 4), || Ok(plan_for(&b, 4)))
            .unwrap();
        // Touch `a` so `b` is the LRU victim.
        cache.get_or_plan(key_of(&a, 4), || unreachable!()).unwrap();
        cache
            .get_or_plan(key_of(&c, 4), || Ok(plan_for(&c, 4)))
            .unwrap();

        let stats = cache.stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.evictions, 1);
        // `a` survived; `b` was evicted and must recompute.
        let (_, hit_a) = cache.get_or_plan(key_of(&a, 4), || unreachable!()).unwrap();
        assert!(hit_a);
        let (_, hit_b) = cache
            .get_or_plan(key_of(&b, 4), || Ok(plan_for(&b, 4)))
            .unwrap();
        assert!(!hit_b);
    }

    #[test]
    fn concurrent_identical_submissions_compute_once() {
        use std::sync::atomic::AtomicUsize;
        let cache = Arc::new(PlanCache::new(8));
        let circuit = Arc::new(generators::qft(10));
        let computations = Arc::new(AtomicUsize::new(0));
        let key = key_of(&circuit, 5);

        std::thread::scope(|scope| {
            for _ in 0..8 {
                let cache = Arc::clone(&cache);
                let circuit = Arc::clone(&circuit);
                let computations = Arc::clone(&computations);
                scope.spawn(move || {
                    cache
                        .get_or_plan(key, || {
                            computations.fetch_add(1, Ordering::SeqCst);
                            Ok(plan_for(&circuit, 5))
                        })
                        .unwrap();
                });
            }
        });

        assert_eq!(
            computations.load(Ordering::SeqCst),
            1,
            "in-flight dedup failed"
        );
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 7);
    }

    #[test]
    fn failed_plans_are_not_cached() {
        let cache = PlanCache::new(8);
        let circuit = generators::adder(8); // Toffolis: arity 3
        let dag = CircuitDag::from_circuit(&circuit);
        let key = key_of(&circuit, 2);
        let attempt = cache.get_or_plan(key, || {
            Planner::default()
                .plan_single_fused(&circuit, &dag, 2, 3, FusionStrategy::Auto)
                .map(|p| CachedPlan::Single(Arc::new(p)))
        });
        assert!(attempt.is_err());
        assert_eq!(cache.stats().entries, 0);
        // A later submission retries (and may succeed at a higher limit).
        let (_, hit) = cache
            .get_or_plan(key_of(&circuit, 4), || Ok(plan_for(&circuit, 4)))
            .unwrap();
        assert!(!hit);
    }

    #[test]
    fn snapshot_roundtrip_promotes_warm_entries_without_replanning() {
        let dir = std::env::temp_dir().join(format!("hisvsim-cache-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("plans.json");

        // First process: plan once, persist.
        let circuit = generators::qft(10);
        let key = key_of(&circuit, 5);
        let first_cache = PlanCache::new(8);
        let (original, _) = first_cache
            .get_or_plan(key, || Ok(plan_for(&circuit, 5)))
            .unwrap();
        assert_eq!(first_cache.save_snapshot(&path).unwrap(), 1);

        // "Restarted" process: load, then serve the same key by re-fusing
        // the persisted partition — zero partitioning calls.
        let second_cache = PlanCache::new(8);
        assert_eq!(second_cache.load_snapshot(&path).unwrap(), 1);
        assert_eq!(second_cache.warm_len(), 1);
        let (rebuilt, source) = second_cache
            .get_or_plan_tracked(key, || {
                let persisted = second_cache
                    .take_warm(&key)
                    .expect("warm entry must be present");
                let PersistedPlan::Single(partition) = persisted else {
                    panic!("expected a single-level persisted plan");
                };
                let dag = CircuitDag::from_circuit(&circuit);
                let plan = hisvsim_core::FusedSinglePlan::build(&circuit, &dag, partition, 3);
                Ok((CachedPlan::Single(Arc::new(plan)), PlanSource::Warm))
            })
            .unwrap();
        assert_eq!(source, PlanSource::Warm);
        assert_eq!(second_cache.warm_len(), 0, "warm entry must be promoted");
        // The re-fused plan executes the identical partition.
        assert_eq!(
            original.expect_single().partition,
            rebuilt.expect_single().partition
        );
        let stats = second_cache.stats();
        assert_eq!(
            (stats.warm_hits, stats.misses, stats.hits),
            (1, 0, 0),
            "warm promotion must not count as a planning miss"
        );
        // The promoted entry now serves from memory.
        let (_, source) = second_cache
            .get_or_plan_tracked(key, || panic!("promoted entry must hit"))
            .unwrap();
        assert_eq!(source, PlanSource::Memory);
        assert!(second_cache.stats().hit_rate() > 0.9);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn snapshot_of_two_level_plans_roundtrips() {
        let dir = std::env::temp_dir().join(format!("hisvsim-cache2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("plans.json");
        let circuit = generators::by_name("qaoa", 9);
        let dag = CircuitDag::from_circuit(&circuit);
        let ml = Planner::default().plan_two_level(&dag, 6, 3).unwrap();
        let cache = PlanCache::new(4);
        let key = PlanKey {
            fingerprint: circuit.fingerprint(),
            limit: 6,
            second_limit: 3,
            fusion: 3,
            strategy: FusionStrategy::Auto,
            effort: PlanEffort::Fast,
        };
        cache
            .get_or_plan(key, || {
                let plan = hisvsim_core::FusedTwoLevelPlan::build(&circuit, &dag, ml.clone(), 3);
                Ok(CachedPlan::Two(Arc::new(plan)))
            })
            .unwrap();
        assert_eq!(cache.save_snapshot(&path).unwrap(), 1);
        let reloaded = PlanCache::new(4);
        reloaded.load_snapshot(&path).unwrap();
        match reloaded.take_warm(&key) {
            Some(PersistedPlan::Two(back)) => {
                assert_eq!(back.first, ml.first);
                assert_eq!(
                    back.total_second_level_parts(),
                    ml.total_second_level_parts()
                );
            }
            other => panic!("expected a two-level persisted plan, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn legacy_snapshots_without_a_strategy_field_still_load() {
        // Snapshots written before `PlanKey.strategy` existed must keep
        // warm-starting: a missing field maps to the default strategy
        // (what those jobs run with today), not a load error silently
        // degraded to a cold start.
        let circuit = generators::qft(9);
        let dag = CircuitDag::from_circuit(&circuit);
        let partition = Planner::default().plan_single(&circuit, &dag, 5).unwrap();
        let legacy_json = format!(
            r#"[[{{"fingerprint":{},"limit":5,"second_limit":0,"fusion":3,"effort":"Fast"}},{{"Single":{}}}]]"#,
            circuit.fingerprint(),
            serde_json::to_string(&partition).unwrap()
        );
        let dir = std::env::temp_dir().join(format!("hisvsim-legacy-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("legacy.json");
        std::fs::write(&path, legacy_json).unwrap();

        let cache = PlanCache::new(4);
        assert_eq!(
            cache.load_snapshot(&path).unwrap(),
            1,
            "legacy snapshot must load"
        );
        let key = PlanKey {
            fingerprint: circuit.fingerprint(),
            limit: 5,
            second_limit: 0,
            fusion: 3,
            strategy: FusionStrategy::default(),
            effort: PlanEffort::Fast,
        };
        match cache.take_warm(&key) {
            Some(PersistedPlan::Single(back)) => assert_eq!(back, partition),
            other => panic!("legacy entry must map to the default strategy, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn plans_serialize_and_roundtrip() {
        // The "plans are serializable" contract: the partition inside a
        // cached plan can be shipped to another process (future sharded
        // runtime) and reused verbatim — the receiver re-fuses locally.
        use hisvsim_dag::Partition;
        use hisvsim_partition::MultilevelPartition;
        let circuit = generators::qft(9);
        let dag = CircuitDag::from_circuit(&circuit);
        let plan = Planner::default().plan_single(&circuit, &dag, 5).unwrap();
        let json = serde_json::to_string(&plan).unwrap();
        let back: Partition = serde_json::from_str(&json).unwrap();
        assert_eq!(plan, back);
        back.validate(&dag, 5).unwrap();

        let ml = Planner::default().plan_two_level(&dag, 6, 3).unwrap();
        let json = serde_json::to_string(&ml).unwrap();
        let back: MultilevelPartition = serde_json::from_str(&json).unwrap();
        assert_eq!(ml.first, back.first);
        assert_eq!(
            ml.total_second_level_parts(),
            back.total_second_level_parts()
        );
    }
}

//! The reusable worker-pool core shared by [`Scheduler::run_batch`] and the
//! `hisvsim-service` job service.
//!
//! [`Scheduler`](crate::scheduler::Scheduler) used to own the whole
//! plan–execute pipeline privately; a long-lived service needs exactly the
//! same pipeline but driven job-by-job from its own queue, with
//! cancellation and phase callbacks threaded through. This module is that
//! pipeline, factored out:
//!
//! * [`Semaphore`] — the counting semaphore bounding resident state
//!   vectors (the memory bound `K`);
//! * [`JobControl`] — per-job cancellation token plus phase/progress
//!   callbacks (planning → plan ready → executing);
//! * [`JobRunner`] — the plan-through-postprocess executor: engine
//!   decision, plan-cache lookup (with disk-warm rebuild), controlled
//!   engine execution, shot sampling and observables.
//!
//! `run_batch` drives a [`JobRunner`] with inert controls — its results
//! are bit-identical to the pre-refactor scheduler.

use crate::cache::{CachedPlan, PersistedPlan, PlanCache, PlanKey, PlanSource};
use crate::job::{Backend, JobResult, SimJob};
use crate::planner::Planner;
use crate::scheduler::SchedulerConfig;
use crate::selector::{EngineDecision, EngineKind};
use hisvsim_circuit::Circuit;
use hisvsim_cluster::NetworkModel;
use hisvsim_core::{
    BaselineConfig, DistConfig, DistributedSimulator, ExecControl, FusedSinglePlan,
    FusedTwoLevelPlan, HierConfig, HierarchicalSimulator, IqsBaseline, MultilevelConfig,
    MultilevelSimulator, RunReport,
};
use hisvsim_dag::CircuitDag;
use hisvsim_partition::{PartitionBuildError, Strategy};
use hisvsim_statevec::{
    measure, CancelToken, FusedCircuit, FusionStrategy, KernelDispatch, StateVector, SweepCosts,
    DEFAULT_FUSION_WIDTH,
};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Sweep bandwidth (GB/s) the decision-verdict predictor assumes before any
/// measured profile exists — a round figure for one socket's sustained
/// streaming bandwidth; a warm profile replaces it with the measured value.
const NOMINAL_SWEEP_GBPS: f64 = 20.0;

/// A plain counting semaphore (std has none until `Semaphore` stabilises).
/// Bounds the number of jobs holding live simulation state: acquire before
/// allocating the outer state vector, release (by dropping the permit) when
/// the result is extracted — including when the job is cancelled mid-run,
/// which is what keeps an abandoned 30-qubit job from pinning its slot.
pub struct Semaphore {
    permits: Mutex<usize>,
    available: Condvar,
}

/// An acquired permit; releases its slot on drop.
pub struct Permit<'a> {
    semaphore: &'a Semaphore,
}

impl Semaphore {
    /// A semaphore with `permits` slots.
    pub fn new(permits: usize) -> Self {
        Self {
            permits: Mutex::new(permits),
            available: Condvar::new(),
        }
    }

    /// Block until a slot is free and claim it.
    pub fn acquire(&self) -> Permit<'_> {
        let mut permits = self.permits.lock().expect("semaphore poisoned");
        while *permits == 0 {
            permits = self.available.wait(permits).expect("semaphore poisoned");
        }
        *permits -= 1;
        Permit { semaphore: self }
    }

    /// [`Semaphore::acquire`] that also gives up when `cancel` fires, so a
    /// job cancelled while queued for a slot unblocks its worker promptly
    /// instead of waiting out whoever holds the permit. The token has no
    /// waker of its own, so the parked wait polls it on a short timeout.
    pub fn acquire_cancellable(
        &self,
        cancel: &hisvsim_statevec::CancelToken,
    ) -> Result<Permit<'_>, hisvsim_statevec::Cancelled> {
        let mut permits = self.permits.lock().expect("semaphore poisoned");
        loop {
            cancel.check()?;
            if *permits > 0 {
                *permits -= 1;
                return Ok(Permit { semaphore: self });
            }
            let (guard, _timeout) = self
                .available
                .wait_timeout(permits, std::time::Duration::from_millis(20))
                .expect("semaphore poisoned");
            permits = guard;
        }
    }

    /// Slots currently free (advisory — may change immediately).
    pub fn available(&self) -> usize {
        *self.permits.lock().expect("semaphore poisoned")
    }
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        let mut permits = self.semaphore.permits.lock().expect("semaphore poisoned");
        *permits += 1;
        drop(permits);
        self.semaphore.available.notify_one();
    }
}

/// Per-job control plumbing: a cancel token the pipeline polls at its
/// checkpoints, plus optional callbacks fired at phase transitions. The
/// default control is inert; `run_batch` uses exactly that.
#[derive(Clone, Default)]
pub struct JobControl {
    /// Cooperative cancellation flag (checked before planning, after
    /// acquiring the residency slot, and inside the engines' fused loops).
    pub cancel: CancelToken,
    /// Fired when planning starts.
    pub on_planning: Option<Arc<dyn Fn() + Send + Sync>>,
    /// Fired when the plan is ready; the argument is "was a cache hit"
    /// (in-memory or disk-warm).
    pub on_plan_ready: Option<Arc<dyn Fn(bool) + Send + Sync>>,
    /// Fired when execution starts and after each completed part, with
    /// `(gates_done, gates_total)`.
    pub on_executing: Option<Arc<dyn Fn(u64, u64) + Send + Sync>>,
}

impl JobControl {
    /// An inert control (never cancelled, no callbacks).
    pub fn new() -> Self {
        Self::default()
    }

    fn notify_planning(&self) {
        if let Some(f) = &self.on_planning {
            f();
        }
    }

    fn notify_plan_ready(&self, cache_hit: bool) {
        if let Some(f) = &self.on_plan_ready {
            f(cache_hit);
        }
    }

    fn notify_executing(&self, done: u64, total: u64) {
        if let Some(f) = &self.on_executing {
            f(done, total);
        }
    }
}

impl std::fmt::Debug for JobControl {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobControl")
            .field("cancelled", &self.cancel.is_cancelled())
            .finish()
    }
}

/// Why a job produced no [`JobResult`].
#[derive(Debug)]
pub enum JobError {
    /// The job's cancel token fired at a cooperative checkpoint; the
    /// partial state was discarded and the residency slot released.
    Cancelled,
    /// Partition planning failed (e.g. an explicit limit below the
    /// circuit's gate arity).
    PlanFailed {
        /// Name of the job's circuit.
        circuit: String,
        /// The engine the plan was for.
        engine: EngineKind,
        /// The working-set limit planning was attempted at.
        limit: usize,
        /// The underlying planning error.
        error: PartitionBuildError,
    },
    /// The job requested [`Backend::Process`] but no process backend is
    /// registered, or the launcher/worker pipeline failed.
    Backend {
        /// Human-readable failure description.
        message: String,
    },
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Cancelled => f.write_str("job cancelled"),
            JobError::PlanFailed {
                circuit,
                engine,
                limit,
                error,
            } => write!(
                f,
                "planning failed for '{circuit}' (engine {engine}, limit {limit}): {error}"
            ),
            JobError::Backend { message } => write!(f, "process backend failed: {message}"),
        }
    }
}

impl std::error::Error for JobError {}

/// Everything a process backend needs to execute one job on a worker
/// cluster: the circuit, the engine choice, the fusion width to re-fuse at,
/// the network model for accounting, and the *partition* of the plan in its
/// wire shape ([`PersistedPlan`]) — fused matrices stay process-local by
/// design, so receivers re-fuse (`None` for the unpartitioned baseline).
pub struct ProcessRequest<'a> {
    /// The circuit to simulate.
    pub circuit: &'a Circuit,
    /// The engine whose rank body the workers run. `Hier` executes its
    /// single-level plan through the distributed rank body — the plan shape
    /// is shared, only the driver differs.
    pub engine: EngineKind,
    /// Gate-fusion width workers re-fuse the shipped partition at.
    pub fusion: usize,
    /// Fusion strategy workers re-fuse with (the scan is deterministic, so
    /// every worker derives the identical fused schedule independently).
    pub strategy: FusionStrategy,
    /// Interconnect model for per-transfer accounting on the workers.
    pub network: NetworkModel,
    /// Kernel dispatch every worker rank applies to its local sweeps —
    /// shipped so a forced-scalar job stays forced-scalar across processes.
    pub dispatch: KernelDispatch,
    /// The partition to ship (exactly the plan-cache snapshot wire shape).
    pub plan: Option<PersistedPlan>,
}

/// How a process backend's execution of one request ended without a
/// result.
#[derive(Debug)]
pub enum ProcessError {
    /// The backend observed the job's [`CancelToken`] at a cooperative
    /// checkpoint and stopped every rank; the worker world is still
    /// healthy. Maps to [`JobError::Cancelled`].
    Cancelled,
    /// The launcher/worker pipeline failed. Maps to [`JobError::Backend`].
    Failed(String),
}

impl std::fmt::Display for ProcessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProcessError::Cancelled => f.write_str("job cancelled"),
            ProcessError::Failed(message) => f.write_str(message),
        }
    }
}

impl std::error::Error for ProcessError {}

/// A snapshot of a pooled process backend's lifetime counters, surfaced so
/// the service's metrics endpoint can export world-reuse and cancellation
/// behaviour without a transport dependency.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ProcessPoolStats {
    /// Worker worlds spawned (1 after warm-up unless a world was dropped).
    pub worlds_spawned: u64,
    /// Jobs submitted to the backend.
    pub jobs_run: u64,
    /// Jobs that reused an already-resident worker world.
    pub jobs_reused_world: u64,
    /// Jobs stopped at a cooperative cancel checkpoint.
    pub jobs_cancelled: u64,
    /// Jobs that failed (each drops the world; the next job respawns it).
    pub jobs_failed: u64,
    /// Total seconds spent spawning worlds and running the rendezvous —
    /// kept out of per-job wall time by design.
    pub launch_seconds_total: f64,
}

/// A multi-process execution backend (implemented by
/// `hisvsim_net::WorkerPool`): takes a [`ProcessRequest`], runs it on
/// real worker processes, and returns the assembled state plus the report
/// aggregated from per-rank comm stats.
///
/// Defined here (not in `hisvsim-net`) so the runtime can stay free of any
/// transport dependency; the pool is injected via
/// [`SchedulerConfig::with_process_backend`](crate::scheduler::SchedulerConfig::with_process_backend).
pub trait ProcessBackend: Send + Sync {
    /// The worker-process world size (a power of two); the runner clamps
    /// plan limits so every shipped working set fits a worker's local slice.
    fn ranks(&self) -> usize;

    /// Execute the request on the worker cluster. The backend is expected
    /// to poll `cancel` and propagate it to the remote ranks, stopping
    /// them at a cooperative checkpoint *mid-job* — not merely at the next
    /// job boundary.
    fn execute(
        &self,
        request: ProcessRequest<'_>,
        cancel: &CancelToken,
    ) -> Result<(StateVector, RunReport), ProcessError>;

    /// Tear down any resident worker state (processes, sockets). Called by
    /// long-lived owners (the service) on shutdown; stateless backends
    /// need not implement it.
    fn shutdown(&self) {}

    /// Lifetime counters for pooled backends (`None` for stateless ones).
    fn pool_stats(&self) -> Option<ProcessPoolStats> {
        None
    }
}

/// The plan-through-postprocess job executor: everything
/// [`Scheduler::run_batch`](crate::scheduler::Scheduler::run_batch) does to
/// one job, as a long-lived, shareable core. The plan cache inside persists
/// across batches (and, snapshotted, across processes).
pub struct JobRunner {
    config: SchedulerConfig,
    cache: PlanCache,
}

impl JobRunner {
    /// A runner with a fresh plan cache sized by the configuration.
    pub fn new(config: SchedulerConfig) -> Self {
        let cache = PlanCache::new(config.cache_capacity.max(1));
        Self { config, cache }
    }

    /// The configuration.
    pub fn config(&self) -> &SchedulerConfig {
        &self.config
    }

    /// The persistent plan cache.
    pub fn cache(&self) -> &PlanCache {
        &self.cache
    }

    /// Plan (through the cache when enabled) and execute one job under
    /// `control`. The residency permit is acquired only for the simulation +
    /// post-processing phase — planning holds no simulation state, so
    /// cache-miss planning of one job overlaps the (memory-bounded)
    /// simulation of others. A cancelled job releases its permit on the way
    /// out (RAII), so the slot is immediately reusable.
    pub fn execute_job(
        &self,
        job_index: usize,
        job: SimJob,
        residency: &Semaphore,
        control: &JobControl,
    ) -> Result<JobResult, JobError> {
        let start = Instant::now();
        if control.cancel.is_cancelled() {
            return Err(JobError::Cancelled);
        }
        // A warm measured-cost profile calibrates the engine decision (and
        // the Auto-strategy resolution below); cold, both reduce exactly to
        // the static models. The snapshot pins one consistent view for the
        // whole job even while concurrent jobs keep feeding the store.
        let profile = self
            .config
            .profile
            .warm()
            .then(|| self.config.profile.snapshot());
        let mut decision = match &profile {
            Some(profile) => {
                self.config
                    .selector
                    .decide_with_profile(&job.circuit, job.engine, profile)
            }
            None => self.config.selector.decide(&job.circuit, job.engine),
        };
        if let Some(limit) = job.limit {
            decision.limit = limit;
            if decision.engine == EngineKind::Multilevel {
                decision.second_limit = decision.second_limit.min(limit);
            }
        }
        // A process-backed job runs on the launcher's worker world, not the
        // selector's virtual rank count — and *every* engine's plan (hier
        // included, since its single-level plan executes through the
        // distributed rank body on workers) must fit a worker's local slice.
        let process = if job.backend == Backend::Process {
            let backend = self
                .config
                .process_backend
                .clone()
                .ok_or_else(|| JobError::Backend {
                    message: format!(
                        "job '{}' requested Backend::Process but no process backend is \
                             registered (SchedulerConfig::with_process_backend)",
                        job.circuit.name
                    ),
                })?;
            let ranks = backend.ranks();
            assert!(
                ranks.is_power_of_two(),
                "process backend world size must be a power of two, got {ranks}"
            );
            decision.ranks = ranks;
            let rank_bits = ranks.trailing_zeros() as usize;
            let arity_floor = job
                .circuit
                .gates()
                .iter()
                .map(|g| g.arity())
                .max()
                .unwrap_or(1);
            let local = job.circuit.num_qubits().saturating_sub(rank_bits);
            // Reject undistributable jobs here with a clear error instead
            // of launching workers whose rank bodies would assert and die.
            if job.circuit.num_qubits() < rank_bits || local < arity_floor {
                return Err(JobError::Backend {
                    message: format!(
                        "circuit '{}' ({} qubits, max gate arity {arity_floor}) is too small \
                         for the {ranks}-worker world: each worker needs at least \
                         {arity_floor} local qubit(s), got {local}",
                        job.circuit.name,
                        job.circuit.num_qubits(),
                    ),
                });
            }
            decision.limit = decision.limit.min(local.max(1));
            decision.second_limit = decision.second_limit.min(decision.limit);
            Some(backend)
        } else {
            None
        };
        // A distributed plan must fit each rank's local slice; mirror the
        // clamp `DistributedSimulator::run` applies so an explicit per-job
        // limit override cannot push a working set past the local width.
        if matches!(decision.engine, EngineKind::Dist | EngineKind::Multilevel) {
            let local = job.circuit.num_qubits() - decision.ranks.trailing_zeros() as usize;
            decision.limit = decision.limit.min(local.max(1));
            decision.second_limit = decision.second_limit.min(decision.limit);
        }
        let fusion = job.fusion.unwrap_or(DEFAULT_FUSION_WIDTH).max(1);
        // With a warm profile, `Auto` resolves to an explicit strategy
        // *here* using the measured pass cost, and the explicit strategy is
        // what enters the plan key and (for process jobs) the wire. The
        // candidate fused forms themselves are always built with the static
        // model, so the resolved strategy reproduces bit-identical fused
        // schedules everywhere — calibration picks between forms, it never
        // alters one.
        let mut strategy = job.fusion_strategy;
        if strategy == FusionStrategy::Auto {
            if let Some(pass) = profile.as_ref().and_then(|p| p.pass_cost()) {
                let resolved =
                    FusedCircuit::resolve_auto_with(&job.circuit, fusion, &SweepCosts { pass });
                decision.calibrated = true;
                decision.reason.push_str(&format!(
                    "; auto fusion -> {} (measured pass cost {pass:.2})",
                    resolved.name()
                ));
                strategy = resolved;
            }
        }
        let dispatch = job.kernel_dispatch;

        // Each phase is recorded twice on the shared obs clock: into the
        // global span recorder (when enabled) for whole-process traces, and
        // explicitly into the job's own timeline, which is always populated
        // so `JobResult::timeline()` works without the recorder. Recorder
        // spans carry the job index in their detail (`#<n> ...`) so
        // interleaved jobs stay attributable in a merged trace.
        let mut timeline: Vec<hisvsim_obs::SpanRecord> = Vec::with_capacity(3);
        let mut phase = |name: &'static str, start_us: u64, elapsed: &Instant, detail: String| {
            timeline.push(hisvsim_obs::SpanRecord {
                name: name.to_string(),
                cat: "job".to_string(),
                ts_us: start_us,
                dur_us: (elapsed.elapsed().as_micros() as u64).max(1),
                pid: 0,
                tid: 0,
                detail,
                bytes: 0,
            });
        };

        control.notify_planning();
        let plan_ts = hisvsim_obs::now_us();
        let plan_start = Instant::now();
        let (plan, source) = {
            let _span = hisvsim_obs::span("job", "plan")
                .detail(format!("#{job_index} {}", job.circuit.name));
            self.obtain_plan(&job.circuit, &decision, fusion, strategy)
                .map_err(|error| JobError::PlanFailed {
                    circuit: job.circuit.name.clone(),
                    engine: decision.engine,
                    limit: decision.limit,
                    error,
                })?
        };
        let plan_time_s = plan_start.elapsed().as_secs_f64();
        phase("plan", plan_ts, &plan_start, format!("{source:?}"));
        control.notify_plan_ready(source.is_hit());

        // The permit covers the simulation (allocation of the outer state
        // vector) through post-processing. A job cancelled while queued for
        // a slot unblocks promptly and never allocates at all.
        let _permit = residency
            .acquire_cancellable(&control.cancel)
            .map_err(|_| JobError::Cancelled)?;
        control.notify_executing(0, job.circuit.num_gates() as u64);
        let exec = {
            let mut exec = ExecControl::new().with_cancel(control.cancel.clone());
            if let Some(on_executing) = control.on_executing.clone() {
                exec = exec.with_progress(move |done, total| on_executing(done, total));
            }
            exec
        };
        let exec_ts = hisvsim_obs::now_us();
        let exec_start = Instant::now();
        let exec_span = hisvsim_obs::span("job", "execute").detail(format!(
            "#{job_index} {} on {} ({} ranks)",
            job.circuit.name,
            decision.engine.name(),
            decision.ranks
        ));
        let (state, report) = match &process {
            Some(backend) => {
                let request = ProcessRequest {
                    circuit: &job.circuit,
                    engine: decision.engine,
                    fusion,
                    strategy,
                    network: self.config.selector.network,
                    dispatch,
                    plan: plan.as_ref().map(CachedPlan::to_persisted),
                };
                let outcome = backend
                    .execute(request, &control.cancel)
                    .map_err(|e| match e {
                        ProcessError::Cancelled => JobError::Cancelled,
                        ProcessError::Failed(message) => JobError::Backend { message },
                    })?;
                // The backend polls the token itself (remote ranks stop at
                // their cancel-vote checkpoints); this check only honours a
                // cancellation that raced the final gather.
                control.cancel.check().map_err(|_| JobError::Cancelled)?;
                control.notify_executing(
                    job.circuit.num_gates() as u64,
                    job.circuit.num_gates() as u64,
                );
                outcome
            }
            None => self
                .simulate(
                    &job.circuit,
                    &decision,
                    fusion,
                    strategy,
                    dispatch,
                    plan.as_ref(),
                    &exec,
                )
                .map_err(|_| JobError::Cancelled)?,
        };
        drop(exec_span);
        let measured_execute_s = exec_start.elapsed().as_secs_f64();
        phase(
            "execute",
            exec_ts,
            &exec_start,
            format!("{} ranks, {}", decision.ranks, decision.engine.name()),
        );

        // Predicted-vs-measured audit: the swept amplitude traffic over the
        // profiled (or nominal) sweep bandwidth, plus the decision's
        // exchange estimate per redistribution the run actually performed.
        let state_bytes = (32u128 << job.circuit.num_qubits()) as f64;
        let sweeps = match &plan {
            Some(CachedPlan::Single(p)) => p.total_fused_ops(),
            Some(CachedPlan::Two(p)) => p.total_fused_ops(),
            // Baseline plans nothing up front; its internal fusion makes
            // the raw gate count a (pessimistic) sweep stand-in.
            None => job.circuit.num_gates(),
        };
        let sweep_gbps = profile
            .as_ref()
            .and_then(|p| p.sustained_gbps())
            .unwrap_or(NOMINAL_SWEEP_GBPS);
        let verdict = crate::job::DecisionVerdict {
            predicted_execute_s: sweeps as f64 * state_bytes / (sweep_gbps * 1e9)
                + decision.est_exchange_s * report.num_exchanges as f64,
            measured_execute_s,
        };

        // Post-processing: shot sampling and Z expectations reuse the
        // statevec measurement utilities on the engine's final state. The
        // parallel counter-based sampler keeps shots deterministic per seed
        // regardless of worker/thread count.
        let post_ts = hisvsim_obs::now_us();
        let post_start = Instant::now();
        let post_span = hisvsim_obs::span("job", "postprocess").detail(format!("#{job_index}"));
        let counts = if job.shots > 0 {
            let mut counts = std::collections::BTreeMap::new();
            for outcome in measure::sample_shots(&state, job.shots, job.seed) {
                *counts.entry(outcome).or_insert(0) += 1;
            }
            counts
        } else {
            Default::default()
        };
        let z_expectations = job
            .observables
            .iter()
            .map(|&q| (q, measure::expectation_z(&state, q)))
            .collect();
        drop(post_span);
        let post_s = post_start.elapsed().as_secs_f64();
        phase(
            "postprocess",
            post_ts,
            &post_start,
            format!("{} shots, {} observables", job.shots, job.observables.len()),
        );

        // Feed the per-engine phase breakdown back into the profile store
        // (a no-op under `ProfileMode::Frozen`). Kernel and collective cells
        // are fed separately from drained recorder spans — phases are cheap
        // enough to absorb unconditionally.
        let engine_name = decision.engine.name();
        let profile_store = &self.config.profile;
        profile_store.absorb_phase(engine_name, "plan", plan_time_s, 0);
        profile_store.absorb_phase(
            engine_name,
            "execute",
            measured_execute_s,
            (32u128 << job.circuit.num_qubits()).min(u64::MAX as u128) as u64,
        );
        profile_store.absorb_phase(engine_name, "postprocess", post_s, 0);

        Ok(JobResult {
            job_index,
            circuit_name: job.circuit.name.clone(),
            engine: decision.engine,
            decision,
            verdict,
            state: self.config.retain_states.then_some(state),
            report,
            counts,
            z_expectations,
            wall_time_s: start.elapsed().as_secs_f64(),
            plan_time_s,
            plan_cache_hit: source.is_hit(),
            kernel_dispatch: dispatch,
            timeline,
        })
    }

    /// Obtain the fused partition plan for a decision: from the in-memory
    /// cache when enabled, by re-fusing a disk-persisted partition on a warm
    /// start, or planned from scratch. Baseline runs unpartitioned (its
    /// fused segments are derived inside the engine).
    fn obtain_plan(
        &self,
        circuit: &Circuit,
        decision: &EngineDecision,
        fusion: usize,
        strategy: FusionStrategy,
    ) -> Result<(Option<CachedPlan>, PlanSource), PartitionBuildError> {
        if decision.engine == EngineKind::Baseline {
            return Ok((None, PlanSource::Planned));
        }
        let planner = Planner::new(self.config.effort);
        let two_level = decision.engine == EngineKind::Multilevel;
        let plan_fresh = |dag: &CircuitDag| {
            if two_level {
                planner
                    .plan_two_level_fused(
                        circuit,
                        dag,
                        decision.limit,
                        decision.second_limit,
                        fusion,
                        strategy,
                    )
                    .map(|ml| CachedPlan::Two(Arc::new(ml)))
            } else {
                planner
                    .plan_single_fused(circuit, dag, decision.limit, fusion, strategy)
                    .map(|p| CachedPlan::Single(Arc::new(p)))
            }
        };

        if self.config.cache_capacity == 0 {
            let dag = CircuitDag::from_circuit(circuit);
            return plan_fresh(&dag).map(|plan| (Some(plan), PlanSource::Planned));
        }

        let key = PlanKey {
            fingerprint: circuit.fingerprint(),
            limit: decision.limit,
            second_limit: if two_level { decision.second_limit } else { 0 },
            fusion,
            strategy,
            effort: self.config.effort,
        };
        let outcome = self.cache.get_or_plan_tracked(key, || {
            let dag = CircuitDag::from_circuit(circuit);
            // Warm start: a persisted partition for this key skips the
            // expensive partitioning — only re-fusion (cheap, and
            // necessarily process-local) remains. Untrusted snapshots are
            // validated against the circuit's DAG before use.
            if let Some(persisted) = self.cache.take_warm(&key) {
                match persisted {
                    PersistedPlan::Single(partition)
                        if !two_level && partition.validate(&dag, decision.limit).is_ok() =>
                    {
                        let plan = FusedSinglePlan::build_with_strategy(
                            circuit, &dag, partition, fusion, strategy,
                        );
                        return Ok((CachedPlan::Single(Arc::new(plan)), PlanSource::Warm));
                    }
                    PersistedPlan::Two(ml)
                        if two_level && ml.validate(&dag, decision.limit).is_ok() =>
                    {
                        let plan = FusedTwoLevelPlan::build_with_strategy(
                            circuit, &dag, ml, fusion, strategy,
                        );
                        return Ok((CachedPlan::Two(Arc::new(plan)), PlanSource::Warm));
                    }
                    // Shape mismatch or a stale/invalid snapshot entry:
                    // fall through to planning from scratch.
                    _ => {}
                }
            }
            plan_fresh(&dag).map(|plan| (plan, PlanSource::Planned))
        });
        outcome.map(|(plan, source)| (Some(plan), source))
    }

    /// Run the chosen engine against the precomputed fused plan, under the
    /// given execution control.
    #[allow(clippy::too_many_arguments)]
    fn simulate(
        &self,
        circuit: &Circuit,
        decision: &EngineDecision,
        fusion: usize,
        strategy: FusionStrategy,
        dispatch: KernelDispatch,
        plan: Option<&CachedPlan>,
        exec: &ExecControl,
    ) -> Result<(StateVector, RunReport), hisvsim_statevec::Cancelled> {
        let network = self.config.selector.network;
        match decision.engine {
            EngineKind::Baseline => IqsBaseline::new(
                BaselineConfig::new(decision.ranks)
                    .with_network(network)
                    .with_fusion(fusion)
                    .with_fusion_strategy(strategy)
                    .with_kernel_dispatch(dispatch),
            )
            .run_controlled(circuit, exec)
            .map(|run| (run.state, run.report)),
            EngineKind::Hier => {
                let plan = plan.expect("hier engine needs a plan").expect_single();
                let sim = HierarchicalSimulator::new(
                    HierConfig::new(decision.limit)
                        .with_strategy(Strategy::DagP)
                        .with_kernel_dispatch(dispatch),
                );
                sim.run_with_fused_plan_controlled(circuit, plan, exec)
                    .map(|run| (run.state, run.report))
            }
            EngineKind::Dist => {
                let plan = plan.expect("dist engine needs a plan").expect_single();
                let sim = DistributedSimulator::new(
                    DistConfig::new(decision.ranks)
                        .with_limit(decision.limit)
                        .with_network(network)
                        .with_kernel_dispatch(dispatch),
                );
                sim.run_with_fused_plan_controlled(circuit, plan, exec)
                    .map(|run| (run.state, run.report))
            }
            EngineKind::Multilevel => {
                let plan = plan.expect("multilevel engine needs a plan").expect_two();
                let sim = MultilevelSimulator::new(
                    MultilevelConfig::new(decision.ranks, decision.second_limit)
                        .with_network(network)
                        .with_kernel_dispatch(dispatch),
                );
                sim.run_with_fused_plan_controlled(circuit, plan, exec)
                    .map(|run| (run.state, run.report))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selector::EngineSelector;
    use hisvsim_circuit::generators;
    use hisvsim_statevec::run_circuit;

    fn runner() -> JobRunner {
        JobRunner::new(SchedulerConfig::default().with_selector(EngineSelector::scaled(4, 8)))
    }

    #[test]
    fn inert_control_executes_like_the_scheduler() {
        let runner = runner();
        let residency = Semaphore::new(2);
        let circuit = generators::qft(7);
        let expected = run_circuit(&circuit);
        let result = runner
            .execute_job(0, SimJob::new(circuit), &residency, &JobControl::new())
            .unwrap();
        assert!(result.state.as_ref().unwrap().approx_eq(&expected, 1e-9));
        assert_eq!(residency.available(), 2, "permit must be released");
    }

    #[test]
    fn pre_cancelled_job_never_takes_a_residency_slot() {
        let runner = runner();
        let residency = Semaphore::new(1);
        let control = JobControl::new();
        control.cancel.cancel();
        let err = runner
            .execute_job(0, SimJob::new(generators::qft(7)), &residency, &control)
            .unwrap_err();
        assert!(matches!(err, JobError::Cancelled));
        assert_eq!(residency.available(), 1);
    }

    #[test]
    fn cancellation_unblocks_a_job_waiting_for_a_residency_slot() {
        // The only permit is held elsewhere for the whole test: a job
        // cancelled while parked in acquire must return promptly instead
        // of waiting for the holder.
        let runner = runner();
        let residency = Semaphore::new(1);
        let _held = residency.acquire();
        let control = JobControl::new();
        std::thread::scope(|scope| {
            let waiter = scope.spawn(|| {
                runner.execute_job(0, SimJob::new(generators::qft(7)), &residency, &control)
            });
            std::thread::sleep(std::time::Duration::from_millis(50));
            control.cancel.cancel();
            let err = waiter.join().unwrap().unwrap_err();
            assert!(matches!(err, JobError::Cancelled));
        });
        // No phantom permit was minted or leaked.
        assert_eq!(residency.available(), 0);
    }

    #[test]
    fn phase_callbacks_fire_in_order() {
        use std::sync::atomic::{AtomicU8, Ordering};
        let runner = runner();
        let residency = Semaphore::new(1);
        let phase = Arc::new(AtomicU8::new(0));
        let (p1, p2, p3) = (Arc::clone(&phase), Arc::clone(&phase), Arc::clone(&phase));
        let control = JobControl {
            cancel: CancelToken::new(),
            on_planning: Some(Arc::new(move || {
                p1.compare_exchange(0, 1, Ordering::SeqCst, Ordering::SeqCst)
                    .expect("planning must be the first phase");
            })),
            on_plan_ready: Some(Arc::new(move |_hit| {
                p2.compare_exchange(1, 2, Ordering::SeqCst, Ordering::SeqCst)
                    .expect("plan-ready must follow planning");
            })),
            on_executing: Some(Arc::new(move |_done, _total| {
                p3.store(3, Ordering::SeqCst);
            })),
        };
        runner
            .execute_job(0, SimJob::new(generators::qft(7)), &residency, &control)
            .unwrap();
        assert_eq!(phase.load(Ordering::SeqCst), 3, "executing never reported");
    }

    #[test]
    fn plan_failure_is_an_error_not_a_panic() {
        let runner = runner();
        let residency = Semaphore::new(1);
        // Toffoli arity 3 with an explicit limit of 2: unplannable.
        let job = SimJob::new(generators::adder(8))
            .with_engine(EngineKind::Hier)
            .with_limit(2);
        let err = runner
            .execute_job(0, job, &residency, &JobControl::new())
            .unwrap_err();
        match err {
            JobError::PlanFailed { limit, .. } => assert_eq!(limit, 2),
            other => panic!("expected PlanFailed, got {other}"),
        }
    }
}

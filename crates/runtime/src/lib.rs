//! # hisvsim-runtime
//!
//! The concurrent batch-execution runtime layered on top of the HiSVSIM
//! engines: the paper ends at "simulate one circuit well"; this crate turns
//! that into "serve many simulation jobs well". It sits between the engines
//! (`hisvsim-core`) and any service/benchmark surface above, and provides:
//!
//! | Module | What it provides |
//! |---|---|
//! | [`job`] | the [`SimJob`](job::SimJob) / [`JobResult`](job::JobResult) batch model (circuit + shots + observables + engine preference) |
//! | [`selector`] | [`EngineSelector`](selector::EngineSelector): picks baseline/hier/dist/multilevel per job from qubit count and the `memmodel`/`netmodel` cost signals |
//! | [`planner`] | [`Planner`](planner::Planner): configurable-effort partition planning (single `dagP` call → full strategy portfolio) |
//! | [`cache`] | [`PlanCache`](cache::PlanCache): memoizes plans by [`Circuit::fingerprint`](hisvsim_circuit::Circuit::fingerprint), with in-flight deduplication, hit/miss accounting and disk snapshots for warm restarts |
//! | [`pool`] | [`JobRunner`](pool::JobRunner): the reusable plan–execute worker-pool core (residency [`Semaphore`](pool::Semaphore), per-job [`JobControl`](pool::JobControl) cancellation + phase callbacks) |
//! | [`scheduler`] | [`Scheduler`](scheduler::Scheduler): a worker pool executing a batch on OS threads with a bounded number of resident state vectors |
//!
//! The expensive pure-function part of every HiSVSIM run — DAG construction
//! plus acyclic partitioning — depends only on circuit *structure*, so
//! repeated or templated circuits skip it entirely once the cache is warm.
//! Every engine result is bit-compatible with running that engine directly;
//! the runtime only orchestrates.
//!
//! ## Example
//!
//! ```
//! use hisvsim_circuit::generators;
//! use hisvsim_runtime::prelude::*;
//!
//! // Thresholds scaled down so toy circuits exercise the whole engine
//! // ladder; the default selector uses the paper machine's real budgets.
//! let config = SchedulerConfig::default().with_selector(EngineSelector::scaled(4, 8));
//! let scheduler = Scheduler::new(config);
//! let jobs = vec![
//!     SimJob::new(generators::qft(8)).with_shots(128),
//!     SimJob::new(generators::qft(8)), // same structure: plan cache hit
//!     SimJob::new(generators::cat_state(9)).with_observables(vec![0, 8]),
//! ];
//! let batch = scheduler.run_batch(jobs);
//! assert_eq!(batch.results.len(), 3);
//! assert!(batch.stats.cache.hits >= 1, "repeated structure must hit the plan cache");
//! // Every job's final state is unit-norm and accounted.
//! for result in &batch.results {
//!     let state = result.state.as_ref().unwrap();
//!     assert!((state.norm_sqr() - 1.0).abs() < 1e-9);
//! }
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod job;
pub mod planner;
pub mod pool;
pub mod scheduler;
pub mod selector;

pub use cache::{CacheStats, CachedPlan, PersistedPlan, PlanCache, PlanKey, PlanSource};
pub use job::{Backend, DecisionVerdict, JobResult, SimJob};
pub use planner::{PlanEffort, Planner};
pub use pool::{
    JobControl, JobError, JobRunner, ProcessBackend, ProcessError, ProcessPoolStats,
    ProcessRequest, Semaphore,
};
pub use scheduler::{BatchReport, BatchStats, Scheduler, SchedulerConfig};
pub use selector::{EngineDecision, EngineKind, EngineSelector};

// The strategy and dispatch knobs travel with jobs (and, for strategy, plan
// keys); re-exported so service and net layers need not depend on
// `hisvsim-statevec` directly for them.
pub use hisvsim_statevec::{FusionStrategy, KernelDispatch};

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::cache::PlanCache;
    pub use crate::job::{JobResult, SimJob};
    pub use crate::planner::PlanEffort;
    pub use crate::scheduler::{BatchReport, Scheduler, SchedulerConfig};
    pub use crate::selector::{EngineKind, EngineSelector};
    pub use hisvsim_statevec::{FusionStrategy, KernelDispatch};
}

#[cfg(test)]
mod send_sync_assertions {
    //! The runtime's contract with the engines: everything that crosses a
    //! worker-thread boundary is `Send + Sync`, and plans serialise.
    use super::*;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn plan_and_job_types_cross_threads() {
        assert_send_sync::<hisvsim_dag::Partition>();
        assert_send_sync::<hisvsim_partition::MultilevelPartition>();
        assert_send_sync::<SimJob>();
        assert_send_sync::<JobResult>();
        assert_send_sync::<PlanCache>();
        assert_send_sync::<Scheduler>();
    }
}

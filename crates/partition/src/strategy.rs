//! A uniform handle over the three partitioning strategies the paper
//! evaluates (`Nat`, `DFS`, `dagP`), used by the engines and the benchmark
//! harness to sweep strategies generically.

use crate::dagp::{DagPConfig, DagPPartitioner};
use crate::dfs::DfsPartitioner;
use crate::error::PartitionBuildError;
use crate::nat::NatPartitioner;
use hisvsim_dag::{CircuitDag, Partition};
use serde::{Deserialize, Serialize};

/// One of the paper's partitioning strategies.
///
/// `Hash` is derived so strategies can participate in cache keys (the
/// runtime's plan cache keys plans by circuit fingerprint + limit +
/// strategy portfolio).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Strategy {
    /// Natural topological order cutoff.
    Nat,
    /// Best of several random DFS topological order cutoffs.
    Dfs,
    /// Multilevel acyclic DAG partitioning (recursive bisection + merge).
    DagP,
}

impl Strategy {
    /// All strategies, in the order the paper's figures list them.
    pub const ALL: [Strategy; 3] = [Strategy::Nat, Strategy::Dfs, Strategy::DagP];

    /// Display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::Nat => "Nat",
            Strategy::Dfs => "DFS",
            Strategy::DagP => "dagP",
        }
    }

    /// Partition `dag` under working-set limit `limit` using this strategy's
    /// default configuration.
    pub fn partition(
        &self,
        dag: &CircuitDag,
        limit: usize,
    ) -> Result<Partition, PartitionBuildError> {
        match self {
            Strategy::Nat => NatPartitioner.partition(dag, limit),
            Strategy::Dfs => DfsPartitioner::default().partition(dag, limit),
            Strategy::DagP => DagPPartitioner::default().partition(dag, limit),
        }
    }

    /// Partition with a custom dagP configuration (ignored by Nat/DFS).
    pub fn partition_with_config(
        &self,
        dag: &CircuitDag,
        limit: usize,
        dagp_config: DagPConfig,
    ) -> Result<Partition, PartitionBuildError> {
        match self {
            Strategy::DagP => DagPPartitioner::new(dagp_config).partition(dag, limit),
            other => other.partition(dag, limit),
        }
    }
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Strategy {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "nat" => Ok(Strategy::Nat),
            "dfs" => Ok(Strategy::Dfs),
            "dagp" => Ok(Strategy::DagP),
            other => Err(format!(
                "unknown strategy '{other}' (expected Nat, DFS, or dagP)"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hisvsim_circuit::generators;

    #[test]
    fn all_strategies_partition_the_suite() {
        for name in generators::FAMILY_NAMES {
            let c = generators::by_name(name, 10);
            let dag = CircuitDag::from_circuit(&c);
            for strategy in Strategy::ALL {
                match strategy.partition(&dag, 6) {
                    Ok(p) => {
                        p.validate(&dag, 6).unwrap();
                    }
                    Err(PartitionBuildError::GateExceedsLimit { .. }) => {}
                    Err(e) => panic!("{name}/{strategy}: {e}"),
                }
            }
        }
    }

    #[test]
    fn names_match_paper_labels() {
        assert_eq!(Strategy::Nat.name(), "Nat");
        assert_eq!(Strategy::Dfs.name(), "DFS");
        assert_eq!(Strategy::DagP.name(), "dagP");
        assert_eq!(format!("{}", Strategy::DagP), "dagP");
    }

    #[test]
    fn parse_from_string() {
        assert_eq!("nat".parse::<Strategy>().unwrap(), Strategy::Nat);
        assert_eq!("DAGP".parse::<Strategy>().unwrap(), Strategy::DagP);
        assert!("foo".parse::<Strategy>().is_err());
    }
}

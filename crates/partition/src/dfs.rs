//! `DFS` — the DFS Topological Order Cutoff strategy (Sec. IV-B.2).
//!
//! Remedies `Nat`'s weakness by sampling several random DFS topological
//! orders of the gate DAG, applying the same cutoff procedure to each, and
//! keeping the order that produces the fewest parts. A DFS order tends to
//! follow qubit "threads" through the circuit, grouping gates that share
//! qubits even when the written circuit interleaves them.

use crate::cutoff::cutoff_by_order;
use crate::error::PartitionBuildError;
use hisvsim_dag::{CircuitDag, Partition};

/// The DFS-order cutoff partitioner.
#[derive(Debug, Clone, Copy)]
pub struct DfsPartitioner {
    /// Number of random DFS topological orders sampled.
    pub trials: usize,
    /// Base RNG seed; trial `i` uses `seed + i`.
    pub seed: u64,
}

impl Default for DfsPartitioner {
    fn default() -> Self {
        Self {
            trials: 16,
            seed: 0x0DF5,
        }
    }
}

impl DfsPartitioner {
    /// A DFS partitioner with an explicit trial count and seed.
    pub fn new(trials: usize, seed: u64) -> Self {
        assert!(trials > 0, "at least one DFS trial is required");
        Self { trials, seed }
    }

    /// Partition `dag` under working-set limit `limit`, returning the best
    /// (fewest parts) result across all sampled orders.
    pub fn partition(
        &self,
        dag: &CircuitDag,
        limit: usize,
    ) -> Result<Partition, PartitionBuildError> {
        let mut best: Option<Partition> = None;
        for trial in 0..self.trials {
            let order = dag.random_dfs_gate_order(self.seed.wrapping_add(trial as u64));
            let candidate = cutoff_by_order(dag, &order, limit)?;
            let better = match &best {
                None => true,
                Some(b) => candidate.num_parts() < b.num_parts(),
            };
            if better {
                best = Some(candidate);
            }
        }
        Ok(best.expect("at least one trial ran"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hisvsim_circuit::{generators, Circuit};

    #[test]
    fn dfs_never_worse_than_its_own_single_trial() {
        let c = generators::by_name("qaoa", 10);
        let dag = CircuitDag::from_circuit(&c);
        let many = DfsPartitioner::new(12, 7).partition(&dag, 5).unwrap();
        let one = DfsPartitioner::new(1, 7).partition(&dag, 5).unwrap();
        assert!(many.num_parts() <= one.num_parts());
    }

    #[test]
    fn dfs_beats_nat_on_alternating_circuit() {
        // The adversarial case for Nat: alternating disjoint pairs. A DFS
        // order follows one pair to completion before the other, so the
        // 2-qubit limit needs only 2 parts.
        let mut c = Circuit::new(4);
        for _ in 0..6 {
            c.cx(0, 1);
            c.cx(2, 3);
        }
        let dag = CircuitDag::from_circuit(&c);
        let nat = crate::nat::NatPartitioner.partition(&dag, 2).unwrap();
        let dfs = DfsPartitioner::new(8, 3).partition(&dag, 2).unwrap();
        assert!(dfs.num_parts() < nat.num_parts());
        assert_eq!(dfs.num_parts(), 2);
    }

    #[test]
    fn dfs_partitions_validate() {
        for name in ["qft", "grover", "cc", "qnn"] {
            let c = generators::by_name(name, 10);
            let dag = CircuitDag::from_circuit(&c);
            for limit in [4usize, 7, 10] {
                let p = DfsPartitioner::default().partition(&dag, limit).unwrap();
                p.validate(&dag, limit).unwrap();
            }
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let c = generators::by_name("qft", 9);
        let dag = CircuitDag::from_circuit(&c);
        let a = DfsPartitioner::new(5, 99).partition(&dag, 4).unwrap();
        let b = DfsPartitioner::new(5, 99).partition(&dag, 4).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one DFS trial")]
    fn zero_trials_rejected() {
        let _ = DfsPartitioner::new(0, 1);
    }
}

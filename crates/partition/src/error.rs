//! Errors shared by all partitioning strategies.

use hisvsim_dag::PartitionError;

/// Why a strategy could not produce a partition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionBuildError {
    /// A single gate touches more qubits than the working-set limit allows,
    /// so no valid partition exists at this limit.
    GateExceedsLimit {
        /// Index of the offending gate in the circuit.
        gate: usize,
        /// Its qubit count.
        arity: usize,
        /// The requested limit.
        limit: usize,
    },
    /// The limit is zero (or otherwise unusable).
    InvalidLimit(usize),
    /// The produced partition failed validation — indicates a bug in the
    /// strategy rather than bad input, but surfaced as an error so callers
    /// can fall back.
    InvalidResult(PartitionError),
}

impl std::fmt::Display for PartitionBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PartitionBuildError::GateExceedsLimit { gate, arity, limit } => write!(
                f,
                "gate {gate} touches {arity} qubits, above the working-set limit {limit}"
            ),
            PartitionBuildError::InvalidLimit(l) => write!(f, "invalid working-set limit {l}"),
            PartitionBuildError::InvalidResult(e) => {
                write!(f, "strategy produced an invalid partition: {e}")
            }
        }
    }
}

impl std::error::Error for PartitionBuildError {}

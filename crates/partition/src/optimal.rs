//! Exact minimum-part-count partitioning via branch and bound.
//!
//! The paper evaluates its dagP heuristic against an ILP formulation of the
//! modified acyclic-partitioning problem (Sec. V-A: "Out of 52 combinations,
//! dagP finds the optimal number of parts for 48 cases and only differs by 1
//! or 2 for the rest"). No ILP solver is available offline, so this module
//! provides the ground truth with an exhaustive branch-and-bound search over
//! per-gate part assignments: gates are assigned in topological order to an
//! existing part or a fresh one, pruning on the incumbent part count, the
//! working-set limit, and quotient-graph acyclicity (maintained
//! incrementally).
//!
//! The search is exponential and is intended for the small instances the
//! optimality experiment uses; a node budget caps the work and the result
//! reports whether optimality was proven.

use crate::error::PartitionBuildError;
use hisvsim_dag::{CircuitDag, NodeId, Partition};
use std::collections::BTreeSet;

/// Result of the exact search.
#[derive(Debug, Clone)]
pub struct OptimalResult {
    /// The best partition found.
    pub partition: Partition,
    /// True when the search space was exhausted (the result is provably
    /// optimal), false when the node budget was hit first.
    pub proven_optimal: bool,
    /// Number of branch-and-bound nodes expanded.
    pub nodes_explored: usize,
}

/// Exact minimum-part partitioner.
#[derive(Debug, Clone, Copy)]
pub struct OptimalPartitioner {
    /// Maximum number of search nodes to expand before giving up on proving
    /// optimality.
    pub node_budget: usize,
}

impl Default for OptimalPartitioner {
    fn default() -> Self {
        Self {
            node_budget: 500_000,
        }
    }
}

struct SearchState<'a> {
    dag: &'a CircuitDag,
    order: Vec<NodeId>,
    limit: usize,
    best_count: usize,
    best_assignment: Option<Vec<usize>>,
    nodes_explored: usize,
    node_budget: usize,
    budget_exhausted: bool,
    /// Direct quotient-graph edges among the parts of the assigned prefix,
    /// with multiplicities so they can be removed on backtrack.
    edge_multiplicity: std::collections::HashMap<(usize, usize), usize>,
    /// Part of each assigned gate node (`usize::MAX` = unassigned).
    part_of_node: Vec<usize>,
}

impl OptimalPartitioner {
    /// Find a minimum-part partition of `dag` under working-set limit
    /// `limit`, seeding the incumbent with `upper_bound` (a heuristic
    /// solution's part count) when provided.
    pub fn partition(
        &self,
        dag: &CircuitDag,
        limit: usize,
        upper_bound: Option<usize>,
    ) -> Result<OptimalResult, PartitionBuildError> {
        if limit == 0 {
            return Err(PartitionBuildError::InvalidLimit(limit));
        }
        let order = dag.natural_gate_order();
        for &node in &order {
            let arity = dag.qubits_of(node).len();
            if arity > limit {
                return Err(PartitionBuildError::GateExceedsLimit {
                    gate: dag.gate_index(node).unwrap(),
                    arity,
                    limit,
                });
            }
        }
        if order.is_empty() {
            return Ok(OptimalResult {
                partition: Partition::from_gate_assignment(Vec::new()),
                proven_optimal: true,
                nodes_explored: 0,
            });
        }

        let mut state = SearchState {
            part_of_node: vec![usize::MAX; dag.num_nodes()],
            dag,
            order,
            limit,
            // The incumbent is one *more* than the heuristic bound so that a
            // solution matching the heuristic is still enumerated and
            // returned (the caller wants the optimal assignment, not just a
            // strictly better one).
            best_count: upper_bound.map_or(usize::MAX, |u| u.saturating_add(1)),
            best_assignment: None,
            nodes_explored: 0,
            node_budget: self.node_budget,
            budget_exhausted: false,
            edge_multiplicity: Default::default(),
        };
        let mut assignment: Vec<usize> = Vec::with_capacity(state.order.len());
        let mut part_qubits: Vec<BTreeSet<usize>> = Vec::new();
        branch(&mut state, &mut assignment, &mut part_qubits);

        let best_assignment = match state.best_assignment {
            Some(a) => a,
            None => {
                // No solution within the seeded bound — fall back to one part
                // per gate, which is always valid given the arity check.
                (0..state.order.len()).collect()
            }
        };
        // Map assignment (indexed by position in `order`) back to gate index.
        let mut per_gate = vec![0usize; dag.num_gate_nodes()];
        for (pos, &node) in state.order.iter().enumerate() {
            per_gate[dag.gate_index(node).unwrap()] = best_assignment[pos];
        }
        let partition = Partition::from_gate_assignment(per_gate);
        partition
            .validate(dag, limit)
            .map_err(PartitionBuildError::InvalidResult)?;
        Ok(OptimalResult {
            partition,
            proven_optimal: !state.budget_exhausted,
            nodes_explored: state.nodes_explored,
        })
    }
}

fn branch(
    state: &mut SearchState<'_>,
    assignment: &mut Vec<usize>,
    part_qubits: &mut Vec<BTreeSet<usize>>,
) {
    if state.budget_exhausted {
        return;
    }
    state.nodes_explored += 1;
    if state.nodes_explored > state.node_budget {
        state.budget_exhausted = true;
        return;
    }
    let pos = assignment.len();
    if pos == state.order.len() {
        // Acyclicity has been maintained incrementally, so any complete
        // assignment reaching this point is valid.
        let count = part_qubits.len();
        if count < state.best_count {
            state.best_count = count;
            state.best_assignment = Some(assignment.clone());
        }
        return;
    }
    // Bound: even without opening new parts we cannot beat the incumbent.
    if part_qubits.len() >= state.best_count {
        return;
    }
    let node = state.order[pos];
    let qubits = state.dag.qubits_of(node).to_vec();

    // Try existing parts first (ordered by how few new qubits they'd gain),
    // then a fresh part.
    let mut existing: Vec<(usize, usize)> = part_qubits
        .iter()
        .enumerate()
        .filter_map(|(p, ws)| {
            let added = qubits.iter().filter(|q| !ws.contains(q)).count();
            (ws.len() + added <= state.limit).then_some((added, p))
        })
        .collect();
    existing.sort_unstable();

    for (_, p) in existing {
        try_assign(state, assignment, part_qubits, node, p, &qubits, false);
        if state.budget_exhausted {
            return;
        }
    }

    // New part (only worth trying if it keeps us under the incumbent).
    if part_qubits.len() + 1 < state.best_count {
        let p = part_qubits.len();
        try_assign(state, assignment, part_qubits, node, p, &qubits, true);
    }
}

/// Assign `node` to part `p`, recurse, and undo — keeping the incremental
/// quotient-edge set and acyclicity invariant.
#[allow(clippy::too_many_arguments)]
fn try_assign(
    state: &mut SearchState<'_>,
    assignment: &mut Vec<usize>,
    part_qubits: &mut Vec<BTreeSet<usize>>,
    node: NodeId,
    p: usize,
    qubits: &[usize],
    fresh_part: bool,
) {
    // Direct edges this assignment adds to the quotient graph: every gate
    // predecessor in a different part.
    let mut new_edges: Vec<(usize, usize)> = Vec::new();
    for &(pred, _) in state.dag.predecessors(node) {
        if state.dag.gate_index(pred).is_none() {
            continue;
        }
        let pred_part = state.part_of_node[pred];
        debug_assert_ne!(pred_part, usize::MAX, "topological order violated");
        if pred_part != p {
            new_edges.push((pred_part, p));
        }
    }
    // Acyclicity: adding pred_part -> p must not close a cycle, i.e. p must
    // not already reach pred_part in the current quotient graph.
    for &(from, _) in &new_edges {
        if reaches(state, p, from) {
            return;
        }
    }

    // Apply.
    if fresh_part {
        part_qubits.push(qubits.iter().copied().collect());
    }
    let added: Vec<usize> = qubits
        .iter()
        .copied()
        .filter(|q| !part_qubits[p].contains(q))
        .collect();
    for &q in &added {
        part_qubits[p].insert(q);
    }
    for &e in &new_edges {
        *state.edge_multiplicity.entry(e).or_insert(0) += 1;
    }
    state.part_of_node[node] = p;
    assignment.push(p);

    branch(state, assignment, part_qubits);

    // Undo.
    assignment.pop();
    state.part_of_node[node] = usize::MAX;
    for &e in &new_edges {
        let m = state.edge_multiplicity.get_mut(&e).unwrap();
        *m -= 1;
        if *m == 0 {
            state.edge_multiplicity.remove(&e);
        }
    }
    for &q in &added {
        part_qubits[p].remove(&q);
    }
    if fresh_part {
        part_qubits.pop();
    }
}

/// Does part `from` reach part `to` in the current (prefix) quotient graph?
fn reaches(state: &SearchState<'_>, from: usize, to: usize) -> bool {
    if from == to {
        return true;
    }
    let mut stack = vec![from];
    let mut seen: BTreeSet<usize> = BTreeSet::new();
    while let Some(p) = stack.pop() {
        if p == to {
            return true;
        }
        if !seen.insert(p) {
            continue;
        }
        for (&(a, b), _) in state.edge_multiplicity.iter() {
            if a == p {
                stack.push(b);
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dagp::DagPPartitioner;
    use crate::nat::NatPartitioner;
    use hisvsim_circuit::{generators, Circuit};
    use hisvsim_dag::CircuitDag;

    #[test]
    fn optimal_matches_obvious_cases() {
        // cat_state(6) with limit 3: 2 parts would need two disjoint 3-qubit
        // sets, but CX(2,3) straddles any such split, so 3 parts is minimal.
        let c = generators::cat_state(6);
        let dag = CircuitDag::from_circuit(&c);
        let result = OptimalPartitioner::default()
            .partition(&dag, 3, None)
            .unwrap();
        assert!(result.proven_optimal);
        assert_eq!(result.partition.num_parts(), 3);
    }

    #[test]
    fn optimal_single_part_when_whole_circuit_fits() {
        let c = generators::by_name("bv", 6);
        let dag = CircuitDag::from_circuit(&c);
        let result = OptimalPartitioner::default()
            .partition(&dag, 6, None)
            .unwrap();
        assert_eq!(result.partition.num_parts(), 1);
        assert!(result.proven_optimal);
    }

    #[test]
    fn optimal_never_exceeds_heuristics() {
        for name in ["cat_state", "bv", "cc", "ising"] {
            let c = generators::by_name(name, 6);
            let dag = CircuitDag::from_circuit(&c);
            for limit in [3usize, 4] {
                let nat = match NatPartitioner.partition(&dag, limit) {
                    Ok(p) => p,
                    Err(_) => continue,
                };
                let opt = OptimalPartitioner::default()
                    .partition(&dag, limit, Some(nat.num_parts()))
                    .unwrap();
                assert!(
                    opt.partition.num_parts() <= nat.num_parts(),
                    "{name}@{limit}: optimal {} > Nat {}",
                    opt.partition.num_parts(),
                    nat.num_parts()
                );
                let dagp = DagPPartitioner::default().partition(&dag, limit).unwrap();
                assert!(
                    opt.partition.num_parts() <= dagp.num_parts(),
                    "{name}@{limit}: optimal {} > dagP {}",
                    opt.partition.num_parts(),
                    dagp.num_parts()
                );
            }
        }
    }

    #[test]
    fn dagp_is_near_optimal_on_small_instances() {
        // Reproduces the paper's Sec. V-A quality claim in miniature: dagP is
        // within 2 parts of optimal everywhere, and optimal in most cases.
        let mut optimal_hits = 0usize;
        let mut total = 0usize;
        for name in ["cat_state", "bv", "cc", "ising"] {
            let c = generators::by_name(name, 6);
            let dag = CircuitDag::from_circuit(&c);
            for limit in [4usize, 5] {
                let dagp = match DagPPartitioner::default().partition(&dag, limit) {
                    Ok(p) => p,
                    Err(_) => continue,
                };
                let opt = OptimalPartitioner::default()
                    .partition(&dag, limit, Some(dagp.num_parts()))
                    .unwrap();
                total += 1;
                assert!(
                    dagp.num_parts() <= opt.partition.num_parts() + 2,
                    "{name}@{limit}: dagP {} vs optimal {}",
                    dagp.num_parts(),
                    opt.partition.num_parts()
                );
                if dagp.num_parts() == opt.partition.num_parts() {
                    optimal_hits += 1;
                }
            }
        }
        assert!(total > 0);
        assert!(
            optimal_hits * 2 >= total,
            "dagP optimal in only {optimal_hits}/{total} cases"
        );
    }

    #[test]
    fn budget_exhaustion_is_reported_not_fatal() {
        let c = generators::by_name("qft", 8);
        let dag = CircuitDag::from_circuit(&c);
        let tiny = OptimalPartitioner { node_budget: 50 };
        let result = tiny.partition(&dag, 4, None).unwrap();
        assert!(!result.proven_optimal);
        result.partition.validate(&dag, 4).unwrap();
    }

    #[test]
    fn empty_circuit_is_trivially_optimal() {
        let c = Circuit::new(2);
        let dag = CircuitDag::from_circuit(&c);
        let r = OptimalPartitioner::default()
            .partition(&dag, 1, None)
            .unwrap();
        assert_eq!(r.partition.num_parts(), 0);
        assert!(r.proven_optimal);
    }
}

//! # hisvsim-partition
//!
//! The quantum-circuit partitioning strategies of the HiSVSIM paper
//! (Sec. IV): given the circuit DAG and a working-set limit `Lm`, produce an
//! acyclic partition of the gates into the fewest possible parts so each part
//! fits a smaller (cache- or node-local) state vector.
//!
//! * [`nat`] — Natural topological order cutoff (`Nat`),
//! * [`dfs`] — best-of-k random DFS topological order cutoffs (`DFS`),
//! * [`dagp`] — the multilevel acyclic partitioner with recursive bisection,
//!   refinement and the paper's added merge phase (`dagP`),
//! * [`optimal`] — exact branch-and-bound minimum-part reference (the paper's
//!   ILP stand-in),
//! * [`multilevel`] — two-level partitioning for the multi-node + cache
//!   hierarchy (Sec. V-D),
//! * [`strategy`] — the [`Strategy`] enum used to sweep all of the above.
//!
//! ## Example
//!
//! ```
//! use hisvsim_circuit::generators;
//! use hisvsim_dag::CircuitDag;
//! use hisvsim_partition::Strategy;
//!
//! let circuit = generators::qft(10);
//! let dag = CircuitDag::from_circuit(&circuit);
//! let partition = Strategy::DagP.partition(&dag, 5).unwrap();
//! assert!(partition.validate(&dag, 5).is_ok());
//! assert!(partition.num_parts() >= 2); // 10 qubits cannot fit one 5-qubit part
//! ```

#![warn(missing_docs)]

pub mod cutoff;
pub mod dagp;
pub mod dfs;
pub mod error;
pub mod multilevel;
pub mod nat;
pub mod optimal;
pub mod strategy;

pub use dagp::{DagPConfig, DagPPartitioner};
pub use dfs::DfsPartitioner;
pub use error::PartitionBuildError;
pub use multilevel::{MultilevelPartition, MultilevelPartitioner};
pub use nat::NatPartitioner;
pub use optimal::{OptimalPartitioner, OptimalResult};
pub use strategy::Strategy;

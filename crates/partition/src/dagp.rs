//! `dagP` — the acyclic-partitioning-based strategy (Sec. IV-B.3).
//!
//! The paper adapts a multilevel acyclic DAG partitioner (Herrmann et al.,
//! SISC 2019) to the circuit-partitioning problem. The pipeline implemented
//! here mirrors the paper's modified version:
//!
//! 1. **Recursive bisection.** If the working set of the (sub)graph exceeds
//!    the limit `Lm`, bisect it into two acyclic halves and recurse; stop as
//!    soon as a subgraph's working set fits. The number of parts is therefore
//!    *discovered*, not an input parameter — the paper's key modification.
//! 2. Each bisection itself is multilevel: an acyclic **agglomerative
//!    coarsening** (contracting contiguous runs of the topological order that
//!    share qubits), an **initial split** that scans the coarse topological
//!    order for the minimum-cut point within the imbalance tolerance
//!    (ε ≤ 1.5 as in the paper), and an acyclicity-preserving **FM-style
//!    refinement** of the boundary.
//! 3. A final **merge phase** (the phase the paper adds to the original
//!    algorithm): greedily merge parts of the quotient graph whenever the
//!    merged working set stays within `Lm` and the merge keeps the quotient
//!    graph acyclic, further reducing the part count.
//!
//! All phases operate on working sets computed from in-edge labels and the
//! entry nodes contained in a part, exactly the incremental bookkeeping the
//! paper describes.

use crate::error::PartitionBuildError;
use hisvsim_dag::{CircuitDag, NodeId, Partition};
use std::collections::BTreeSet;

/// Tunable parameters of the dagP strategy.
#[derive(Debug, Clone, Copy)]
pub struct DagPConfig {
    /// Maximum allowed imbalance between the two sides of a bisection,
    /// expressed as the larger side divided by the ideal half size. The paper
    /// uses ε ≤ 1.5 because part-size balance is not critical.
    pub imbalance: f64,
    /// Number of boundary-refinement passes per bisection.
    pub refinement_passes: usize,
    /// Enable the acyclic agglomerative coarsening phase.
    pub coarsen: bool,
    /// Enable the final merge phase (the paper's addition). Disabling it is
    /// the ablation reported in EXPERIMENTS.md.
    pub merge: bool,
    /// Maximum nodes per coarse cluster.
    pub max_cluster_size: usize,
}

impl Default for DagPConfig {
    fn default() -> Self {
        Self {
            imbalance: 1.5,
            refinement_passes: 4,
            coarsen: true,
            merge: true,
            max_cluster_size: 8,
        }
    }
}

/// The dagP partitioner.
#[derive(Debug, Clone, Copy, Default)]
pub struct DagPPartitioner {
    /// Configuration; `Default` matches the paper's suggested parameters.
    pub config: DagPConfig,
}

impl DagPPartitioner {
    /// A dagP partitioner with an explicit configuration.
    pub fn new(config: DagPConfig) -> Self {
        Self { config }
    }

    /// Partition `dag` so every part's working set is at most `limit`,
    /// minimising the number of parts.
    pub fn partition(
        &self,
        dag: &CircuitDag,
        limit: usize,
    ) -> Result<Partition, PartitionBuildError> {
        if limit == 0 {
            return Err(PartitionBuildError::InvalidLimit(limit));
        }
        for node in dag.natural_gate_order() {
            let arity = dag.qubits_of(node).len();
            if arity > limit {
                return Err(PartitionBuildError::GateExceedsLimit {
                    gate: dag.gate_index(node).unwrap(),
                    arity,
                    limit,
                });
            }
        }
        if dag.num_gate_nodes() == 0 {
            return Ok(Partition::from_gate_assignment(Vec::new()));
        }

        // Phase 1+2: recursive bisection until every subgraph fits. The
        // recursion's leaf sequence is a topological order of the gates in
        // which qubit-related gates sit next to each other (each bisection
        // minimises the qubits shared across the split).
        let all: Vec<NodeId> = dag.natural_gate_order();
        let mut leaves: Vec<Vec<NodeId>> = Vec::new();
        self.recurse(dag, all, limit, &mut leaves);

        // Pack gates into parts with a ready-list greedy: always prefer the
        // ready gate that adds the fewest new qubits to the open part, using
        // the bisection order as the locality tie-break. The bisection
        // discovers the global structure (which qubit groups belong
        // together); the packing fills each part to the working-set limit —
        // the recursion alone leaves parts half-full because it only
        // balances node counts.
        let bisection_order: Vec<NodeId> = leaves.iter().flatten().copied().collect();
        let mut parts = pack_ready_greedy(dag, &bisection_order, limit);

        // Phase 3: merge.
        if self.config.merge {
            parts = merge_parts(dag, parts, limit);
        }

        let mut assignment = vec![0usize; dag.num_gate_nodes()];
        for (p, nodes) in parts.iter().enumerate() {
            for &node in nodes {
                assignment[dag.gate_index(node).unwrap()] = p;
            }
        }
        let partition = Partition::from_gate_assignment(assignment);
        partition
            .validate(dag, limit)
            .map_err(PartitionBuildError::InvalidResult)?;
        Ok(partition)
    }

    fn recurse(
        &self,
        dag: &CircuitDag,
        nodes: Vec<NodeId>,
        limit: usize,
        out: &mut Vec<Vec<NodeId>>,
    ) {
        if nodes.is_empty() {
            return;
        }
        if dag.working_set(&nodes).len() <= limit {
            out.push(nodes);
            return;
        }
        let (a, b) = self.bisect(dag, &nodes);
        // A bisection that fails to split (degenerate) falls back to halving
        // the topological order, which always makes progress for |nodes| > 1.
        if a.is_empty() || b.is_empty() {
            let mid = nodes.len() / 2;
            let (left, right) = nodes.split_at(mid.max(1));
            self.recurse(dag, left.to_vec(), limit, out);
            self.recurse(dag, right.to_vec(), limit, out);
            return;
        }
        self.recurse(dag, a, limit, out);
        self.recurse(dag, b, limit, out);
    }

    /// Bisect a subset of gate vertices into an "early" and a "late" side
    /// such that all induced edges point early → late.
    fn bisect(&self, dag: &CircuitDag, nodes: &[NodeId]) -> (Vec<NodeId>, Vec<NodeId>) {
        if nodes.len() < 2 {
            return (nodes.to_vec(), Vec::new());
        }
        let in_subset: BTreeSet<NodeId> = nodes.iter().copied().collect();

        // The subset listed in natural order is a topological order of the
        // induced subgraph (a subsequence of a topological order is one).
        let order: Vec<NodeId> = dag
            .natural_gate_order()
            .into_iter()
            .filter(|n| in_subset.contains(n))
            .collect();

        // --- coarsening ---------------------------------------------------
        let clusters: Vec<Vec<NodeId>> = if self.config.coarsen {
            coarsen_order(dag, &order, self.config.max_cluster_size)
        } else {
            order.iter().map(|&n| vec![n]).collect()
        };

        // --- initial split ------------------------------------------------
        let split_cluster = self.best_split(dag, &clusters, &in_subset);
        let mut side = vec![false; dag.num_nodes()]; // false = early, true = late
        for (ci, cluster) in clusters.iter().enumerate() {
            for &n in cluster {
                side[n] = ci >= split_cluster;
            }
        }

        // --- refinement ---------------------------------------------------
        self.refine(dag, &order, &in_subset, &mut side);

        let mut early = Vec::new();
        let mut late = Vec::new();
        for &n in &order {
            if side[n] {
                late.push(n);
            } else {
                early.push(n);
            }
        }
        (early, late)
    }

    /// Scan all cluster split points and return the one whose two sides share
    /// the fewest qubits, among splits within the imbalance tolerance
    /// (falling back to the most balanced point if none qualify).
    ///
    /// Shared qubits — not raw edge cut — is the quantity that drives the
    /// final part count: every qubit appearing on both sides must be loaded
    /// into (at least) one extra part downstream, so minimising it is the
    /// working-set analogue of the original algorithm's edge-cut objective.
    fn best_split(
        &self,
        dag: &CircuitDag,
        clusters: &[Vec<NodeId>],
        _in_subset: &BTreeSet<NodeId>,
    ) -> usize {
        let total_nodes: usize = clusters.iter().map(|c| c.len()).sum();
        let ideal = total_nodes as f64 / 2.0;
        let max_side = (ideal * self.config.imbalance).ceil() as usize;

        // Per-qubit gate counts of each cluster, so prefix/suffix qubit sets
        // can be maintained incrementally across split points.
        let nq = dag.num_qubits();
        let mut suffix_counts = vec![0usize; nq];
        for cluster in clusters {
            for &n in cluster {
                for &q in dag.qubits_of(n) {
                    suffix_counts[q] += 1;
                }
            }
        }
        let mut prefix_counts = vec![0usize; nq];

        let mut best: Option<(usize, usize, usize)> = None; // (shared, balance distance, split)
        let mut fallback: Option<(usize, usize)> = None; // (balance distance, split)
        let mut prefix_nodes = 0usize;
        for split in 1..clusters.len() {
            for &n in &clusters[split - 1] {
                for &q in dag.qubits_of(n) {
                    prefix_counts[q] += 1;
                    suffix_counts[q] -= 1;
                }
            }
            prefix_nodes += clusters[split - 1].len();
            let suffix_nodes = total_nodes - prefix_nodes;
            let shared = (0..nq)
                .filter(|&q| prefix_counts[q] > 0 && suffix_counts[q] > 0)
                .count();
            let distance = prefix_nodes.abs_diff(suffix_nodes);
            let balanced = prefix_nodes <= max_side && suffix_nodes <= max_side;
            if balanced && best.is_none_or(|(s, d, _)| shared < s || (shared == s && distance < d))
            {
                best = Some((shared, distance, split));
            }
            if fallback.is_none_or(|(d, _)| distance < d) {
                fallback = Some((distance, split));
            }
        }
        best.map(|(_, _, s)| s)
            .or(fallback.map(|(_, s)| s))
            .unwrap_or(1)
    }

    /// Boundary refinement: move vertices across the split when it lowers the
    /// number of qubits shared by the two sides, keeping all induced edges
    /// early → late and respecting the imbalance bound.
    fn refine(
        &self,
        dag: &CircuitDag,
        order: &[NodeId],
        in_subset: &BTreeSet<NodeId>,
        side: &mut [bool],
    ) {
        let total = order.len();
        let ideal = total as f64 / 2.0;
        let max_side = (ideal * self.config.imbalance).ceil() as usize;
        let mut late_count = order.iter().filter(|&&n| side[n]).count();

        // Per-qubit gate counts on each side, maintained across moves.
        let nq = dag.num_qubits();
        let mut early_counts = vec![0usize; nq];
        let mut late_counts = vec![0usize; nq];
        for &n in order {
            let counts = if side[n] {
                &mut late_counts
            } else {
                &mut early_counts
            };
            for &q in dag.qubits_of(n) {
                counts[q] += 1;
            }
        }

        for _ in 0..self.config.refinement_passes {
            let mut moved = false;
            for &n in order {
                let currently_late = side[n];
                // Feasibility: moving early→late requires no successor on the
                // early side; late→early requires no predecessor on the late
                // side (otherwise an edge would point late → early).
                let feasible = if currently_late {
                    dag.predecessors(n)
                        .iter()
                        .all(|&(p, _)| !in_subset.contains(&p) || !side[p])
                } else {
                    dag.successors(n)
                        .iter()
                        .all(|&(s, _)| !in_subset.contains(&s) || side[s])
                };
                if !feasible {
                    continue;
                }
                // Balance after the move.
                let new_late = if currently_late {
                    late_count - 1
                } else {
                    late_count + 1
                };
                let new_early = total - new_late;
                if new_late > max_side || new_early > max_side || new_late == 0 || new_early == 0 {
                    continue;
                }
                // Gain: change in the number of qubits shared between the two
                // sides if `n` switches sides.
                let (from_counts, to_counts) = if currently_late {
                    (&late_counts, &early_counts)
                } else {
                    (&early_counts, &late_counts)
                };
                let mut gain: isize = 0;
                for &q in dag.qubits_of(n) {
                    // Leaving the `from` side: if this was the last gate on q
                    // there and q is used on the `to` side, q stops being shared.
                    if from_counts[q] == 1 && to_counts[q] > 0 {
                        gain += 1;
                    }
                    // Arriving on the `to` side: if q was not used there but
                    // remains on the `from` side, q becomes shared.
                    if to_counts[q] == 0 && from_counts[q] > 1 {
                        gain -= 1;
                    }
                }
                if gain > 0 {
                    side[n] = !currently_late;
                    late_count = new_late;
                    for &q in dag.qubits_of(n) {
                        if currently_late {
                            late_counts[q] -= 1;
                            early_counts[q] += 1;
                        } else {
                            early_counts[q] -= 1;
                            late_counts[q] += 1;
                        }
                    }
                    moved = true;
                }
            }
            if !moved {
                break;
            }
        }
    }
}

/// Contract contiguous runs of the topological order into clusters of at most
/// `max_size` vertices, preferring to extend a cluster while the next vertex
/// shares a qubit with it (acyclic by construction: clusters are contiguous
/// segments of a topological order).
fn coarsen_order(dag: &CircuitDag, order: &[NodeId], max_size: usize) -> Vec<Vec<NodeId>> {
    let mut clusters: Vec<Vec<NodeId>> = Vec::new();
    let mut current: Vec<NodeId> = Vec::new();
    let mut current_qubits: BTreeSet<usize> = BTreeSet::new();
    for &n in order {
        let qs = dag.qubits_of(n);
        let shares = qs.iter().any(|q| current_qubits.contains(q));
        if current.is_empty() || (shares && current.len() < max_size) {
            current.push(n);
            current_qubits.extend(qs.iter().copied());
        } else {
            clusters.push(std::mem::take(&mut current));
            current_qubits.clear();
            current.push(n);
            current_qubits.extend(qs.iter().copied());
        }
    }
    if !current.is_empty() {
        clusters.push(current);
    }
    clusters
}

/// Greedy ready-list packing.
///
/// Gates become *ready* once all their gate predecessors are assigned. The
/// open part repeatedly absorbs the ready gate that introduces the fewest new
/// qubits (ties broken by the position in `priority`, the bisection's
/// locality order); when no ready gate fits under `limit`, the part is closed
/// and a new one opened. Parts are produced in a topological order of the
/// quotient graph by construction: a gate is assigned only after all of its
/// predecessors, so every cross-part edge points from an earlier-closed part
/// to a later one.
fn pack_ready_greedy(dag: &CircuitDag, priority: &[NodeId], limit: usize) -> Vec<Vec<NodeId>> {
    let total = priority.len();
    let mut priority_pos = vec![usize::MAX; dag.num_nodes()];
    for (pos, &n) in priority.iter().enumerate() {
        priority_pos[n] = pos;
    }
    // Count only *gate* predecessors; entry vertices are always satisfied.
    let mut remaining_preds = vec![0usize; dag.num_nodes()];
    for &n in priority {
        remaining_preds[n] = dag
            .predecessors(n)
            .iter()
            .filter(|&&(p, _)| dag.gate_index(p).is_some())
            .count();
    }
    let mut ready: Vec<NodeId> = priority
        .iter()
        .copied()
        .filter(|&n| remaining_preds[n] == 0)
        .collect();

    let mut parts: Vec<Vec<NodeId>> = Vec::new();
    let mut current: Vec<NodeId> = Vec::new();
    let mut current_qubits = vec![false; dag.num_qubits()];
    let mut current_count = 0usize;
    let mut assigned = 0usize;

    while assigned < total {
        // Pick the ready gate adding the fewest new qubits that still fits.
        let mut best: Option<(usize, usize, usize)> = None; // (new_qubits, priority, index in ready)
        for (idx, &n) in ready.iter().enumerate() {
            let new_qubits = dag
                .qubits_of(n)
                .iter()
                .filter(|&&q| !current_qubits[q])
                .count();
            if current_count + new_qubits > limit {
                continue;
            }
            let key = (new_qubits, priority_pos[n], idx);
            if best.is_none_or(|b| (key.0, key.1) < (b.0, b.1)) {
                best = Some(key);
            }
        }
        match best {
            Some((_, _, idx)) => {
                let n = ready.swap_remove(idx);
                for &q in dag.qubits_of(n) {
                    if !current_qubits[q] {
                        current_qubits[q] = true;
                        current_count += 1;
                    }
                }
                current.push(n);
                assigned += 1;
                for &(succ, _) in dag.successors(n) {
                    if dag.gate_index(succ).is_some() {
                        remaining_preds[succ] -= 1;
                        if remaining_preds[succ] == 0 {
                            ready.push(succ);
                        }
                    }
                }
            }
            None => {
                // Nothing fits: close the part. The arity pre-check in
                // `partition` guarantees the next gate fits an empty part.
                assert!(
                    !current.is_empty(),
                    "no ready gate fits an empty part — arity check should have caught this"
                );
                parts.push(std::mem::take(&mut current));
                current_qubits.iter_mut().for_each(|b| *b = false);
                current_count = 0;
            }
        }
    }
    if !current.is_empty() {
        parts.push(current);
    }
    parts
}

/// The final merge phase: repeatedly merge the pair of parts with the largest
/// qubit overlap whose merged working set fits within `limit` and whose
/// merge keeps the quotient graph acyclic.
fn merge_parts(dag: &CircuitDag, mut parts: Vec<Vec<NodeId>>, limit: usize) -> Vec<Vec<NodeId>> {
    loop {
        if parts.len() <= 1 {
            return parts;
        }
        let working_sets: Vec<BTreeSet<usize>> = parts.iter().map(|p| dag.working_set(p)).collect();

        // Quotient adjacency indexed exactly by our `parts` positions (a
        // plain `PartGraph` would renumber parts by first appearance, which
        // does not match these indices).
        let succ = quotient_successors(dag, &parts);

        // Candidate pairs ordered by descending qubit overlap, then ascending
        // merged working-set size (prefer merges that stay small).
        let mut candidates: Vec<(usize, usize, usize, usize)> = Vec::new(); // (overlap, merged_ws, a, b)
        for a in 0..parts.len() {
            for b in a + 1..parts.len() {
                let merged: BTreeSet<usize> =
                    working_sets[a].union(&working_sets[b]).copied().collect();
                if merged.len() > limit {
                    continue;
                }
                let overlap = working_sets[a].intersection(&working_sets[b]).count();
                candidates.push((overlap, merged.len(), a, b));
            }
        }
        candidates.sort_by(|x, y| y.0.cmp(&x.0).then(x.1.cmp(&y.1)));

        let mut merged_pair: Option<(usize, usize)> = None;
        for &(_, _, a, b) in &candidates {
            if merge_keeps_acyclic(&succ, a, b) {
                merged_pair = Some((a, b));
                break;
            }
        }
        match merged_pair {
            Some((a, b)) => {
                let moved = std::mem::take(&mut parts[b]);
                parts[a].extend(moved);
                parts.remove(b);
            }
            None => return parts,
        }
    }
}

/// Successor sets of the quotient graph, indexed by position in `parts`.
fn quotient_successors(dag: &CircuitDag, parts: &[Vec<NodeId>]) -> Vec<BTreeSet<usize>> {
    let mut part_of_node = vec![usize::MAX; dag.num_nodes()];
    for (p, nodes) in parts.iter().enumerate() {
        for &node in nodes {
            part_of_node[node] = p;
        }
    }
    let mut succ = vec![BTreeSet::new(); parts.len()];
    for (p, nodes) in parts.iter().enumerate() {
        for &node in nodes {
            for &(s, _) in dag.successors(node) {
                let q = part_of_node[s];
                if q != usize::MAX && q != p {
                    succ[p].insert(q);
                }
            }
        }
    }
    succ
}

/// Merging parts `a` and `b` keeps the quotient acyclic iff there is no
/// directed path between them that passes through a third part (a direct
/// edge is fine — it becomes internal).
fn merge_keeps_acyclic(succ: &[BTreeSet<usize>], a: usize, b: usize) -> bool {
    !has_indirect_path(succ, a, b) && !has_indirect_path(succ, b, a)
}

fn has_indirect_path(succ: &[BTreeSet<usize>], from: usize, to: usize) -> bool {
    // DFS from `from`'s successors other than `to` itself; if we can still
    // reach `to`, the path is indirect.
    let mut stack: Vec<usize> = succ[from].iter().copied().filter(|&s| s != to).collect();
    let mut seen = vec![false; succ.len()];
    while let Some(p) = stack.pop() {
        if p == to {
            return true;
        }
        if seen[p] {
            continue;
        }
        seen[p] = true;
        for &s in &succ[p] {
            stack.push(s);
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfs::DfsPartitioner;
    use crate::nat::NatPartitioner;
    use hisvsim_circuit::{generators, Circuit};

    #[test]
    fn dagp_partitions_validate_across_suite() {
        for name in generators::FAMILY_NAMES {
            let c = generators::by_name(name, 10);
            let dag = CircuitDag::from_circuit(&c);
            for limit in [4usize, 6, 8, 10] {
                match DagPPartitioner::default().partition(&dag, limit) {
                    Ok(p) => {
                        p.validate(&dag, limit)
                            .unwrap_or_else(|e| panic!("{name}@{limit}: {e}"));
                    }
                    Err(PartitionBuildError::GateExceedsLimit { .. }) => {}
                    Err(e) => panic!("{name}@{limit}: {e}"),
                }
            }
        }
    }

    #[test]
    fn dagp_never_more_parts_than_nat_on_suite() {
        // The paper's headline claim at partitioning level: the global view
        // of dagP beats the localized Nat view (or at least matches it).
        let mut dagp_wins = 0usize;
        for name in generators::FAMILY_NAMES {
            let c = generators::by_name(name, 12);
            let dag = CircuitDag::from_circuit(&c);
            for limit in [5usize, 8] {
                let nat = match NatPartitioner.partition(&dag, limit) {
                    Ok(p) => p,
                    Err(_) => continue,
                };
                let dagp = DagPPartitioner::default().partition(&dag, limit).unwrap();
                assert!(
                    dagp.num_parts() <= nat.num_parts() + 1,
                    "{name}@{limit}: dagP {} parts vs Nat {} parts",
                    dagp.num_parts(),
                    nat.num_parts()
                );
                if dagp.num_parts() < nat.num_parts() {
                    dagp_wins += 1;
                }
            }
        }
        assert!(dagp_wins > 0, "dagP never beat Nat anywhere on the suite");
    }

    #[test]
    fn dagp_handles_alternating_circuit_like_dfs() {
        let mut c = Circuit::new(4);
        for _ in 0..6 {
            c.cx(0, 1);
            c.cx(2, 3);
        }
        let dag = CircuitDag::from_circuit(&c);
        let p = DagPPartitioner::default().partition(&dag, 2).unwrap();
        assert_eq!(
            p.num_parts(),
            2,
            "dagP should group the two independent pair-threads"
        );
    }

    #[test]
    fn merge_phase_reduces_or_keeps_part_count() {
        for name in ["qft", "qaoa", "grover"] {
            let c = generators::by_name(name, 10);
            let dag = CircuitDag::from_circuit(&c);
            let with_merge = DagPPartitioner::default().partition(&dag, 5).unwrap();
            let without_merge = DagPPartitioner::new(DagPConfig {
                merge: false,
                ..Default::default()
            })
            .partition(&dag, 5)
            .unwrap();
            assert!(
                with_merge.num_parts() <= without_merge.num_parts(),
                "{name}: merge phase increased the part count"
            );
        }
    }

    #[test]
    fn whole_circuit_in_one_part_when_it_fits() {
        let c = generators::by_name("ising", 8);
        let dag = CircuitDag::from_circuit(&c);
        let p = DagPPartitioner::default().partition(&dag, 8).unwrap();
        assert_eq!(p.num_parts(), 1);
    }

    #[test]
    fn empty_circuit_yields_empty_partition() {
        let c = Circuit::new(3);
        let dag = CircuitDag::from_circuit(&c);
        let p = DagPPartitioner::default().partition(&dag, 2).unwrap();
        assert_eq!(p.num_parts(), 0);
    }

    #[test]
    fn coarsening_off_still_produces_valid_partitions() {
        let c = generators::by_name("qpe", 10);
        let dag = CircuitDag::from_circuit(&c);
        let cfg = DagPConfig {
            coarsen: false,
            ..Default::default()
        };
        let p = DagPPartitioner::new(cfg).partition(&dag, 5).unwrap();
        p.validate(&dag, 5).unwrap();
    }

    #[test]
    fn dagp_competitive_with_dfs() {
        // Not a strict dominance claim (both are heuristics), but across the
        // suite dagP should win or tie more often than it loses, which is
        // what the paper's Fig. 9 performance profile shows.
        let mut wins_or_ties = 0usize;
        let mut total = 0usize;
        for name in generators::FAMILY_NAMES {
            let c = generators::by_name(name, 12);
            let dag = CircuitDag::from_circuit(&c);
            for limit in [5usize, 8] {
                let dfs = match DfsPartitioner::default().partition(&dag, limit) {
                    Ok(p) => p,
                    Err(_) => continue,
                };
                let dagp = DagPPartitioner::default().partition(&dag, limit).unwrap();
                total += 1;
                if dagp.num_parts() <= dfs.num_parts() {
                    wins_or_ties += 1;
                }
            }
        }
        assert!(
            wins_or_ties * 2 >= total,
            "dagP lost to DFS on {} of {} instances",
            total - wins_or_ties,
            total
        );
    }
}

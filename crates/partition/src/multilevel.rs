//! Multi-level (two-level) partitioning (Sec. IV-B, "Multi-level
//! partitioning", and Sec. V-D).
//!
//! The recursive-bisection structure of dagP makes it natural to prepare
//! partitions at two scales: the *first level* bounded by the per-rank local
//! qubit count `l` (inter-node data distribution), and the *second level*
//! bounded by a cache-sized limit (intra-node locality). The first-level
//! partitioning runs on the whole circuit; each first-level part is then
//! partitioned again with the second-level limit.
//!
//! When a first-level part already fits the second-level limit, the second
//! level is the identity for that part (the paper notes those circuits show
//! no difference between single- and multi-level execution).

use crate::dagp::{DagPConfig, DagPPartitioner};
use crate::error::PartitionBuildError;
use hisvsim_circuit::Circuit;
use hisvsim_dag::{CircuitDag, Partition};
use serde::{Deserialize, Serialize};

/// A two-level partition: a first-level partition of the whole circuit and,
/// per first-level part, a second-level partition of that part's gates.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MultilevelPartition {
    /// First-level working-set limit (the distributed engine's local qubit
    /// count).
    pub first_limit: usize,
    /// Second-level working-set limit (cache-resident inner state vector).
    pub second_limit: usize,
    /// First-level partition over the circuit's gates.
    pub first: Partition,
    /// For each first-level part `p`: the gate indices of `p` (ascending
    /// circuit order) and a partition of *those positions* into second-level
    /// parts. `second[p].1.part_of(i)` is the second-level part of
    /// `second[p].0[i]`.
    pub second: Vec<(Vec<usize>, Partition)>,
}

impl MultilevelPartition {
    /// Number of first-level parts.
    pub fn num_first_level_parts(&self) -> usize {
        self.first.num_parts()
    }

    /// Total number of second-level parts across all first-level parts.
    pub fn total_second_level_parts(&self) -> usize {
        self.second.iter().map(|(_, p)| p.num_parts()).sum()
    }

    /// True when every first-level part has a trivial (single-part) second
    /// level — i.e. the multi-level execution degenerates to single-level.
    pub fn is_degenerate(&self) -> bool {
        self.second.iter().all(|(_, p)| p.num_parts() <= 1)
    }

    /// Validate the whole two-level structure against `dag`: the first
    /// level must be a valid acyclic partition under `first_limit`, the
    /// second-level table must cover exactly each first-level part's gates,
    /// and every non-trivial second-level partition must itself validate
    /// (acyclic, working sets within `second_limit`) on the part's sub-DAG.
    /// The guard for two-level plans from untrusted sources (e.g. a
    /// disk-persisted plan cache).
    pub fn validate(&self, dag: &CircuitDag, first_limit: usize) -> Result<(), String> {
        self.first
            .validate(dag, first_limit)
            .map_err(|e| format!("first level: {e}"))?;
        let by_part = self.first.gates_by_part();
        if self.second.len() != by_part.len() {
            return Err(format!(
                "second-level table has {} entries for {} first-level parts",
                self.second.len(),
                by_part.len()
            ));
        }
        for (p, (gates, partition)) in self.second.iter().enumerate() {
            let mut expected = by_part[p].clone();
            expected.sort_unstable();
            let mut got = gates.clone();
            got.sort_unstable();
            if expected != got {
                return Err(format!(
                    "second level of part {p} does not cover exactly the part's gates"
                ));
            }
            if partition.num_parts() <= 1 {
                continue; // identity second level: nothing more to check
            }
            let sub = sub_circuit_dag(dag, gates);
            partition
                .validate(&sub, self.second_limit)
                .map_err(|e| format!("second level of part {p}: {e}"))?;
        }
        Ok(())
    }

    /// The second-level parts of first-level part `p`, as lists of original
    /// circuit gate indices in execution (topological) order.
    pub fn second_level_gate_lists(&self, dag: &CircuitDag, p: usize) -> Vec<Vec<usize>> {
        let (gates, partition) = &self.second[p];
        if partition.num_parts() <= 1 {
            return vec![gates.clone()];
        }
        // Build a sub-circuit DAG ordering by using the quotient order of the
        // second-level partition over the *original* DAG restricted to these
        // gates: since the second-level parts are produced by an acyclic
        // partitioner on the sub-DAG, ordering parts by their minimal gate
        // index in circuit order is a valid execution order (gates within a
        // part keep circuit order; cross-part edges in the sub-DAG follow the
        // first-appearance order of an acyclic cutoff). To stay safe for any
        // acyclic second-level partition we recompute a topological order of
        // the second-level part graph on the restricted DAG.
        let sub = sub_circuit_dag(dag, gates);
        let order = partition.execution_order(&sub);
        let by_part = partition.gates_by_part();
        order
            .into_iter()
            .map(|sp| by_part[sp].iter().map(|&local| gates[local]).collect())
            .collect()
    }
}

/// Build the DAG of the sub-circuit formed by `gates` (original indices,
/// ascending) of the circuit behind `dag`. Local gate `i` of the sub-DAG is
/// `gates[i]`.
fn sub_circuit_dag(dag: &CircuitDag, gates: &[usize]) -> CircuitDag {
    // Reconstruct a small circuit containing only those gates, preserving
    // qubit identities; entry/exit bookkeeping is rebuilt by CircuitDag.
    let mut sub = Circuit::new(dag.num_qubits());
    for &g in gates {
        let node = dag.gate_node(g);
        let qubits = dag.qubits_of(node).to_vec();
        // The gate kind is irrelevant for partitioning; only the qubit set
        // matters. A placeholder multi-qubit structure must preserve arity,
        // so rebuild from the original circuit via the DAG's qubit list with
        // a neutral gate of matching arity.
        match qubits.len() {
            1 => {
                sub.add(hisvsim_circuit::GateKind::I, &qubits);
            }
            2 => {
                sub.add(hisvsim_circuit::GateKind::Cz, &qubits);
            }
            3 => {
                sub.add(hisvsim_circuit::GateKind::Ccx, &qubits);
            }
            other => panic!("unsupported arity {other} in sub-DAG construction"),
        }
    }
    CircuitDag::from_circuit(&sub)
}

/// The two-level partitioner: dagP at both levels.
#[derive(Debug, Clone, Copy, Default)]
pub struct MultilevelPartitioner {
    /// dagP configuration used at both levels.
    pub config: DagPConfig,
}

impl MultilevelPartitioner {
    /// Partition `dag` with a first-level limit (`first_limit`, e.g. the
    /// distributed engine's local qubit count) and a second-level limit
    /// (`second_limit`, e.g. the number of qubits whose state fits in LLC).
    pub fn partition(
        &self,
        dag: &CircuitDag,
        first_limit: usize,
        second_limit: usize,
    ) -> Result<MultilevelPartition, PartitionBuildError> {
        assert!(
            second_limit <= first_limit,
            "second-level limit {second_limit} must not exceed first-level limit {first_limit}"
        );
        let partitioner = DagPPartitioner::new(self.config);
        let first = partitioner.partition(dag, first_limit)?;
        let mut second = Vec::with_capacity(first.num_parts());
        for gates in first.gates_by_part() {
            let sub = sub_circuit_dag(dag, &gates);
            let sub_ws = sub.working_set_of_gates(&(0..gates.len()).collect::<Vec<_>>());
            let sub_partition = if sub_ws.len() <= second_limit {
                // Already cache-resident: identity second level.
                Partition::single_part(gates.len())
            } else {
                partitioner.partition(&sub, second_limit)?
            };
            second.push((gates, sub_partition));
        }
        Ok(MultilevelPartition {
            first_limit,
            second_limit,
            first,
            second,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hisvsim_circuit::generators;

    #[test]
    fn two_level_partition_respects_both_limits() {
        let c = generators::by_name("qft", 12);
        let dag = CircuitDag::from_circuit(&c);
        let ml = MultilevelPartitioner::default()
            .partition(&dag, 8, 4)
            .unwrap();
        // First level obeys the first limit.
        assert!(ml.first.max_working_set(&dag) <= 8);
        // Each second-level part obeys the second limit.
        for (p, (gates, _)) in ml.second.iter().enumerate() {
            for list in ml.second_level_gate_lists(&dag, p) {
                let ws = dag.working_set_of_gates(&list);
                assert!(
                    ws.len() <= 4,
                    "second-level part of first-level part {p} touches {} qubits",
                    ws.len()
                );
                assert!(!list.is_empty());
            }
            assert!(!gates.is_empty());
        }
    }

    #[test]
    fn second_level_lists_cover_each_first_level_part_exactly() {
        let c = generators::by_name("qaoa", 10);
        let dag = CircuitDag::from_circuit(&c);
        let ml = MultilevelPartitioner::default()
            .partition(&dag, 7, 3)
            .unwrap();
        for (p, (gates, _)) in ml.second.iter().enumerate() {
            let mut covered: Vec<usize> = ml
                .second_level_gate_lists(&dag, p)
                .into_iter()
                .flatten()
                .collect();
            covered.sort_unstable();
            let mut expected = gates.clone();
            expected.sort_unstable();
            assert_eq!(covered, expected, "first-level part {p} coverage mismatch");
        }
    }

    #[test]
    fn degenerate_when_second_limit_equals_first() {
        let c = generators::by_name("bv", 10);
        let dag = CircuitDag::from_circuit(&c);
        let ml = MultilevelPartitioner::default()
            .partition(&dag, 6, 6)
            .unwrap();
        assert!(ml.is_degenerate());
        assert_eq!(ml.total_second_level_parts(), ml.num_first_level_parts());
    }

    #[test]
    #[should_panic(expected = "must not exceed")]
    fn second_limit_above_first_is_rejected() {
        let c = generators::cat_state(6);
        let dag = CircuitDag::from_circuit(&c);
        let _ = MultilevelPartitioner::default().partition(&dag, 3, 5);
    }

    #[test]
    fn multilevel_counts_are_consistent() {
        let c = generators::by_name("qpe", 12);
        let dag = CircuitDag::from_circuit(&c);
        let ml = MultilevelPartitioner::default()
            .partition(&dag, 9, 5)
            .unwrap();
        assert_eq!(ml.num_first_level_parts(), ml.second.len());
        assert!(ml.total_second_level_parts() >= ml.num_first_level_parts());
    }
}

//! `Nat` — the Natural Topological Order Cutoff strategy (Sec. IV-B.1).
//!
//! Follows the execution order of the gates exactly as written in the
//! circuit and closes a part whenever the working set would exceed the
//! limit. Deterministic and essentially free to compute, but short-sighted:
//! circuits that alternate between disjoint qubit groups force it to open
//! far more parts than necessary.

use crate::cutoff::cutoff_by_order;
use crate::error::PartitionBuildError;
use hisvsim_dag::{CircuitDag, Partition};

/// The natural-order cutoff partitioner.
#[derive(Debug, Clone, Copy, Default)]
pub struct NatPartitioner;

impl NatPartitioner {
    /// Partition `dag` under working-set limit `limit`.
    pub fn partition(
        &self,
        dag: &CircuitDag,
        limit: usize,
    ) -> Result<Partition, PartitionBuildError> {
        cutoff_by_order(dag, &dag.natural_gate_order(), limit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hisvsim_circuit::{generators, Circuit};

    #[test]
    fn natural_cutoff_is_deterministic() {
        let c = generators::by_name("ising", 10);
        let dag = CircuitDag::from_circuit(&c);
        let a = NatPartitioner.partition(&dag, 5).unwrap();
        let b = NatPartitioner.partition(&dag, 5).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn alternating_circuit_hurts_nat() {
        // A circuit alternating between two distant qubit pairs: Nat must
        // split at every alternation when the limit only fits one pair,
        // mirroring the weakness described in the paper.
        let mut c = Circuit::new(4);
        for _ in 0..5 {
            c.cx(0, 1);
            c.cx(2, 3);
        }
        let dag = CircuitDag::from_circuit(&c);
        let p = NatPartitioner.partition(&dag, 2).unwrap();
        assert_eq!(p.num_parts(), 10);
        // With a limit of 4 the whole thing is one part.
        let p4 = NatPartitioner.partition(&dag, 4).unwrap();
        assert_eq!(p4.num_parts(), 1);
    }

    #[test]
    fn produced_partitions_validate() {
        for name in generators::FAMILY_NAMES {
            let c = generators::by_name(name, 9);
            let dag = CircuitDag::from_circuit(&c);
            for limit in [4usize, 6, 9] {
                match NatPartitioner.partition(&dag, limit) {
                    Ok(p) => {
                        p.validate(&dag, limit).unwrap();
                    }
                    Err(PartitionBuildError::GateExceedsLimit { .. }) => {}
                    Err(e) => panic!("{name}@{limit}: {e}"),
                }
            }
        }
    }
}

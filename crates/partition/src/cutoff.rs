//! The shared *topological-order cutoff* procedure used by the `Nat` and
//! `DFS` strategies (Sec. IV-B.1/2): walk the gates in a topological order,
//! accumulate the working set, and close the current part just before it
//! would exceed the limit `Lm`.

use crate::error::PartitionBuildError;
use hisvsim_dag::{CircuitDag, NodeId, Partition};

/// Partition a DAG by cutting a topological gate order whenever the working
/// set of the accumulating part would exceed `limit`.
///
/// `order` must be a valid topological order of all gate vertices (see
/// [`CircuitDag::is_valid_gate_order`]); parts are contiguous segments of it,
/// which guarantees acyclicity of the quotient graph.
pub fn cutoff_by_order(
    dag: &CircuitDag,
    order: &[NodeId],
    limit: usize,
) -> Result<Partition, PartitionBuildError> {
    if limit == 0 {
        return Err(PartitionBuildError::InvalidLimit(limit));
    }
    debug_assert!(
        dag.is_valid_gate_order(order),
        "cutoff needs a topological order"
    );

    let mut part_of_gate = vec![0usize; dag.num_gate_nodes()];
    let mut current_part = 0usize;
    let mut current_qubits: Vec<bool> = vec![false; dag.num_qubits()];
    let mut current_count = 0usize;

    for &node in order {
        let gate_index = dag
            .gate_index(node)
            .expect("cutoff order must contain only gate vertices");
        let qubits = dag.qubits_of(node);
        if qubits.len() > limit {
            return Err(PartitionBuildError::GateExceedsLimit {
                gate: gate_index,
                arity: qubits.len(),
                limit,
            });
        }
        let new_qubits = qubits.iter().filter(|&&q| !current_qubits[q]).count();
        if current_count + new_qubits > limit && current_count > 0 {
            // Close the current part and start a new one with this gate.
            current_part += 1;
            current_qubits.iter_mut().for_each(|b| *b = false);
            current_count = 0;
        }
        for &q in qubits {
            if !current_qubits[q] {
                current_qubits[q] = true;
                current_count += 1;
            }
        }
        part_of_gate[gate_index] = current_part;
    }

    Ok(Partition::from_gate_assignment(part_of_gate))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hisvsim_circuit::generators;
    use hisvsim_dag::CircuitDag;

    #[test]
    fn cutoff_respects_limit_and_is_acyclic() {
        for name in ["qft", "ising", "adder", "grover", "qaoa"] {
            let c = generators::by_name(name, 10);
            let dag = CircuitDag::from_circuit(&c);
            for limit in [3usize, 5, 8, 10] {
                let p = cutoff_by_order(&dag, &dag.natural_gate_order(), limit)
                    .unwrap_or_else(|e| panic!("{name}@{limit}: {e}"));
                p.validate(&dag, limit)
                    .unwrap_or_else(|e| panic!("{name}@{limit}: invalid partition: {e}"));
            }
        }
    }

    #[test]
    fn whole_circuit_fits_in_one_part_when_limit_is_width() {
        let c = generators::by_name("bv", 8);
        let dag = CircuitDag::from_circuit(&c);
        let p = cutoff_by_order(&dag, &dag.natural_gate_order(), 8).unwrap();
        assert_eq!(p.num_parts(), 1);
    }

    #[test]
    fn limit_below_gate_arity_is_an_error() {
        let c = generators::by_name("adder", 8); // contains Toffolis (3 qubits)
        let dag = CircuitDag::from_circuit(&c);
        match cutoff_by_order(&dag, &dag.natural_gate_order(), 2) {
            Err(PartitionBuildError::GateExceedsLimit {
                arity: 3, limit: 2, ..
            }) => {}
            other => panic!("expected GateExceedsLimit, got {other:?}"),
        }
    }

    #[test]
    fn zero_limit_is_rejected() {
        let c = generators::cat_state(4);
        let dag = CircuitDag::from_circuit(&c);
        assert!(matches!(
            cutoff_by_order(&dag, &dag.natural_gate_order(), 0),
            Err(PartitionBuildError::InvalidLimit(0))
        ));
    }

    #[test]
    fn cat_state_cutoff_produces_expected_part_count() {
        // cat_state(8) in natural order: H(0), CX(0,1), ..., CX(6,7).
        // With limit 4 the first part holds H + CX01 + CX12 + CX23 (4 qubits),
        // the next part CX34..CX56 … : ceil pattern -> 3 parts.
        let c = generators::cat_state(8);
        let dag = CircuitDag::from_circuit(&c);
        let p = cutoff_by_order(&dag, &dag.natural_gate_order(), 4).unwrap();
        assert_eq!(p.num_parts(), 3);
    }

    #[test]
    fn dfs_orders_can_beat_or_match_natural_order() {
        // Sanity: any valid topological order still yields a valid partition.
        let c = generators::by_name("qaoa", 10);
        let dag = CircuitDag::from_circuit(&c);
        let nat = cutoff_by_order(&dag, &dag.natural_gate_order(), 5).unwrap();
        for seed in 0..5 {
            let order = dag.random_dfs_gate_order(seed);
            let p = cutoff_by_order(&dag, &order, 5).unwrap();
            assert!(p.validate(&dag, 5).is_ok());
            assert!(p.num_parts() >= 1);
        }
        assert!(nat.num_parts() >= 1);
    }
}

//! The SPMD harness: run the same closure on every virtual rank, each on its
//! own OS thread, and collect the per-rank return values.
//!
//! This is the reproduction's stand-in for `mpirun`: the distributed engines
//! in `hisvsim-core` pass a closure that owns one rank's slice of the state
//! vector and communicates through the [`LocalComm`](crate::comm::LocalComm)
//! handed to it. The multi-process equivalent is `hisvsim-net`'s
//! `ClusterLauncher`, which drives the same engine bodies over `TcpComm`.

use crate::comm::{world, LocalComm};
use crate::netmodel::NetworkModel;
use std::thread;

/// Run `body` once per rank on `num_ranks` threads and return the per-rank
/// results in rank order.
///
/// `num_ranks` must be a power of two — the same constraint the paper's
/// distributed design imposes on the MPI world size (Sec. III-D).
pub fn run_spmd<T, R, F>(num_ranks: usize, net: NetworkModel, body: F) -> Vec<R>
where
    T: Send + 'static,
    R: Send,
    F: Fn(LocalComm<T>) -> R + Sync,
{
    assert!(num_ranks > 0, "need at least one rank");
    assert!(
        num_ranks.is_power_of_two(),
        "the distributed layout requires a power-of-two rank count, got {num_ranks}"
    );
    let comms = world::<T>(num_ranks, net);
    let body = &body;
    thread::scope(|scope| {
        let handles: Vec<_> = comms
            .into_iter()
            .map(|comm| scope.spawn(move || body(comm)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("a rank thread panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::RankComm;

    #[test]
    fn every_rank_runs_and_returns_in_order() {
        let results: Vec<usize> =
            run_spmd::<u8, _, _>(8, NetworkModel::ideal(), |comm| comm.rank() * 2);
        assert_eq!(results, vec![0, 2, 4, 6, 8, 10, 12, 14]);
    }

    #[test]
    fn ranks_can_communicate_inside_the_harness() {
        // Ring shift: rank r sends its id to (r+1) % size.
        let results: Vec<usize> = run_spmd::<usize, _, _>(4, NetworkModel::ideal(), |mut comm| {
            let to = (comm.rank() + 1) % comm.size();
            let from = (comm.rank() + comm.size() - 1) % comm.size();
            comm.send(to, 1, vec![comm.rank()]);
            comm.recv(from, 1)[0]
        });
        assert_eq!(results, vec![3, 0, 1, 2]);
    }

    #[test]
    fn closures_can_borrow_shared_read_only_data() {
        let shared = vec![10usize, 20, 30, 40];
        let results: Vec<usize> =
            run_spmd::<u8, _, _>(4, NetworkModel::ideal(), |comm| shared[comm.rank()]);
        assert_eq!(results, shared);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn non_power_of_two_rank_count_is_rejected() {
        let _ = run_spmd::<u8, _, _>(3, NetworkModel::ideal(), |c| c.rank());
    }
}

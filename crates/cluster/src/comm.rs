//! The virtual-MPI communicator: ranks are threads, messages are typed
//! vectors moved through lock-free channels, and every transfer is charged to
//! the [`NetworkModel`](crate::netmodel::NetworkModel) so engines can report
//! modelled communication time alongside the real data movement.
//!
//! The API mirrors the subset of MPI the paper's simulator needs: tagged
//! point-to-point send/recv, barrier, all-to-all-v, all-gather and an
//! all-reduce sum — enough for "a general interface for other simulators to
//! use as a library" (Sec. III-D).

use crate::netmodel::NetworkModel;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};

/// Per-rank communication statistics, accumulated across the lifetime of a
/// [`RankComm`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CommStats {
    /// Point-to-point messages sent (collectives count their constituent
    /// messages).
    pub messages_sent: u64,
    /// Payload bytes sent.
    pub bytes_sent: u64,
    /// Modelled wire time in seconds charged by the network model.
    pub modeled_time_s: f64,
    /// Wall-clock seconds this rank spent inside blocking communication
    /// calls (receive waits, barriers) on the host machine.
    pub wall_time_s: f64,
}

impl CommStats {
    /// Combine two stats records (e.g. across phases).
    pub fn merged(self, other: CommStats) -> CommStats {
        CommStats {
            messages_sent: self.messages_sent + other.messages_sent,
            bytes_sent: self.bytes_sent + other.bytes_sent,
            modeled_time_s: self.modeled_time_s + other.modeled_time_s,
            wall_time_s: self.wall_time_s + other.wall_time_s,
        }
    }
}

struct Envelope<T> {
    from: usize,
    tag: u64,
    payload: Vec<T>,
}

/// One rank's endpoint of the virtual communicator.
///
/// Cloneable senders to every rank plus this rank's receive queue. A rank may
/// only be driven from one thread at a time (like an MPI rank).
pub struct RankComm<T: Send + 'static> {
    rank: usize,
    size: usize,
    net: NetworkModel,
    senders: Vec<Sender<Envelope<T>>>,
    receiver: Receiver<Envelope<T>>,
    /// Out-of-order messages waiting for a matching recv.
    stash: Vec<Envelope<T>>,
    barrier: Arc<Barrier>,
    /// Shared across ranks: total modelled time units (nanoseconds) spent by
    /// the slowest rank is derived by the caller from per-rank stats; this
    /// counter just feeds global sanity checks in tests.
    global_bytes: Arc<AtomicU64>,
    stats: CommStats,
}

/// Build a communicator world of `size` ranks over the given network model.
///
/// Returns one [`RankComm`] per rank; hand each to its own thread (see
/// [`crate::spmd::run_spmd`] for the scoped-thread harness).
pub fn world<T: Send + 'static>(size: usize, net: NetworkModel) -> Vec<RankComm<T>> {
    assert!(size > 0, "a communicator needs at least one rank");
    let mut senders = Vec::with_capacity(size);
    let mut receivers = Vec::with_capacity(size);
    for _ in 0..size {
        let (s, r) = unbounded();
        senders.push(s);
        receivers.push(r);
    }
    let barrier = Arc::new(Barrier::new(size));
    let global_bytes = Arc::new(AtomicU64::new(0));
    receivers
        .into_iter()
        .enumerate()
        .map(|(rank, receiver)| RankComm {
            rank,
            size,
            net,
            senders: senders.clone(),
            receiver,
            stash: Vec::new(),
            barrier: Arc::clone(&barrier),
            global_bytes: Arc::clone(&global_bytes),
            stats: CommStats::default(),
        })
        .collect()
}

impl<T: Send + 'static> RankComm<T> {
    /// This rank's id (0-based).
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the world.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// The network model used for accounting.
    #[inline]
    pub fn network(&self) -> NetworkModel {
        self.net
    }

    /// Communication statistics accumulated so far by this rank.
    #[inline]
    pub fn stats(&self) -> CommStats {
        self.stats
    }

    /// Reset this rank's statistics (e.g. between warm-up and measurement).
    pub fn reset_stats(&mut self) {
        self.stats = CommStats::default();
    }

    /// Total payload bytes sent across *all* ranks of the world so far.
    pub fn global_bytes_sent(&self) -> u64 {
        self.global_bytes.load(Ordering::Relaxed)
    }

    /// Send `payload` to rank `to` with a tag. Sending to self is allowed
    /// (delivered through the same queue) and charged zero network time.
    pub fn send(&mut self, to: usize, tag: u64, payload: Vec<T>) {
        assert!(to < self.size, "destination rank {to} out of range");
        let bytes = payload.len() * std::mem::size_of::<T>();
        if to != self.rank {
            self.stats.messages_sent += 1;
            self.stats.bytes_sent += bytes as u64;
            self.stats.modeled_time_s += self.net.message_time(bytes);
            self.global_bytes.fetch_add(bytes as u64, Ordering::Relaxed);
        }
        self.senders[to]
            .send(Envelope {
                from: self.rank,
                tag,
                payload,
            })
            .expect("receiver side of the communicator was dropped");
    }

    /// Blocking receive of the next message from `from` with tag `tag`.
    pub fn recv(&mut self, from: usize, tag: u64) -> Vec<T> {
        let start = std::time::Instant::now();
        // Check the stash first.
        if let Some(pos) = self
            .stash
            .iter()
            .position(|e| e.from == from && e.tag == tag)
        {
            let env = self.stash.swap_remove(pos);
            self.stats.wall_time_s += start.elapsed().as_secs_f64();
            return env.payload;
        }
        loop {
            let env = self
                .receiver
                .recv()
                .expect("all senders of the communicator were dropped");
            if env.from == from && env.tag == tag {
                self.stats.wall_time_s += start.elapsed().as_secs_f64();
                return env.payload;
            }
            self.stash.push(env);
        }
    }

    /// Synchronise all ranks.
    pub fn barrier(&mut self) {
        let start = std::time::Instant::now();
        self.barrier.wait();
        self.stats.wall_time_s += start.elapsed().as_secs_f64();
    }

    /// All-to-all-v: `send_bufs[i]` goes to rank `i`; returns `recv[i]` =
    /// the buffer rank `i` sent to this rank. The self slot is moved, not
    /// copied, and charged no network time.
    ///
    /// The modelled time charged to this rank is the serial injection of its
    /// outgoing messages (see
    /// [`NetworkModel::alltoallv_time`](crate::netmodel::NetworkModel::alltoallv_time)).
    pub fn alltoallv(&mut self, send_bufs: Vec<Vec<T>>, tag: u64) -> Vec<Vec<T>> {
        assert_eq!(
            send_bufs.len(),
            self.size,
            "alltoallv needs one send buffer per rank"
        );
        let mut recv: Vec<Option<Vec<T>>> = (0..self.size).map(|_| None).collect();
        for (to, buf) in send_bufs.into_iter().enumerate() {
            if to == self.rank {
                recv[to] = Some(buf);
            } else {
                self.send(to, tag, buf);
            }
        }
        let (rank, size) = (self.rank, self.size);
        for from in (0..size).filter(|&from| from != rank) {
            let payload = self.recv(from, tag);
            recv[from] = Some(payload);
        }
        recv.into_iter().map(|b| b.unwrap()).collect()
    }

    /// All-gather: every rank contributes `payload`; returns all
    /// contributions indexed by rank.
    pub fn allgather(&mut self, payload: Vec<T>, tag: u64) -> Vec<Vec<T>>
    where
        T: Clone,
    {
        let bufs: Vec<Vec<T>> = (0..self.size).map(|_| payload.clone()).collect();
        self.alltoallv(bufs, tag)
    }
}

impl RankComm<f64> {
    /// All-reduce sum of one scalar per rank.
    pub fn allreduce_sum(&mut self, value: f64, tag: u64) -> f64 {
        let all = self.allgather(vec![value], tag);
        all.iter().map(|v| v[0]).sum()
    }
}

/// A shared accumulator for collecting per-rank results from SPMD closures
/// without a channel round-trip (the engines use it to return per-rank
/// timings).
#[derive(Debug, Clone, Default)]
pub struct ResultBoard<R> {
    inner: Arc<Mutex<Vec<Option<R>>>>,
}

impl<R> ResultBoard<R> {
    /// A board with one slot per rank.
    pub fn new(size: usize) -> Self {
        let mut v = Vec::with_capacity(size);
        v.resize_with(size, || None);
        Self {
            inner: Arc::new(Mutex::new(v)),
        }
    }

    /// Post rank `rank`'s result.
    pub fn post(&self, rank: usize, value: R) {
        self.inner.lock()[rank] = Some(value);
    }

    /// Collect all posted results; panics if any rank never posted.
    pub fn collect(self) -> Vec<R> {
        Arc::try_unwrap(self.inner)
            .unwrap_or_else(|_| panic!("result board still shared"))
            .into_inner()
            .into_iter()
            .enumerate()
            .map(|(rank, slot)| slot.unwrap_or_else(|| panic!("rank {rank} posted no result")))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn point_to_point_roundtrip() {
        let mut ranks = world::<u32>(2, NetworkModel::ideal());
        let mut r1 = ranks.pop().unwrap();
        let mut r0 = ranks.pop().unwrap();
        let handle = thread::spawn(move || {
            r1.send(0, 7, vec![1, 2, 3]);
            let got = r1.recv(0, 8);
            assert_eq!(got, vec![9]);
            r1.stats()
        });
        let got = r0.recv(1, 7);
        assert_eq!(got, vec![1, 2, 3]);
        r0.send(1, 8, vec![9]);
        let s1 = handle.join().unwrap();
        assert_eq!(s1.messages_sent, 1);
        assert_eq!(s1.bytes_sent, 12);
    }

    #[test]
    fn out_of_order_tags_are_stashed() {
        let mut ranks = world::<u8>(2, NetworkModel::ideal());
        let mut r1 = ranks.pop().unwrap();
        let mut r0 = ranks.pop().unwrap();
        let handle = thread::spawn(move || {
            // Send tag 2 first, then tag 1.
            r1.send(0, 2, vec![22]);
            r1.send(0, 1, vec![11]);
        });
        // Receive in the opposite order.
        assert_eq!(r0.recv(1, 1), vec![11]);
        assert_eq!(r0.recv(1, 2), vec![22]);
        handle.join().unwrap();
    }

    #[test]
    fn alltoallv_exchanges_every_pair() {
        let size = 4;
        let ranks = world::<usize>(size, NetworkModel::hdr100());
        let handles: Vec<_> = ranks
            .into_iter()
            .map(|mut comm| {
                thread::spawn(move || {
                    let me = comm.rank();
                    let send: Vec<Vec<usize>> =
                        (0..comm.size()).map(|to| vec![me * 100 + to]).collect();
                    let recv = comm.alltoallv(send, 0);
                    for (from, buf) in recv.iter().enumerate() {
                        assert_eq!(buf, &vec![from * 100 + me]);
                    }
                    comm.stats()
                })
            })
            .collect();
        for h in handles {
            let stats = h.join().unwrap();
            assert_eq!(stats.messages_sent, (size - 1) as u64);
            assert!(stats.modeled_time_s > 0.0);
        }
    }

    #[test]
    fn allreduce_sums_across_ranks() {
        let size = 3;
        let ranks = world::<f64>(size, NetworkModel::ideal());
        let handles: Vec<_> = ranks
            .into_iter()
            .map(|mut comm| thread::spawn(move || comm.allreduce_sum((comm.rank() + 1) as f64, 5)))
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 6.0);
        }
    }

    #[test]
    fn barrier_synchronises() {
        let size = 4;
        let ranks = world::<u8>(size, NetworkModel::ideal());
        let counter = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = ranks
            .into_iter()
            .map(|mut comm| {
                let counter = Arc::clone(&counter);
                thread::spawn(move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                    comm.barrier();
                    // After the barrier every rank must observe all increments.
                    assert_eq!(counter.load(Ordering::SeqCst), size as u64);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn self_sends_are_free() {
        let mut ranks = world::<u64>(1, NetworkModel::hdr100());
        let mut r0 = ranks.pop().unwrap();
        r0.send(0, 3, vec![42; 1024]);
        assert_eq!(r0.recv(0, 3), vec![42; 1024]);
        assert_eq!(r0.stats().messages_sent, 0);
        assert_eq!(r0.stats().bytes_sent, 0);
        assert_eq!(r0.stats().modeled_time_s, 0.0);
    }

    #[test]
    fn stats_merge_adds_fields() {
        let a = CommStats {
            messages_sent: 2,
            bytes_sent: 100,
            modeled_time_s: 0.5,
            wall_time_s: 0.1,
        };
        let b = CommStats {
            messages_sent: 3,
            bytes_sent: 50,
            modeled_time_s: 0.25,
            wall_time_s: 0.2,
        };
        let m = a.merged(b);
        assert_eq!(m.messages_sent, 5);
        assert_eq!(m.bytes_sent, 150);
        assert!((m.modeled_time_s - 0.75).abs() < 1e-15);
    }

    #[test]
    fn result_board_collects_per_rank_values() {
        let board = ResultBoard::<usize>::new(3);
        let clones: Vec<_> = (0..3).map(|r| (r, board.clone())).collect();
        let handles: Vec<_> = clones
            .into_iter()
            .map(|(r, b)| thread::spawn(move || b.post(r, r * 10)))
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(board.collect(), vec![0, 10, 20]);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn empty_world_is_rejected() {
        let _ = world::<u8>(0, NetworkModel::ideal());
    }
}

//! The rank-communication surface: a [`RankComm`] trait mirroring the subset
//! of MPI the paper's simulator needs — tagged point-to-point send/recv,
//! barrier, all-to-all-v, all-gather and an all-reduce sum ("a general
//! interface for other simulators to use as a library", Sec. III-D) — plus
//! the in-process implementation, [`LocalComm`].
//!
//! [`LocalComm`] is the virtual-MPI communicator this reproduction started
//! with: ranks are threads, messages are typed vectors moved through
//! lock-free channels, and every transfer is charged to the
//! [`NetworkModel`](crate::netmodel::NetworkModel) so engines can report
//! modelled communication time alongside the real data movement. The
//! `hisvsim-net` crate provides the second implementation, `TcpComm`, which
//! moves the same messages between OS processes over TCP sockets; engines
//! written against the trait run unchanged on either world.

use crate::netmodel::NetworkModel;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Instant;

/// Per-rank communication statistics, accumulated across the lifetime of a
/// communicator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CommStats {
    /// Point-to-point messages sent (collectives count their constituent
    /// messages).
    pub messages_sent: u64,
    /// Payload bytes sent.
    pub bytes_sent: u64,
    /// Modelled wire time in seconds charged by the network model.
    pub modeled_time_s: f64,
    /// Wall-clock seconds this rank spent inside blocking communication
    /// calls (receive waits, barriers, and the full span of collectives)
    /// on the host machine.
    pub wall_time_s: f64,
}

impl CommStats {
    /// Combine two stats records (e.g. across phases).
    pub fn merged(self, other: CommStats) -> CommStats {
        CommStats {
            messages_sent: self.messages_sent + other.messages_sent,
            bytes_sent: self.bytes_sent + other.bytes_sent,
            modeled_time_s: self.modeled_time_s + other.modeled_time_s,
            wall_time_s: self.wall_time_s + other.wall_time_s,
        }
    }
}

/// Reserved tag namespace for [`RankComm::vote_any`] rounds: the tag is
/// `VOTE_NS | (epoch << 1) | flag`, with the epoch masked to
/// [`VOTE_EPOCH_MASK`] so the round counter can never escape the
/// namespace. Engines must keep their payload tags out of this range
/// (they do — engine tags are small constants).
pub const VOTE_NS: u64 = 0xCA4C_0000_0000_0000;

/// Largest vote epoch before the counter wraps (47 bits: the low bit of
/// the tag carries the flag, the top 16 bits are the namespace).
pub const VOTE_EPOCH_MASK: u64 = (1 << 47) - 1;

/// The rank-communication trait every distributed engine is written against.
///
/// Implementations: [`LocalComm`] (threads + channels, this crate) and
/// `hisvsim_net::TcpComm` (processes + sockets). A communicator endpoint may
/// only be driven from one thread at a time, like an MPI rank.
///
/// Contract shared by all implementations:
///
/// * `send`/`recv` match on `(from, tag)`; out-of-order messages from the
///   same peer are stashed until a matching `recv`.
/// * Sending to self is allowed, delivered through a local queue, and
///   charged zero network time.
/// * Collectives (`barrier`, `alltoallv`, `allgather`, `vote_any`) are
///   called by every rank with matching arguments; their entire blocking
///   span is charged to [`CommStats::wall_time_s`] — not just the inner
///   receive waits — so `comm_ratio()` stays honest for collective-heavy
///   schedules.
pub trait RankComm<T: Send + 'static> {
    /// This rank's id (0-based).
    fn rank(&self) -> usize;

    /// Number of ranks in the world.
    fn size(&self) -> usize;

    /// The network model used for accounting.
    fn network(&self) -> NetworkModel;

    /// Communication statistics accumulated so far by this rank.
    fn stats(&self) -> CommStats;

    /// Reset this rank's statistics (e.g. between warm-up and measurement).
    fn reset_stats(&mut self);

    /// Send `payload` to rank `to` with a tag.
    fn send(&mut self, to: usize, tag: u64, payload: Vec<T>);

    /// Blocking receive of the next message from `from` with tag `tag`.
    fn recv(&mut self, from: usize, tag: u64) -> Vec<T>;

    /// Synchronise all ranks.
    fn barrier(&mut self);

    /// Collective boolean OR: every rank contributes `flag` and every rank
    /// receives the OR of all contributions. This is the agreement
    /// primitive cooperative cancellation is built on — a rank may only
    /// stop an SPMD schedule when *all* ranks agree to stop at the same
    /// step, otherwise the survivors deadlock in the next collective
    /// waiting on the rank that left. Implemented as a gather–release
    /// through rank 0 on the reserved [`VOTE_NS`] tag namespace, with the
    /// flag carried in the tag's low bit (no payload travels, so it works
    /// for any `T`).
    ///
    /// Like `barrier`, a vote is control traffic, not payload traffic:
    /// only its blocking wall time is charged to [`CommStats`], so the
    /// accounting of a cancellable schedule stays identical to the plain
    /// one.
    fn vote_any(&mut self, flag: bool) -> bool;

    /// All-to-all-v: `send_bufs[i]` goes to rank `i`; returns `recv[i]` =
    /// the buffer rank `i` sent to this rank. The self slot is moved, not
    /// copied, and charged no network time.
    fn alltoallv(&mut self, send_bufs: Vec<Vec<T>>, tag: u64) -> Vec<Vec<T>>;

    /// All-gather: every rank contributes `payload`; returns all
    /// contributions indexed by rank.
    fn allgather(&mut self, payload: Vec<T>, tag: u64) -> Vec<Vec<T>>
    where
        T: Clone,
    {
        let bufs: Vec<Vec<T>> = (0..self.size()).map(|_| payload.clone()).collect();
        self.alltoallv(bufs, tag)
    }
}

/// Scalar collectives available on any communicator of `f64` payloads.
pub trait ScalarComm {
    /// All-reduce sum of one scalar per rank.
    fn allreduce_sum(&mut self, value: f64, tag: u64) -> f64;
}

impl<C: RankComm<f64> + ?Sized> ScalarComm for C {
    fn allreduce_sum(&mut self, value: f64, tag: u64) -> f64 {
        let all = self.allgather(vec![value], tag);
        all.iter().map(|v| v[0]).sum()
    }
}

struct Envelope<T> {
    from: usize,
    tag: u64,
    payload: Vec<T>,
}

/// One rank's endpoint of the in-process (thread world) communicator.
///
/// Cloneable senders to every rank plus this rank's receive queue. A rank may
/// only be driven from one thread at a time (like an MPI rank).
pub struct LocalComm<T: Send + 'static> {
    rank: usize,
    size: usize,
    net: NetworkModel,
    senders: Vec<Sender<Envelope<T>>>,
    receiver: Receiver<Envelope<T>>,
    /// Out-of-order messages waiting for a matching recv.
    stash: Vec<Envelope<T>>,
    barrier: Arc<Barrier>,
    /// Vote round counter (all ranks agree by construction: votes are
    /// collective).
    vote_epoch: u64,
    /// Shared across ranks: total modelled time units (nanoseconds) spent by
    /// the slowest rank is derived by the caller from per-rank stats; this
    /// counter just feeds global sanity checks in tests.
    global_bytes: Arc<AtomicU64>,
    stats: CommStats,
}

/// Build a communicator world of `size` ranks over the given network model.
///
/// Returns one [`LocalComm`] per rank; hand each to its own thread (see
/// [`crate::spmd::run_spmd`] for the scoped-thread harness).
pub fn world<T: Send + 'static>(size: usize, net: NetworkModel) -> Vec<LocalComm<T>> {
    assert!(size > 0, "a communicator needs at least one rank");
    let mut senders = Vec::with_capacity(size);
    let mut receivers = Vec::with_capacity(size);
    for _ in 0..size {
        let (s, r) = unbounded();
        senders.push(s);
        receivers.push(r);
    }
    let barrier = Arc::new(Barrier::new(size));
    let global_bytes = Arc::new(AtomicU64::new(0));
    receivers
        .into_iter()
        .enumerate()
        .map(|(rank, receiver)| LocalComm {
            rank,
            size,
            net,
            senders: senders.clone(),
            receiver,
            stash: Vec::new(),
            barrier: Arc::clone(&barrier),
            vote_epoch: 0,
            global_bytes: Arc::clone(&global_bytes),
            stats: CommStats::default(),
        })
        .collect()
}

impl<T: Send + 'static> LocalComm<T> {
    /// Total payload bytes sent across *all* ranks of the world so far.
    pub fn global_bytes_sent(&self) -> u64 {
        self.global_bytes.load(Ordering::Relaxed)
    }

    /// Send without wall-time accounting (the caller owns the timing
    /// window, e.g. a collective charging its whole span once).
    fn send_inner(&mut self, to: usize, tag: u64, payload: Vec<T>) {
        assert!(to < self.size, "destination rank {to} out of range");
        let bytes = payload.len() * std::mem::size_of::<T>();
        if to != self.rank {
            self.stats.messages_sent += 1;
            self.stats.bytes_sent += bytes as u64;
            self.stats.modeled_time_s += self.net.message_time(bytes);
            self.global_bytes.fetch_add(bytes as u64, Ordering::Relaxed);
        }
        self.senders[to]
            .send(Envelope {
                from: self.rank,
                tag,
                payload,
            })
            .expect("receiver side of the communicator was dropped");
    }

    /// Receive without wall-time accounting (see [`LocalComm::send_inner`]).
    fn recv_inner(&mut self, from: usize, tag: u64) -> Vec<T> {
        // Check the stash first.
        if let Some(pos) = self
            .stash
            .iter()
            .position(|e| e.from == from && e.tag == tag)
        {
            return self.stash.swap_remove(pos).payload;
        }
        loop {
            let env = self
                .receiver
                .recv()
                .expect("all senders of the communicator were dropped");
            if env.from == from && env.tag == tag {
                return env.payload;
            }
            self.stash.push(env);
        }
    }

    /// Receive one vote frame from `from`: any tag whose epoch bits match
    /// `base` (the low bit carries the sender's flag).
    fn recv_vote_inner(&mut self, from: usize, base: u64) -> bool {
        if let Some(pos) = self
            .stash
            .iter()
            .position(|e| e.from == from && e.tag & !1 == base)
        {
            return self.stash.swap_remove(pos).tag & 1 == 1;
        }
        loop {
            let env = self
                .receiver
                .recv()
                .expect("all senders of the communicator were dropped");
            if env.from == from && env.tag & !1 == base {
                return env.tag & 1 == 1;
            }
            self.stash.push(env);
        }
    }
}

impl<T: Send + 'static> RankComm<T> for LocalComm<T> {
    #[inline]
    fn rank(&self) -> usize {
        self.rank
    }

    #[inline]
    fn size(&self) -> usize {
        self.size
    }

    #[inline]
    fn network(&self) -> NetworkModel {
        self.net
    }

    #[inline]
    fn stats(&self) -> CommStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = CommStats::default();
    }

    /// Send `payload` to rank `to` with a tag. Sending to self is allowed
    /// (delivered through the same queue) and charged zero network time.
    fn send(&mut self, to: usize, tag: u64, payload: Vec<T>) {
        self.send_inner(to, tag, payload);
    }

    fn recv(&mut self, from: usize, tag: u64) -> Vec<T> {
        let span = hisvsim_obs::span("comm", "recv");
        let start = Instant::now();
        let payload = self.recv_inner(from, tag);
        self.stats.wall_time_s += start.elapsed().as_secs_f64();
        let _span = span.bytes((payload.len() * std::mem::size_of::<T>()) as u64);
        payload
    }

    fn barrier(&mut self) {
        let _span = hisvsim_obs::span("comm", "barrier");
        let start = Instant::now();
        self.barrier.wait();
        self.stats.wall_time_s += start.elapsed().as_secs_f64();
    }

    /// Gather–release OR through rank 0 on the [`VOTE_NS`] namespace. The
    /// control frames are not payload traffic: stats are restored to their
    /// pre-vote values and only the blocking wall time is charged, exactly
    /// like `barrier`, so cancellable and plain schedules account
    /// identically.
    fn vote_any(&mut self, flag: bool) -> bool {
        if self.size == 1 {
            return flag;
        }
        let _span = hisvsim_obs::span("comm", "vote");
        let start = Instant::now();
        let payload_stats = self.stats;
        let base = VOTE_NS | (self.vote_epoch << 1);
        self.vote_epoch = (self.vote_epoch + 1) & VOTE_EPOCH_MASK;
        let agreed = if self.rank == 0 {
            let mut agreed = flag;
            for from in 1..self.size {
                agreed |= self.recv_vote_inner(from, base);
            }
            for to in 1..self.size {
                self.send_inner(to, base | agreed as u64, Vec::new());
            }
            agreed
        } else {
            self.send_inner(0, base | flag as u64, Vec::new());
            self.recv_vote_inner(0, base)
        };
        self.stats = payload_stats;
        self.stats.wall_time_s += start.elapsed().as_secs_f64();
        agreed
    }

    /// All-to-all-v over the channel world.
    ///
    /// The modelled time charged to this rank is the serial injection of its
    /// outgoing messages (see
    /// [`NetworkModel::alltoallv_time`](crate::netmodel::NetworkModel::alltoallv_time));
    /// the wall time charged is the full span of the collective — injection
    /// plus every blocking receive — not just the receive waits.
    fn alltoallv(&mut self, send_bufs: Vec<Vec<T>>, tag: u64) -> Vec<Vec<T>> {
        assert_eq!(
            send_bufs.len(),
            self.size,
            "alltoallv needs one send buffer per rank"
        );
        let send_bytes = send_bufs.iter().map(Vec::len).sum::<usize>() * std::mem::size_of::<T>();
        let _span = hisvsim_obs::span("comm", "alltoallv").bytes(send_bytes as u64);
        let start = Instant::now();
        let mut recv: Vec<Option<Vec<T>>> = (0..self.size).map(|_| None).collect();
        for (to, buf) in send_bufs.into_iter().enumerate() {
            if to == self.rank {
                recv[to] = Some(buf);
            } else {
                self.send_inner(to, tag, buf);
            }
        }
        let (rank, size) = (self.rank, self.size);
        for from in (0..size).filter(|&from| from != rank) {
            let payload = self.recv_inner(from, tag);
            recv[from] = Some(payload);
        }
        self.stats.wall_time_s += start.elapsed().as_secs_f64();
        recv.into_iter().map(|b| b.unwrap()).collect()
    }
}

/// A shared accumulator for collecting per-rank results from SPMD closures
/// without a channel round-trip (the engines use it to return per-rank
/// timings).
#[derive(Debug, Clone, Default)]
pub struct ResultBoard<R> {
    inner: Arc<Mutex<Vec<Option<R>>>>,
}

impl<R> ResultBoard<R> {
    /// A board with one slot per rank.
    pub fn new(size: usize) -> Self {
        let mut v = Vec::with_capacity(size);
        v.resize_with(size, || None);
        Self {
            inner: Arc::new(Mutex::new(v)),
        }
    }

    /// Post rank `rank`'s result.
    pub fn post(&self, rank: usize, value: R) {
        self.inner.lock()[rank] = Some(value);
    }

    /// Collect all posted results; panics if any rank never posted.
    pub fn collect(self) -> Vec<R> {
        Arc::try_unwrap(self.inner)
            .unwrap_or_else(|_| panic!("result board still shared"))
            .into_inner()
            .into_iter()
            .enumerate()
            .map(|(rank, slot)| slot.unwrap_or_else(|| panic!("rank {rank} posted no result")))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn point_to_point_roundtrip() {
        let mut ranks = world::<u32>(2, NetworkModel::ideal());
        let mut r1 = ranks.pop().unwrap();
        let mut r0 = ranks.pop().unwrap();
        let handle = thread::spawn(move || {
            r1.send(0, 7, vec![1, 2, 3]);
            let got = r1.recv(0, 8);
            assert_eq!(got, vec![9]);
            r1.stats()
        });
        let got = r0.recv(1, 7);
        assert_eq!(got, vec![1, 2, 3]);
        r0.send(1, 8, vec![9]);
        let s1 = handle.join().unwrap();
        assert_eq!(s1.messages_sent, 1);
        assert_eq!(s1.bytes_sent, 12);
    }

    #[test]
    fn out_of_order_tags_are_stashed() {
        let mut ranks = world::<u8>(2, NetworkModel::ideal());
        let mut r1 = ranks.pop().unwrap();
        let mut r0 = ranks.pop().unwrap();
        let handle = thread::spawn(move || {
            // Send tag 2 first, then tag 1.
            r1.send(0, 2, vec![22]);
            r1.send(0, 1, vec![11]);
        });
        // Receive in the opposite order.
        assert_eq!(r0.recv(1, 1), vec![11]);
        assert_eq!(r0.recv(1, 2), vec![22]);
        handle.join().unwrap();
    }

    #[test]
    fn alltoallv_exchanges_every_pair() {
        let size = 4;
        let ranks = world::<usize>(size, NetworkModel::hdr100());
        let handles: Vec<_> = ranks
            .into_iter()
            .map(|mut comm| {
                thread::spawn(move || {
                    let me = comm.rank();
                    let send: Vec<Vec<usize>> =
                        (0..comm.size()).map(|to| vec![me * 100 + to]).collect();
                    let recv = comm.alltoallv(send, 0);
                    for (from, buf) in recv.iter().enumerate() {
                        assert_eq!(buf, &vec![from * 100 + me]);
                    }
                    comm.stats()
                })
            })
            .collect();
        for h in handles {
            let stats = h.join().unwrap();
            assert_eq!(stats.messages_sent, (size - 1) as u64);
            assert!(stats.modeled_time_s > 0.0);
        }
    }

    #[test]
    fn allreduce_sums_across_ranks() {
        let size = 3;
        let ranks = world::<f64>(size, NetworkModel::ideal());
        let handles: Vec<_> = ranks
            .into_iter()
            .map(|mut comm| thread::spawn(move || comm.allreduce_sum((comm.rank() + 1) as f64, 5)))
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 6.0);
        }
    }

    #[test]
    fn barrier_synchronises() {
        let size = 4;
        let ranks = world::<u8>(size, NetworkModel::ideal());
        let counter = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = ranks
            .into_iter()
            .map(|mut comm| {
                let counter = Arc::clone(&counter);
                thread::spawn(move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                    comm.barrier();
                    // After the barrier every rank must observe all increments.
                    assert_eq!(counter.load(Ordering::SeqCst), size as u64);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn self_sends_are_free() {
        let mut ranks = world::<u64>(1, NetworkModel::hdr100());
        let mut r0 = ranks.pop().unwrap();
        r0.send(0, 3, vec![42; 1024]);
        assert_eq!(r0.recv(0, 3), vec![42; 1024]);
        assert_eq!(r0.stats().messages_sent, 0);
        assert_eq!(r0.stats().bytes_sent, 0);
        assert_eq!(r0.stats().modeled_time_s, 0.0);
    }

    #[test]
    fn collectives_charge_blocking_wall_time() {
        // Rank 1 sleeps before entering the collective; rank 0's alltoallv
        // must charge the time it spent blocked waiting for rank 1's buffer
        // (the pre-fix accounting missed everything but inner recv waits).
        let mut ranks = world::<u8>(2, NetworkModel::ideal());
        let mut r1 = ranks.pop().unwrap();
        let mut r0 = ranks.pop().unwrap();
        let handle = thread::spawn(move || {
            thread::sleep(std::time::Duration::from_millis(200));
            r1.alltoallv(vec![vec![1], vec![2]], 9);
        });
        let got = r0.alltoallv(vec![vec![3], vec![4]], 9);
        assert_eq!(got, vec![vec![3], vec![1]]);
        assert!(
            r0.stats().wall_time_s >= 0.1,
            "alltoallv blocked ~200ms but charged only {}s",
            r0.stats().wall_time_s
        );
        handle.join().unwrap();
    }

    #[test]
    fn stats_merge_adds_fields() {
        let a = CommStats {
            messages_sent: 2,
            bytes_sent: 100,
            modeled_time_s: 0.5,
            wall_time_s: 0.1,
        };
        let b = CommStats {
            messages_sent: 3,
            bytes_sent: 50,
            modeled_time_s: 0.25,
            wall_time_s: 0.2,
        };
        let m = a.merged(b);
        assert_eq!(m.messages_sent, 5);
        assert_eq!(m.bytes_sent, 150);
        assert!((m.modeled_time_s - 0.75).abs() < 1e-15);
    }

    #[test]
    fn result_board_collects_per_rank_values() {
        let board = ResultBoard::<usize>::new(3);
        let clones: Vec<_> = (0..3).map(|r| (r, board.clone())).collect();
        let handles: Vec<_> = clones
            .into_iter()
            .map(|(r, b)| thread::spawn(move || b.post(r, r * 10)))
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(board.collect(), vec![0, 10, 20]);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn empty_world_is_rejected() {
        let _ = world::<u8>(0, NetworkModel::ideal());
    }
}

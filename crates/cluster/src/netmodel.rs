//! The network performance model.
//!
//! The virtual-MPI substrate moves real data between rank threads through
//! memory, so the *pattern* and *volume* of communication are exact; what a
//! single machine cannot reproduce is the wall-clock cost of pushing those
//! bytes through an actual interconnect. This model charges each message the
//! classic latency–bandwidth (α–β) cost so the engines can report a
//! communication time comparable across strategies and rank counts — the
//! quantity behind the paper's Figs. 7 and 8.

use serde::{Deserialize, Serialize};

/// A latency–bandwidth (α–β) interconnect model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkModel {
    /// Per-message latency in seconds (α).
    pub latency_s: f64,
    /// Sustained point-to-point bandwidth in bytes per second (1/β).
    pub bandwidth_bytes_per_s: f64,
    /// Fraction of the node's injection bandwidth a single rank can use when
    /// several ranks share a NIC (1.0 = full bandwidth per rank).
    pub injection_share: f64,
}

impl NetworkModel {
    /// Constants approximating the Frontera InfiniBand HDR-100 fabric the
    /// paper runs on: 100 Gb/s ≈ 12.5 GB/s per port, ~1.5 µs MPI latency.
    pub fn hdr100() -> Self {
        Self {
            latency_s: 1.5e-6,
            bandwidth_bytes_per_s: 12.5e9,
            injection_share: 1.0,
        }
    }

    /// A model with several MPI ranks sharing one HDR-100 port (the paper's
    /// 2- and 4-rank-per-node configurations for the ≥ 35-qubit circuits).
    pub fn hdr100_shared(ranks_per_node: usize) -> Self {
        assert!(ranks_per_node >= 1);
        Self {
            injection_share: 1.0 / ranks_per_node as f64,
            ..Self::hdr100()
        }
    }

    /// An idealised zero-cost network, useful in unit tests that only check
    /// data movement correctness.
    pub fn ideal() -> Self {
        Self {
            latency_s: 0.0,
            bandwidth_bytes_per_s: f64::INFINITY,
            injection_share: 1.0,
        }
    }

    /// Modelled time to push one `bytes`-sized message to another rank.
    pub fn message_time(&self, bytes: usize) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        self.latency_s + bytes as f64 / (self.bandwidth_bytes_per_s * self.injection_share)
    }

    /// Modelled time for one rank's side of an all-to-all exchange in which
    /// it sends `bytes_per_peer[i]` to peer `i` (its own slot ignored):
    /// messages are injected serially through its NIC share.
    pub fn alltoallv_time(&self, bytes_per_peer: &[usize], self_rank: usize) -> f64 {
        bytes_per_peer
            .iter()
            .enumerate()
            .filter(|&(peer, &b)| peer != self_rank && b > 0)
            .map(|(_, &b)| self.message_time(b))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_time_has_latency_floor() {
        let net = NetworkModel::hdr100();
        assert!(net.message_time(1) >= net.latency_s);
        assert_eq!(net.message_time(0), 0.0);
    }

    #[test]
    fn large_messages_are_bandwidth_bound() {
        let net = NetworkModel::hdr100();
        let one_gb = net.message_time(1 << 30);
        // 1 GiB over 12.5 GB/s ≈ 86 ms; latency is negligible.
        assert!((one_gb - (1u64 << 30) as f64 / 12.5e9).abs() / one_gb < 0.01);
    }

    #[test]
    fn shared_injection_slows_each_rank() {
        let full = NetworkModel::hdr100();
        let quarter = NetworkModel::hdr100_shared(4);
        assert!(quarter.message_time(1 << 20) > full.message_time(1 << 20));
    }

    #[test]
    fn alltoallv_skips_self_and_empty_slots() {
        let net = NetworkModel::hdr100();
        let t = net.alltoallv_time(&[100, 0, 100, 100], 0);
        // Rank 0 sends to peers 2 and 3 only (slot 0 is self, slot 1 empty).
        assert!((t - 2.0 * net.message_time(100)).abs() < 1e-15);
    }

    #[test]
    fn ideal_network_is_free() {
        let net = NetworkModel::ideal();
        assert_eq!(net.message_time(1 << 30), 0.0);
    }

    #[test]
    fn doubling_volume_roughly_doubles_time() {
        let net = NetworkModel::hdr100();
        let t1 = net.message_time(64 << 20);
        let t2 = net.message_time(128 << 20);
        assert!((t2 / t1 - 2.0).abs() < 0.01);
    }
}

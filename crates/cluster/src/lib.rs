//! # hisvsim-cluster
//!
//! The virtual-MPI substrate of HiSVSIM-RS.
//!
//! The paper evaluates HiSVSIM on up to 256 Frontera nodes over InfiniBand
//! HDR-100 with MPI. This reproduction has one machine, so the distributed
//! engines run on a *virtual cluster*: every MPI rank becomes a thread that
//! owns its slice of the state vector, communication moves real data through
//! lock-free channels (so the exchange pattern and volume are exact), and a
//! latency–bandwidth [`NetworkModel`] charges every transfer the wire time it
//! would have cost on the real fabric. See DESIGN.md for the substitution
//! argument.
//!
//! * [`netmodel`] — the α–β interconnect model (HDR-100 constants included),
//! * [`comm`] — the [`RankComm`] trait (tagged send/recv, barrier,
//!   alltoallv, allgather, allreduce, per-rank [`CommStats`] accounting)
//!   and its in-process implementation [`LocalComm`] — the `hisvsim-net`
//!   crate adds `TcpComm`, the multi-process transport over sockets,
//! * [`spmd`] — [`run_spmd`]: the `mpirun` stand-in running one closure per
//!   rank on scoped threads.
//!
//! ## Example
//!
//! ```
//! use hisvsim_cluster::{run_spmd, NetworkModel, RankComm, ScalarComm};
//!
//! // Sum the rank ids with an all-reduce over 4 virtual ranks.
//! let sums = run_spmd::<f64, _, _>(4, NetworkModel::ideal(), |mut comm| {
//!     comm.allreduce_sum(comm.rank() as f64, 0)
//! });
//! assert_eq!(sums, vec![6.0; 4]);
//! ```

#![warn(missing_docs)]

pub mod comm;
pub mod netmodel;
pub mod spmd;

pub use comm::{
    world, CommStats, LocalComm, RankComm, ResultBoard, ScalarComm, VOTE_EPOCH_MASK, VOTE_NS,
};
pub use netmodel::NetworkModel;
pub use spmd::run_spmd;

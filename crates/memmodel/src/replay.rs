//! Replay helpers and the Table II-shaped report type.
//!
//! The engines in `hisvsim-core` generate (sampled) amplitude address streams
//! for a given execution order; this module replays such a stream through a
//! [`MemoryHierarchy`](crate::hierarchy::MemoryHierarchy) and packages the
//! result in the same shape as the paper's Table II rows.

use crate::hierarchy::{HierarchyConfig, HierarchyStats, MemoryHierarchy};
use serde::{Deserialize, Serialize};

/// One row of the Table II reproduction: the memory-access breakdown of one
/// (circuit, strategy) combination.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MemoryBreakdown {
    /// Circuit name.
    pub circuit: String,
    /// Strategy name (`Nat`, `DFS`, `dagP`).
    pub strategy: String,
    /// Percentage of accesses served by each level: `[L1, L2, L3, DRAM]`.
    pub service_percent: [f64; 4],
    /// Average modelled access latency in cycles (memory-boundedness proxy,
    /// analogous to the paper's "Memory/Pipeline slots" column).
    pub avg_latency_cycles: f64,
    /// Measured wall-clock execution time in seconds of the corresponding
    /// simulation (filled in by the benchmark harness).
    pub execution_time_s: f64,
    /// Number of addresses replayed.
    pub accesses: u64,
}

impl MemoryBreakdown {
    /// Assemble a breakdown row from replay statistics.
    pub fn from_stats(
        circuit: impl Into<String>,
        strategy: impl Into<String>,
        stats: HierarchyStats,
        config: &HierarchyConfig,
        execution_time_s: f64,
    ) -> Self {
        let fractions = stats.service_fractions();
        Self {
            circuit: circuit.into(),
            strategy: strategy.into(),
            service_percent: [
                fractions[0] * 100.0,
                fractions[1] * 100.0,
                fractions[2] * 100.0,
                fractions[3] * 100.0,
            ],
            avg_latency_cycles: stats.average_latency(config.latency_cycles),
            execution_time_s,
            accesses: stats.total(),
        }
    }

    /// A one-line textual rendering matching Table II's column order.
    pub fn render_row(&self) -> String {
        format!(
            "{:<10} {:<5} | L1 {:5.1}%  L2 {:5.1}%  L3 {:5.1}%  DRAM {:5.1}% | lat {:6.1} cyc | {:8.3} s",
            self.circuit,
            self.strategy,
            self.service_percent[0],
            self.service_percent[1],
            self.service_percent[2],
            self.service_percent[3],
            self.avg_latency_cycles,
            self.execution_time_s
        )
    }
}

/// Replay an address stream through a fresh hierarchy and return the
/// statistics.
pub fn replay_addresses<I>(config: HierarchyConfig, addresses: I) -> HierarchyStats
where
    I: IntoIterator<Item = u64>,
{
    let mut hierarchy = MemoryHierarchy::new(config);
    for addr in addresses {
        hierarchy.access(addr);
    }
    hierarchy.stats()
}

/// Replay a stream of 16-byte amplitude *element indices* (as produced by the
/// simulation engines) rather than raw byte addresses.
pub fn replay_amplitude_indices<I>(config: HierarchyConfig, indices: I) -> HierarchyStats
where
    I: IntoIterator<Item = usize>,
{
    replay_addresses(config, indices.into_iter().map(|i| (i as u64) * 16))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_beats_strided_access() {
        let cfg = HierarchyConfig::tiny();
        let n = 4096usize;
        let sequential = replay_amplitude_indices(cfg, 0..n);
        // A 256-element stride puts every access on a different line and far
        // exceeds the tiny L3.
        let strided = replay_amplitude_indices(cfg, (0..n).map(|i| (i * 256) % (1 << 16)));
        assert!(
            sequential.average_latency(cfg.latency_cycles)
                < strided.average_latency(cfg.latency_cycles)
        );
    }

    #[test]
    fn breakdown_percentages_sum_to_100() {
        let cfg = HierarchyConfig::tiny();
        let stats = replay_amplitude_indices(cfg, (0..10_000usize).map(|i| (i * 7) % 4096));
        let row = MemoryBreakdown::from_stats("bv", "dagP", stats, &cfg, 1.25);
        let sum: f64 = row.service_percent.iter().sum();
        assert!((sum - 100.0).abs() < 1e-9);
        assert_eq!(row.accesses, 10_000);
        assert!(row.render_row().contains("dagP"));
    }

    #[test]
    fn empty_stream_yields_zero_stats() {
        let cfg = HierarchyConfig::tiny();
        let stats = replay_addresses(cfg, std::iter::empty());
        assert_eq!(stats.total(), 0);
        assert_eq!(stats.average_latency(cfg.latency_cycles), 0.0);
    }
}

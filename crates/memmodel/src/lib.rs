//! # hisvsim-memmodel
//!
//! A deterministic cache-hierarchy model used as the reproduction's
//! substitute for the Intel VTune memory-access profile behind the paper's
//! Table II (the authors report per-level clocktick shares and
//! memory-bound pipeline-slot percentages for the Nat/DFS/dagP execution
//! orders).
//!
//! * [`cache`] — one set-associative LRU cache level,
//! * [`hierarchy`] — the inclusive L1/L2/L3 + DRAM stack with per-level
//!   service statistics and a latency-weighted memory-boundedness proxy,
//! * [`replay`] — address-stream replay helpers and the Table II-shaped
//!   [`MemoryBreakdown`](replay::MemoryBreakdown) report row.
//!
//! The simulation engines in `hisvsim-core` produce the (sampled) amplitude
//! address streams; this crate only ranks their locality. See DESIGN.md for
//! why this substitution preserves the paper's comparison.
//!
//! ## Example
//!
//! ```
//! use hisvsim_memmodel::{HierarchyConfig, replay};
//!
//! let cfg = HierarchyConfig::tiny();
//! // A small, repeatedly-touched working set is served by the L1 cache.
//! let stats = replay::replay_amplitude_indices(cfg, (0..10_000).map(|i| i % 8));
//! assert!(stats.service_fractions()[0] > 0.9);
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod hierarchy;
pub mod replay;

pub use cache::{Cache, CacheConfig};
pub use hierarchy::{HierarchyConfig, HierarchyStats, MemoryHierarchy, ServiceLevel};
pub use replay::{replay_addresses, replay_amplitude_indices, MemoryBreakdown};

//! A three-level cache hierarchy + DRAM model, the reproduction's stand-in
//! for the VTune memory-access breakdown of Table II.
//!
//! The hierarchy is inclusive and accessed top-down: an access that misses in
//! L1 goes to L2, then L3, then DRAM. The model reports, per level, the
//! fraction of accesses *served* by that level — the same shape as the
//! paper's "% of clockticks" columns — plus a memory-bound pipeline-slot
//! proxy computed from per-level latency weights.

use crate::cache::{Cache, CacheConfig};
use serde::{Deserialize, Serialize};

/// Which level of the hierarchy served an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ServiceLevel {
    /// Served by the first-level cache.
    L1,
    /// Served by the second-level cache.
    L2,
    /// Served by the last-level cache.
    L3,
    /// Missed everywhere; served by DRAM.
    Dram,
}

/// Geometry of the full hierarchy.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct HierarchyConfig {
    /// L1 data cache geometry.
    pub l1: CacheConfig,
    /// L2 cache geometry.
    pub l2: CacheConfig,
    /// L3 (last-level) cache geometry.
    pub l3: CacheConfig,
    /// Load-to-use latency of each level in cycles, used for the
    /// memory-bound-slots proxy: `[l1, l2, l3, dram]`.
    pub latency_cycles: [f64; 4],
}

impl HierarchyConfig {
    /// A configuration matching the workstation described in Sec. III-A of
    /// the paper: 64 KB L1 and 1 MB L2 per core, 32 MB shared L3 (the model
    /// simulates one core's view), 64-byte lines.
    pub fn cascade_lake() -> Self {
        Self {
            l1: CacheConfig {
                capacity_bytes: 64 * 1024,
                line_bytes: 64,
                associativity: 8,
            },
            l2: CacheConfig {
                capacity_bytes: 1024 * 1024,
                line_bytes: 64,
                associativity: 16,
            },
            l3: CacheConfig {
                capacity_bytes: 32 * 1024 * 1024,
                line_bytes: 64,
                associativity: 16,
            },
            latency_cycles: [4.0, 14.0, 50.0, 250.0],
        }
    }

    /// A deliberately tiny hierarchy for fast unit tests (256 B / 1 KB / 4 KB).
    pub fn tiny() -> Self {
        Self {
            l1: CacheConfig {
                capacity_bytes: 256,
                line_bytes: 64,
                associativity: 2,
            },
            l2: CacheConfig {
                capacity_bytes: 1024,
                line_bytes: 64,
                associativity: 2,
            },
            l3: CacheConfig {
                capacity_bytes: 4096,
                line_bytes: 64,
                associativity: 4,
            },
            latency_cycles: [4.0, 14.0, 50.0, 250.0],
        }
    }
}

/// Statistics accumulated by a [`MemoryHierarchy`].
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct HierarchyStats {
    /// Accesses served by L1.
    pub l1_hits: u64,
    /// Accesses served by L2.
    pub l2_hits: u64,
    /// Accesses served by L3.
    pub l3_hits: u64,
    /// Accesses served by DRAM.
    pub dram_accesses: u64,
}

impl HierarchyStats {
    /// Total accesses replayed.
    pub fn total(&self) -> u64 {
        self.l1_hits + self.l2_hits + self.l3_hits + self.dram_accesses
    }

    /// Fraction of accesses served by each level `[l1, l2, l3, dram]`.
    pub fn service_fractions(&self) -> [f64; 4] {
        let total = self.total();
        if total == 0 {
            return [0.0; 4];
        }
        let t = total as f64;
        [
            self.l1_hits as f64 / t,
            self.l2_hits as f64 / t,
            self.l3_hits as f64 / t,
            self.dram_accesses as f64 / t,
        ]
    }

    /// Average access latency in cycles under the supplied per-level
    /// latencies — the model's proxy for the paper's "Memory/Pipeline slots"
    /// column (larger = more memory-bound).
    pub fn average_latency(&self, latency_cycles: [f64; 4]) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let f = self.service_fractions();
        f.iter()
            .zip(latency_cycles.iter())
            .map(|(a, b)| a * b)
            .sum()
    }

    /// Fraction of accesses that had to leave the core-private caches
    /// (L3 + DRAM) — the dominant term in DRAM-stall time.
    pub fn beyond_l2_fraction(&self) -> f64 {
        let f = self.service_fractions();
        f[2] + f[3]
    }
}

/// The three-level inclusive hierarchy.
#[derive(Debug, Clone)]
pub struct MemoryHierarchy {
    config: HierarchyConfig,
    l1: Cache,
    l2: Cache,
    l3: Cache,
    stats: HierarchyStats,
}

impl MemoryHierarchy {
    /// Build an empty hierarchy.
    pub fn new(config: HierarchyConfig) -> Self {
        Self {
            l1: Cache::new(config.l1),
            l2: Cache::new(config.l2),
            l3: Cache::new(config.l3),
            config,
            stats: HierarchyStats::default(),
        }
    }

    /// The configuration this hierarchy was built with.
    pub fn config(&self) -> HierarchyConfig {
        self.config
    }

    /// Replay one access to byte address `addr`; returns the level that
    /// served it. Every miss installs the line at all levels (inclusive).
    pub fn access(&mut self, addr: u64) -> ServiceLevel {
        if self.l1.access(addr) {
            self.stats.l1_hits += 1;
            return ServiceLevel::L1;
        }
        if self.l2.access(addr) {
            self.stats.l2_hits += 1;
            return ServiceLevel::L2;
        }
        if self.l3.access(addr) {
            self.stats.l3_hits += 1;
            return ServiceLevel::L3;
        }
        self.stats.dram_accesses += 1;
        ServiceLevel::Dram
    }

    /// Replay a read-modify-write of a 16-byte amplitude at element index
    /// `index` of a state-vector array starting at byte offset `base`.
    pub fn access_amplitude(&mut self, base: u64, index: usize) -> ServiceLevel {
        self.access(base + (index as u64) * 16)
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> HierarchyStats {
        self.stats
    }

    /// Reset contents and statistics.
    pub fn reset(&mut self) {
        self.l1.reset();
        self.l2.reset();
        self.l3.reset();
        self.stats = HierarchyStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_working_set_is_served_by_l1() {
        let mut h = MemoryHierarchy::new(HierarchyConfig::tiny());
        // 4 lines = 256 B working set touched repeatedly.
        for _ in 0..100 {
            for line in 0..4u64 {
                h.access(line * 64);
            }
        }
        let f = h.stats().service_fractions();
        assert!(f[0] > 0.95, "L1 share {f:?}");
    }

    #[test]
    fn medium_working_set_spills_to_l2() {
        let mut h = MemoryHierarchy::new(HierarchyConfig::tiny());
        // 512 B working set: fits L2 (1 KB), exceeds L1 (256 B).
        for _ in 0..100 {
            for line in 0..8u64 {
                h.access(line * 64);
            }
        }
        let f = h.stats().service_fractions();
        assert!(f[3] < 0.05, "DRAM share too high: {f:?}");
        assert!(f[1] + f[0] > 0.9, "L1+L2 share too low: {f:?}");
    }

    #[test]
    fn huge_working_set_goes_to_dram() {
        let mut h = MemoryHierarchy::new(HierarchyConfig::tiny());
        // 64 KB streaming working set with 64-byte strides over a 4 KB L3:
        // every line access misses all levels after the first pass.
        for _ in 0..4 {
            for line in 0..1024u64 {
                h.access(line * 64);
            }
        }
        let f = h.stats().service_fractions();
        assert!(f[3] > 0.9, "DRAM share {f:?}");
    }

    #[test]
    fn average_latency_orders_working_sets() {
        let lat = HierarchyConfig::tiny().latency_cycles;
        let mut small = MemoryHierarchy::new(HierarchyConfig::tiny());
        let mut large = MemoryHierarchy::new(HierarchyConfig::tiny());
        for _ in 0..50 {
            for line in 0..4u64 {
                small.access(line * 64);
            }
            for line in 0..512u64 {
                large.access(line * 64);
            }
        }
        assert!(small.stats().average_latency(lat) < large.stats().average_latency(lat));
    }

    #[test]
    fn amplitude_accessor_uses_16_byte_elements() {
        let mut h = MemoryHierarchy::new(HierarchyConfig::tiny());
        h.access_amplitude(0, 0);
        // Elements 1-3 share the same 64-byte line.
        assert_eq!(h.access_amplitude(0, 3), ServiceLevel::L1);
        // Element 4 starts the next line.
        assert_ne!(h.access_amplitude(0, 4), ServiceLevel::L1);
    }

    #[test]
    fn stats_fractions_sum_to_one() {
        let mut h = MemoryHierarchy::new(HierarchyConfig::tiny());
        for i in 0..1000u64 {
            h.access((i * 37) % 8192);
        }
        let f = h.stats().service_fractions();
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(h.stats().total(), 1000);
    }

    #[test]
    fn cascade_lake_config_matches_paper_description() {
        let cfg = HierarchyConfig::cascade_lake();
        assert_eq!(cfg.l3.capacity_bytes, 32 * 1024 * 1024);
        assert_eq!(cfg.l2.capacity_bytes, 1024 * 1024);
        assert_eq!(cfg.l1.capacity_bytes, 64 * 1024);
        cfg.l1.validate();
        cfg.l2.validate();
        cfg.l3.validate();
    }

    #[test]
    fn reset_restores_cold_state() {
        let mut h = MemoryHierarchy::new(HierarchyConfig::tiny());
        h.access(0);
        h.access(0);
        h.reset();
        assert_eq!(h.stats().total(), 0);
        assert_eq!(h.access(0), ServiceLevel::Dram);
    }
}

//! A set-associative, LRU, write-allocate cache model.
//!
//! Used by the Table II substitute (`hisvsim-memmodel::hierarchy`) to rank
//! the locality of the Nat/DFS/dagP execution orders the way VTune's memory
//! access breakdown does in the paper: by replaying the (sampled) amplitude
//! address stream of the simulation through a model of the CPU's cache
//! hierarchy.

use serde::{Deserialize, Serialize};

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: usize,
    /// Line size in bytes (64 on every CPU the paper targets).
    pub line_bytes: usize,
    /// Associativity (ways per set).
    pub associativity: usize,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    pub fn num_sets(&self) -> usize {
        self.capacity_bytes / (self.line_bytes * self.associativity)
    }

    /// Validate that the geometry is internally consistent.
    pub fn validate(&self) {
        assert!(
            self.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(self.associativity > 0, "associativity must be positive");
        assert!(
            self.capacity_bytes
                .is_multiple_of(self.line_bytes * self.associativity),
            "capacity must be a whole number of sets"
        );
        assert!(
            self.num_sets().is_power_of_two(),
            "set count must be a power of two"
        );
    }
}

/// A single cache level with LRU replacement.
///
/// The model tracks tags only (no data), which is all that is needed to count
/// hits and misses.
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    /// `sets[s]` holds the resident line tags of set `s`, most recently used
    /// last.
    sets: Vec<Vec<u64>>,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Create an empty cache with the given geometry.
    pub fn new(config: CacheConfig) -> Self {
        config.validate();
        Self {
            sets: vec![Vec::with_capacity(config.associativity); config.num_sets()],
            config,
            hits: 0,
            misses: 0,
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Access the byte address `addr`. Returns `true` on a hit. On a miss the
    /// line is installed (possibly evicting the LRU line of its set).
    pub fn access(&mut self, addr: u64) -> bool {
        let line = addr / self.config.line_bytes as u64;
        let set_index = (line % self.config.num_sets() as u64) as usize;
        let tag = line / self.config.num_sets() as u64;
        let set = &mut self.sets[set_index];
        if let Some(pos) = set.iter().position(|&t| t == tag) {
            // Hit: move to MRU position.
            let t = set.remove(pos);
            set.push(t);
            self.hits += 1;
            true
        } else {
            if set.len() == self.config.associativity {
                set.remove(0);
            }
            set.push(tag);
            self.misses += 1;
            false
        }
    }

    /// Number of hits recorded so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of misses recorded so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit rate in [0, 1]; zero when no accesses were made.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses() as f64
        }
    }

    /// Forget all resident lines and statistics.
    pub fn reset(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
        self.hits = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cache() -> Cache {
        // 4 sets × 2 ways × 64 B lines = 512 B.
        Cache::new(CacheConfig {
            capacity_bytes: 512,
            line_bytes: 64,
            associativity: 2,
        })
    }

    #[test]
    fn geometry_is_computed_correctly() {
        let c = tiny_cache();
        assert_eq!(c.config().num_sets(), 4);
    }

    #[test]
    fn repeated_access_hits_after_first_miss() {
        let mut c = tiny_cache();
        assert!(!c.access(0));
        assert!(c.access(0));
        assert!(c.access(63)); // same line
        assert!(!c.access(64)); // next line
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn lru_eviction_within_a_set() {
        let mut c = tiny_cache();
        // Three distinct lines mapping to the same set (set stride = 4 lines
        // = 256 bytes).
        let a = 0u64;
        let b = 256;
        let d = 512;
        c.access(a);
        c.access(b);
        c.access(d); // evicts a (LRU)
        assert!(!c.access(a), "a must have been evicted");
        assert!(c.access(d), "d is still resident");
    }

    #[test]
    fn lru_order_updated_on_hit() {
        let mut c = tiny_cache();
        let a = 0u64;
        let b = 256;
        let d = 512;
        c.access(a);
        c.access(b);
        c.access(a); // refresh a so b becomes LRU
        c.access(d); // evicts b
        assert!(c.access(a));
        assert!(!c.access(b));
    }

    #[test]
    fn sequential_stream_has_per_line_miss_rate() {
        let mut c = Cache::new(CacheConfig {
            capacity_bytes: 32 * 1024,
            line_bytes: 64,
            associativity: 8,
        });
        // 16-byte amplitudes accessed sequentially: 4 per line -> 25% misses.
        for i in 0..4096u64 {
            c.access(i * 16);
        }
        let miss_rate = 1.0 - c.hit_rate();
        assert!((miss_rate - 0.25).abs() < 0.01, "miss rate {miss_rate}");
    }

    #[test]
    fn working_set_larger_than_capacity_thrashes() {
        let mut c = tiny_cache(); // 512 B
                                  // Stream over 4 KiB repeatedly: nothing survives between passes when
                                  // the stride defeats the 2-way sets.
        for _ in 0..4 {
            for i in 0..64u64 {
                c.access(i * 64);
            }
        }
        assert!(c.hit_rate() < 0.01);
    }

    #[test]
    fn reset_clears_contents_and_counters() {
        let mut c = tiny_cache();
        c.access(0);
        c.access(0);
        c.reset();
        assert_eq!(c.accesses(), 0);
        assert!(!c.access(0), "contents must be flushed by reset");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn invalid_geometry_is_rejected() {
        let _ = Cache::new(CacheConfig {
            capacity_bytes: 500,
            line_bytes: 48,
            associativity: 2,
        });
    }
}

//! The scaled-down experiment configuration shared by every table/figure
//! binary.
//!
//! The paper evaluates 30–37 qubit circuits on up to 256 Frontera nodes
//! (1024 MPI ranks). This reproduction runs the same circuit families and the
//! same sweeps on one machine, scaled so a full regeneration finishes in
//! minutes: circuit widths come from the environment (defaults below) and the
//! virtual-rank sweep is capped by the host's core count. EXPERIMENTS.md
//! records the mapping from each paper configuration to the reproduction
//! configuration actually used.

use hisvsim_circuit::generators::{self, BenchConfig};
use hisvsim_circuit::Circuit;
use serde::{Deserialize, Serialize};

/// One circuit instance of the evaluation suite.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SuiteEntry {
    /// Family name (`bv`, `qft`, …).
    pub family: String,
    /// Label used in figures (e.g. `bv35` for the larger configuration).
    pub label: String,
    /// Qubits used by this reproduction.
    pub qubits: usize,
    /// Qubits used in the paper.
    pub paper_qubits: usize,
    /// True for the paper's ≥ 35-qubit group (evaluated on more ranks).
    pub large: bool,
}

impl SuiteEntry {
    /// Build the circuit for this entry.
    pub fn circuit(&self) -> Circuit {
        let mut c = generators::by_name(&self.family, self.qubits);
        c.name = self.label.clone();
        c
    }
}

/// Read an environment variable as usize with a default.
fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The evaluation suite (Table I), at reproduction scale.
///
/// Widths are controlled by `HISVSIM_SMALL_QUBITS` (default 16, the paper's
/// ≤ 31-qubit group) and `HISVSIM_LARGE_QUBITS` (default 18, the paper's
/// ≥ 35-qubit group).
pub fn evaluation_suite() -> Vec<SuiteEntry> {
    let small = env_usize("HISVSIM_SMALL_QUBITS", 16);
    let large = env_usize("HISVSIM_LARGE_QUBITS", 18);
    let mut suite = Vec::new();
    for cfg in generators::paper_suite() {
        let is_large = cfg.paper_qubits >= 35;
        let qubits = if is_large { large } else { small };
        let label = if is_large {
            format!("{}{}", cfg.family, cfg.paper_qubits)
        } else {
            cfg.family.to_string()
        };
        suite.push(SuiteEntry {
            family: cfg.family.to_string(),
            label,
            qubits,
            paper_qubits: cfg.paper_qubits,
            large: is_large,
        });
    }
    suite
}

/// The paper's Table I rows, re-exported for the `table1` binary.
pub fn paper_table1() -> Vec<BenchConfig> {
    generators::paper_suite()
}

/// Rank counts for the small-circuit group (paper: 16–256 MPI ranks) and the
/// large group (paper: 512/1024), scaled to the host.
pub fn rank_sweeps() -> (Vec<usize>, Vec<usize>) {
    // Virtual ranks are threads, so oversubscription is harmless; floor the
    // sweep at 8 ranks so both groups stay non-empty on small hosts.
    let max_ranks = env_usize(
        "HISVSIM_MAX_RANKS",
        num_cpus::get().next_power_of_two().clamp(8, 16),
    );
    let small: Vec<usize> = [2usize, 4, 8, 16, 32]
        .into_iter()
        .filter(|&r| r <= max_ranks)
        .collect();
    let large: Vec<usize> = [8usize, 16, 32]
        .into_iter()
        .filter(|&r| r <= max_ranks)
        .collect();
    (small, large)
}

/// Where experiment records are written (JSON, one file per figure/table).
pub fn results_dir() -> std::path::PathBuf {
    let dir = std::env::var("HISVSIM_RESULTS_DIR").unwrap_or_else(|_| "results".to_string());
    let path = std::path::PathBuf::from(dir);
    std::fs::create_dir_all(&path).expect("cannot create results directory");
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_thirteen_entries_like_table1() {
        let suite = evaluation_suite();
        assert_eq!(suite.len(), 13);
        assert_eq!(suite.iter().filter(|e| e.large).count(), 4);
        // Labels of the large group carry the paper's qubit count.
        assert!(suite.iter().any(|e| e.label == "bv35"));
        assert!(suite.iter().any(|e| e.label == "adder37"));
    }

    #[test]
    fn suite_entries_build_circuits_of_the_requested_width() {
        for entry in evaluation_suite() {
            let circuit = entry.circuit();
            assert_eq!(circuit.num_qubits(), entry.qubits, "{}", entry.label);
            assert_eq!(circuit.name, entry.label);
            assert!(circuit.num_gates() > 0);
        }
    }

    #[test]
    fn rank_sweeps_are_powers_of_two_and_bounded() {
        let (small, large) = rank_sweeps();
        assert!(!small.is_empty());
        assert!(!large.is_empty());
        for &r in small.iter().chain(large.iter()) {
            assert!(r.is_power_of_two());
        }
    }
}

//! Statistics used by the evaluation figures: geometric means (Fig. 8) and
//! Dolan–Moré performance profiles (Fig. 9).

use serde::{Deserialize, Serialize};

/// Geometric mean of a set of strictly positive values (0 when empty).
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "geometric mean needs positive values, got {v}");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

/// One curve of a performance profile: for each θ, the fraction ρ of
/// instances on which the method was within a factor θ of the best method.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProfileCurve {
    /// Method name.
    pub method: String,
    /// Sampled θ values (≥ 1).
    pub theta: Vec<f64>,
    /// ρ(θ) values in [0, 1].
    pub rho: Vec<f64>,
}

/// Compute Dolan–Moré performance profiles.
///
/// `times[m][i]` is method `m`'s metric on instance `i` (lower is better);
/// `None` marks a method that failed on that instance (treated as infinitely
/// slow). Curves are sampled at `samples` evenly spaced θ values in
/// `[1, theta_max]`.
pub fn performance_profile(
    methods: &[String],
    times: &[Vec<Option<f64>>],
    theta_max: f64,
    samples: usize,
) -> Vec<ProfileCurve> {
    assert_eq!(methods.len(), times.len());
    assert!(theta_max >= 1.0 && samples >= 2);
    let num_instances = times.first().map_or(0, |t| t.len());
    for t in times {
        assert_eq!(t.len(), num_instances, "ragged instance matrix");
    }
    // Best value per instance.
    let best: Vec<f64> = (0..num_instances)
        .map(|i| {
            times
                .iter()
                .filter_map(|t| t[i])
                .fold(f64::INFINITY, f64::min)
        })
        .collect();

    let thetas: Vec<f64> = (0..samples)
        .map(|s| 1.0 + (theta_max - 1.0) * s as f64 / (samples - 1) as f64)
        .collect();

    methods
        .iter()
        .zip(times.iter())
        .map(|(method, t)| {
            let ratios: Vec<Option<f64>> = (0..num_instances)
                .map(|i| t[i].map(|v| v / best[i]))
                .collect();
            let rho: Vec<f64> = thetas
                .iter()
                .map(|&theta| {
                    if num_instances == 0 {
                        return 0.0;
                    }
                    ratios
                        .iter()
                        .filter(|r| matches!(r, Some(v) if *v <= theta + 1e-12))
                        .count() as f64
                        / num_instances as f64
                })
                .collect();
            ProfileCurve {
                method: method.clone(),
                theta: thetas.clone(),
                rho,
            }
        })
        .collect()
}

/// Render a performance profile as a compact ASCII table (θ columns × method
/// rows), matching how the paper's Fig. 9 is read.
pub fn render_profile(curves: &[ProfileCurve], columns: usize) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    if curves.is_empty() {
        return out;
    }
    let total = curves[0].theta.len();
    let step = (total / columns).max(1);
    let _ = write!(out, "{:<12}", "theta");
    for idx in (0..total).step_by(step) {
        let _ = write!(out, "{:>8.2}", curves[0].theta[idx]);
    }
    out.push('\n');
    for curve in curves {
        let _ = write!(out, "{:<12}", curve.method);
        for idx in (0..total).step_by(step) {
            let _ = write!(out, "{:>8.2}", curve.rho[idx]);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_mean_of_equal_values_is_the_value() {
        assert!((geometric_mean(&[3.0, 3.0, 3.0]) - 3.0).abs() < 1e-12);
        assert_eq!(geometric_mean(&[]), 0.0);
    }

    #[test]
    fn geometric_mean_known_case() {
        // gm(1, 4) = 2
        assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geometric_mean_rejects_zero() {
        let _ = geometric_mean(&[1.0, 0.0]);
    }

    #[test]
    fn profile_fractions_are_monotone_and_bounded() {
        let methods = vec!["a".to_string(), "b".to_string()];
        let times = vec![
            vec![Some(1.0), Some(2.0), Some(3.0)],
            vec![Some(2.0), Some(2.0), Some(1.0)],
        ];
        let curves = performance_profile(&methods, &times, 3.0, 21);
        for curve in &curves {
            assert!(curve.rho.windows(2).all(|w| w[1] >= w[0] - 1e-12));
            assert!(curve.rho.iter().all(|&r| (0.0..=1.0).contains(&r)));
        }
        // At θ=1, method "a" is best on instances 0 and 1 (tie), i.e. 2/3.
        assert!((curves[0].rho[0] - 2.0 / 3.0).abs() < 1e-9);
        // By θ=3 both methods cover everything.
        assert!((curves[0].rho.last().unwrap() - 1.0).abs() < 1e-12);
        assert!((curves[1].rho.last().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn failed_instances_never_qualify() {
        let methods = vec!["a".to_string(), "b".to_string()];
        let times = vec![vec![Some(1.0), None], vec![Some(1.0), Some(5.0)]];
        let curves = performance_profile(&methods, &times, 10.0, 5);
        assert!(curves[0].rho.last().unwrap() < &1.0);
        assert!((curves[1].rho.last().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn render_contains_method_names() {
        let methods = vec!["dagP".to_string()];
        let times = vec![vec![Some(1.0)]];
        let curves = performance_profile(&methods, &times, 2.0, 11);
        let text = render_profile(&curves, 5);
        assert!(text.contains("dagP"));
        assert!(text.contains("theta"));
    }
}

//! Experiment execution: run one (circuit, rank-count, algorithm)
//! combination, collect an [`ExperimentRecord`], and persist record sets as
//! JSON under the results directory so EXPERIMENTS.md can reference them.

use crate::config::{results_dir, SuiteEntry};
use hisvsim_circuit::Circuit;
use hisvsim_cluster::NetworkModel;
use hisvsim_core::{
    BaselineConfig, DistConfig, DistributedSimulator, IqsBaseline, MultilevelConfig,
    MultilevelSimulator, RunReport,
};
use hisvsim_partition::Strategy;
use serde::{Deserialize, Serialize};

/// Which simulator produced a record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Algorithm {
    /// HiSVSIM with the Nat partitioning strategy.
    Nat,
    /// HiSVSIM with the DFS partitioning strategy.
    Dfs,
    /// HiSVSIM with the dagP partitioning strategy.
    DagP,
    /// The IQS-style baseline (labelled "Intel" in the paper's figures).
    Intel,
    /// The multi-level HiSVSIM engine (dagP at both levels).
    MultiLevel,
}

impl Algorithm {
    /// All four algorithms of Figs. 5–9, in the paper's order.
    pub const FIG5_SET: [Algorithm; 4] = [
        Algorithm::Nat,
        Algorithm::Dfs,
        Algorithm::DagP,
        Algorithm::Intel,
    ];

    /// Figure label.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Nat => "Nat",
            Algorithm::Dfs => "DFS",
            Algorithm::DagP => "dagP",
            Algorithm::Intel => "Intel",
            Algorithm::MultiLevel => "MultiLevel",
        }
    }

    /// The partitioning strategy behind a HiSVSIM algorithm, if any.
    pub fn strategy(&self) -> Option<Strategy> {
        match self {
            Algorithm::Nat => Some(Strategy::Nat),
            Algorithm::Dfs => Some(Strategy::Dfs),
            Algorithm::DagP | Algorithm::MultiLevel => Some(Strategy::DagP),
            Algorithm::Intel => None,
        }
    }
}

/// One measured experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentRecord {
    /// Circuit label (e.g. `bv35`).
    pub circuit: String,
    /// Circuit width in qubits (reproduction scale).
    pub qubits: usize,
    /// Gate count.
    pub gates: usize,
    /// Virtual rank count.
    pub ranks: usize,
    /// Algorithm that produced this record.
    pub algorithm: Algorithm,
    /// Number of parts (1 for the baseline).
    pub parts: usize,
    /// Modelled end-to-end time: computation + average modelled comm.
    pub total_time_s: f64,
    /// Measured computation time (max over ranks).
    pub compute_time_s: f64,
    /// Modelled communication time (average over ranks).
    pub comm_time_s: f64,
    /// Communication ratio = comm / total.
    pub comm_ratio: f64,
    /// Total payload bytes moved across the virtual interconnect.
    pub bytes_moved: u64,
    /// Number of global redistributions.
    pub exchanges: usize,
}

impl ExperimentRecord {
    fn from_report(algorithm: Algorithm, ranks: usize, report: &RunReport) -> Self {
        Self {
            circuit: report.circuit.clone(),
            qubits: report.num_qubits,
            gates: report.num_gates,
            ranks,
            algorithm,
            parts: report.num_parts,
            total_time_s: report.modeled_total_time_s(),
            compute_time_s: report.compute_time_s,
            comm_time_s: report.avg_comm_time_s,
            comm_ratio: report.comm_ratio(),
            bytes_moved: report.comm.bytes_sent,
            exchanges: report.num_exchanges,
        }
    }
}

/// Network model used by all distributed experiments.
///
/// The base constants are InfiniBand HDR-100 (as on Frontera), divided by a
/// *calibration factor* (`HISVSIM_NET_SCALE`, default 64): one virtual rank
/// here is a single thread, which updates its state-vector slice one to two
/// orders of magnitude slower than the 28-core, vectorised socket that backs
/// an MPI rank in the paper. Slowing the modelled wire by the same factor
/// keeps the communication-to-computation balance — the quantity all of
/// Figs. 5–9 are about — representative of the paper's cluster instead of
/// letting the (relatively) slow local compute swamp it. The factor is the
/// same for every algorithm, so it cancels in the relative comparisons; see
/// EXPERIMENTS.md ("Calibration").
pub fn experiment_network() -> NetworkModel {
    let scale: f64 = std::env::var("HISVSIM_NET_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64.0);
    let base = NetworkModel::hdr100();
    NetworkModel {
        latency_s: base.latency_s * scale,
        bandwidth_bytes_per_s: base.bandwidth_bytes_per_s / scale,
        injection_share: base.injection_share,
    }
}

/// Run one algorithm on one circuit at one rank count.
pub fn run_algorithm(circuit: &Circuit, ranks: usize, algorithm: Algorithm) -> ExperimentRecord {
    let net = experiment_network();
    match algorithm {
        Algorithm::Intel => {
            let run = IqsBaseline::new(BaselineConfig::new(ranks).with_network(net)).run(circuit);
            ExperimentRecord::from_report(algorithm, ranks, &run.report)
        }
        Algorithm::MultiLevel => {
            let p = ranks.trailing_zeros() as usize;
            let l = circuit.num_qubits().saturating_sub(p);
            // Second level sized to half the local width (a stand-in for the
            // LLC-sized limit of the paper).
            let second = (l / 2).max(2);
            let run =
                MultilevelSimulator::new(MultilevelConfig::new(ranks, second).with_network(net))
                    .run(circuit)
                    .expect("multilevel partitioning failed");
            ExperimentRecord::from_report(algorithm, ranks, &run.report)
        }
        _ => {
            let strategy = algorithm.strategy().unwrap();
            let run = DistributedSimulator::new(
                DistConfig::new(ranks)
                    .with_strategy(strategy)
                    .with_network(net),
            )
            .run(circuit)
            .expect("partitioning failed");
            ExperimentRecord::from_report(algorithm, ranks, &run.report)
        }
    }
}

/// Run the full Fig. 5–9 sweep for one suite entry: every algorithm at every
/// rank count.
pub fn sweep_entry(entry: &SuiteEntry, ranks: &[usize]) -> Vec<ExperimentRecord> {
    let circuit = entry.circuit();
    let mut records = Vec::new();
    for &r in ranks {
        if (r.trailing_zeros() as usize) >= circuit.num_qubits() {
            continue;
        }
        for algorithm in Algorithm::FIG5_SET {
            records.push(run_algorithm(&circuit, r, algorithm));
        }
    }
    records
}

/// Persist a record set as JSON under the results directory.
pub fn save_records(name: &str, records: &[ExperimentRecord]) -> std::path::PathBuf {
    let path = results_dir().join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(records).expect("serialising records");
    std::fs::write(&path, json).expect("writing records");
    path
}

/// Load a previously saved record set (used by the aggregation binaries
/// `fig8`/`fig9` so they can reuse `fig5`'s sweep instead of re-running it).
pub fn load_records(name: &str) -> Option<Vec<ExperimentRecord>> {
    let path = results_dir().join(format!("{name}.json"));
    let data = std::fs::read_to_string(path).ok()?;
    serde_json::from_str(&data).ok()
}

/// The improvement factor of a HiSVSIM record over the matching baseline
/// record (same circuit, same rank count).
pub fn improvement_factor(record: &ExperimentRecord, all: &[ExperimentRecord]) -> Option<f64> {
    let baseline = all.iter().find(|r| {
        r.algorithm == Algorithm::Intel && r.circuit == record.circuit && r.ranks == record.ranks
    })?;
    Some(baseline.total_time_s / record.total_time_s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hisvsim_circuit::generators;

    #[test]
    fn run_algorithm_produces_consistent_records() {
        let circuit = generators::by_name("ising", 10);
        for algorithm in [Algorithm::DagP, Algorithm::Intel, Algorithm::MultiLevel] {
            let record = run_algorithm(&circuit, 4, algorithm);
            assert_eq!(record.ranks, 4);
            assert_eq!(record.qubits, 10);
            assert!(record.total_time_s > 0.0);
            assert!(record.comm_ratio >= 0.0 && record.comm_ratio <= 1.0);
            assert!(
                (record.total_time_s - (record.compute_time_s + record.comm_time_s)).abs() < 1e-9
            );
        }
    }

    #[test]
    fn improvement_factor_matches_manual_division() {
        let circuit = generators::by_name("cc", 10);
        let records = vec![
            run_algorithm(&circuit, 4, Algorithm::DagP),
            run_algorithm(&circuit, 4, Algorithm::Intel),
        ];
        let f = improvement_factor(&records[0], &records).unwrap();
        assert!((f - records[1].total_time_s / records[0].total_time_s).abs() < 1e-12);
        // The baseline's own factor is 1.
        let f_base = improvement_factor(&records[1], &records).unwrap();
        assert!((f_base - 1.0).abs() < 1e-12);
    }

    #[test]
    fn records_roundtrip_through_json() {
        let circuit = generators::by_name("bv", 9);
        let records = vec![run_algorithm(&circuit, 2, Algorithm::Nat)];
        let json = serde_json::to_string(&records).unwrap();
        let back: Vec<ExperimentRecord> = serde_json::from_str(&json).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].algorithm, Algorithm::Nat);
        assert_eq!(back[0].circuit, records[0].circuit);
    }
}

//! Ablation (DESIGN.md): sweep of the working-set limit `Lm` — the knob that
//! trades part count (communication) against inner-state-vector size
//! (locality) — for the single-node hierarchical engine.
//!
//! ```text
//! cargo run --release -p hisvsim-bench --bin ablation_limit [qubits] [family]
//! ```

use hisvsim_bench::tables::render_table;
use hisvsim_circuit::generators;
use hisvsim_core::hier::{HierConfig, HierarchicalSimulator};
use hisvsim_dag::CircuitDag;
use hisvsim_partition::Strategy;

fn main() {
    let qubits: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(18);
    let family = std::env::args().nth(2).unwrap_or_else(|| "qft".to_string());
    let circuit = generators::by_name(&family, qubits);
    let dag = CircuitDag::from_circuit(&circuit);

    println!(
        "working-set limit sweep: {} ({} qubits, {} gates), dagP, single node\n",
        circuit.name,
        circuit.num_qubits(),
        circuit.num_gates()
    );
    let mut rows = Vec::new();
    let mut limit = 3usize;
    while limit <= qubits {
        match Strategy::DagP.partition(&dag, limit) {
            Ok(partition) => {
                let run = HierarchicalSimulator::new(
                    HierConfig::new(limit).with_strategy(Strategy::DagP),
                )
                .run_with_partition(&circuit, &dag, partition);
                rows.push(vec![
                    limit.to_string(),
                    run.report.num_parts.to_string(),
                    format!("{} KB", (16usize << limit) >> 10),
                    format!("{:.3}", run.report.total_time_s),
                ]);
            }
            Err(e) => rows.push(vec![
                limit.to_string(),
                format!("({e})"),
                "-".into(),
                "-".into(),
            ]),
        }
        limit += if limit < 8 { 1 } else { 2 };
    }
    println!(
        "{}",
        render_table(
            &["limit Lm", "parts", "inner SV size", "runtime (s)"],
            &rows
        )
    );
    println!("\nExpected: larger limits mean fewer parts (fewer outer sweeps) until the inner");
    println!("state vector no longer fits in cache — the trade-off the multi-level design");
    println!("(paper Sec. IV/V-D) exploits by picking two limits at once.");
}

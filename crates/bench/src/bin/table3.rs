//! Table III — QAOA partitioning breakdown (parts, qubits, gates per part)
//! under the three strategies, plus the modelled single-GPU kernel time per
//! part (the paper measures HyQuas on a V100; here the calibrated throughput
//! model stands in — see DESIGN.md).
//!
//! ```text
//! cargo run --release -p hisvsim-bench --bin table3 [qubits] [gpus]
//! ```

use hisvsim_bench::tables::render_table;
use hisvsim_circuit::generators;
use hisvsim_cluster::NetworkModel;
use hisvsim_core::gpu::{estimate_hybrid, GpuModel};
use hisvsim_dag::CircuitDag;
use hisvsim_partition::Strategy;

fn main() {
    let qubits: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(20);
    let gpus: usize = std::env::args()
        .nth(2)
        .and_then(|a| a.parse().ok())
        .unwrap_or(4);
    // The paper's qaoa_28 comes from the HyQuas repository; the same family
    // at reproduction width.
    let circuit = generators::qaoa(qubits, 2, 0xA0A);
    let dag = CircuitDag::from_circuit(&circuit);
    let local_limit = circuit.num_qubits() - gpus.trailing_zeros() as usize;
    let gpu = GpuModel::v100_hyquas();
    let net = NetworkModel::hdr100();

    println!(
        "Table III — QAOA partitioning breakdown and modelled per-part GPU kernel times\n\
         (qaoa at {qubits} qubits — the paper uses qaoa_28 —, {gpus} single-GPU nodes, limit = {local_limit} local qubits)\n"
    );

    let mut rows = Vec::new();
    for strategy in [Strategy::DagP, Strategy::Dfs, Strategy::Nat] {
        let partition = strategy
            .partition(&dag, local_limit)
            .expect("partitioning failed");
        let estimate = estimate_hybrid(&circuit, &dag, &partition, strategy.name(), gpu, net, gpus);
        let total_gates: usize = estimate.parts.iter().map(|p| p.gates).sum();
        for (i, part) in estimate.parts.iter().enumerate() {
            rows.push(vec![
                if i == 0 {
                    strategy.name().to_string()
                } else {
                    String::new()
                },
                format!("P{}", part.part),
                part.qubits.to_string(),
                part.gates.to_string(),
                if i == 0 {
                    format!("= {total_gates}")
                } else {
                    String::new()
                },
                format!("{:.1}", part.gpu_time_s * 1e3),
                if i == 0 {
                    format!("{:.1}", estimate.computation_s * 1e3)
                } else {
                    String::new()
                },
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            &[
                "strategy",
                "part",
                "qubits",
                "gates",
                "total gates",
                "time (ms)",
                "total (ms)"
            ],
            &rows
        )
    );
    println!("Paper shape to reproduce: dagP produces the fewest parts (2 in the paper), Nat the");
    println!("most (6); the summed per-part GPU times are close to each other across strategies");
    println!("(329.8 / 337.7 / 365.9 ms in the paper) because every strategy executes the same");
    println!("total gate count.");
}

//! Table I — benchmark suite description.
//!
//! Prints, for every circuit configuration of the paper's Table I, the paper
//! values (qubits, gates, state-vector memory) next to the reproduction-scale
//! configuration actually generated here (qubits, gates, memory), so the two
//! can be compared side by side.
//!
//! ```text
//! cargo run --release -p hisvsim-bench --bin table1
//! ```

use hisvsim_bench::config::{evaluation_suite, paper_table1};
use hisvsim_bench::tables::render_table;

fn format_bytes(bytes: u128) -> String {
    const GIB: u128 = 1 << 30;
    const MIB: u128 = 1 << 20;
    if bytes >= GIB {
        format!("{} GB", bytes / GIB)
    } else if bytes >= MIB {
        format!("{} MB", bytes / MIB)
    } else {
        format!("{} KB", bytes >> 10)
    }
}

fn main() {
    let paper = paper_table1();
    let suite = evaluation_suite();
    let mut rows = Vec::new();
    for (cfg, entry) in paper.iter().zip(suite.iter()) {
        let circuit = entry.circuit();
        rows.push(vec![
            entry.label.clone(),
            cfg.description.to_string(),
            cfg.paper_qubits.to_string(),
            cfg.paper_gates.to_string(),
            cfg.paper_memory.to_string(),
            circuit.num_qubits().to_string(),
            circuit.num_gates().to_string(),
            format_bytes(circuit.state_vector_bytes()),
        ]);
    }
    println!(
        "Table I — benchmark description (paper configuration vs reproduction configuration)\n"
    );
    println!(
        "{}",
        render_table(
            &[
                "circuit",
                "description",
                "qubits(paper)",
                "gates(paper)",
                "mem(paper)",
                "qubits(repro)",
                "gates(repro)",
                "mem(repro)",
            ],
            &rows
        )
    );
    println!("Reproduction widths come from HISVSIM_SMALL_QUBITS / HISVSIM_LARGE_QUBITS (see EXPERIMENTS.md).");
}

//! Fig. 10 — single-level vs multi-level HiSVSIM runtime on the circuits
//! whose two-level partition differs from the single-level one (adder, qaoa,
//! qft, qnn, qpe in the paper).
//!
//! ```text
//! cargo run --release -p hisvsim-bench --bin fig10
//! ```

use hisvsim_bench::tables::{fmt_seconds, render_table};
use hisvsim_bench::{evaluation_suite, rank_sweeps, run_algorithm, Algorithm};

fn main() {
    let suite = evaluation_suite();
    let (small_ranks, large_ranks) = rank_sweeps();
    let families = ["adder", "qaoa", "qft", "qnn", "qpe"];

    println!("Fig. 10 — single-level (dagP) vs multi-level runtime at the largest rank count\n");
    let mut rows = Vec::new();
    let mut improvements = Vec::new();
    for entry in suite
        .iter()
        .filter(|e| families.contains(&e.family.as_str()))
    {
        let ranks = *if entry.large {
            &large_ranks
        } else {
            &small_ranks
        }
        .last()
        .unwrap();
        let circuit = entry.circuit();
        hisvsim_bench::progress!("running {} at {} ranks", entry.label, ranks);
        let single = run_algorithm(&circuit, ranks, Algorithm::DagP);
        let multi = run_algorithm(&circuit, ranks, Algorithm::MultiLevel);
        let delta = single.total_time_s / multi.total_time_s;
        improvements.push(delta);
        rows.push(vec![
            entry.label.clone(),
            ranks.to_string(),
            single.parts.to_string(),
            fmt_seconds(single.total_time_s),
            multi.parts.to_string(),
            fmt_seconds(multi.total_time_s),
            format!("{delta:.2}x"),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "circuit",
                "ranks",
                "parts(single)",
                "single-level (s)",
                "parts(multi,L1)",
                "multi-level (s)",
                "single/multi",
            ],
            &rows
        )
    );
    let avg = improvements.iter().sum::<f64>() / improvements.len().max(1) as f64;
    println!("average single-level / multi-level ratio: {avg:.2}x");
    println!("\nPaper shape to reproduce: the multi-level variant is faster on adder/qft/qaoa/qpe");
    println!("(average 15.8% reduction, up to 1.47x over the best single-level run; qnn is the");
    println!("one circuit that is marginally slower).");
}

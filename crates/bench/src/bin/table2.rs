//! Table II — memory-access breakdown of the single-node execution under the
//! three partitioning strategies (bv and ising, as in the paper), using the
//! cache-hierarchy model as the VTune substitute plus the measured execution
//! time of the hierarchical engine.
//!
//! ```text
//! cargo run --release -p hisvsim-bench --bin table2 [qubits] [limit]
//! ```

use hisvsim_bench::tables::render_table;
use hisvsim_circuit::generators;
use hisvsim_core::hier::{HierConfig, HierarchicalSimulator};
use hisvsim_core::profile::{hierarchical_access_trace, TraceOptions};
use hisvsim_dag::CircuitDag;
use hisvsim_memmodel::{replay_amplitude_indices, HierarchyConfig, MemoryBreakdown};
use hisvsim_partition::Strategy;

fn main() {
    let qubits: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(18);
    let limit: usize = std::env::args()
        .nth(2)
        .and_then(|a| a.parse().ok())
        .unwrap_or(qubits / 2);
    let cache = HierarchyConfig::cascade_lake();

    println!("Table II — memory access breakdown (cache-model substitute for VTune)\n");
    println!("circuits at {qubits} qubits, working-set limit Lm = {limit}, Cascade-Lake-like cache model\n");

    let mut rows = Vec::new();
    for family in ["bv", "ising"] {
        let circuit = generators::by_name(family, qubits);
        let dag = CircuitDag::from_circuit(&circuit);
        for strategy in Strategy::ALL {
            let partition = strategy
                .partition(&dag, limit)
                .expect("partitioning failed");
            // Measured execution time of the hierarchical engine.
            let run = HierarchicalSimulator::new(
                HierConfig::new(limit)
                    .with_strategy(strategy)
                    .with_parallel(false),
            )
            .run_with_partition(&circuit, &dag, partition.clone());

            // Modelled memory behaviour of the same execution order.
            let trace = hierarchical_access_trace(
                &circuit,
                &dag,
                &partition,
                TraceOptions {
                    max_assignments_per_part: 8,
                    max_accesses: 3_000_000,
                },
            );
            let stats = replay_amplitude_indices(cache, trace);
            let breakdown = MemoryBreakdown::from_stats(
                family,
                strategy.name(),
                stats,
                &cache,
                run.report.total_time_s,
            );
            rows.push(vec![
                family.to_string(),
                strategy.name().to_string(),
                partition.num_parts().to_string(),
                format!("{:.1}", breakdown.service_percent[0]),
                format!("{:.1}", breakdown.service_percent[1]),
                format!("{:.1}", breakdown.service_percent[2]),
                format!("{:.1}", breakdown.service_percent[3]),
                format!("{:.1}", breakdown.avg_latency_cycles),
                format!("{:.3}", breakdown.execution_time_s),
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            &[
                "circuit",
                "strategy",
                "parts",
                "L1 %",
                "L2 %",
                "L3 %",
                "DRAM %",
                "avg lat (cyc)",
                "exec time (s)",
            ],
            &rows
        )
    );
    println!("Paper shape to reproduce: dagP has the lowest DRAM share and the lowest execution");
    println!("time, Nat the highest, on both circuits (paper Table II).");
}

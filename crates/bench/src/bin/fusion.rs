//! The fused-pipeline acceptance benchmark: measures the end-to-end speedup
//! of fused over unfused execution — per fusion *strategy* — on the flat
//! simulator and on the hierarchical engine, verifies every fused result
//! against the flat reference, and records everything in
//! `BENCH_fusion.json` so the perf trajectory of the execution path has
//! data points.
//!
//! ```text
//! cargo run --release -p hisvsim-bench --bin fusion [qubits] [reps] [family]
//! ```
//!
//! `family` (`qft` | `random` | `all`, default `all`) restricts the run to
//! one circuit family — handy for re-measuring a single row without paying
//! for the whole matrix.
//!
//! Defaults: 24 qubits, 3 repetitions (best-of). Families: the QFT (layered
//! — the window scanner's best case) and the deep `random` interleaved
//! family (depth ≥ 64 at the default size — the workload DAG fusion closes).
//! A width sweep at a smaller size maps the fusion-width curve that
//! motivates the auto default.

use hisvsim_circuit::{generators, Circuit};
use hisvsim_core::{HierConfig, HierarchicalSimulator};
use hisvsim_dag::CircuitDag;
use hisvsim_partition::Strategy;
use hisvsim_statevec::{
    kernels, ApplyOptions, FusedCircuit, FusionStrategy, StateVector, DEFAULT_FUSION_WIDTH,
};
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct FlatResult {
    circuit: String,
    qubits: usize,
    gates: usize,
    depth: usize,
    strategy: String,
    fusion_width: usize,
    fused_ops: usize,
    unfused_s: f64,
    fused_s: f64,
    speedup: f64,
    max_abs_diff: f64,
}

#[derive(Serialize)]
struct HierResult {
    circuit: String,
    qubits: usize,
    limit: usize,
    num_parts: usize,
    strategy: String,
    fusion_width: usize,
    unfused_s: f64,
    fused_s: f64,
    speedup: f64,
    max_abs_diff: f64,
}

#[derive(Serialize)]
struct SweepPoint {
    circuit: String,
    qubits: usize,
    fusion_width: usize,
    fused_ops: usize,
    time_s: f64,
    speedup_vs_flat: f64,
}

#[derive(Serialize)]
struct AutoPick {
    circuit: String,
    qubits: usize,
    resolved: String,
}

#[derive(Serialize)]
struct Report {
    qubits: usize,
    reps: usize,
    default_fusion_width: usize,
    /// What `FusionStrategy::Auto` resolves to per family at the default
    /// width (window for layered circuits, dag for deep interleaved ones).
    auto_picks: Vec<AutoPick>,
    flat: Vec<FlatResult>,
    hier: Vec<HierResult>,
    width_sweep: Vec<SweepPoint>,
}

/// Benchmark circuits: the layered QFT and the deep `random` interleaved
/// family. The random instance is deepened until its circuit depth reaches
/// 64 (at 24 qubits: ~48·n gates), the regime where the bounded fusion
/// window degenerates.
fn circuit_by_name(name: &str, n: usize) -> Circuit {
    match name {
        "random" => {
            let mut gates = 48 * n;
            loop {
                let c = generators::random_circuit(n, gates, 0x5EED);
                if c.depth() >= 64 {
                    return c;
                }
                gates += 8 * n;
            }
        }
        other => generators::by_name(other, n),
    }
}

/// Best-of-`reps` wall time of `f`.
fn time_best<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn flat_cases(name: &str, n: usize, reps: usize, width: usize) -> Vec<FlatResult> {
    let circuit = circuit_by_name(name, n);
    let opts = ApplyOptions::default();

    let mut reference = StateVector::zero_state(n);
    let unfused_s = time_best(reps, || {
        reference = StateVector::zero_state(n);
        kernels::apply_circuit_with(&mut reference, &circuit, &opts);
    });

    [FusionStrategy::Window, FusionStrategy::Dag]
        .into_iter()
        .map(|strategy| {
            let fused = FusedCircuit::with_strategy(&circuit, width, strategy);
            let mut fused_state = StateVector::zero_state(n);
            let fused_s = time_best(reps, || {
                fused_state = StateVector::zero_state(n);
                fused.apply(&mut fused_state, &opts);
            });
            let max_abs_diff = fused_state.max_abs_diff(&reference);
            println!(
                "flat {name}@{n} [{strategy}]: unfused {unfused_s:.3} s, fused(w={width}) \
                 {fused_s:.3} s -> {:.2}x (max diff {max_abs_diff:.2e}, {} ops for {} gates)",
                unfused_s / fused_s,
                fused.num_ops(),
                circuit.num_gates()
            );
            FlatResult {
                circuit: name.to_string(),
                qubits: n,
                gates: circuit.num_gates(),
                depth: circuit.depth(),
                strategy: strategy.name().to_string(),
                fusion_width: width,
                fused_ops: fused.num_ops(),
                unfused_s,
                fused_s,
                speedup: unfused_s / fused_s,
                max_abs_diff,
            }
        })
        .collect()
}

fn hier_cases(name: &str, n: usize, limit: usize, reps: usize, width: usize) -> Vec<HierResult> {
    let circuit = circuit_by_name(name, n);
    let dag = CircuitDag::from_circuit(&circuit);
    let partition = Strategy::DagP
        .partition(&dag, limit)
        .expect("partitioning failed");

    let reference = {
        let mut state = StateVector::zero_state(n);
        kernels::apply_circuit_with(&mut state, &circuit, &ApplyOptions::default());
        state
    };

    let unfused_sim = HierarchicalSimulator::new(HierConfig::new(limit).with_fusion(0));
    let mut unfused_state = None;
    let unfused_s = time_best(reps, || {
        unfused_state = Some(
            unfused_sim
                .run_with_partition(&circuit, &dag, partition.clone())
                .state,
        );
    });
    let unfused_diff = unfused_state
        .expect("at least one rep")
        .max_abs_diff(&reference);

    [FusionStrategy::Window, FusionStrategy::Dag]
        .into_iter()
        .map(|strategy| {
            let fused_sim = HierarchicalSimulator::new(
                HierConfig::new(limit)
                    .with_fusion(width)
                    .with_fusion_strategy(strategy),
            );
            let mut fused_state = None;
            let fused_s = time_best(reps, || {
                fused_state = Some(
                    fused_sim
                        .run_with_partition(&circuit, &dag, partition.clone())
                        .state,
                );
            });
            let max_abs_diff = fused_state
                .expect("at least one rep")
                .max_abs_diff(&reference)
                .max(unfused_diff);
            println!(
                "hier {name}@{n} [{strategy}] (limit {limit}, {} parts): unfused {unfused_s:.3} s, \
                 fused(w={width}) {fused_s:.3} s -> {:.2}x (max diff {max_abs_diff:.2e})",
                partition.num_parts(),
                unfused_s / fused_s
            );
            HierResult {
                circuit: name.to_string(),
                qubits: n,
                limit,
                num_parts: partition.num_parts(),
                strategy: strategy.name().to_string(),
                fusion_width: width,
                unfused_s,
                fused_s,
                speedup: unfused_s / fused_s,
                max_abs_diff,
            }
        })
        .collect()
}

fn width_sweep(name: &str, n: usize, reps: usize) -> Vec<SweepPoint> {
    let circuit = circuit_by_name(name, n);
    let opts = ApplyOptions::default();
    let flat_s = time_best(reps, || {
        let mut state = StateVector::zero_state(n);
        kernels::apply_circuit_with(&mut state, &circuit, &opts);
    });
    (1usize..=5)
        .map(|width| {
            let fused = FusedCircuit::with_strategy(&circuit, width, FusionStrategy::Auto);
            let time_s = time_best(reps, || {
                let mut state = StateVector::zero_state(n);
                fused.apply(&mut state, &opts);
            });
            println!(
                "sweep {name}@{n} w={width} [{}]: {time_s:.3} s ({:.2}x vs flat, {} ops)",
                fused.strategy(),
                flat_s / time_s,
                fused.num_ops()
            );
            SweepPoint {
                circuit: name.to_string(),
                qubits: n,
                fusion_width: width,
                fused_ops: fused.num_ops(),
                time_s,
                speedup_vs_flat: flat_s / time_s,
            }
        })
        .collect()
}

fn main() {
    let qubits: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(24);
    let reps: usize = std::env::args()
        .nth(2)
        .and_then(|a| a.parse().ok())
        .unwrap_or(3);
    let family = std::env::args().nth(3).unwrap_or_else(|| "all".to_string());
    let families: Vec<&str> = match family.as_str() {
        "all" => vec!["qft", "random"],
        "qft" => vec!["qft"],
        "random" => vec!["random"],
        other => panic!("unknown family {other:?} (expected qft, random or all)"),
    };
    let width = DEFAULT_FUSION_WIDTH;
    let sweep_qubits = qubits.saturating_sub(2).max(16);

    println!("fused-pipeline benchmark: {qubits} qubits, best of {reps}\n");
    let auto_picks = families
        .iter()
        .copied()
        .map(|name| {
            let circuit = circuit_by_name(name, 16.min(qubits));
            let resolved = FusedCircuit::with_strategy(&circuit, width, FusionStrategy::Auto)
                .strategy()
                .name()
                .to_string();
            println!("auto {name}: resolves to {resolved}");
            AutoPick {
                circuit: name.to_string(),
                qubits: 16.min(qubits),
                resolved,
            }
        })
        .collect();

    let flat: Vec<FlatResult> = families
        .iter()
        .copied()
        .flat_map(|name| flat_cases(name, qubits, reps, width))
        .collect();
    let limit = qubits.saturating_sub(4).max(4);
    let hier: Vec<HierResult> = families
        .iter()
        .copied()
        .flat_map(|name| hier_cases(name, qubits, limit, reps, width))
        .collect();
    let sweep = width_sweep("qft", sweep_qubits, reps);

    let report = Report {
        qubits,
        reps,
        default_fusion_width: width,
        auto_picks,
        flat,
        hier,
        width_sweep: sweep,
    };
    if family == "all" {
        let json = serde_json::to_string_pretty(&report).expect("serialize report");
        std::fs::write("BENCH_fusion.json", &json).expect("write BENCH_fusion.json");
        println!("\nwrote BENCH_fusion.json");
    } else {
        println!("\nfamily filter active ({family}): BENCH_fusion.json left untouched");
    }

    for result in &report.flat {
        assert!(
            result.max_abs_diff < 1e-9,
            "{} [{}]: fused flat result diverged",
            result.circuit,
            result.strategy
        );
    }
    for result in &report.hier {
        assert!(
            result.max_abs_diff < 1e-9,
            "{} [{}]: fused hier result diverged",
            result.circuit,
            result.strategy
        );
    }
}

//! The fused-pipeline acceptance benchmark: measures the end-to-end speedup
//! of fused over unfused execution on the flat simulator and on the
//! hierarchical engine, verifies the fused results against the flat
//! reference, and records everything in `BENCH_fusion.json` so the perf
//! trajectory of the execution path has data points.
//!
//! ```text
//! cargo run --release -p hisvsim-bench --bin fusion [qubits] [reps]
//! ```
//!
//! Defaults: 24 qubits, 3 repetitions (best-of). A width sweep at a smaller
//! size maps the fusion-width curve that motivates the auto default.

use hisvsim_circuit::{generators, Circuit};
use hisvsim_core::{HierConfig, HierarchicalSimulator};
use hisvsim_dag::CircuitDag;
use hisvsim_partition::Strategy;
use hisvsim_statevec::{kernels, ApplyOptions, FusedCircuit, StateVector, DEFAULT_FUSION_WIDTH};
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct FlatResult {
    circuit: String,
    qubits: usize,
    gates: usize,
    fusion_width: usize,
    fused_ops: usize,
    unfused_s: f64,
    fused_s: f64,
    speedup: f64,
    max_abs_diff: f64,
}

#[derive(Serialize)]
struct HierResult {
    circuit: String,
    qubits: usize,
    limit: usize,
    num_parts: usize,
    fusion_width: usize,
    unfused_s: f64,
    fused_s: f64,
    speedup: f64,
    max_abs_diff: f64,
}

#[derive(Serialize)]
struct SweepPoint {
    circuit: String,
    qubits: usize,
    fusion_width: usize,
    fused_ops: usize,
    time_s: f64,
    speedup_vs_flat: f64,
}

#[derive(Serialize)]
struct Report {
    qubits: usize,
    reps: usize,
    default_fusion_width: usize,
    flat: Vec<FlatResult>,
    hier: Vec<HierResult>,
    width_sweep: Vec<SweepPoint>,
}

/// Benchmark circuits: the Table-I families plus a dense random circuit.
fn circuit_by_name(name: &str, n: usize) -> Circuit {
    match name {
        "random" => generators::random_circuit(n, 12 * n, 0x5EED),
        other => generators::by_name(other, n),
    }
}

/// Best-of-`reps` wall time of `f`.
fn time_best<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn flat_case(name: &str, n: usize, reps: usize, width: usize) -> FlatResult {
    let circuit = circuit_by_name(name, n);
    let opts = ApplyOptions::default();
    let fused = FusedCircuit::new(&circuit, width);

    let mut reference = StateVector::zero_state(n);
    let unfused_s = time_best(reps, || {
        reference = StateVector::zero_state(n);
        kernels::apply_circuit_with(&mut reference, &circuit, &opts);
    });
    let mut fused_state = StateVector::zero_state(n);
    let fused_s = time_best(reps, || {
        fused_state = StateVector::zero_state(n);
        fused.apply(&mut fused_state, &opts);
    });
    let max_abs_diff = fused_state.max_abs_diff(&reference);
    println!(
        "flat {name}@{n}: unfused {unfused_s:.3} s, fused(w={width}) {fused_s:.3} s \
         -> {:.2}x (max diff {max_abs_diff:.2e}, {} ops for {} gates)",
        unfused_s / fused_s,
        fused.num_ops(),
        circuit.num_gates()
    );
    FlatResult {
        circuit: name.to_string(),
        qubits: n,
        gates: circuit.num_gates(),
        fusion_width: width,
        fused_ops: fused.num_ops(),
        unfused_s,
        fused_s,
        speedup: unfused_s / fused_s,
        max_abs_diff,
    }
}

fn hier_case(name: &str, n: usize, limit: usize, reps: usize, width: usize) -> HierResult {
    let circuit = circuit_by_name(name, n);
    let dag = CircuitDag::from_circuit(&circuit);
    let partition = Strategy::DagP
        .partition(&dag, limit)
        .expect("partitioning failed");

    let reference = {
        let mut state = StateVector::zero_state(n);
        kernels::apply_circuit_with(&mut state, &circuit, &ApplyOptions::default());
        state
    };

    let unfused_sim = HierarchicalSimulator::new(HierConfig::new(limit).with_fusion(0));
    let fused_sim = HierarchicalSimulator::new(HierConfig::new(limit).with_fusion(width));
    let mut unfused_state = None;
    let unfused_s = time_best(reps, || {
        unfused_state = Some(
            unfused_sim
                .run_with_partition(&circuit, &dag, partition.clone())
                .state,
        );
    });
    let mut fused_state = None;
    let fused_s = time_best(reps, || {
        fused_state = Some(
            fused_sim
                .run_with_partition(&circuit, &dag, partition.clone())
                .state,
        );
    });
    let fused_state = fused_state.expect("at least one rep");
    let max_abs_diff = fused_state.max_abs_diff(&reference).max(
        unfused_state
            .expect("at least one rep")
            .max_abs_diff(&reference),
    );
    println!(
        "hier {name}@{n} (limit {limit}, {} parts): unfused {unfused_s:.3} s, \
         fused(w={width}) {fused_s:.3} s -> {:.2}x (max diff {max_abs_diff:.2e})",
        partition.num_parts(),
        unfused_s / fused_s
    );
    HierResult {
        circuit: name.to_string(),
        qubits: n,
        limit,
        num_parts: partition.num_parts(),
        fusion_width: width,
        unfused_s,
        fused_s,
        speedup: unfused_s / fused_s,
        max_abs_diff,
    }
}

fn width_sweep(name: &str, n: usize, reps: usize) -> Vec<SweepPoint> {
    let circuit = circuit_by_name(name, n);
    let opts = ApplyOptions::default();
    let flat_s = time_best(reps, || {
        let mut state = StateVector::zero_state(n);
        kernels::apply_circuit_with(&mut state, &circuit, &opts);
    });
    (1usize..=5)
        .map(|width| {
            let fused = FusedCircuit::new(&circuit, width);
            let time_s = time_best(reps, || {
                let mut state = StateVector::zero_state(n);
                fused.apply(&mut state, &opts);
            });
            println!(
                "sweep {name}@{n} w={width}: {time_s:.3} s ({:.2}x vs flat, {} ops)",
                flat_s / time_s,
                fused.num_ops()
            );
            SweepPoint {
                circuit: name.to_string(),
                qubits: n,
                fusion_width: width,
                fused_ops: fused.num_ops(),
                time_s,
                speedup_vs_flat: flat_s / time_s,
            }
        })
        .collect()
}

fn main() {
    let qubits: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(24);
    let reps: usize = std::env::args()
        .nth(2)
        .and_then(|a| a.parse().ok())
        .unwrap_or(3);
    let width = DEFAULT_FUSION_WIDTH;
    let sweep_qubits = qubits.saturating_sub(2).max(16);

    println!("fused-pipeline benchmark: {qubits} qubits, best of {reps}\n");
    let flat = vec![
        flat_case("qft", qubits, reps, width),
        flat_case("random", qubits, reps, width),
    ];
    let hier = vec![
        hier_case("qft", qubits, qubits.saturating_sub(4).max(4), reps, width),
        hier_case(
            "random",
            qubits,
            qubits.saturating_sub(4).max(4),
            reps,
            width,
        ),
    ];
    let sweep = width_sweep("qft", sweep_qubits, reps);

    let report = Report {
        qubits,
        reps,
        default_fusion_width: width,
        flat,
        hier,
        width_sweep: sweep,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write("BENCH_fusion.json", &json).expect("write BENCH_fusion.json");
    println!("\nwrote BENCH_fusion.json");

    for result in &report.flat {
        assert!(
            result.max_abs_diff < 1e-9,
            "{}: fused flat result diverged",
            result.circuit
        );
    }
    for result in &report.hier {
        assert!(
            result.max_abs_diff < 1e-9,
            "{}: fused hier result diverged",
            result.circuit
        );
    }
}

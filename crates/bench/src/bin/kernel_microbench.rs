//! Per-kernel microbenchmark: forced-scalar vs auto (SIMD) dispatch for
//! each sweep kernel the fused executor drives — single-qubit (strided and
//! q0), two-qubit dense, prepared k-qubit, and the diagonal-run streaming
//! pass — at 20–24 qubits, reported as effective GB/s and speedup, recorded
//! in `BENCH_kernels.json`.
//!
//! ```text
//! cargo run --release -p hisvsim-bench --bin kernel_microbench [reps] [--profile-out <path>]
//! ```
//!
//! Default: best-of-3. Each kernel is benchmarked through the public sweep
//! API (`apply_gate_with` / `FusedCircuit::apply`) so the numbers measure
//! exactly what the engines execute, dispatch resolution included.
//!
//! `--profile-out <path>` additionally emits the measurements as a
//! [`CostProfile`] in the runtime's warm-start format — drop the file at a
//! service's `<persist_path>.profile.json` sibling path (or merge it with
//! `ProfileStore::load_from`) to seed calibrated engine selection from a
//! controlled benchmark instead of live traffic.

use hisvsim_circuit::{Circuit, Complex64};
use hisvsim_statevec::{
    kernels, simd_available, ApplyOptions, FusedCircuit, FusedOp, FusionStrategy, KernelDispatch,
    StateVector,
};
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct KernelCase {
    kernel: String,
    qubits: usize,
    /// Wall seconds per sweep, forced-scalar dispatch (best of reps).
    scalar_s: f64,
    /// Wall seconds per sweep, auto dispatch (best of reps).
    auto_s: f64,
    /// Effective scalar bandwidth: amplitudes read + written per sweep.
    scalar_gbps: f64,
    /// Effective auto-dispatch bandwidth.
    auto_gbps: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct Report {
    reps: usize,
    /// What `KernelDispatch::Auto` resolves to on this machine.
    auto_resolves_to: String,
    simd_available: bool,
    kernels: Vec<KernelCase>,
}

/// A deterministic pseudo-random normalized state (splitmix64 amplitudes),
/// so no kernel ever streams the all-zeros fast case.
fn random_state(num_qubits: usize, seed: u64) -> StateVector {
    let mut s = seed;
    let mut next = move || -> u64 {
        s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = s;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let mut uniform = move || (next() >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
    let amps = (0..1usize << num_qubits)
        .map(|_| Complex64::new(uniform(), uniform()))
        .collect();
    let mut state = StateVector::from_amplitudes(amps);
    state.normalize();
    state
}

/// Best-of-`reps` wall time of `f` after one warmup call.
fn time_best<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// The single fused op a small generator circuit collapses to — how each
/// fused-path kernel (two-qubit dense, prepared k-qubit, diagonal run) is
/// benchmarked in exactly the form the executor drives it.
fn single_fused_op(build: impl FnOnce(&mut Circuit), num_qubits: usize, width: usize) -> FusedOp {
    let mut circuit = Circuit::new(num_qubits);
    build(&mut circuit);
    let fused = FusedCircuit::with_strategy(&circuit, width, FusionStrategy::Window);
    assert_eq!(
        fused.num_ops(),
        1,
        "microbench circuit must fuse to exactly one op, got {}",
        fused.num_ops()
    );
    fused.ops()[0].clone()
}

fn bench_case(
    name: &str,
    n: usize,
    reps: usize,
    state: &mut StateVector,
    mut sweep: impl FnMut(&mut StateVector, &ApplyOptions),
) -> KernelCase {
    // Amplitudes read + written once per sweep: 2 × 16 bytes each.
    let bytes = (1u64 << n) as f64 * 32.0;
    let scalar_opts = ApplyOptions::default().with_dispatch(KernelDispatch::Scalar);
    let auto_opts = ApplyOptions::default().with_dispatch(KernelDispatch::Auto);
    let scalar_s = time_best(reps, || sweep(state, &scalar_opts));
    let auto_s = time_best(reps, || sweep(state, &auto_opts));
    let case = KernelCase {
        kernel: name.to_string(),
        qubits: n,
        scalar_s,
        auto_s,
        scalar_gbps: bytes / scalar_s / 1e9,
        auto_gbps: bytes / auto_s / 1e9,
        speedup: scalar_s / auto_s,
    };
    println!(
        "{name}@{n}: scalar {scalar_s:.4} s ({:.2} GB/s), auto {auto_s:.4} s ({:.2} GB/s) -> {:.2}x",
        case.scalar_gbps, case.auto_gbps, case.speedup
    );
    case
}

/// The profile kernel-table name each microbench case measures: the
/// single-qubit cases exercise the solo sweep, the fused dense cases the
/// dense group kernel, the diagonal run the streaming diagonal pass —
/// mirroring the span names the executor's recorder emits.
fn profile_kernel_name(case: &str) -> &'static str {
    match case {
        "single_mid" | "single_q0" => "sweep:solo",
        "two_qubit_dense" | "k_qubit_prepared" => "sweep:dense",
        "diagonal_run" => "sweep:diagonal",
        other => panic!("unmapped microbench case '{other}'"),
    }
}

fn main() {
    let mut reps: usize = 3;
    let mut profile_out: Option<std::path::PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--profile-out" {
            let path = args.next().expect("--profile-out needs a path");
            profile_out = Some(path.into());
        } else {
            reps = arg.parse().expect("reps must be a positive integer");
        }
    }
    println!(
        "kernel microbenchmark: best of {reps}, auto dispatch resolves to {}\n",
        KernelDispatch::Auto.resolved_name()
    );

    let mut cases = Vec::new();
    for n in [20usize, 22, 24] {
        let mid = n / 2;
        let mut state = random_state(n, 0xBE_4C4 ^ n as u64);

        // Single-qubit dense sweeps: the strided pair kernel and the
        // q0-specialised contiguous kernel.
        let h_mid = {
            let mut c = Circuit::new(n);
            c.h(mid);
            c.gates()[0].clone()
        };
        cases.push(bench_case("single_mid", n, reps, &mut state, |s, o| {
            kernels::apply_gate_with(s, &h_mid, o)
        }));
        let h0 = {
            let mut c = Circuit::new(n);
            c.h(0);
            c.gates()[0].clone()
        };
        cases.push(bench_case("single_q0", n, reps, &mut state, |s, o| {
            kernels::apply_gate_with(s, &h0, o)
        }));

        // Two-qubit dense: a fused {H,H,CX} group on non-adjacent qubits.
        let two = single_fused_op(
            |c| {
                c.h(1).h(mid).cx(1, mid);
            },
            n,
            2,
        );
        cases.push(bench_case(
            "two_qubit_dense",
            n,
            reps,
            &mut state,
            |s, o| two.apply(s, o),
        ));

        // Prepared k-qubit (k = 3): the gather/scatter group kernel.
        let three = single_fused_op(
            |c| {
                c.h(1).h(mid).h(n - 2).cx(1, mid).cx(mid, n - 2);
            },
            n,
            3,
        );
        cases.push(bench_case(
            "k_qubit_prepared",
            n,
            reps,
            &mut state,
            |s, o| three.apply(s, o),
        ));

        // Diagonal run: a collapsed streak of phase factors streamed in one
        // pass over the state.
        let diag = single_fused_op(
            |c| {
                c.rz(0.3, 1).rz(0.7, mid).cp(0.5, 1, mid).rz(1.1, n - 2);
            },
            n,
            3,
        );
        cases.push(bench_case("diagonal_run", n, reps, &mut state, |s, o| {
            diag.apply(s, o)
        }));
    }

    let report = Report {
        reps,
        auto_resolves_to: KernelDispatch::Auto.resolved_name().to_string(),
        simd_available: simd_available(),
        kernels: cases,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write("BENCH_kernels.json", &json).expect("write BENCH_kernels.json");
    println!("\nwrote BENCH_kernels.json");

    if let Some(path) = profile_out {
        // One sweep per measured best time, attributed to both dispatches so
        // a calibrated selector can compare them; band = qubit count, bytes
        // = one read+write pass over the state.
        let mut profile = hisvsim_obs::CostProfile::new();
        let auto_name = KernelDispatch::Auto.resolved_name();
        for case in &report.kernels {
            let kernel = profile_kernel_name(&case.kernel);
            let band = case.qubits as u32;
            let bytes = 32u64 << case.qubits;
            profile.absorb_kernel(kernel, "scalar", band, 1, case.scalar_s, bytes);
            profile.absorb_kernel(kernel, auto_name, band, 1, case.auto_s, bytes);
        }
        profile.save(&path).expect("write cost profile");
        println!("wrote cost profile to {}", path.display());
    }
}

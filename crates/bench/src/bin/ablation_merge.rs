//! Ablation (DESIGN.md): the dagP merge phase — the phase the paper *adds* to
//! the original acyclic partitioner — with and without, measured by part
//! count and distributed communication volume.
//!
//! ```text
//! cargo run --release -p hisvsim-bench --bin ablation_merge [qubits]
//! ```

use hisvsim_bench::tables::render_table;
use hisvsim_circuit::generators;
use hisvsim_cluster::NetworkModel;
use hisvsim_core::{DistConfig, DistributedSimulator};
use hisvsim_dag::CircuitDag;
use hisvsim_partition::{DagPConfig, DagPPartitioner, Strategy};

fn main() {
    let qubits: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(16);
    let ranks = 4usize;
    // A limit tight enough that the recursive bisection produces several
    // leaves, so the merge phase actually has candidates to consider.
    let limit = (qubits / 2).max(3);

    println!("dagP merge-phase ablation ({qubits} qubits, limit {limit}, {ranks} virtual ranks)\n");
    let mut rows = Vec::new();
    for family in generators::FAMILY_NAMES {
        let circuit = generators::by_name(family, qubits);
        let dag = CircuitDag::from_circuit(&circuit);
        let with_merge = DagPPartitioner::new(DagPConfig::default())
            .partition(&dag, limit)
            .expect("partitioning failed");
        let without_merge = DagPPartitioner::new(DagPConfig {
            merge: false,
            ..Default::default()
        })
        .partition(&dag, limit)
        .expect("partitioning failed");

        // Communication impact: run the distributed engine with each partition.
        let engine = DistributedSimulator::new(
            DistConfig::new(ranks)
                .with_strategy(Strategy::DagP)
                .with_network(NetworkModel::hdr100()),
        );
        let run_with = engine.run_with_partition(&circuit, &dag, with_merge.clone());
        let run_without = engine.run_with_partition(&circuit, &dag, without_merge.clone());
        rows.push(vec![
            family.to_string(),
            with_merge.num_parts().to_string(),
            without_merge.num_parts().to_string(),
            run_with.report.comm.bytes_sent.to_string(),
            run_without.report.comm.bytes_sent.to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "circuit",
                "parts(merge)",
                "parts(no merge)",
                "bytes(merge)",
                "bytes(no merge)"
            ],
            &rows
        )
    );
    println!("\nExpected: the merge phase never increases the part count, and fewer parts mean");
    println!("less redistribution traffic in the distributed engine.");
}

//! Fig. 7 — average (modelled) communication time of the three HiSVSIM
//! strategies and the IQS-style baseline, per circuit and rank count.
//!
//! ```text
//! cargo run --release -p hisvsim-bench --bin fig7
//! ```

use hisvsim_bench::tables::{fmt_seconds, render_table};
use hisvsim_bench::{
    evaluation_suite, load_records, rank_sweeps, save_records, sweep_entry, Algorithm,
    ExperimentRecord,
};

fn sweep_or_load() -> Vec<ExperimentRecord> {
    if let Some(records) = load_records("sweep") {
        hisvsim_bench::progress!("(reusing results/sweep.json — delete it to re-measure)");
        return records;
    }
    let suite = evaluation_suite();
    let (small_ranks, large_ranks) = rank_sweeps();
    let mut records = Vec::new();
    for entry in &suite {
        let ranks = if entry.large {
            &large_ranks
        } else {
            &small_ranks
        };
        records.extend(sweep_entry(entry, ranks));
    }
    save_records("sweep", &records);
    records
}

fn main() {
    let records = sweep_or_load();
    let suite = evaluation_suite();
    println!("Fig. 7 — average communication time per circuit (network-model accounting)\n");
    for entry in &suite {
        let mut rank_set: Vec<usize> = records
            .iter()
            .filter(|r| r.circuit == entry.label)
            .map(|r| r.ranks)
            .collect();
        rank_set.sort_unstable();
        rank_set.dedup();
        if rank_set.is_empty() {
            continue;
        }
        println!("{}", entry.label);
        let header: Vec<String> = std::iter::once("algorithm".to_string())
            .chain(rank_set.iter().map(|r| format!("{r} ranks")))
            .collect();
        let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
        let mut rows = Vec::new();
        for algorithm in Algorithm::FIG5_SET {
            let mut row = vec![algorithm.name().to_string()];
            for &ranks in &rank_set {
                let cell = records
                    .iter()
                    .find(|r| {
                        r.algorithm == algorithm && r.circuit == entry.label && r.ranks == ranks
                    })
                    .map(|r| format!("{} ({} B)", fmt_seconds(r.comm_time_s), r.bytes_moved))
                    .unwrap_or_else(|| "-".to_string());
                row.push(cell);
            }
            rows.push(row);
        }
        println!("{}", render_table(&header_refs, &rows));
    }
    println!("Paper shape to reproduce: dagP has the lowest communication time on (nearly)");
    println!("every circuit and rank count; the baseline the highest, especially for the");
    println!("larger-qubit group.");
}

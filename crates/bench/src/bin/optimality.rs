//! Sec. V-A optimality study — how often dagP finds the minimum number of
//! parts, against the exact branch-and-bound reference (the paper's ILP
//! stand-in). The paper reports 48 of 52 (circuit, limit) combinations
//! optimal, with the rest off by 1–2 parts, and a partitioning time of
//! microseconds-to-milliseconds against minutes for the ILP.
//!
//! ```text
//! cargo run --release -p hisvsim-bench --bin optimality [qubits]
//! ```

use hisvsim_bench::tables::render_table;
use hisvsim_circuit::generators;
use hisvsim_dag::CircuitDag;
use hisvsim_partition::{OptimalPartitioner, Strategy};
use std::time::Instant;

fn main() {
    let qubits: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(8);
    // 13 circuits × 4 qubit limits = 52 combinations, as in the paper.
    let limits = [qubits / 2, qubits / 2 + 1, qubits - 2, qubits - 1];
    let suite = generators::paper_suite();

    println!(
        "Optimality of dagP vs exact branch-and-bound ({} circuits x {} limits)\n",
        suite.len(),
        limits.len()
    );
    let mut rows = Vec::new();
    let mut optimal_hits = 0usize;
    let mut comparisons = 0usize;
    let mut undecided = 0usize;
    let mut worst_gap = 0usize;
    for cfg in &suite {
        let circuit = generators::by_name(cfg.family, qubits);
        let dag = CircuitDag::from_circuit(&circuit);
        for &limit in &limits {
            let start = Instant::now();
            let dagp = match Strategy::DagP.partition(&dag, limit) {
                Ok(p) => p,
                Err(_) => continue, // limit below a gate's arity
            };
            let dagp_time = start.elapsed();
            let start = Instant::now();
            let exact = OptimalPartitioner::default()
                .partition(&dag, limit, Some(dagp.num_parts()))
                .expect("exact search failed");
            let exact_time = start.elapsed();
            // When the node budget runs out before any solution at least as
            // good as dagP's is found, the search proves nothing about this
            // instance — report it as undecided rather than as a gap.
            let decided = exact.proven_optimal || exact.partition.num_parts() < dagp.num_parts();
            let optimal_cell = if decided {
                format!(
                    "{}{}",
                    exact.partition.num_parts(),
                    if exact.proven_optimal { "" } else { "*" }
                )
            } else {
                "? (budget)".to_string()
            };
            if decided {
                comparisons += 1;
                let gap = dagp.num_parts().saturating_sub(exact.partition.num_parts());
                worst_gap = worst_gap.max(gap);
                if gap == 0 {
                    optimal_hits += 1;
                }
            } else {
                undecided += 1;
            }
            rows.push(vec![
                format!(
                    "{}{}",
                    cfg.family,
                    if cfg.paper_qubits >= 35 { "(L)" } else { "" }
                ),
                limit.to_string(),
                dagp.num_parts().to_string(),
                optimal_cell,
                format!("{:?}", dagp_time),
                format!("{:?}", exact_time),
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            &[
                "circuit",
                "limit",
                "dagP parts",
                "optimal parts",
                "dagP time",
                "exact time"
            ],
            &rows
        )
    );
    println!(
        "\ndagP optimal in {optimal_hits}/{comparisons} decided combinations (worst gap {worst_gap} part(s)); {undecided} undecided within the search budget."
    );
    println!("('*' marks a result proven only as an upper bound; '? (budget)' marks instances the");
    println!("exact search could not decide within its node budget.)");
    println!("Paper: optimal in 48/52 combinations, gaps of at most 2 parts, heuristic runtime");
    println!("in microseconds vs minutes for the ILP.");
}

//! Fig. 8 — geometric mean of the average communication *ratio*
//! (communication time / total time) of the three HiSVSIM variants and the
//! baseline, per rank count.
//!
//! ```text
//! cargo run --release -p hisvsim-bench --bin fig8
//! ```

use hisvsim_bench::perfstats::geometric_mean;
use hisvsim_bench::tables::render_table;
use hisvsim_bench::{
    evaluation_suite, load_records, rank_sweeps, save_records, sweep_entry, Algorithm,
    ExperimentRecord,
};

fn sweep_or_load() -> Vec<ExperimentRecord> {
    if let Some(records) = load_records("sweep") {
        hisvsim_bench::progress!("(reusing results/sweep.json — delete it to re-measure)");
        return records;
    }
    let suite = evaluation_suite();
    let (small_ranks, large_ranks) = rank_sweeps();
    let mut records = Vec::new();
    for entry in &suite {
        let ranks = if entry.large {
            &large_ranks
        } else {
            &small_ranks
        };
        records.extend(sweep_entry(entry, ranks));
    }
    save_records("sweep", &records);
    records
}

fn main() {
    let records = sweep_or_load();
    let mut rank_set: Vec<usize> = records.iter().map(|r| r.ranks).collect();
    rank_set.sort_unstable();
    rank_set.dedup();

    println!("Fig. 8 — geometric mean of the communication ratio (%) across all circuits\n");
    let header: Vec<String> = std::iter::once("algorithm".to_string())
        .chain(rank_set.iter().map(|r| format!("{r} ranks")))
        .collect();
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut rows = Vec::new();
    for algorithm in Algorithm::FIG5_SET {
        let mut row = vec![algorithm.name().to_string()];
        for &ranks in &rank_set {
            let ratios: Vec<f64> = records
                .iter()
                .filter(|r| r.algorithm == algorithm && r.ranks == ranks && r.comm_ratio > 0.0)
                .map(|r| r.comm_ratio * 100.0)
                .collect();
            if ratios.is_empty() {
                row.push("-".to_string());
            } else {
                row.push(format!("{:.1}", geometric_mean(&ratios)));
            }
        }
        rows.push(row);
    }
    println!("{}", render_table(&header_refs, &rows));
    println!("\nPaper shape to reproduce: dagP has the lowest geometric-mean communication");
    println!("ratio at every rank count; DFS beats the baseline except at the largest count;");
    println!("dagP also scales best as ranks grow (paper Fig. 8).");
}

//! Observability overhead guard: an *enabled* span recorder must cost less
//! than 1% of wall time on a fused QFT-22 run — it fails loudly (non-zero
//! exit) if span bookkeeping ever leaks onto a hot path, so CI goes red.
//!
//! ```text
//! cargo run --release -p hisvsim-bench --bin obs_overhead [reps]
//! ```
//!
//! Shared runners have ±3% wall-clock noise even on sequential runs, so a
//! naive on/off wall-time diff cannot honestly resolve a 1% threshold. The
//! gate is instead computed from two noise-immune measurements:
//!
//! 1. **span census** — how many spans one traced run actually emits
//!    (`drain().len()`); the sweeps record per *op*, never per amplitude,
//!    so this is O(circuit), ~dozens;
//! 2. **per-span cost** — a tight loop over 100k armed spans with a
//!    typical formatted detail, including the amortised drain.
//!
//! `overhead = spans × cost_per_span / run_time`. If a change starts
//! emitting spans per tile or per amplitude, the census jumps by orders of
//! magnitude and the guard trips regardless of machine noise. The raw
//! on/off wall times are printed for the record.

use hisvsim_circuit::generators;
use hisvsim_statevec::{ApplyOptions, FusedCircuit, FusionStrategy, StateVector};
use std::process::ExitCode;
use std::time::Instant;

const QUBITS: usize = 22;
const MAX_OVERHEAD_PCT: f64 = 1.0;

fn time_best<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn main() -> ExitCode {
    let reps: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(5);
    let circuit = generators::qft(QUBITS);
    let fused = FusedCircuit::with_strategy(&circuit, 3, FusionStrategy::Window);
    let opts = ApplyOptions::default();
    let run = || {
        let mut state = StateVector::zero_state(QUBITS);
        fused.apply(&mut state, &opts);
        state
    };

    // Baseline wall time, recorder off.
    hisvsim_obs::set_enabled(false);
    let off_s = time_best(reps, || {
        run();
    });

    // Span census: how many spans one traced run emits.
    hisvsim_obs::set_enabled(true);
    let _ = hisvsim_obs::drain();
    run();
    let spans = hisvsim_obs::drain().len();

    // Per-span cost, drain included, over a tight armed loop.
    const PROBE: usize = 100_000;
    let span_probe_s = time_best(reps, || {
        for i in 0..PROBE {
            let _g = hisvsim_obs::span("kernel", "probe")
                .detail(format!("{i} gates, {} amps", 1usize << QUBITS));
        }
        let _ = hisvsim_obs::drain();
    });
    let cost_per_span_s = span_probe_s / PROBE as f64;

    // Informational wall-clock diff (too noisy to gate on, printed for the
    // record).
    let on_s = time_best(reps, || {
        run();
        let _ = hisvsim_obs::drain();
    });
    hisvsim_obs::set_enabled(false);

    let overhead_pct = spans as f64 * cost_per_span_s / off_s * 100.0;
    println!(
        "obs overhead on qft-{QUBITS} (best of {reps}): {spans} spans/run x {:.0} ns/span \
         over {off_s:.4} s -> {overhead_pct:.4}% attributable (limit {MAX_OVERHEAD_PCT}%)",
        cost_per_span_s * 1e9,
    );
    println!(
        "  wall-clock for the record: recorder off {off_s:.4} s, on {on_s:.4} s \
         ({:+.2}%, machine noise ±3%)",
        (on_s / off_s - 1.0) * 100.0
    );
    if overhead_pct >= MAX_OVERHEAD_PCT {
        eprintln!(
            "FAIL: enabled span recorder costs {overhead_pct:.2}% of a qft-{QUBITS} run \
             (limit {MAX_OVERHEAD_PCT}%) — span bookkeeping has leaked onto a hot path \
             ({spans} spans for a {}-op fused circuit)",
            fused.num_ops()
        );
        return ExitCode::FAILURE;
    }
    println!("PASS: recorder overhead within the {MAX_OVERHEAD_PCT}% budget");
    ExitCode::SUCCESS
}

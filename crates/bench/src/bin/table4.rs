//! Table IV — estimated end-to-end time of the hybrid configuration
//! (HiSVSIM partitioning + communication around a GPU kernel) for the three
//! strategies, against a HyQuas-style monolithic baseline.
//!
//! The baseline is modelled the same way the paper treats it: the same GPU
//! kernel throughput, but with the per-gate pairwise exchanges of a
//! non-partitioned distributed execution (one exchange per gate whose target
//! sits on a remote qubit under a static mapping).
//!
//! ```text
//! cargo run --release -p hisvsim-bench --bin table4 [qubits] [gpus]
//! ```

use hisvsim_bench::tables::render_table;
use hisvsim_circuit::generators;
use hisvsim_cluster::NetworkModel;
use hisvsim_core::gpu::{estimate_hybrid, GpuModel};
use hisvsim_dag::CircuitDag;
use hisvsim_partition::Strategy;

fn main() {
    let qubits: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(20);
    let gpus: usize = std::env::args()
        .nth(2)
        .and_then(|a| a.parse().ok())
        .unwrap_or(4);
    let circuit = generators::qaoa(qubits, 2, 0xA0A);
    let dag = CircuitDag::from_circuit(&circuit);
    let p = gpus.trailing_zeros() as usize;
    let local_limit = circuit.num_qubits() - p;
    let gpu = GpuModel::v100_hyquas();
    let net = NetworkModel::hdr100();

    println!(
        "Table IV — estimated QAOA simulation times combining HiSVSIM partitioning with a\n\
         GPU kernel model ({qubits} qubits, {gpus} single-GPU nodes)\n"
    );

    let mut rows = Vec::new();
    for strategy in [Strategy::DagP, Strategy::Dfs, Strategy::Nat] {
        let partition = strategy
            .partition(&dag, local_limit)
            .expect("partitioning failed");
        let est = estimate_hybrid(&circuit, &dag, &partition, strategy.name(), gpu, net, gpus);
        rows.push(vec![
            strategy.name().to_string(),
            est.parts.len().to_string(),
            format!("{:.3}", est.communication_s),
            format!("{:.3}", est.computation_s),
            format!("{:.3}", est.total_s()),
        ]);
    }

    // HyQuas-style monolithic baseline: same kernel model over the whole
    // circuit, plus one pairwise exchange per gate with a remote target under
    // a static mapping (qubits n-p..n are remote).
    let remote_start = circuit.num_qubits() - p;
    let remote_gate_events = circuit
        .gates()
        .iter()
        .filter(|g| {
            !g.kind.is_diagonal()
                && g.qubits[g.kind.num_controls()..]
                    .iter()
                    .any(|&q| q >= remote_start)
        })
        .count();
    let slice_bytes = 16usize << local_limit;
    let baseline_comm = if gpus == 1 {
        0.0
    } else {
        remote_gate_events as f64 * net.message_time(slice_bytes)
    };
    let baseline_comp = gpu.part_time_s(circuit.num_gates(), local_limit);
    rows.push(vec![
        "HyQuas-style".to_string(),
        "-".to_string(),
        format!("{baseline_comm:.3}"),
        format!("{baseline_comp:.3}"),
        format!("{:.3}", baseline_comm + baseline_comp),
    ]);

    println!(
        "{}",
        render_table(
            &[
                "strategy",
                "parts",
                "communication (s)",
                "computation (s)",
                "total (s)"
            ],
            &rows
        )
    );
    println!("Paper shape to reproduce: hybrid-dagP has the lowest total (0.83 s in the paper),");
    println!("beating DFS (1.34 s), Nat (2.77 s) and the monolithic HyQuas run (1.47 s); the");
    println!("computation column is nearly identical across strategies — the difference is");
    println!("entirely communication.");
}

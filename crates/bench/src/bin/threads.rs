//! Sec. V-A single-node strong scaling — the paper reports close-to-linear
//! speedup of the single-node hierarchical engine as OpenMP threads increase
//! (2–128 threads on the 448-core workstation). Here the rayon pool size
//! plays the role of the OpenMP thread count.
//!
//! ```text
//! cargo run --release -p hisvsim-bench --bin threads [qubits] [family]
//! ```

use hisvsim_bench::tables::render_table;
use hisvsim_circuit::generators;
use hisvsim_core::hier::{HierConfig, HierarchicalSimulator};
use hisvsim_dag::CircuitDag;
use hisvsim_partition::Strategy;
use std::time::Instant;

fn main() {
    let qubits: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(20);
    let family = std::env::args()
        .nth(2)
        .unwrap_or_else(|| "ising".to_string());
    let circuit = generators::by_name(&family, qubits);
    let limit = qubits / 2;
    let dag = CircuitDag::from_circuit(&circuit);
    let partition = Strategy::DagP
        .partition(&dag, limit)
        .expect("partitioning failed");

    println!(
        "single-node strong scaling: {} ({} qubits, {} gates), dagP, Lm = {limit}\n",
        circuit.name,
        circuit.num_qubits(),
        circuit.num_gates()
    );

    let max_threads = num_cpus::get();
    let mut threads = 1usize;
    let mut rows = Vec::new();
    let mut baseline_time = None;
    while threads <= max_threads {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("thread pool");
        let sim = HierarchicalSimulator::new(
            HierConfig::new(limit)
                .with_strategy(Strategy::DagP)
                .with_parallel(true),
        );
        let start = Instant::now();
        let run = pool.install(|| sim.run_with_partition(&circuit, &dag, partition.clone()));
        let elapsed = start.elapsed().as_secs_f64();
        let base = *baseline_time.get_or_insert(elapsed);
        rows.push(vec![
            threads.to_string(),
            format!("{elapsed:.3}"),
            format!("{:.2}x", base / elapsed),
            format!("{:.0}%", 100.0 * base / elapsed / threads as f64),
            run.report.num_parts.to_string(),
        ]);
        threads *= 2;
    }
    println!(
        "{}",
        render_table(
            &["threads", "time (s)", "speedup", "efficiency", "parts"],
            &rows
        )
    );
    println!("\nPaper shape to reproduce: close-to-linear speedup in this strong-scaling sweep.");
}

//! Fig. 9 — Dolan–Moré performance profiles of (a) total runtime for the
//! three HiSVSIM strategies plus the baseline and (b) average communication
//! time for the three HiSVSIM strategies.
//!
//! ```text
//! cargo run --release -p hisvsim-bench --bin fig9
//! ```

use hisvsim_bench::perfstats::{performance_profile, render_profile};
use hisvsim_bench::{
    evaluation_suite, load_records, rank_sweeps, save_records, sweep_entry, Algorithm,
    ExperimentRecord,
};

fn sweep_or_load() -> Vec<ExperimentRecord> {
    if let Some(records) = load_records("sweep") {
        hisvsim_bench::progress!("(reusing results/sweep.json — delete it to re-measure)");
        return records;
    }
    let suite = evaluation_suite();
    let (small_ranks, large_ranks) = rank_sweeps();
    let mut records = Vec::new();
    for entry in &suite {
        let ranks = if entry.large {
            &large_ranks
        } else {
            &small_ranks
        };
        records.extend(sweep_entry(entry, ranks));
    }
    save_records("sweep", &records);
    records
}

/// Build the per-method metric matrix over all (circuit, ranks) instances.
fn metric_matrix(
    records: &[ExperimentRecord],
    methods: &[Algorithm],
    metric: impl Fn(&ExperimentRecord) -> f64,
) -> (Vec<String>, Vec<Vec<Option<f64>>>) {
    let mut instances: Vec<(String, usize)> = records
        .iter()
        .map(|r| (r.circuit.clone(), r.ranks))
        .collect();
    instances.sort();
    instances.dedup();
    let names: Vec<String> = methods.iter().map(|m| m.name().to_string()).collect();
    let matrix: Vec<Vec<Option<f64>>> = methods
        .iter()
        .map(|&m| {
            instances
                .iter()
                .map(|(circuit, ranks)| {
                    records
                        .iter()
                        .find(|r| r.algorithm == m && &r.circuit == circuit && r.ranks == *ranks)
                        .map(&metric)
                })
                .collect()
        })
        .collect();
    (names, matrix)
}

fn main() {
    let records = sweep_or_load();

    println!("Fig. 9a — performance profile of total runtime (rho = fraction of instances");
    println!("within a factor theta of the best method)\n");
    let (names, matrix) = metric_matrix(&records, &Algorithm::FIG5_SET, |r| r.total_time_s);
    let curves = performance_profile(&names, &matrix, 2.0, 21);
    println!("{}", render_profile(&curves, 10));
    for curve in &curves {
        println!(
            "  {:<6} best on {:.0}% of instances",
            curve.method,
            curve.rho[0] * 100.0
        );
    }

    println!("\nFig. 9b — performance profile of average communication time (HiSVSIM variants)\n");
    let hisvsim_only = [Algorithm::Nat, Algorithm::Dfs, Algorithm::DagP];
    let (names, matrix) = metric_matrix(&records, &hisvsim_only, |r| r.comm_time_s.max(1e-12));
    let curves = performance_profile(&names, &matrix, 2.0, 21);
    println!("{}", render_profile(&curves, 10));
    for curve in &curves {
        println!(
            "  {:<6} best on {:.0}% of instances",
            curve.method,
            curve.rho[0] * 100.0
        );
    }

    println!("\nPaper shape to reproduce: dagP is the best method on the largest share of");
    println!("instances (≈65% for runtime, ≈75% for communication time in the paper) and is");
    println!("within 1.3x of the best on every instance; the baseline never reaches rho = 1");
    println!("within theta = 2.");
}

//! Fig. 5 — improvement factor of the three HiSVSIM partitioning strategies
//! over the IQS-style baseline, per circuit and rank count.
//!
//! Runs the full evaluation sweep (every suite circuit × every rank count ×
//! {Nat, DFS, dagP, Intel}), prints the improvement-factor matrix, and saves
//! the raw records to `results/sweep.json` for reuse by `fig6`–`fig9`.
//!
//! ```text
//! cargo run --release -p hisvsim-bench --bin fig5
//! ```

use hisvsim_bench::perfstats::geometric_mean;
use hisvsim_bench::tables::render_table;
use hisvsim_bench::{
    evaluation_suite, improvement_factor, rank_sweeps, save_records, sweep_entry, Algorithm,
    ExperimentRecord,
};

fn main() {
    let suite = evaluation_suite();
    let (small_ranks, large_ranks) = rank_sweeps();
    let mut records: Vec<ExperimentRecord> = Vec::new();
    for entry in &suite {
        let ranks = if entry.large {
            &large_ranks
        } else {
            &small_ranks
        };
        hisvsim_bench::progress!(
            "sweeping {} ({} qubits) over ranks {:?}",
            entry.label,
            entry.qubits,
            ranks
        );
        records.extend(sweep_entry(entry, ranks));
    }
    let path = save_records("sweep", &records);

    println!(
        "Fig. 5 — improvement factor over the IQS-style baseline (values > 1 favour HiSVSIM)\n"
    );
    for algorithm in [Algorithm::Nat, Algorithm::Dfs, Algorithm::DagP] {
        println!("strategy: {}", algorithm.name());
        let mut rank_set: Vec<usize> = records.iter().map(|r| r.ranks).collect();
        rank_set.sort_unstable();
        rank_set.dedup();
        let header: Vec<String> = std::iter::once("circuit".to_string())
            .chain(rank_set.iter().map(|r| format!("{r} ranks")))
            .collect();
        let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
        let mut rows = Vec::new();
        let mut all_factors = Vec::new();
        let mut max_rank_factors = Vec::new();
        for entry in &suite {
            let mut row = vec![entry.label.clone()];
            let mut last_factor = None;
            for &ranks in &rank_set {
                let cell = records
                    .iter()
                    .find(|r| {
                        r.algorithm == algorithm && r.circuit == entry.label && r.ranks == ranks
                    })
                    .and_then(|r| improvement_factor(r, &records));
                match cell {
                    Some(f) => {
                        row.push(format!("{f:.2}"));
                        all_factors.push(f);
                        last_factor = Some(f);
                    }
                    None => row.push("-".to_string()),
                }
            }
            if let Some(f) = last_factor {
                max_rank_factors.push(f);
            }
            rows.push(row);
        }
        println!("{}", render_table(&header_refs, &rows));
        println!(
            "geometric mean over all configurations: {:.2}x ; at the largest rank count: {:.2}x\n",
            geometric_mean(&all_factors),
            geometric_mean(&max_rank_factors)
        );
    }
    println!("raw records: {}", path.display());
    println!("Paper shape to reproduce: dagP above 1x everywhere, factors growing with qubit");
    println!("count and rank count (paper: 1.15x–3.87x, geometric mean 1.7x overall, 2.1x at");
    println!("the largest rank counts; ≥35-qubit circuits average 3.0x).");
}

//! Small ASCII-table rendering helpers shared by the table/figure binaries.

/// Render rows of equal-length cells as a fixed-width ASCII table with a
/// header row and a separator line.
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let columns = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), columns, "ragged table row");
        for (w, cell) in widths.iter_mut().zip(row.iter()) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: Vec<&str>, widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths.iter())
            .map(|(c, w)| format!("{c:>width$}", width = w))
            .collect::<Vec<_>>()
            .join("  ")
    };
    out.push_str(&fmt_row(header.to_vec(), &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (columns - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row.iter().map(|s| s.as_str()).collect(), &widths));
        out.push('\n');
    }
    out
}

/// Format seconds with a sensible precision for the tables.
pub fn fmt_seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3}")
    } else if s >= 1e-3 {
        format!("{:.3}ms", s * 1e3)
    } else {
        format!("{:.1}us", s * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_aligned_and_contains_cells() {
        let text = render_table(
            &["circuit", "parts"],
            &[
                vec!["bv".to_string(), "3".to_string()],
                vec!["ising35".to_string(), "12".to_string()],
            ],
        );
        assert!(text.contains("circuit"));
        assert!(text.contains("ising35"));
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0].len(), lines[2].len());
    }

    #[test]
    fn seconds_formatting_switches_units() {
        assert_eq!(fmt_seconds(2.5), "2.500");
        assert!(fmt_seconds(0.002).ends_with("ms"));
        assert!(fmt_seconds(2e-5).ends_with("us"));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_are_rejected() {
        let _ = render_table(&["a", "b"], &[vec!["x".to_string()]]);
    }
}

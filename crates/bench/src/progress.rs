//! Structured progress reporting for the bench binaries.
//!
//! Every message is stamped with the process-wide obs clock and mirrored
//! into the span recorder as an instant event, so a bench run's console
//! output and its trace (when recording is enabled) share one timeline.

/// Report a progress message: printed to stderr with the obs-clock
/// timestamp, and recorded as a `bench`/`progress` instant event when the
/// recorder is enabled. Prefer the [`progress!`](crate::progress!) macro
/// for formatted messages.
pub fn progress(msg: &str) {
    let t = hisvsim_obs::now_us() as f64 / 1e6;
    eprintln!("[{t:9.3}s] {msg}");
    hisvsim_obs::instant("bench", "progress", msg);
}

/// `format!`-style wrapper around [`progress`].
#[macro_export]
macro_rules! progress {
    ($($arg:tt)*) => {
        $crate::progress(&format!($($arg)*))
    };
}

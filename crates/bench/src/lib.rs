//! # hisvsim-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! HiSVSIM paper at reproduction scale. Each table/figure has its own binary
//! (see the `src/bin` directory and the experiment index in DESIGN.md):
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `table1` | Table I — benchmark suite description |
//! | `table2` | Table II — memory-access breakdown (cache-model substitute) |
//! | `table3` | Table III — QAOA partition breakdown + modelled GPU times |
//! | `table4` | Table IV — hybrid HiSVSIM+GPU estimate vs HyQuas-style baseline |
//! | `fig5`   | Fig. 5 — improvement factor over the IQS-style baseline |
//! | `fig6`   | Fig. 6 — end-to-end runtime per circuit vs rank count |
//! | `fig7`   | Fig. 7 — average communication time per circuit |
//! | `fig8`   | Fig. 8 — geometric mean of communication ratio |
//! | `fig9`   | Fig. 9 — Dolan–Moré performance profiles |
//! | `fig10`  | Fig. 10 — single-level vs multi-level runtime |
//! | `optimality` | Sec. V-A — dagP part count vs exact optimum |
//! | `threads` | Sec. V-A — single-node thread strong scaling |
//! | `ablation_merge` | DESIGN.md ablation — dagP with/without the merge phase |
//! | `ablation_limit` | DESIGN.md ablation — part count & runtime vs working-set limit |
//!
//! The library half of the crate holds the shared machinery: the scaled
//! experiment [`config`], the [`runner`] that executes (circuit, ranks,
//! algorithm) combinations and persists JSON records, the [`perfstats`]
//! aggregations (geometric mean, performance profiles), and ASCII [`tables`].

#![warn(missing_docs)]

pub mod config;
pub mod perfstats;
pub mod progress;
pub mod runner;
pub mod tables;

pub use config::{evaluation_suite, rank_sweeps, results_dir, SuiteEntry};
pub use perfstats::{geometric_mean, performance_profile, ProfileCurve};
pub use progress::progress;
pub use runner::{
    improvement_factor, load_records, run_algorithm, save_records, sweep_entry, Algorithm,
    ExperimentRecord,
};

//! Criterion benchmarks of the batch runtime: scheduler overhead, plan-cache
//! lookup cost, and the cached-vs-uncached templated batch — the quantity the
//! `batch_service` example demonstrates at full scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hisvsim_circuit::generators;
use hisvsim_runtime::prelude::*;

fn bench_runtime_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("runtime_batch");
    group.sample_size(10);

    // Scheduler overhead: a batch of trivial jobs (engine work ≈ 0) measures
    // queue + selector + post-processing cost per job.
    group.bench_function("schedule_16_tiny_jobs", |b| {
        let scheduler =
            Scheduler::new(SchedulerConfig::default().with_selector(EngineSelector::scaled(6, 10)));
        b.iter(|| {
            let jobs: Vec<SimJob> = (0..16).map(|_| SimJob::new(generators::qft(4))).collect();
            scheduler.run_batch(jobs)
        })
    });

    // The cache ablation at bench scale: 8 identical mid-size QFT jobs.
    for cached in [true, false] {
        group.bench_with_input(
            BenchmarkId::new("qft12_x8", if cached { "cached" } else { "uncached" }),
            &cached,
            |b, &cached| {
                b.iter(|| {
                    let base = SchedulerConfig::default()
                        .with_selector(EngineSelector::scaled(6, 12))
                        .with_effort(PlanEffort::Thorough);
                    let config = if cached { base } else { base.without_cache() };
                    let scheduler = Scheduler::new(config);
                    let jobs: Vec<SimJob> =
                        (0..8).map(|_| SimJob::new(generators::qft(12))).collect();
                    scheduler.run_batch(jobs)
                })
            },
        );
    }

    // Warm-cache lookup: the steady-state cost of a repeat submission.
    group.bench_function("warm_cache_submit_qft10", |b| {
        let scheduler =
            Scheduler::new(SchedulerConfig::default().with_selector(EngineSelector::scaled(5, 12)));
        scheduler.run_batch(vec![SimJob::new(generators::qft(10))]); // warm it
        b.iter(|| scheduler.run_batch(vec![SimJob::new(generators::qft(10))]))
    });

    group.finish();
}

criterion_group!(benches, bench_runtime_batch);
criterion_main!(benches);

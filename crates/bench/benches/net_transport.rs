//! Criterion benchmarks of the two `RankComm` transports side by side: the
//! in-process channel world (`LocalComm`) versus the TCP socket mesh
//! (`TcpComm`, built in-process on localhost), on the all-to-all-v exchange
//! the distributed engines perform at every part switch.
//!
//! Each iteration includes world construction (thread spawn / mesh
//! handshake), mirroring the `collectives` bench, so the numbers answer the
//! operational question: what does one part-switch exchange cost end to end
//! on each transport?

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hisvsim_circuit::Complex64;
use hisvsim_cluster::{world, NetworkModel, RankComm};
use hisvsim_net::tcp_world;
use std::thread;

fn exchange_once<C: RankComm<Complex64> + Send + 'static>(worlds: Vec<C>, amps_per_rank: usize) {
    let handles: Vec<_> = worlds
        .into_iter()
        .map(|mut comm| {
            thread::spawn(move || {
                let send: Vec<Vec<Complex64>> = (0..comm.size())
                    .map(|_| vec![Complex64::ONE; amps_per_rank])
                    .collect();
                let recv = comm.alltoallv(send, 1);
                recv.iter().map(|v| v.len()).sum::<usize>()
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("rank thread panicked");
    }
}

fn bench_transports(c: &mut Criterion) {
    let mut group = c.benchmark_group("net_transport");
    group.sample_size(10);

    for &ranks in &[2usize, 4] {
        for &amps_per_rank in &[1usize << 10, 1usize << 14] {
            let bytes = (amps_per_rank * ranks * ranks * 16) as u64;
            group.throughput(Throughput::Bytes(bytes));
            group.bench_with_input(
                BenchmarkId::new(format!("local_{ranks}ranks"), amps_per_rank),
                &(ranks, amps_per_rank),
                |b, &(ranks, amps)| {
                    b.iter(|| exchange_once(world::<Complex64>(ranks, NetworkModel::ideal()), amps))
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("tcp_{ranks}ranks"), amps_per_rank),
                &(ranks, amps_per_rank),
                |b, &(ranks, amps)| {
                    b.iter(|| {
                        exchange_once(
                            tcp_world::<Complex64>(ranks, NetworkModel::ideal())
                                .expect("localhost mesh"),
                            amps,
                        )
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_transports);
criterion_main!(benches);

//! Criterion end-to-end benchmarks: one representative circuit through the
//! flat reference, the hierarchical engine (three strategies), the
//! distributed engine and the IQS-style baseline — the per-engine view behind
//! the paper's runtime figures, at micro-benchmark scale.

use criterion::{criterion_group, criterion_main, Criterion};
use hisvsim_circuit::generators;
use hisvsim_core::{
    BaselineConfig, DistConfig, DistributedSimulator, HierConfig, HierarchicalSimulator,
    IqsBaseline,
};
use hisvsim_dag::CircuitDag;
use hisvsim_partition::Strategy;
use hisvsim_statevec::run_circuit;

fn bench_end_to_end(c: &mut Criterion) {
    let qubits = 14usize;
    let circuit = generators::by_name("ising", qubits);
    let dag = CircuitDag::from_circuit(&circuit);
    let limit = qubits / 2;

    let mut group = c.benchmark_group("end_to_end_ising14");
    group.sample_size(10);

    group.bench_function("flat_reference", |b| b.iter(|| run_circuit(&circuit)));

    for strategy in Strategy::ALL {
        let partition = strategy.partition(&dag, limit).unwrap();
        group.bench_function(format!("hier_{}", strategy.name()), |b| {
            let sim = HierarchicalSimulator::new(HierConfig::new(limit).with_strategy(strategy));
            b.iter(|| sim.run_with_partition(&circuit, &dag, partition.clone()))
        });
    }

    group.bench_function("distributed_dagP_4ranks", |b| {
        let sim = DistributedSimulator::new(DistConfig::new(4).with_strategy(Strategy::DagP));
        b.iter(|| sim.run(&circuit).unwrap())
    });

    group.bench_function("iqs_baseline_4ranks", |b| {
        let sim = IqsBaseline::new(BaselineConfig::new(4));
        b.iter(|| sim.run(&circuit))
    });
    group.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);

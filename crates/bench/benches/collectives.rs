//! Criterion benchmarks of the virtual-MPI substrate: the all-to-all-v
//! exchange the distributed engine performs at every part switch, across
//! rank counts and payload sizes, plus the SPMD harness spawn overhead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hisvsim_circuit::Complex64;
use hisvsim_cluster::{run_spmd, NetworkModel, RankComm};

fn bench_collectives(c: &mut Criterion) {
    let mut group = c.benchmark_group("collectives");
    group.sample_size(10);

    for &ranks in &[2usize, 4, 8] {
        for &amps_per_rank in &[1usize << 10, 1usize << 14] {
            let bytes = (amps_per_rank * ranks * 16) as u64;
            group.throughput(Throughput::Bytes(bytes));
            group.bench_with_input(
                BenchmarkId::new(format!("alltoallv_{ranks}ranks"), amps_per_rank),
                &(ranks, amps_per_rank),
                |b, &(ranks, amps)| {
                    b.iter(|| {
                        run_spmd::<Complex64, usize, _>(ranks, NetworkModel::ideal(), |mut comm| {
                            let send: Vec<Vec<Complex64>> = (0..comm.size())
                                .map(|_| vec![Complex64::ONE; amps / comm.size()])
                                .collect();
                            let recv = comm.alltoallv(send, 1);
                            recv.iter().map(|v| v.len()).sum()
                        })
                    })
                },
            );
        }
    }

    group.bench_function("spmd_spawn_overhead_8ranks", |b| {
        b.iter(|| run_spmd::<u8, usize, _>(8, NetworkModel::ideal(), |comm| comm.rank()))
    });
    group.finish();
}

criterion_group!(benches, bench_collectives);
criterion_main!(benches);

//! Criterion micro-benchmarks of the gate-application kernels: the
//! memory-bound sweep the paper's Sec. III-A analyses (single-qubit dense,
//! diagonal, controlled, two-qubit and generic three-qubit kernels, at low
//! and high target-qubit strides, sequential and rayon-parallel).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hisvsim_circuit::{Gate, GateKind};
use hisvsim_statevec::kernels::{apply_gate_with, ApplyOptions};
use hisvsim_statevec::StateVector;

fn bench_gate_kernels(c: &mut Criterion) {
    let qubits = 20usize;
    let mut group = c.benchmark_group("gate_kernels");
    group.sample_size(10);
    group.throughput(Throughput::Elements(1u64 << qubits));

    let cases: Vec<(&str, Gate)> = vec![
        ("h_q0", Gate::new(GateKind::H, vec![0])),
        ("h_top", Gate::new(GateKind::H, vec![qubits - 1])),
        ("rz_q0_diagonal", Gate::new(GateKind::Rz(0.3), vec![0])),
        ("x_q0", Gate::new(GateKind::X, vec![0])),
        ("cx_low_low", Gate::new(GateKind::Cx, vec![0, 1])),
        ("cx_low_top", Gate::new(GateKind::Cx, vec![0, qubits - 1])),
        ("cz_diagonal", Gate::new(GateKind::Cz, vec![0, qubits - 1])),
        ("swap", Gate::new(GateKind::Swap, vec![2, qubits - 2])),
        ("rxx_dense_2q", Gate::new(GateKind::Rxx(0.5), vec![3, 11])),
        ("ccx_generic_3q", Gate::new(GateKind::Ccx, vec![0, 5, 11])),
    ];

    for (name, gate) in &cases {
        for (mode, opts) in [
            ("seq", ApplyOptions::sequential()),
            ("par", ApplyOptions::default()),
        ] {
            group.bench_with_input(
                BenchmarkId::new(*name, mode),
                &(gate, opts),
                |b, (gate, opts)| {
                    let mut state = StateVector::zero_state(qubits);
                    b.iter(|| apply_gate_with(&mut state, gate, opts));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_gate_kernels);
criterion_main!(benches);

//! Criterion sweep of the fused execution pipeline: flat (one pass per gate)
//! versus [`FusedCircuit`] execution at widths 1–5, on the three circuit
//! shapes that stress fusion differently — QFT (long diagonal cascades),
//! random (mixed dense structure) and adder (Toffoli-heavy, oversized gates
//! pass through unfused).
//!
//! The full-size sweep of the acceptance benchmark runs at 20–24 qubits via
//! `cargo run --release -p hisvsim-bench --bin fusion`; here the default is
//! 20 qubits so a `cargo bench fusion_sweep` finishes in minutes. Override
//! with `HISVSIM_FUSION_BENCH_QUBITS`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hisvsim_circuit::{generators, Circuit};
use hisvsim_statevec::{ApplyOptions, FusedCircuit, StateVector};

fn bench_qubits() -> usize {
    std::env::var("HISVSIM_FUSION_BENCH_QUBITS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20)
        .clamp(16, 24)
}

fn circuits(n: usize) -> Vec<(&'static str, Circuit)> {
    vec![
        ("qft", generators::qft(n)),
        ("random", generators::random_circuit(n, 12 * n, 0x5EED)),
        ("adder", generators::adder(n)),
    ]
}

fn bench_fusion_sweep(c: &mut Criterion) {
    let n = bench_qubits();
    let opts = ApplyOptions::default();
    let mut group = c.benchmark_group("fusion_sweep");
    group.sample_size(10);
    group.throughput(Throughput::Elements(1u64 << n));

    for (name, circuit) in circuits(n) {
        group.bench_with_input(BenchmarkId::new(name, "flat"), &circuit, |b, circuit| {
            let mut state = StateVector::zero_state(n);
            b.iter(|| {
                hisvsim_statevec::kernels::apply_circuit_with(&mut state, circuit, &opts);
            });
        });
        for width in 1usize..=5 {
            // Fusion happens once, outside the measured loop — the steady
            // state of a warm plan cache.
            let fused = FusedCircuit::new(&circuit, width);
            group.bench_with_input(
                BenchmarkId::new(name, format!("fused_w{width}")),
                &fused,
                |b, fused| {
                    let mut state = StateVector::zero_state(n);
                    b.iter(|| fused.apply(&mut state, &opts));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fusion_sweep);
criterion_main!(benches);

//! Criterion micro-benchmarks of the Gather–Execute–Scatter data movement
//! (paper Algorithm 1): gathering and scattering inner state vectors of
//! several sizes out of a fixed outer state, for contiguous (low-qubit) and
//! strided (high-qubit) working sets.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hisvsim_statevec::{GatherMap, StateVector};

fn bench_gather_scatter(c: &mut Criterion) {
    let outer_qubits = 20usize;
    let outer = StateVector::zero_state(outer_qubits);
    let mut group = c.benchmark_group("gather_scatter");
    group.sample_size(10);

    for &inner_qubits in &[4usize, 8, 12] {
        // Contiguous working set: the lowest qubits (stride-1 gathers).
        let low: Vec<usize> = (0..inner_qubits).collect();
        // Strided working set: the highest qubits (large-stride gathers —
        // the cache-unfriendly pattern of Fig. 1b taken to the extreme).
        let high: Vec<usize> = (outer_qubits - inner_qubits..outer_qubits).collect();
        for (label, qubits) in [("low", low), ("high", high)] {
            let map = GatherMap::new(outer_qubits, &qubits);
            group.throughput(Throughput::Elements(1u64 << inner_qubits));
            group.bench_with_input(
                BenchmarkId::new(format!("gather_{label}"), inner_qubits),
                &map,
                |b, map| {
                    let mut inner = StateVector::uninitialized(inner_qubits);
                    b.iter(|| map.gather_into(&outer, 0, &mut inner));
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("scatter_{label}"), inner_qubits),
                &map,
                |b, map| {
                    let inner = StateVector::zero_state(inner_qubits);
                    let mut target = StateVector::uninitialized(outer_qubits);
                    b.iter(|| map.scatter(&inner, &mut target, 0));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_gather_scatter);
criterion_main!(benches);

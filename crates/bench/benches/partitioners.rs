//! Criterion benchmarks of the partitioners themselves — the paper's claim
//! that all three strategies take negligible time (microseconds to
//! milliseconds) compared to the simulation, with dagP the most expensive
//! and the exact reference orders of magnitude slower.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hisvsim_circuit::generators;
use hisvsim_dag::CircuitDag;
use hisvsim_partition::{OptimalPartitioner, Strategy};

fn bench_partitioners(c: &mut Criterion) {
    let mut group = c.benchmark_group("partitioners");
    group.sample_size(10);

    for family in ["bv", "qft", "qaoa", "qpe"] {
        let circuit = generators::by_name(family, 16);
        let dag = CircuitDag::from_circuit(&circuit);
        let limit = 8usize;
        for strategy in Strategy::ALL {
            group.bench_with_input(BenchmarkId::new(strategy.name(), family), &dag, |b, dag| {
                b.iter(|| strategy.partition(dag, limit).unwrap())
            });
        }
    }

    // DAG construction itself.
    let big = generators::by_name("qpe", 20);
    group.bench_function("dag_construction_qpe20", |b| {
        b.iter(|| CircuitDag::from_circuit(&big))
    });

    // The exact branch-and-bound reference on a small instance, to document
    // the gap the paper reports against the ILP.
    let small = generators::by_name("cc", 7);
    let small_dag = CircuitDag::from_circuit(&small);
    group.bench_function("exact_branch_and_bound_cc7", |b| {
        b.iter(|| {
            OptimalPartitioner::default()
                .partition(&small_dag, 4, Some(4))
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_partitioners);
criterion_main!(benches);

//! Criterion benchmarks of the job service: sustained mixed-priority
//! submit→wait throughput, the non-blocking submit overhead itself, and a
//! cancellation storm (half the batch abandoned mid-flight) — the service
//! counterpart of the `runtime_batch` scheduler benchmarks.

use criterion::{criterion_group, criterion_main, Criterion};
use hisvsim_circuit::generators;
use hisvsim_runtime::{EngineKind, EngineSelector, SchedulerConfig, SimJob};
use hisvsim_service::prelude::*;

fn scaled_service(workers: usize) -> SimService {
    SimService::start(
        ServiceConfig::new().with_scheduler(
            SchedulerConfig::default()
                .with_workers(workers)
                .with_selector(EngineSelector::scaled(6, 10)),
        ),
    )
}

fn bench_service_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("service");
    group.sample_size(10);

    // Sustained throughput: a long-lived service digesting waves of
    // mixed-priority, mixed-width jobs (templated → plan-cache amortised).
    group.bench_function("mixed_priority_wave_12_jobs", |b| {
        let service = scaled_service(4);
        b.iter(|| {
            let handles: Vec<_> = (0..12)
                .map(|i| {
                    let (width, priority) = match i % 3 {
                        0 => (10usize, JobPriority::Low),
                        1 => (8, JobPriority::Normal),
                        _ => (9, JobPriority::High),
                    };
                    service.submit_with_priority(
                        SimJob::new(generators::qft(width)).with_shots(16),
                        priority,
                    )
                })
                .collect();
            for handle in handles {
                handle.wait().expect("job succeeded");
            }
        })
    });

    // Submission latency: what the caller pays before the handle returns.
    group.bench_function("submit_overhead", |b| {
        let service = scaled_service(2);
        let mut pending = Vec::new();
        b.iter(|| {
            pending.push(service.submit(SimJob::new(generators::qft(6))));
        });
        for handle in pending {
            let _ = handle.wait();
        }
    });

    // Cancellation storm: half the wave is abandoned mid-flight; measures
    // drain time with cooperative checkpoints (and would hang forever if a
    // cancelled job pinned its residency slot).
    group.bench_function("cancel_half_of_8_jobs", |b| {
        let service = scaled_service(2);
        b.iter(|| {
            let handles: Vec<_> = (0..8)
                .map(|i| {
                    if i % 2 == 0 {
                        service.submit(
                            SimJob::new(generators::qft(12))
                                .with_engine(EngineKind::Hier)
                                .with_limit(5),
                        )
                    } else {
                        service.submit(SimJob::new(generators::qft(8)))
                    }
                })
                .collect();
            for handle in handles.iter().step_by(2) {
                handle.cancel();
            }
            for handle in handles {
                let _ = handle.wait();
            }
        })
    });

    group.finish();
}

criterion_group!(benches, bench_service_throughput);
criterion_main!(benches);

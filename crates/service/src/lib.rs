//! # hisvsim-service
//!
//! The asynchronous job service over the HiSVSIM batch runtime — the
//! "general interface for other simulators to use as a library" the paper
//! sketches (Sec. III-D), grown into a long-lived serving layer:
//!
//! * **Non-blocking submission** — [`SimService::submit`] enqueues a
//!   [`SimJob`](hisvsim_runtime::SimJob) on a mixed-priority queue and
//!   returns a [`JobHandle`] immediately.
//! * **Polling and waiting** — [`JobHandle::poll`] snapshots the lifecycle
//!   (`Queued → Planning → PlanReady → Executing → Done/Cancelled/Failed`);
//!   [`JobHandle::wait`] blocks for the
//!   [`JobResult`](hisvsim_runtime::JobResult).
//! * **Progress streaming** — [`JobHandle::progress`] is a channel of
//!   [`JobEvent`]s, including `Executing { gates_done, gates_total }`
//!   updates emitted by the engines between fused parts.
//! * **Cooperative cancellation** — [`JobHandle::cancel`] stops a running
//!   job at its next checkpoint (between fused groups / gather
//!   assignments / part switches), releasing its resident-state-vector
//!   slot; cancelling a queued job removes it without running, and
//!   cancelling a finished job is a no-op.
//! * **Retained job artifacts** — every terminal job folds its decision
//!   audit, per-phase timeline, optionally-drained recorder spans and
//!   measured [`CostProfile`](hisvsim_obs::CostProfile) delta into a
//!   bounded LRU, servable after completion via
//!   [`SimService::job_status`], [`SimService::job_trace_json`] and
//!   [`SimService::job_profile_json`] (the `hisvsim-http` front door's
//!   `/jobs/<id>` endpoints).
//! * **Disk-backed warm start** — with
//!   [`ServiceConfig::with_persistence`], cached partitions are snapshotted
//!   at shutdown (keyed by
//!   [`Circuit::fingerprint`](hisvsim_circuit::Circuit::fingerprint)) and
//!   re-fused on first use after a restart, so a repeated workload replans
//!   nothing.
//!
//! The execution pipeline is the runtime's worker-pool core
//! ([`hisvsim_runtime::pool::JobRunner`]) — the very same code path as
//! [`Scheduler::run_batch`](hisvsim_runtime::Scheduler::run_batch), so
//! results are bit-identical to batch mode.
//!
//! ## Example
//!
//! ```
//! use hisvsim_circuit::generators;
//! use hisvsim_runtime::{EngineSelector, SchedulerConfig, SimJob};
//! use hisvsim_service::prelude::*;
//!
//! let service = SimService::start(ServiceConfig::new().with_scheduler(
//!     SchedulerConfig::default().with_selector(EngineSelector::scaled(4, 8)),
//! ));
//! // Non-blocking submissions at mixed priorities.
//! let background = service.submit_with_priority(
//!     SimJob::new(generators::qft(7)),
//!     JobPriority::Low,
//! );
//! let urgent = service.submit_with_priority(
//!     SimJob::new(generators::cat_state(6)).with_shots(64),
//!     JobPriority::High,
//! );
//! // Follow the urgent job's lifecycle on its event stream.
//! let events = urgent.progress();
//! let result = urgent.wait().expect("job succeeded");
//! assert_eq!(result.counts.values().sum::<usize>(), 64);
//! assert_eq!(events.recv(), Ok(JobEvent::Queued));
//! // Cancel-after-complete is a no-op.
//! urgent.cancel();
//! assert_eq!(urgent.poll(), JobStatus::Done);
//! background.wait().expect("background job succeeded");
//! ```

#![warn(missing_docs)]

pub mod artifacts;
pub mod handle;
pub mod service;

pub use artifacts::{JobArtifacts, JobStatusReport, DEFAULT_ARTIFACT_CAPACITY};
pub use handle::{JobEvent, JobFailure, JobHandle, JobPriority, JobStatus};
pub use service::{ServiceConfig, ServiceStats, SimService, DEADLINE_EXCEEDED};

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::artifacts::{JobArtifacts, JobStatusReport};
    pub use crate::handle::{JobEvent, JobFailure, JobHandle, JobPriority, JobStatus};
    pub use crate::service::{ServiceConfig, ServiceStats, SimService};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use hisvsim_circuit::generators;
    use hisvsim_runtime::{EngineSelector, SchedulerConfig, SimJob};

    fn scaled_service(workers: usize) -> SimService {
        SimService::start(
            ServiceConfig::new().with_scheduler(
                SchedulerConfig::default()
                    .with_workers(workers)
                    .with_selector(EngineSelector::scaled(4, 8)),
            ),
        )
    }

    #[test]
    fn submit_wait_returns_the_result_and_the_full_event_history() {
        let service = scaled_service(2);
        let handle = service.submit(SimJob::new(generators::qft(7)).with_shots(32));
        let result = handle.wait().expect("job succeeded");
        assert_eq!(result.counts.values().sum::<usize>(), 32);
        assert_eq!(handle.poll(), JobStatus::Done);

        // The stream buffers from submission: Queued first, Done last,
        // Planning/PlanReady/Executing in between, then disconnect.
        let events: Vec<JobEvent> = handle.progress().try_iter_all();
        assert_eq!(events.first(), Some(&JobEvent::Queued));
        assert_eq!(events.last(), Some(&JobEvent::Done));
        assert!(events.contains(&JobEvent::Planning));
        assert!(events
            .iter()
            .any(|e| matches!(e, JobEvent::PlanReady { .. })));
        assert!(events
            .iter()
            .any(|e| matches!(e, JobEvent::Executing { .. })));
    }

    #[test]
    fn high_priority_jobs_overtake_queued_normal_ones() {
        use hisvsim_runtime::EngineKind;
        // One worker, pinned busy: submit a blocker and hold it by waiting
        // for its Executing event, then queue Normal before High. The
        // single worker serialises execution, so if High truly overtakes,
        // it must be *finished* by the time Normal starts planning.
        let service = scaled_service(1);
        let blocker = service.submit(
            SimJob::new(generators::qft(12))
                .with_engine(EngineKind::Hier)
                .with_limit(5),
        );
        let blocker_events = blocker.progress();
        loop {
            match blocker_events.recv().expect("blocker must start") {
                JobEvent::Executing { .. } => break,
                _ => continue,
            }
        }
        let normal = service.submit(SimJob::new(generators::qft(6)));
        let high = service.submit_with_priority(SimJob::new(generators::qft(6)), JobPriority::High);
        blocker.cancel();
        let _ = blocker.wait();

        let normal_events = normal.progress();
        loop {
            match normal_events.recv().expect("normal must eventually run") {
                JobEvent::Planning => break,
                JobEvent::Queued => continue,
                other => panic!("unexpected event before Planning: {other:?}"),
            }
        }
        assert!(
            high.is_finished(),
            "High was queued after Normal but must complete before Normal starts"
        );
        high.wait().unwrap();
        normal.wait().unwrap();
        let stats = service.stats();
        assert_eq!(stats.submitted, 3);
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.cancelled, 1);
    }

    #[test]
    fn failed_planning_surfaces_as_a_failed_job_not_a_dead_worker() {
        use hisvsim_runtime::EngineKind;
        let service = scaled_service(1);
        // Toffoli arity 3 at an explicit limit of 2: planning fails.
        let bad = service.submit(
            SimJob::new(generators::adder(8))
                .with_engine(EngineKind::Hier)
                .with_limit(2),
        );
        match bad.wait() {
            Err(JobFailure::Failed(message)) => {
                assert!(message.contains("planning failed"), "got: {message}")
            }
            other => panic!("expected a planning failure, got {other:?}"),
        }
        assert_eq!(bad.poll(), JobStatus::Failed);
        // The worker survived: the next job runs normally.
        let ok = service.submit(SimJob::new(generators::qft(6)));
        ok.wait().expect("worker must survive a failed job");
        assert_eq!(service.stats().failed, 1);
    }

    trait TryIterAll {
        fn try_iter_all(&self) -> Vec<JobEvent>;
    }
    impl TryIterAll for crossbeam::channel::Receiver<JobEvent> {
        fn try_iter_all(&self) -> Vec<JobEvent> {
            let mut out = Vec::new();
            while let Ok(event) = self.try_recv() {
                out.push(event);
            }
            out
        }
    }
}

//! The long-lived job service: a priority queue in front of the runtime's
//! worker-pool core.

use crate::artifacts::{ArtifactStore, JobArtifacts, JobStatusReport, DEFAULT_ARTIFACT_CAPACITY};
use crate::handle::{JobEvent, JobFailure, JobHandle, JobPriority, JobShared, JobStatus};
use hisvsim_obs::log;
use hisvsim_obs::{CostProfile, Counter, Histogram, Registry, SpanRecord};
use hisvsim_runtime::pool::{JobControl, JobError, JobRunner, Semaphore};
use hisvsim_runtime::{CacheStats, PlanCache, SchedulerConfig, SimJob};
use std::collections::{BinaryHeap, HashMap};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Reason prefix carried by the `Failed` event/outcome of a job whose
/// deadline timer fired (distinguishes it from an explicit `cancel()`).
pub const DEADLINE_EXCEEDED: &str = "DeadlineExceeded";

const LOG_TARGET: &str = "hisvsim-service";

fn deadline_message(deadline: Duration) -> String {
    format!(
        "{DEADLINE_EXCEEDED}: job exceeded its {:.3}s deadline",
        deadline.as_secs_f64()
    )
}

/// Service configuration: the scheduler configuration the worker-pool core
/// runs with, plus the service-level persistence and retention knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker count, residency bound, plan-cache capacity, planning effort,
    /// engine selector — identical semantics to batch mode.
    pub scheduler: SchedulerConfig,
    /// Plan-cache snapshot location. When set, the snapshot is loaded at
    /// startup (missing file = cold start, not an error) and written at
    /// shutdown, so a restarted service replans nothing it already planned.
    pub persist_path: Option<PathBuf>,
    /// Bound of the completed-job artifact LRU (status, timeline, spans,
    /// profile delta retained per terminal job for later download).
    pub artifact_capacity: usize,
    /// When true, each completed job drains the global span recorder into
    /// its own artifact (and absorbs the spans into the profile store on
    /// the caller's behalf). Off by default because the drain is
    /// process-wide: callers that drain the recorder themselves
    /// ([`SimService::absorb_trace`], timeline exporters) would race it.
    pub trace_artifacts: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            scheduler: SchedulerConfig::default(),
            persist_path: None,
            artifact_capacity: DEFAULT_ARTIFACT_CAPACITY,
            trace_artifacts: false,
        }
    }
}

impl ServiceConfig {
    /// The default configuration (no persistence).
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder: use this scheduler configuration.
    pub fn with_scheduler(mut self, scheduler: SchedulerConfig) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Builder: persist the plan cache at `path` (loaded at startup,
    /// saved at shutdown and via [`SimService::persist_plans`]).
    pub fn with_persistence(mut self, path: impl Into<PathBuf>) -> Self {
        self.persist_path = Some(path.into());
        self
    }

    /// Builder: retain artifacts for up to `capacity` completed jobs
    /// (default [`DEFAULT_ARTIFACT_CAPACITY`]).
    pub fn with_artifact_capacity(mut self, capacity: usize) -> Self {
        self.artifact_capacity = capacity;
        self
    }

    /// Builder: drain the span recorder into each completing job's
    /// artifact, making `/jobs/<id>/trace` downloads carry kernel and
    /// collective spans. See [`ServiceConfig::trace_artifacts`] for why
    /// this is opt-in.
    pub fn with_trace_artifacts(mut self, on: bool) -> Self {
        self.trace_artifacts = on;
        self
    }
}

/// Lifetime counters of a service instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Jobs accepted by [`SimService::submit`].
    pub submitted: u64,
    /// Jobs that finished successfully.
    pub completed: u64,
    /// Jobs cancelled (while queued or mid-execution).
    pub cancelled: u64,
    /// Jobs that failed (planning error, backend error or engine panic),
    /// including deadline expiries.
    pub failed: u64,
    /// Jobs whose deadline timer fired before they completed (a subset of
    /// `failed`).
    pub deadline_exceeded: u64,
    /// Jobs currently waiting to run. Entries that were finalized while
    /// queued (handle cancel, deadline expiry) but not yet lazily dropped
    /// by a worker are *not* counted — they can never run, and reporting
    /// them would show operators a phantom backlog.
    pub queue_depth: usize,
}

/// A queued job: max-heap ordering is priority first, FIFO within a
/// priority (lower sequence number wins).
struct QueuedJob {
    priority: JobPriority,
    seq: u64,
    job: SimJob,
    shared: Arc<JobShared>,
}

impl PartialEq for QueuedJob {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl Eq for QueuedJob {}
impl PartialOrd for QueuedJob {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueuedJob {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.priority
            .cmp(&other.priority)
            .then(other.seq.cmp(&self.seq))
    }
}

/// One armed deadline: when it is due, how long the job was given (for the
/// failure message), and the job it belongs to. The job reference is weak:
/// the heap is not rebalanced when a job finalizes, and a strong reference
/// would pin the finished job's outcome (including a possibly huge result
/// state vector) until the entry's due time. Live jobs are kept alive by
/// the queue / their worker / their handle; an entry that no longer
/// upgrades belongs to a job nobody can observe anymore and fires as a
/// no-op.
struct DeadlineEntry {
    due: Instant,
    deadline: Duration,
    job_id: u64,
    shared: std::sync::Weak<JobShared>,
}

impl PartialEq for DeadlineEntry {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.job_id == other.job_id
    }
}
impl Eq for DeadlineEntry {}
impl PartialOrd for DeadlineEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for DeadlineEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: `BinaryHeap` is a max-heap, the timer wants the
        // *earliest* due entry on top. Ties broken by job id for a total
        // order.
        other
            .due
            .cmp(&self.due)
            .then(other.job_id.cmp(&self.job_id))
    }
}

/// The deadline min-heap owned by the service's single timer thread.
///
/// Every armed deadline used to park one watcher thread until its job
/// finalized — 200 deadlined jobs meant 200 sleeping threads. Now
/// [`Inner::arm_deadline`] pushes an entry here and at most **one** timer
/// thread (spawned lazily on the first armed deadline) sleeps until the
/// earliest due time, pops everything expired, and fires each exactly like
/// the old per-job watcher did. Entries whose job finished in time are
/// discarded when popped.
struct DeadlineQueue {
    heap: Mutex<BinaryHeap<DeadlineEntry>>,
    /// Wakes the timer for a new earliest deadline or for shutdown.
    wake: Condvar,
    /// Set (then notified) at shutdown, after the workers have drained.
    stop: AtomicBool,
    /// Timer threads ever spawned — 0 before the first deadline, 1 after;
    /// observable via [`SimService::deadline_timer_threads`].
    threads_spawned: AtomicUsize,
}

impl Default for DeadlineQueue {
    fn default() -> Self {
        Self {
            heap: Mutex::new(BinaryHeap::new()),
            wake: Condvar::new(),
            stop: AtomicBool::new(false),
            threads_spawned: AtomicUsize::new(0),
        }
    }
}

/// The service's slice of the unified obs registry: histogram/counter
/// handles updated on the hot path (per completed job), while the plain
/// service/cache counters are synced into the registry at scrape time.
struct ServiceMetrics {
    registry: Registry,
    job_wall_seconds: Arc<Histogram>,
    job_plan_seconds: Arc<Histogram>,
    selector_misprediction_ratio: Arc<Histogram>,
    selector_calibrated_total: Arc<Counter>,
    comm_bytes_total: Arc<Counter>,
    comm_messages_total: Arc<Counter>,
    comm_wall_seconds_total: Arc<Counter>,
    comm_modeled_seconds_total: Arc<Counter>,
}

impl ServiceMetrics {
    fn new(registry: Registry) -> Self {
        Self {
            job_wall_seconds: registry.histogram(
                "hisvsim_job_wall_seconds",
                "End-to-end wall time per completed job (plan + execute + postprocess).",
            ),
            job_plan_seconds: registry.histogram(
                "hisvsim_job_plan_seconds",
                "Seconds spent obtaining the plan per completed job (~0 on a cache hit).",
            ),
            selector_misprediction_ratio: registry.histogram(
                "hisvsim_selector_misprediction_ratio",
                "Measured-over-predicted execute seconds per completed job (1.0 = perfect \
                 cost model; drift here says the profile or the static model is stale).",
            ),
            selector_calibrated_total: registry.counter(
                "hisvsim_selector_calibrated_decisions_total",
                "Completed jobs whose engine or fusion-strategy decision used \
                 measured-profile signals instead of the static model.",
            ),
            comm_bytes_total: registry.counter(
                "hisvsim_comm_bytes_sent_total",
                "Bytes moved by collectives across all ranks of completed jobs.",
            ),
            comm_messages_total: registry.counter(
                "hisvsim_comm_messages_total",
                "Messages sent by collectives across all ranks of completed jobs.",
            ),
            comm_wall_seconds_total: registry.counter(
                "hisvsim_comm_wall_seconds_total",
                "Wall seconds ranks of completed jobs spent inside collectives.",
            ),
            comm_modeled_seconds_total: registry.counter(
                "hisvsim_comm_modeled_seconds_total",
                "Modelled interconnect seconds across all ranks of completed jobs.",
            ),
            registry,
        }
    }

    /// Record one successfully completed job.
    fn observe_job(&self, result: &hisvsim_runtime::JobResult) {
        self.job_wall_seconds.observe(result.wall_time_s);
        self.job_plan_seconds.observe(result.plan_time_s);
        if result.verdict.predicted_execute_s > 0.0 {
            self.selector_misprediction_ratio
                .observe(result.verdict.ratio());
        }
        if result.decision.calibrated {
            self.selector_calibrated_total.add(1.0);
        }
        let comm = result.comm_stats();
        self.comm_bytes_total.add(comm.bytes_sent as f64);
        self.comm_messages_total.add(comm.messages_sent as f64);
        self.comm_wall_seconds_total.add(comm.wall_time_s);
        self.comm_modeled_seconds_total.add(comm.modeled_time_s);
    }
}

/// What the service knows about a job that has not yet reached its
/// artifact: enough to answer a status query while it is queued or
/// running. The `shared` reference is weak so the registry never extends a
/// job's lifetime; entries are removed when the job's terminal artifact is
/// stored.
struct LiveJob {
    circuit: String,
    gates_total: u64,
    shared: Weak<JobShared>,
}

struct Inner {
    runner: JobRunner,
    metrics: ServiceMetrics,
    residency: Semaphore,
    /// Worker threads the pool was started with (for readiness probes).
    worker_count: usize,
    /// Resident-state-vector slot capacity backing `residency`.
    resident_capacity: usize,
    /// Completed-job artifacts, bounded LRU.
    artifacts: ArtifactStore,
    /// Per-job drain of the span recorder into artifacts (see
    /// [`ServiceConfig::trace_artifacts`]).
    trace_artifacts: bool,
    /// Jobs submitted but not yet folded into an artifact, keyed by id.
    live: Mutex<HashMap<u64, LiveJob>>,
    queue: Mutex<BinaryHeap<QueuedJob>>,
    queue_ready: Condvar,
    shutdown: AtomicBool,
    next_seq: AtomicU64,
    submitted: AtomicU64,
    completed: AtomicU64,
    cancelled: AtomicU64,
    failed: AtomicU64,
    deadline_exceeded: AtomicU64,
    /// Jobs finalized while still in the heap (handle cancel, deadline
    /// expiry) awaiting their lazy drop; shared into every `JobShared`.
    finalized_queued: Arc<AtomicU64>,
    /// The armed-deadline min-heap (one timer thread for all jobs).
    deadlines: DeadlineQueue,
    /// The timer thread, spawned on the first armed deadline and joined at
    /// shutdown (after the workers, so deadlines keep firing mid-drain).
    timer: Mutex<Option<JoinHandle<()>>>,
}

/// A long-lived simulation job service: non-blocking [`SimService::submit`]
/// returning a [`JobHandle`] with `poll`/`wait`/`cancel` and a progress
/// event stream, a mixed-priority queue drained by the runtime's
/// worker-pool core, and an optionally disk-persisted plan cache so a
/// restarted service starts warm.
///
/// Dropping the service (or calling [`SimService::shutdown`]) drains the
/// queue — every already-submitted job still runs to a terminal state —
/// then joins the workers and writes the plan-cache snapshot if
/// persistence is configured.
pub struct SimService {
    inner: Arc<Inner>,
    persist_path: Option<PathBuf>,
    workers: Vec<JoinHandle<()>>,
}

impl SimService {
    /// Start a service: loads the plan-cache snapshot when persistence is
    /// configured (a missing snapshot is a cold start, not an error), then
    /// spawns the worker threads.
    pub fn start(config: ServiceConfig) -> Self {
        let runner = JobRunner::new(config.scheduler.clone());
        if let Some(path) = &config.persist_path {
            if path.exists() {
                // A corrupt snapshot degrades to a cold start.
                let _ = runner.cache().load_snapshot(path);
            }
            // The measured-cost profile lives next to the plan snapshot and
            // warms the same way: a restarted service resumes calibrated
            // decisions immediately (a corrupt or missing profile degrades
            // to the static cost model, never to an error).
            let profile_path = profile_path_for(path);
            if profile_path.exists() {
                let _ = runner.config().profile.load_from(&profile_path);
            }
        }
        let worker_count = config.scheduler.workers.max(1);
        let resident_capacity = config.scheduler.max_resident.max(1);
        let inner = Arc::new(Inner {
            residency: Semaphore::new(resident_capacity),
            runner,
            metrics: ServiceMetrics::new(Registry::new()),
            worker_count,
            resident_capacity,
            artifacts: ArtifactStore::new(config.artifact_capacity),
            trace_artifacts: config.trace_artifacts,
            live: Mutex::new(HashMap::new()),
            queue: Mutex::new(BinaryHeap::new()),
            queue_ready: Condvar::new(),
            shutdown: AtomicBool::new(false),
            next_seq: AtomicU64::new(0),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            deadline_exceeded: AtomicU64::new(0),
            finalized_queued: Arc::new(AtomicU64::new(0)),
            deadlines: DeadlineQueue::default(),
            timer: Mutex::new(None),
        });
        let workers = (0..worker_count)
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(&inner))
            })
            .collect();
        log::info(
            LOG_TARGET,
            "service started",
            &[
                ("workers", &worker_count.to_string()),
                ("resident_slots", &resident_capacity.to_string()),
                ("artifact_capacity", &config.artifact_capacity.to_string()),
            ],
        );
        Self {
            inner,
            persist_path: config.persist_path,
            workers,
        }
    }

    /// Submit a job at [`JobPriority::Normal`]. Non-blocking: returns a
    /// handle immediately; execution happens on the worker pool.
    pub fn submit(&self, job: SimJob) -> JobHandle {
        self.submit_with_priority(job, JobPriority::Normal)
    }

    /// Submit a job at an explicit priority. When the job carries a
    /// [`SimJob::with_deadline`], a timer is armed *from submission*: if the
    /// job has not reached a terminal state when it fires, the job's cancel
    /// token is raised and the outcome surfaces as
    /// `Failed { DeadlineExceeded }` rather than `Cancelled`.
    pub fn submit_with_priority(&self, job: SimJob, priority: JobPriority) -> JobHandle {
        let seq = self.inner.next_seq.fetch_add(1, Ordering::Relaxed);
        self.inner.submitted.fetch_add(1, Ordering::Relaxed);
        let (sender, receiver) = crossbeam::channel::unbounded();
        let shared = Arc::new(JobShared::new(
            seq,
            sender,
            Arc::clone(&self.inner.finalized_queued),
        ));
        shared.emit(JobEvent::Queued);
        let handle = JobHandle {
            shared: Arc::clone(&shared),
            events: receiver,
        };
        self.inner.live.lock().expect("live map poisoned").insert(
            seq,
            LiveJob {
                circuit: job.circuit.name.clone(),
                gates_total: job.circuit.num_gates() as u64,
                shared: Arc::downgrade(&shared),
            },
        );
        if let Some(deadline) = job.deadline {
            arm_deadline(&self.inner, Arc::clone(&shared), deadline);
        }
        self.inner
            .queue
            .lock()
            .expect("job queue poisoned")
            .push(QueuedJob {
                priority,
                seq,
                job,
                shared,
            });
        self.inner.queue_ready.notify_one();
        handle
    }

    /// The worker-pool core's persistent plan cache.
    pub fn cache(&self) -> &PlanCache {
        self.inner.runner.cache()
    }

    /// Plan-cache counters (lifetime of this service instance, plus
    /// whatever warm entries the snapshot provided).
    pub fn cache_stats(&self) -> CacheStats {
        self.inner.runner.cache().stats()
    }

    /// Lifetime service counters.
    pub fn stats(&self) -> ServiceStats {
        // Honest backlog without an O(queue) scan: heap length minus the
        // entries already finalized in place (they can never run; workers
        // drop them lazily on pop). Saturating: the two reads are not one
        // atomic snapshot, so a racing pop may transiently skew them.
        let queue_len = self.inner.queue.lock().expect("job queue poisoned").len();
        let queue_depth =
            queue_len.saturating_sub(self.inner.finalized_queued.load(Ordering::Relaxed) as usize);
        ServiceStats {
            submitted: self.inner.submitted.load(Ordering::Relaxed),
            completed: self.inner.completed.load(Ordering::Relaxed),
            cancelled: self.inner.cancelled.load(Ordering::Relaxed),
            failed: self.inner.failed.load(Ordering::Relaxed),
            deadline_exceeded: self.inner.deadline_exceeded.load(Ordering::Relaxed),
            queue_depth,
        }
    }

    /// The unified obs registry backing [`SimService::metrics_text`].
    /// Cheap to clone; callers may register their own series alongside the
    /// service's (they appear in the same exposition).
    pub fn registry(&self) -> Registry {
        self.inner.metrics.registry.clone()
    }

    /// A Prometheus text snapshot of the unified metrics registry: the
    /// service counters (queue depth, terminal-state totals, deadline
    /// expiries), the plan-cache counters (hits, warm hits, misses,
    /// evictions, in-flight dedups), the per-job wall/plan-time histograms,
    /// and the communication totals of completed jobs. A thin view over
    /// [`SimService::registry`]: the ad-hoc `ServiceStats`/`CacheStats`
    /// atomics are synced into the registry at scrape time, everything else
    /// is already there.
    pub fn metrics_text(&self) -> String {
        let s = self.stats();
        let c = self.cache_stats();
        let reg = &self.inner.metrics.registry;
        let counter = |name: &str, help: &str, value: u64| {
            reg.counter(name, help).set(value as f64);
        };
        counter(
            "hisvsim_service_jobs_submitted_total",
            "Jobs accepted by submit().",
            s.submitted,
        );
        counter(
            "hisvsim_service_jobs_completed_total",
            "Jobs that finished successfully.",
            s.completed,
        );
        counter(
            "hisvsim_service_jobs_cancelled_total",
            "Jobs cancelled while queued or mid-execution.",
            s.cancelled,
        );
        counter(
            "hisvsim_service_jobs_failed_total",
            "Jobs that failed (planning, backend, panic or deadline).",
            s.failed,
        );
        counter(
            "hisvsim_service_jobs_deadline_exceeded_total",
            "Jobs whose deadline fired before completion (subset of failed).",
            s.deadline_exceeded,
        );
        counter(
            "hisvsim_plan_cache_hits_total",
            "Plan lookups served from memory.",
            c.hits,
        );
        counter(
            "hisvsim_plan_cache_warm_hits_total",
            "Plan lookups served by re-fusing a disk-persisted partition.",
            c.warm_hits,
        );
        counter(
            "hisvsim_plan_cache_misses_total",
            "Plan lookups that planned from scratch.",
            c.misses,
        );
        counter(
            "hisvsim_plan_cache_evictions_total",
            "Plans evicted by the LRU bound.",
            c.evictions,
        );
        counter(
            "hisvsim_plan_cache_inflight_dedups_total",
            "Plan lookups that waited out another worker's in-flight planning of the same key.",
            c.inflight_dedups,
        );
        counter(
            "hisvsim_fusion_fallback_total",
            "Fusion groups whose modelled fused sweep cost exceeded their unfused cost and \
             were emitted in their cheaper solo form instead (process-wide).",
            hisvsim_statevec::fusion::fusion_fallback_count(),
        );
        counter(
            "hisvsim_obs_spans_dropped_total",
            "Trace spans discarded because a thread's ring buffer was full (process-wide; \
             nonzero means timelines and profile deltas are incomplete).",
            hisvsim_obs::dropped(),
        );
        let gauge = |name: &str, help: &str, value: f64| {
            reg.gauge(name, help).set(value);
        };
        gauge(
            "hisvsim_service_queue_depth",
            "Jobs currently waiting in the priority queue.",
            s.queue_depth as f64,
        );
        gauge(
            "hisvsim_plan_cache_entries",
            "Plans currently resident in the cache.",
            c.entries as f64,
        );
        gauge(
            "hisvsim_plan_cache_hit_rate",
            "Hits (memory + warm) over total lookups.",
            c.hit_rate(),
        );
        gauge(
            "hisvsim_service_workers",
            "Worker threads draining the priority queue.",
            self.inner.worker_count as f64,
        );
        let in_flight = s
            .submitted
            .saturating_sub(s.completed + s.cancelled + s.failed)
            .saturating_sub(s.queue_depth as u64);
        gauge(
            "hisvsim_service_jobs_in_flight",
            "Jobs claimed by a worker and not yet terminal.",
            in_flight as f64,
        );
        let (slots_in_use, slots_capacity) = self.resident_slots();
        gauge(
            "hisvsim_service_resident_slots",
            "Resident-state-vector slot capacity (scheduler max_resident).",
            slots_capacity as f64,
        );
        gauge(
            "hisvsim_service_resident_slots_in_use",
            "Resident-state-vector slots currently held by executing jobs.",
            slots_in_use as f64,
        );
        gauge(
            "hisvsim_service_job_artifacts_retained",
            "Completed-job artifacts currently held in the bounded LRU.",
            self.inner.artifacts.len() as f64,
        );
        counter(
            "hisvsim_service_job_artifacts_evicted_total",
            "Completed-job artifacts dropped by the LRU bound.",
            self.inner.artifacts.evicted(),
        );
        gauge(
            "hisvsim_profile_warm",
            "1 when the measured-cost profile has cells (calibrated decisions possible).",
            if self.inner.runner.config().profile.warm() {
                1.0
            } else {
                0.0
            },
        );
        if let Some(pool) = self
            .inner
            .runner
            .config()
            .process_backend
            .as_ref()
            .and_then(|backend| backend.pool_stats())
        {
            counter(
                "hisvsim_pool_worlds_spawned_total",
                "Worker worlds spawned by the process backend (1 after warm-up unless a \
                 world was dropped by a failure).",
                pool.worlds_spawned,
            );
            counter(
                "hisvsim_pool_jobs_total",
                "Jobs submitted to the process backend's worker pool.",
                pool.jobs_run,
            );
            counter(
                "hisvsim_pool_jobs_reused_world_total",
                "Pool jobs that ran on an already-resident worker world.",
                pool.jobs_reused_world,
            );
            counter(
                "hisvsim_pool_jobs_cancelled_total",
                "Pool jobs stopped at a cooperative cancel checkpoint (world kept warm).",
                pool.jobs_cancelled,
            );
            counter(
                "hisvsim_pool_jobs_failed_total",
                "Pool jobs that failed and dropped their worker world.",
                pool.jobs_failed,
            );
            gauge(
                "hisvsim_pool_launch_seconds_total",
                "Total seconds spent spawning worker worlds and running the rendezvous \
                 (kept out of per-job wall time).",
                pool.launch_seconds_total,
            );
        }
        reg.render()
    }

    /// Worker threads the service was started with.
    pub fn worker_count(&self) -> usize {
        self.inner.worker_count
    }

    /// Resident-state-vector slot occupancy as `(in_use, capacity)`.
    pub fn resident_slots(&self) -> (usize, usize) {
        let capacity = self.inner.resident_capacity;
        (
            capacity.saturating_sub(self.inner.residency.available()),
            capacity,
        )
    }

    /// A point-in-time status report for job `id`: live jobs are
    /// snapshotted from their shared state, terminal jobs are reconstructed
    /// from their retained artifacts. `None` when the id was never
    /// submitted or its artifact has been evicted.
    pub fn job_status(&self, id: u64) -> Option<JobStatusReport> {
        if let Some(artifacts) = self.inner.artifacts.get(id) {
            return Some(JobStatusReport::from_artifacts(&artifacts));
        }
        let live = self.inner.live.lock().expect("live map poisoned");
        let entry = live.get(&id)?;
        let shared = entry.shared.upgrade()?;
        let status = shared.state.lock().expect("job state poisoned").status;
        let (phase, gates_done, gates_total) = match status {
            JobStatus::Queued => ("queued", 0, entry.gates_total),
            JobStatus::Planning => ("planning", 0, entry.gates_total),
            JobStatus::PlanReady => ("plan_ready", 0, entry.gates_total),
            JobStatus::Executing {
                gates_done,
                gates_total,
            } => ("executing", gates_done, gates_total),
            JobStatus::Done => ("done", entry.gates_total, entry.gates_total),
            JobStatus::Cancelled => ("cancelled", 0, entry.gates_total),
            JobStatus::Failed => ("failed", 0, entry.gates_total),
        };
        Some(JobStatusReport {
            id,
            circuit: entry.circuit.clone(),
            phase: phase.to_string(),
            gates_done,
            gates_total,
            decision: None,
            verdict: None,
            wall_time_s: None,
            plan_time_s: None,
            plan_cache_hit: None,
            failure: None,
            retained_spans: 0,
        })
    }

    /// The retained artifacts of a terminal job (timeline, drained spans,
    /// decision audit, profile delta). `None` while the job is still live,
    /// or once the LRU evicted it.
    pub fn job_artifacts(&self, id: u64) -> Option<JobArtifacts> {
        self.inner.artifacts.get(id)
    }

    /// A terminal job's merged timeline + recorder spans as Chrome
    /// trace-event JSON (see [`JobArtifacts::trace_json`]).
    pub fn job_trace_json(&self, id: u64) -> Option<String> {
        self.inner.artifacts.get(id).map(|a| a.trace_json())
    }

    /// A terminal job's measured [`CostProfile`] delta as JSON. `None`
    /// when the job is not terminal/retained *or* completed without a
    /// profile delta (cancelled or failed before executing).
    pub fn job_profile_json(&self, id: u64) -> Option<String> {
        self.inner.artifacts.get(id).and_then(|a| a.profile_json())
    }

    /// The measured-cost profile store the worker-pool core calibrates
    /// from. Shared (`Arc`): hand it to a `ClusterLauncher` profile sink,
    /// freeze it for reproducible decisions, or inspect its snapshot.
    pub fn profile_store(&self) -> Arc<hisvsim_obs::ProfileStore> {
        Arc::clone(&self.inner.runner.config().profile)
    }

    /// Drain the global span recorder into the profile store and return how
    /// many spans were absorbed. **Consumes the trace buffer** — callers
    /// that also export timelines should export first, then absorb. Spans
    /// are attributed to the machine's resolved auto kernel dispatch;
    /// forced-scalar experiments should keep tracing off or freeze the
    /// profile so their sweeps do not dilute the auto-dispatch cells.
    pub fn absorb_trace(&self) -> usize {
        let spans = hisvsim_obs::drain();
        self.inner.runner.config().profile.absorb_spans(
            &spans,
            hisvsim_statevec::KernelDispatch::Auto.resolved_name(),
        );
        spans.len()
    }

    /// Timer threads the deadline machinery has ever spawned: `0` before
    /// the first [`SimJob::with_deadline`] submission, `1` after — never
    /// more, regardless of how many deadlined jobs are in flight (they all
    /// share one min-heap).
    pub fn deadline_timer_threads(&self) -> usize {
        self.inner.deadlines.threads_spawned.load(Ordering::SeqCst)
    }

    /// Write the plan-cache snapshot and the measured-cost profile now
    /// (requires persistence to be configured). Returns the number of
    /// persisted plans; the profile lands at the sibling
    /// `<persist_path>.profile.json` path.
    pub fn persist_plans(&self) -> std::io::Result<usize> {
        let path = self.persist_path.as_ref().ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::NotFound, "no persist_path configured")
        })?;
        let count = self.inner.runner.cache().save_snapshot(path)?;
        self.inner
            .runner
            .config()
            .profile
            .save_to(&profile_path_for(path))?;
        Ok(count)
    }

    /// Drain the queue, join the workers and persist the plan cache (when
    /// configured). Equivalent to dropping the service, but explicit and
    /// able to report the flush.
    pub fn shutdown(mut self) -> std::io::Result<()> {
        self.shutdown_impl();
        Ok(())
    }

    fn shutdown_impl(&mut self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.queue_ready.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        // Stop the deadline timer only after the workers drained: deadlines
        // must keep firing for jobs still running out the queue. Every job
        // is terminal now, so pending heap entries are inert. The stop flag
        // is set and notified *under the heap lock*: the timer's
        // check-then-wait is atomic under that lock, so the notification
        // cannot fall between its stop check and its wait (a lost wakeup
        // would hang the join below forever on an empty heap).
        {
            let _heap = self
                .inner
                .deadlines
                .heap
                .lock()
                .expect("deadline heap poisoned");
            self.inner.deadlines.stop.store(true, Ordering::SeqCst);
            self.inner.deadlines.wake.notify_all();
        }
        if let Some(timer) = self
            .inner
            .timer
            .lock()
            .expect("timer handle poisoned")
            .take()
        {
            let _ = timer.join();
        }
        if let Some(path) = &self.persist_path {
            let _ = self.inner.runner.cache().save_snapshot(path);
            let _ = self
                .inner
                .runner
                .config()
                .profile
                .save_to(&profile_path_for(path));
        }
        // Workers and timer are gone, so no job can reach the backend any
        // more: tear its resident worker world down cleanly (a no-op for
        // stateless backends).
        if let Some(backend) = &self.inner.runner.config().process_backend {
            backend.shutdown();
        }
    }
}

/// The measured-cost profile's on-disk home: a sibling of the plan-cache
/// snapshot (`plans.json` → `plans.profile.json`), so the two warm-start
/// artifacts travel together.
fn profile_path_for(persist_path: &std::path::Path) -> PathBuf {
    persist_path.with_extension("profile.json")
}

impl Drop for SimService {
    fn drop(&mut self) {
        if !self.workers.is_empty() {
            self.shutdown_impl();
        }
    }
}

/// Arm a deadline for a submitted job: push an entry onto the shared
/// deadline min-heap and make sure the (single) timer thread exists. No
/// per-job thread is spawned — 200 deadlined jobs still park exactly one
/// watcher.
fn arm_deadline(inner: &Arc<Inner>, shared: Arc<JobShared>, deadline: Duration) {
    let entry = DeadlineEntry {
        due: Instant::now() + deadline,
        deadline,
        job_id: shared.id,
        shared: Arc::downgrade(&shared),
    };
    inner
        .deadlines
        .heap
        .lock()
        .expect("deadline heap poisoned")
        .push(entry);
    // Wake the timer: the new entry may be the earliest due.
    inner.deadlines.wake.notify_one();
    let mut timer = inner.timer.lock().expect("timer handle poisoned");
    if timer.is_none() {
        inner
            .deadlines
            .threads_spawned
            .fetch_add(1, Ordering::SeqCst);
        let inner = Arc::clone(inner);
        *timer = Some(std::thread::spawn(move || deadline_timer_loop(&inner)));
    }
}

/// The single timer thread: sleep until the earliest armed deadline, pop
/// and fire everything expired, repeat. Entries whose job already reached a
/// terminal state are discarded when popped (the heap is not rebalanced on
/// job completion — an entry for a finished job costs one pop at its due
/// time, never a thread).
fn deadline_timer_loop(inner: &Inner) {
    let mut heap = inner.deadlines.heap.lock().expect("deadline heap poisoned");
    loop {
        if inner.deadlines.stop.load(Ordering::SeqCst) {
            return;
        }
        let now = Instant::now();
        match heap.peek().map(|entry| entry.due) {
            None => {
                heap = inner
                    .deadlines
                    .wake
                    .wait(heap)
                    .expect("deadline heap poisoned");
            }
            Some(due) if due <= now => {
                let entry = heap.pop().expect("peeked entry present");
                // A dead weak reference means the job finalized and every
                // observer dropped it — nothing left to fire.
                if let Some(shared) = entry.shared.upgrade() {
                    // Fire outside the heap lock: finalization takes the
                    // job's state lock and wakes waiters, neither of which
                    // should serialise against `arm_deadline` pushes.
                    drop(heap);
                    fire_deadline(inner, &shared, entry.deadline);
                    heap = inner.deadlines.heap.lock().expect("deadline heap poisoned");
                }
            }
            Some(due) => {
                let (guard, _timeout) = inner
                    .deadlines
                    .wake
                    .wait_timeout(heap, due - now)
                    .expect("deadline heap poisoned");
                heap = guard;
            }
        }
    }
}

/// Fire one expired deadline; semantics identical to the old per-job
/// watcher. If the job is still live, mark the deadline as fired and raise
/// the job's cancel token. A job still in the queue is finalized here
/// directly (workers skip finalized jobs); a running job stops at its next
/// cooperative checkpoint and its worker converts the cancellation into
/// `Failed { DeadlineExceeded }`; a job that already finished is a no-op.
fn fire_deadline(inner: &Inner, shared: &Arc<JobShared>, deadline: Duration) {
    {
        let state = shared.state.lock().expect("job state poisoned");
        if state.outcome.is_some() {
            return; // finished within the deadline
        }
    }
    shared
        .deadline_fired
        .store(true, std::sync::atomic::Ordering::SeqCst);
    shared.cancel.cancel();
    // A still-queued job is finalized here (`finalize_queued` decides
    // queued-ness and the terminal transition atomically, so the
    // phantom-queue counter stays exact against a racing worker
    // claim); a claimed job stops at its next cooperative checkpoint
    // and its worker converts the cancellation into DeadlineExceeded.
    // Count before finalizing (finalize wakes waiters, and the stats
    // must already reflect the job the moment a `wait()` on it
    // returns); undo if the job was not finalized here after all.
    inner.failed.fetch_add(1, Ordering::Relaxed);
    inner.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
    inner.finalized_queued.fetch_add(1, Ordering::Relaxed);
    if !shared.finalize_queued(Err(JobFailure::Failed(deadline_message(deadline)))) {
        inner.failed.fetch_sub(1, Ordering::Relaxed);
        inner.deadline_exceeded.fetch_sub(1, Ordering::Relaxed);
        inner.finalized_queued.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Worker body: pop the highest-priority job, run it through the pool core
/// with the handle's cancel token and event callbacks wired in, finalize.
/// Exits once shutdown is flagged *and* the queue is drained.
fn worker_loop(inner: &Inner) {
    loop {
        let next = {
            let mut queue = inner.queue.lock().expect("job queue poisoned");
            loop {
                if let Some(job) = queue.pop() {
                    break Some(job);
                }
                if inner.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                queue = inner.queue_ready.wait(queue).expect("job queue poisoned");
            }
        };
        match next {
            Some(queued) => run_one(inner, queued),
            None => return,
        }
    }
}

fn run_one(inner: &Inner, queued: QueuedJob) {
    let QueuedJob {
        seq, job, shared, ..
    } = queued;
    let circuit_name = job.circuit.name.clone();
    let gates_total = job.circuit.num_gates() as u64;
    let state_bytes = (32u128 << job.circuit.num_qubits()).min(u64::MAX as u128) as u64;
    // Claim: a job finalized while queued (handle cancel, or the deadline
    // timer) is skipped entirely. A handle-cancelled job is counted here
    // (its `cancel()` fast path does not touch the service counters); a
    // deadline-failed job was already counted by its timer. A live job is
    // marked claimed under the same lock hold, so `finalize_queued` (the
    // only source of phantom-queue entries) can never fire after this
    // point — the counter stays exact in every interleaving.
    {
        let mut state = shared.state.lock().expect("job state poisoned");
        if let Some(outcome) = &state.outcome {
            // The phantom entry has now left the heap.
            inner.finalized_queued.fetch_sub(1, Ordering::Relaxed);
            if matches!(outcome, Err(JobFailure::Cancelled)) {
                inner.cancelled.fetch_add(1, Ordering::Relaxed);
            }
            let (outcome_name, failure) = match outcome {
                Ok(_) => ("done", None),
                Err(JobFailure::Cancelled) => ("cancelled", None),
                Err(JobFailure::Failed(message)) => ("failed", Some(message.clone())),
            };
            drop(state);
            store_artifacts(
                inner,
                JobArtifacts {
                    id: seq,
                    circuit: circuit_name,
                    gates_total,
                    outcome: outcome_name.to_string(),
                    failure,
                    decision: None,
                    verdict: None,
                    wall_time_s: None,
                    plan_time_s: None,
                    plan_cache_hit: None,
                    timeline: Vec::new(),
                    spans: Vec::new(),
                    profile_delta: None,
                },
            );
            return;
        }
        state.status = JobStatus::Planning;
    }

    let job_deadline = job.deadline;
    let control = {
        let (planning, plan_ready, executing) = (
            Arc::clone(&shared),
            Arc::clone(&shared),
            Arc::clone(&shared),
        );
        JobControl {
            cancel: shared.cancel.clone(),
            on_planning: Some(Arc::new(move || {
                planning.set_status(JobStatus::Planning);
                planning.emit(JobEvent::Planning);
            })),
            on_plan_ready: Some(Arc::new(move |cache_hit| {
                plan_ready.set_status(JobStatus::PlanReady);
                plan_ready.emit(JobEvent::PlanReady { cache_hit });
            })),
            on_executing: Some(Arc::new(move |gates_done, gates_total| {
                executing.set_status(JobStatus::Executing {
                    gates_done,
                    gates_total,
                });
                executing.emit(JobEvent::Executing {
                    gates_done,
                    gates_total,
                });
            })),
        }
    };

    // A panicking engine must kill the job, not the worker thread.
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        inner
            .runner
            .execute_job(seq as usize, job, &inner.residency, &control)
    }));
    // A cancellation whose origin was the job's deadline timer surfaces as
    // DeadlineExceeded, not as a user cancellation.
    let deadline_hit = shared
        .deadline_fired
        .load(std::sync::atomic::Ordering::SeqCst);
    let outcome = match outcome {
        Ok(Ok(result)) => {
            inner.metrics.observe_job(&result);
            Ok(result)
        }
        Ok(Err(JobError::Cancelled)) if deadline_hit => Err(JobFailure::Failed(deadline_message(
            job_deadline.unwrap_or_default(),
        ))),
        Ok(Err(JobError::Cancelled)) => Err(JobFailure::Cancelled),
        Ok(Err(error)) => Err(JobFailure::Failed(error.to_string())),
        Err(panic) => {
            let message = panic
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| panic.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "engine panicked".to_string());
            Err(JobFailure::Failed(message))
        }
    };
    let is_deadline_failure = deadline_hit
        && matches!(&outcome, Err(JobFailure::Failed(m)) if m.starts_with(DEADLINE_EXCEEDED));
    let counter = match &outcome {
        Ok(_) => &inner.completed,
        Err(JobFailure::Cancelled) => &inner.cancelled,
        Err(JobFailure::Failed(_)) => &inner.failed,
    };
    // Count before finalizing, so the stats already reflect this job the
    // moment a `wait()` on it returns.
    counter.fetch_add(1, Ordering::Relaxed);
    if is_deadline_failure {
        inner.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
    }
    match &outcome {
        Ok(result) => log::info(
            LOG_TARGET,
            "job done",
            &[
                ("job", &seq.to_string()),
                ("circuit", &circuit_name),
                ("engine", result.engine.name()),
                ("wall_s", &format!("{:.3}", result.wall_time_s)),
            ],
        ),
        Err(JobFailure::Cancelled) => log::info(
            LOG_TARGET,
            "job cancelled",
            &[("job", &seq.to_string()), ("circuit", &circuit_name)],
        ),
        Err(JobFailure::Failed(message)) => log::warn(
            LOG_TARGET,
            "job failed",
            &[
                ("job", &seq.to_string()),
                ("circuit", &circuit_name),
                ("error", message),
            ],
        ),
    }
    // Fold the run into the artifact store before waking waiters, so a
    // `wait()` returning means the job's trace/status are downloadable.
    store_artifacts(
        inner,
        build_artifacts(inner, seq, circuit_name, gates_total, state_bytes, &outcome),
    );
    if !shared.finalize(outcome) {
        // Unreachable under the claim protocol: once this worker marked
        // the job claimed, the only external finalizers (handle cancel,
        // deadline timer) go through `finalize_queued`, which refuses
        // claimed jobs. Kept as a defensive counter rollback so a future
        // finalizer that breaks the invariant cannot inflate the stats.
        counter.fetch_sub(1, Ordering::Relaxed);
        if is_deadline_failure {
            inner.deadline_exceeded.fetch_sub(1, Ordering::Relaxed);
        }
        debug_assert!(false, "a claimed job was finalized by someone else");
    }
}

/// Assemble the artifact record for a job that ran (or died) on a worker.
/// With [`ServiceConfig::trace_artifacts`] on and the recorder enabled,
/// the global span buffer is drained here: the spans land in the artifact
/// *and* are absorbed into the profile store (exactly what a manual
/// [`SimService::absorb_trace`] would have done — the calibration loop
/// keeps learning, per job instead of per scrape).
fn build_artifacts(
    inner: &Inner,
    id: u64,
    circuit: String,
    gates_total: u64,
    state_bytes: u64,
    outcome: &Result<hisvsim_runtime::JobResult, JobFailure>,
) -> JobArtifacts {
    let spans: Vec<SpanRecord> = if inner.trace_artifacts && hisvsim_obs::enabled() {
        hisvsim_obs::drain()
    } else {
        Vec::new()
    };
    match outcome {
        Ok(result) => {
            let dispatch = result.kernel_dispatch.resolved_name();
            if !spans.is_empty() {
                inner.runner.config().profile.absorb_spans(&spans, dispatch);
            }
            // The job's own measured-cost contribution, mirroring what the
            // runner fed the shared store: phase timings from the worker
            // timeline, kernel/collective cells from the drained spans.
            let mut delta = CostProfile::new();
            let engine = result.engine.name();
            for span in &result.timeline {
                let seconds = span.dur_us as f64 / 1e6;
                match span.name.as_str() {
                    "plan" => delta.absorb_phase(engine, "plan", seconds, 0),
                    "execute" => delta.absorb_phase(engine, "execute", seconds, state_bytes),
                    "postprocess" => delta.absorb_phase(engine, "postprocess", seconds, 0),
                    _ => {}
                }
            }
            if !spans.is_empty() {
                delta.absorb_spans(&spans, dispatch);
            }
            JobArtifacts {
                id,
                circuit,
                gates_total,
                outcome: "done".to_string(),
                failure: None,
                decision: Some(result.decision.clone()),
                verdict: Some(result.verdict.clone()),
                wall_time_s: Some(result.wall_time_s),
                plan_time_s: Some(result.plan_time_s),
                plan_cache_hit: Some(result.plan_cache_hit),
                timeline: result.timeline.clone(),
                spans,
                profile_delta: Some(delta),
            }
        }
        Err(failure) => {
            let (outcome_name, message) = match failure {
                JobFailure::Cancelled => ("cancelled", None),
                JobFailure::Failed(message) => ("failed", Some(message.clone())),
            };
            JobArtifacts {
                id,
                circuit,
                gates_total,
                outcome: outcome_name.to_string(),
                failure: message,
                decision: None,
                verdict: None,
                wall_time_s: None,
                plan_time_s: None,
                plan_cache_hit: None,
                timeline: Vec::new(),
                spans,
                profile_delta: None,
            }
        }
    }
}

/// Fold a terminal job into the artifact store and drop its live entry.
fn store_artifacts(inner: &Inner, artifacts: JobArtifacts) {
    let id = artifacts.id;
    inner.artifacts.insert(artifacts);
    inner.live.lock().expect("live map poisoned").remove(&id);
}

//! The long-lived job service: a priority queue in front of the runtime's
//! worker-pool core.

use crate::handle::{JobEvent, JobFailure, JobHandle, JobPriority, JobShared, JobStatus};
use hisvsim_runtime::pool::{JobControl, JobError, JobRunner, Semaphore};
use hisvsim_runtime::{CacheStats, PlanCache, SchedulerConfig, SimJob};
use std::collections::BinaryHeap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Service configuration: the scheduler configuration the worker-pool core
/// runs with, plus the service-level persistence knobs.
#[derive(Debug, Clone, Default)]
pub struct ServiceConfig {
    /// Worker count, residency bound, plan-cache capacity, planning effort,
    /// engine selector — identical semantics to batch mode.
    pub scheduler: SchedulerConfig,
    /// Plan-cache snapshot location. When set, the snapshot is loaded at
    /// startup (missing file = cold start, not an error) and written at
    /// shutdown, so a restarted service replans nothing it already planned.
    pub persist_path: Option<PathBuf>,
}

impl ServiceConfig {
    /// The default configuration (no persistence).
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder: use this scheduler configuration.
    pub fn with_scheduler(mut self, scheduler: SchedulerConfig) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Builder: persist the plan cache at `path` (loaded at startup,
    /// saved at shutdown and via [`SimService::persist_plans`]).
    pub fn with_persistence(mut self, path: impl Into<PathBuf>) -> Self {
        self.persist_path = Some(path.into());
        self
    }
}

/// Lifetime counters of a service instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Jobs accepted by [`SimService::submit`].
    pub submitted: u64,
    /// Jobs that finished successfully.
    pub completed: u64,
    /// Jobs cancelled (while queued or mid-execution).
    pub cancelled: u64,
    /// Jobs that failed (planning error or engine panic).
    pub failed: u64,
    /// Jobs currently waiting in the priority queue.
    pub queue_depth: usize,
}

/// A queued job: max-heap ordering is priority first, FIFO within a
/// priority (lower sequence number wins).
struct QueuedJob {
    priority: JobPriority,
    seq: u64,
    job: SimJob,
    shared: Arc<JobShared>,
}

impl PartialEq for QueuedJob {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl Eq for QueuedJob {}
impl PartialOrd for QueuedJob {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueuedJob {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.priority
            .cmp(&other.priority)
            .then(other.seq.cmp(&self.seq))
    }
}

struct Inner {
    runner: JobRunner,
    residency: Semaphore,
    queue: Mutex<BinaryHeap<QueuedJob>>,
    queue_ready: Condvar,
    shutdown: AtomicBool,
    next_seq: AtomicU64,
    submitted: AtomicU64,
    completed: AtomicU64,
    cancelled: AtomicU64,
    failed: AtomicU64,
}

/// A long-lived simulation job service: non-blocking [`SimService::submit`]
/// returning a [`JobHandle`] with `poll`/`wait`/`cancel` and a progress
/// event stream, a mixed-priority queue drained by the runtime's
/// worker-pool core, and an optionally disk-persisted plan cache so a
/// restarted service starts warm.
///
/// Dropping the service (or calling [`SimService::shutdown`]) drains the
/// queue — every already-submitted job still runs to a terminal state —
/// then joins the workers and writes the plan-cache snapshot if
/// persistence is configured.
pub struct SimService {
    inner: Arc<Inner>,
    persist_path: Option<PathBuf>,
    workers: Vec<JoinHandle<()>>,
}

impl SimService {
    /// Start a service: loads the plan-cache snapshot when persistence is
    /// configured (a missing snapshot is a cold start, not an error), then
    /// spawns the worker threads.
    pub fn start(config: ServiceConfig) -> Self {
        let runner = JobRunner::new(config.scheduler.clone());
        if let Some(path) = &config.persist_path {
            if path.exists() {
                // A corrupt snapshot degrades to a cold start.
                let _ = runner.cache().load_snapshot(path);
            }
        }
        let inner = Arc::new(Inner {
            residency: Semaphore::new(config.scheduler.max_resident.max(1)),
            runner,
            queue: Mutex::new(BinaryHeap::new()),
            queue_ready: Condvar::new(),
            shutdown: AtomicBool::new(false),
            next_seq: AtomicU64::new(0),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            failed: AtomicU64::new(0),
        });
        let workers = (0..config.scheduler.workers.max(1))
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(&inner))
            })
            .collect();
        Self {
            inner,
            persist_path: config.persist_path,
            workers,
        }
    }

    /// Submit a job at [`JobPriority::Normal`]. Non-blocking: returns a
    /// handle immediately; execution happens on the worker pool.
    pub fn submit(&self, job: SimJob) -> JobHandle {
        self.submit_with_priority(job, JobPriority::Normal)
    }

    /// Submit a job at an explicit priority.
    pub fn submit_with_priority(&self, job: SimJob, priority: JobPriority) -> JobHandle {
        let seq = self.inner.next_seq.fetch_add(1, Ordering::Relaxed);
        self.inner.submitted.fetch_add(1, Ordering::Relaxed);
        let (sender, receiver) = crossbeam::channel::unbounded();
        let shared = Arc::new(JobShared::new(seq, sender));
        shared.emit(JobEvent::Queued);
        let handle = JobHandle {
            shared: Arc::clone(&shared),
            events: receiver,
        };
        self.inner
            .queue
            .lock()
            .expect("job queue poisoned")
            .push(QueuedJob {
                priority,
                seq,
                job,
                shared,
            });
        self.inner.queue_ready.notify_one();
        handle
    }

    /// The worker-pool core's persistent plan cache.
    pub fn cache(&self) -> &PlanCache {
        self.inner.runner.cache()
    }

    /// Plan-cache counters (lifetime of this service instance, plus
    /// whatever warm entries the snapshot provided).
    pub fn cache_stats(&self) -> CacheStats {
        self.inner.runner.cache().stats()
    }

    /// Lifetime service counters.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            submitted: self.inner.submitted.load(Ordering::Relaxed),
            completed: self.inner.completed.load(Ordering::Relaxed),
            cancelled: self.inner.cancelled.load(Ordering::Relaxed),
            failed: self.inner.failed.load(Ordering::Relaxed),
            queue_depth: self.inner.queue.lock().expect("job queue poisoned").len(),
        }
    }

    /// Write the plan-cache snapshot now (requires persistence to be
    /// configured). Returns the number of persisted plans.
    pub fn persist_plans(&self) -> std::io::Result<usize> {
        let path = self.persist_path.as_ref().ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::NotFound, "no persist_path configured")
        })?;
        self.inner.runner.cache().save_snapshot(path)
    }

    /// Drain the queue, join the workers and persist the plan cache (when
    /// configured). Equivalent to dropping the service, but explicit and
    /// able to report the flush.
    pub fn shutdown(mut self) -> std::io::Result<()> {
        self.shutdown_impl();
        Ok(())
    }

    fn shutdown_impl(&mut self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.queue_ready.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        if let Some(path) = &self.persist_path {
            let _ = self.inner.runner.cache().save_snapshot(path);
        }
    }
}

impl Drop for SimService {
    fn drop(&mut self) {
        if !self.workers.is_empty() {
            self.shutdown_impl();
        }
    }
}

/// Worker body: pop the highest-priority job, run it through the pool core
/// with the handle's cancel token and event callbacks wired in, finalize.
/// Exits once shutdown is flagged *and* the queue is drained.
fn worker_loop(inner: &Inner) {
    loop {
        let next = {
            let mut queue = inner.queue.lock().expect("job queue poisoned");
            loop {
                if let Some(job) = queue.pop() {
                    break Some(job);
                }
                if inner.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                queue = inner.queue_ready.wait(queue).expect("job queue poisoned");
            }
        };
        match next {
            Some(queued) => run_one(inner, queued),
            None => return,
        }
    }
}

fn run_one(inner: &Inner, queued: QueuedJob) {
    let QueuedJob {
        seq, job, shared, ..
    } = queued;
    // Claim: a job cancelled while queued was already finalized by its
    // handle — skip it entirely.
    {
        let state = shared.state.lock().expect("job state poisoned");
        if state.outcome.is_some() {
            inner.cancelled.fetch_add(1, Ordering::Relaxed);
            return;
        }
    }

    let control = {
        let (planning, plan_ready, executing) = (
            Arc::clone(&shared),
            Arc::clone(&shared),
            Arc::clone(&shared),
        );
        JobControl {
            cancel: shared.cancel.clone(),
            on_planning: Some(Arc::new(move || {
                planning.set_status(JobStatus::Planning);
                planning.emit(JobEvent::Planning);
            })),
            on_plan_ready: Some(Arc::new(move |cache_hit| {
                plan_ready.set_status(JobStatus::PlanReady);
                plan_ready.emit(JobEvent::PlanReady { cache_hit });
            })),
            on_executing: Some(Arc::new(move |gates_done, gates_total| {
                executing.set_status(JobStatus::Executing {
                    gates_done,
                    gates_total,
                });
                executing.emit(JobEvent::Executing {
                    gates_done,
                    gates_total,
                });
            })),
        }
    };

    // A panicking engine must kill the job, not the worker thread.
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        inner
            .runner
            .execute_job(seq as usize, job, &inner.residency, &control)
    }));
    let outcome = match outcome {
        Ok(Ok(result)) => Ok(result),
        Ok(Err(JobError::Cancelled)) => Err(JobFailure::Cancelled),
        Ok(Err(error @ JobError::PlanFailed { .. })) => Err(JobFailure::Failed(error.to_string())),
        Err(panic) => {
            let message = panic
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| panic.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "engine panicked".to_string());
            Err(JobFailure::Failed(message))
        }
    };
    let counter = match &outcome {
        Ok(_) => &inner.completed,
        Err(JobFailure::Cancelled) => &inner.cancelled,
        Err(JobFailure::Failed(_)) => &inner.failed,
    };
    // Count before finalizing, so the stats already reflect this job the
    // moment a `wait()` on it returns.
    counter.fetch_add(1, Ordering::Relaxed);
    if !shared.finalize(outcome) {
        // The handle finalized first (cancel racing completion): the
        // handle's verdict stands; undo ours and account a cancellation.
        counter.fetch_sub(1, Ordering::Relaxed);
        inner.cancelled.fetch_add(1, Ordering::Relaxed);
    }
}

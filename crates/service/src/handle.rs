//! The client side of a submitted job: status snapshots, the progress
//! event stream, blocking waits and cancellation.

use crossbeam::channel::{Receiver, Sender};
use hisvsim_runtime::JobResult;
use hisvsim_statevec::CancelToken;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Scheduling priority of a submitted job. Higher priorities are popped
/// first; within a priority the queue is FIFO.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum JobPriority {
    /// Background work (sweeps, speculative submissions).
    Low,
    /// The default.
    Normal,
    /// Latency-sensitive work; jumps every queued `Normal`/`Low` job.
    High,
}

/// One event on a job's progress stream, in lifecycle order:
/// `Queued → Planning → PlanReady → Executing…` and then exactly one of
/// `Done`, `Cancelled` or `Failed`, after which the stream disconnects.
#[derive(Debug, Clone, PartialEq)]
pub enum JobEvent {
    /// The job entered the priority queue.
    Queued,
    /// A worker claimed the job and started planning (or a cache lookup).
    Planning,
    /// The plan is ready; `cache_hit` is true when it came from the plan
    /// cache (in-memory, or re-fused from a disk-persisted partition)
    /// instead of being planned from scratch.
    PlanReady {
        /// Whether the plan came from the cache.
        cache_hit: bool,
    },
    /// The engine is executing; emitted at execution start
    /// (`gates_done == 0`) and after every completed part.
    Executing {
        /// Source gates whose parts have fully executed.
        gates_done: u64,
        /// Total source gates of the circuit.
        gates_total: u64,
    },
    /// The job finished; its [`JobResult`] is available via
    /// [`JobHandle::wait`].
    Done,
    /// The job was cancelled at a cooperative checkpoint (or while queued).
    Cancelled,
    /// The job failed (planning error or an engine panic).
    Failed {
        /// Human-readable failure description.
        message: String,
    },
}

/// A point-in-time status snapshot, returned by [`JobHandle::poll`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Waiting in the priority queue.
    Queued,
    /// A worker is planning (or looking the plan up).
    Planning,
    /// Plan ready; waiting for a resident-state-vector slot.
    PlanReady,
    /// The engine is executing.
    Executing {
        /// Source gates whose parts have fully executed.
        gates_done: u64,
        /// Total source gates of the circuit.
        gates_total: u64,
    },
    /// Finished successfully.
    Done,
    /// Cancelled.
    Cancelled,
    /// Failed (see the [`JobEvent::Failed`] message / [`JobHandle::wait`]).
    Failed,
}

impl JobStatus {
    /// Terminal states produce no further events.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobStatus::Done | JobStatus::Cancelled | JobStatus::Failed
        )
    }
}

/// Why a job produced no result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobFailure {
    /// The job was cancelled.
    Cancelled,
    /// Planning failed or the engine panicked.
    Failed(String),
}

impl std::fmt::Display for JobFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobFailure::Cancelled => f.write_str("job cancelled"),
            JobFailure::Failed(message) => write!(f, "job failed: {message}"),
        }
    }
}

impl std::error::Error for JobFailure {}

/// The state shared between a [`JobHandle`] and the worker executing the
/// job.
pub(crate) struct JobShared {
    pub(crate) id: u64,
    pub(crate) cancel: CancelToken,
    pub(crate) state: Mutex<JobState>,
    pub(crate) finished: Condvar,
    /// Event sender; dropped at the terminal transition so the stream
    /// disconnects once drained.
    pub(crate) events: Mutex<Option<Sender<JobEvent>>>,
    /// Set by the service's deadline timer before it fires the cancel
    /// token, so a deadline-cancelled run surfaces as `Failed
    /// { DeadlineExceeded }` rather than `Cancelled`.
    pub(crate) deadline_fired: AtomicBool,
    /// Service-wide count of jobs finalized *while still queued* (handle
    /// cancel, deadline expiry) and not yet lazily dropped by a worker.
    /// Shared with the service so `stats()` can report an honest queue
    /// depth as `heap len − this`, without locking per-job state.
    pub(crate) finalized_queued: Arc<AtomicU64>,
}

pub(crate) struct JobState {
    pub(crate) status: JobStatus,
    pub(crate) outcome: Option<Result<JobResult, JobFailure>>,
}

impl JobShared {
    pub(crate) fn new(id: u64, events: Sender<JobEvent>, finalized_queued: Arc<AtomicU64>) -> Self {
        Self {
            id,
            cancel: CancelToken::new(),
            state: Mutex::new(JobState {
                status: JobStatus::Queued,
                outcome: None,
            }),
            finished: Condvar::new(),
            events: Mutex::new(Some(events)),
            deadline_fired: AtomicBool::new(false),
            finalized_queued,
        }
    }

    /// Emit an event to the stream (dropped silently once the handle's
    /// receiver is gone).
    pub(crate) fn emit(&self, event: JobEvent) {
        if let Some(sender) = self.events.lock().expect("event sink poisoned").as_ref() {
            let _ = sender.send(event);
        }
    }

    /// Update the non-terminal status (no-op once terminal — a late engine
    /// progress report must not resurrect a cancelled job's status).
    pub(crate) fn set_status(&self, status: JobStatus) {
        let mut state = self.state.lock().expect("job state poisoned");
        if !state.status.is_terminal() {
            state.status = status;
        }
    }

    /// Terminal transition: record the outcome exactly once, emit the
    /// matching event, close the stream and wake every waiter. Returns
    /// false if the job was already finalized (e.g. cancel-after-complete).
    pub(crate) fn finalize(&self, outcome: Result<JobResult, JobFailure>) -> bool {
        self.finalize_impl(outcome, false)
    }

    /// [`JobShared::finalize`], but only if the job is still *queued*
    /// (never claimed by a worker). The status check and the terminal
    /// transition happen under one lock hold, so the caller's
    /// finalized-while-queued accounting is exact even against a racing
    /// claim — a worker marks the job claimed under the same lock.
    pub(crate) fn finalize_queued(&self, outcome: Result<JobResult, JobFailure>) -> bool {
        self.finalize_impl(outcome, true)
    }

    fn finalize_impl(&self, outcome: Result<JobResult, JobFailure>, only_if_queued: bool) -> bool {
        let event = {
            let mut state = self.state.lock().expect("job state poisoned");
            if state.outcome.is_some() {
                return false;
            }
            if only_if_queued && state.status != JobStatus::Queued {
                return false;
            }
            let (status, event) = match &outcome {
                Ok(_) => (JobStatus::Done, JobEvent::Done),
                Err(JobFailure::Cancelled) => (JobStatus::Cancelled, JobEvent::Cancelled),
                Err(JobFailure::Failed(message)) => (
                    JobStatus::Failed,
                    JobEvent::Failed {
                        message: message.clone(),
                    },
                ),
            };
            state.status = status;
            state.outcome = Some(outcome);
            event
        };
        // Send the terminal event and close the stream under one lock hold,
        // so a racing phase emit can land before the terminal event but
        // never after it (the sender is gone); receivers observe disconnect
        // after draining.
        {
            let mut sink = self.events.lock().expect("event sink poisoned");
            if let Some(sender) = sink.take() {
                let _ = sender.send(event);
            }
        }
        self.finished.notify_all();
        true
    }
}

/// A non-blocking handle to a submitted job: poll it, wait on it, cancel
/// it, or follow its progress event stream.
pub struct JobHandle {
    pub(crate) shared: Arc<JobShared>,
    pub(crate) events: Receiver<JobEvent>,
}

impl JobHandle {
    /// The service-assigned job id (also the `job_index` of the eventual
    /// [`JobResult`]).
    pub fn id(&self) -> u64 {
        self.shared.id
    }

    /// Non-blocking status snapshot.
    pub fn poll(&self) -> JobStatus {
        self.shared.state.lock().expect("job state poisoned").status
    }

    /// True once the job reached `Done`, `Cancelled` or `Failed`.
    pub fn is_finished(&self) -> bool {
        self.poll().is_terminal()
    }

    /// Block until the job finishes and return its outcome. Can be called
    /// repeatedly (the result is cloned out).
    pub fn wait(&self) -> Result<JobResult, JobFailure> {
        let mut state = self.shared.state.lock().expect("job state poisoned");
        while state.outcome.is_none() {
            state = self
                .shared
                .finished
                .wait(state)
                .expect("job state poisoned");
        }
        state.outcome.clone().expect("outcome present")
    }

    /// Request cooperative cancellation. A queued job is finalized
    /// immediately; a running job stops at its next checkpoint (between
    /// fused parts / gather assignments), releasing its residency slot.
    /// Cancelling a finished job is a no-op.
    pub fn cancel(&self) {
        self.shared.cancel.cancel();
        // Fast path: a job still in the queue is finalized here and never
        // claimed (workers skip jobs with an outcome); it stays in the
        // heap until lazily dropped, so the phantom-entry counter feeding
        // the service's queue-depth gauge is bumped. Running jobs are
        // finalized by their worker at the next checkpoint.
        // Pre-bump so the gauge is consistent the instant a `wait()` on
        // this job returns (finalize wakes waiters); undo on the paths
        // that did not actually finalize a queued entry.
        self.shared.finalized_queued.fetch_add(1, Ordering::Relaxed);
        if !self.shared.finalize_queued(Err(JobFailure::Cancelled)) {
            self.shared.finalized_queued.fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// The progress event stream (see [`JobEvent`] for the order). Events
    /// are buffered from submission, so a late subscriber still sees the
    /// full history; the channel disconnects after the terminal event.
    /// Each event is delivered to exactly one receiver — clone intended
    /// for a single consumer.
    pub fn progress(&self) -> Receiver<JobEvent> {
        self.events.clone()
    }
}

impl std::fmt::Debug for JobHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobHandle")
            .field("id", &self.shared.id)
            .field("status", &self.poll())
            .finish()
    }
}

//! Completed-job artifact retention.
//!
//! A running job's observability (timeline, engine decision, measured
//! spans) used to evaporate the moment its [`JobResult`] was handed to the
//! caller — nothing survived for an operator asking "what did job 17 do?"
//! five minutes later. The service now folds every terminal job into a
//! [`JobArtifacts`] record held in a bounded LRU ([`ArtifactStore`]), so
//! the HTTP front door can serve per-job status, a Chrome trace, and the
//! job's measured [`CostProfile`] delta *after* completion without pinning
//! result state vectors in memory.

use hisvsim_obs::{chrome_trace_json, CostProfile, SpanRecord};
use hisvsim_runtime::{DecisionVerdict, EngineDecision};
use serde::Serialize;
use std::collections::{HashMap, VecDeque};
use std::sync::Mutex;

/// Default bound of the completed-job artifact LRU. Artifacts are small
/// (spans + decision audit, never amplitudes), so a few dozen jobs of
/// history cost megabytes at worst.
pub const DEFAULT_ARTIFACT_CAPACITY: usize = 64;

/// Everything the service retains about one terminal job: the audit trail
/// and observability surface of the run, deliberately *excluding* the
/// result payload (state vector, counts) whose lifecycle belongs to the
/// [`JobHandle`](crate::JobHandle).
#[derive(Debug, Clone)]
pub struct JobArtifacts {
    /// The service-assigned job id.
    pub id: u64,
    /// Name of the job's circuit.
    pub circuit: String,
    /// Total source gates of the circuit.
    pub gates_total: u64,
    /// Terminal outcome: `"done"`, `"cancelled"` or `"failed"`.
    pub outcome: String,
    /// Failure message for `"failed"` outcomes.
    pub failure: Option<String>,
    /// The selector's full audit trail (successful runs only).
    pub decision: Option<EngineDecision>,
    /// Predicted-vs-measured execute-phase audit (successful runs only).
    pub verdict: Option<DecisionVerdict>,
    /// End-to-end wall seconds (successful runs only).
    pub wall_time_s: Option<f64>,
    /// Seconds spent obtaining the plan (successful runs only).
    pub plan_time_s: Option<f64>,
    /// Whether the plan came from the cache (successful runs only).
    pub plan_cache_hit: Option<bool>,
    /// The worker-recorded per-phase timeline (plan → execute →
    /// postprocess), present even when the span recorder is off.
    pub timeline: Vec<SpanRecord>,
    /// Recorder spans drained at completion — kernel sweeps, collectives,
    /// spliced worker-rank spans. Empty unless the service was configured
    /// with [`ServiceConfig::with_trace_artifacts`](crate::ServiceConfig::with_trace_artifacts)
    /// and the recorder was enabled.
    pub spans: Vec<SpanRecord>,
    /// The measured-cost delta this job contributed: its phase timings
    /// plus whatever kernel/collective cells its drained spans carried.
    pub profile_delta: Option<CostProfile>,
}

impl JobArtifacts {
    /// The job's merged timeline + recorder spans as a Chrome trace-event
    /// JSON document (Perfetto-compatible), sorted chronologically.
    pub fn trace_json(&self) -> String {
        let mut all = self.timeline.clone();
        all.extend(self.spans.iter().cloned());
        all.sort_by_key(|s| (s.ts_us, s.pid, s.tid));
        chrome_trace_json(&all)
    }

    /// The job's [`CostProfile`] delta as JSON, when one was captured.
    pub fn profile_json(&self) -> Option<String> {
        self.profile_delta.as_ref().map(|p| p.to_json())
    }
}

/// A point-in-time status report for a job, servable whether the job is
/// still queued/running (snapshotted from its live state) or already
/// terminal (reconstructed from its retained [`JobArtifacts`]).
#[derive(Debug, Clone, Serialize)]
pub struct JobStatusReport {
    /// The service-assigned job id.
    pub id: u64,
    /// Name of the job's circuit.
    pub circuit: String,
    /// Lifecycle phase: `"queued"`, `"planning"`, `"plan_ready"`,
    /// `"executing"`, `"done"`, `"cancelled"` or `"failed"`.
    pub phase: String,
    /// Source gates whose parts have fully executed.
    pub gates_done: u64,
    /// Total source gates of the circuit.
    pub gates_total: u64,
    /// The selector's audit trail (once the job completed successfully).
    pub decision: Option<EngineDecision>,
    /// Predicted-vs-measured execute audit (completed jobs only).
    pub verdict: Option<DecisionVerdict>,
    /// End-to-end wall seconds (completed jobs only).
    pub wall_time_s: Option<f64>,
    /// Plan-acquisition seconds (completed jobs only).
    pub plan_time_s: Option<f64>,
    /// Whether the plan came from the cache (completed jobs only).
    pub plan_cache_hit: Option<bool>,
    /// Failure message for failed jobs.
    pub failure: Option<String>,
    /// Recorder spans retained for `/jobs/<id>/trace` download.
    pub retained_spans: u64,
}

impl JobStatusReport {
    /// Whether the reported phase is terminal (artifacts, if retained,
    /// are complete).
    pub fn is_terminal(&self) -> bool {
        matches!(self.phase.as_str(), "done" | "cancelled" | "failed")
    }

    pub(crate) fn from_artifacts(artifacts: &JobArtifacts) -> Self {
        JobStatusReport {
            id: artifacts.id,
            circuit: artifacts.circuit.clone(),
            phase: artifacts.outcome.clone(),
            gates_done: if artifacts.outcome == "done" {
                artifacts.gates_total
            } else {
                0
            },
            gates_total: artifacts.gates_total,
            decision: artifacts.decision.clone(),
            verdict: artifacts.verdict.clone(),
            wall_time_s: artifacts.wall_time_s,
            plan_time_s: artifacts.plan_time_s,
            plan_cache_hit: artifacts.plan_cache_hit,
            failure: artifacts.failure.clone(),
            retained_spans: (artifacts.timeline.len() + artifacts.spans.len()) as u64,
        }
    }
}

struct StoreInner {
    capacity: usize,
    /// Recency order, least-recently-used first.
    order: VecDeque<u64>,
    map: HashMap<u64, JobArtifacts>,
    evicted: u64,
}

/// A bounded LRU of [`JobArtifacts`], keyed by job id. Reads refresh
/// recency, inserts evict the least-recently-used entry past capacity.
pub(crate) struct ArtifactStore {
    inner: Mutex<StoreInner>,
}

impl ArtifactStore {
    pub(crate) fn new(capacity: usize) -> Self {
        ArtifactStore {
            inner: Mutex::new(StoreInner {
                capacity: capacity.max(1),
                order: VecDeque::new(),
                map: HashMap::new(),
                evicted: 0,
            }),
        }
    }

    pub(crate) fn insert(&self, artifacts: JobArtifacts) {
        let mut inner = self.inner.lock().expect("artifact store poisoned");
        let id = artifacts.id;
        if inner.map.insert(id, artifacts).is_none() {
            inner.order.push_back(id);
        } else {
            touch(&mut inner.order, id);
        }
        while inner.map.len() > inner.capacity {
            if let Some(oldest) = inner.order.pop_front() {
                inner.map.remove(&oldest);
                inner.evicted += 1;
            }
        }
    }

    pub(crate) fn get(&self, id: u64) -> Option<JobArtifacts> {
        let mut inner = self.inner.lock().expect("artifact store poisoned");
        let found = inner.map.get(&id).cloned();
        if found.is_some() {
            touch(&mut inner.order, id);
        }
        found
    }

    pub(crate) fn len(&self) -> usize {
        self.inner
            .lock()
            .expect("artifact store poisoned")
            .map
            .len()
    }

    pub(crate) fn evicted(&self) -> u64 {
        self.inner.lock().expect("artifact store poisoned").evicted
    }
}

fn touch(order: &mut VecDeque<u64>, id: u64) {
    if let Some(pos) = order.iter().position(|&x| x == id) {
        order.remove(pos);
        order.push_back(id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn artifact(id: u64) -> JobArtifacts {
        JobArtifacts {
            id,
            circuit: format!("c{id}"),
            gates_total: 3,
            outcome: "done".into(),
            failure: None,
            decision: None,
            verdict: None,
            wall_time_s: Some(0.1),
            plan_time_s: Some(0.01),
            plan_cache_hit: Some(false),
            timeline: vec![SpanRecord::instant("job", "plan", 1, String::new())],
            spans: Vec::new(),
            profile_delta: None,
        }
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let store = ArtifactStore::new(2);
        store.insert(artifact(1));
        store.insert(artifact(2));
        // Touch 1 so 2 becomes the eviction candidate.
        assert!(store.get(1).is_some());
        store.insert(artifact(3));
        assert_eq!(store.len(), 2);
        assert_eq!(store.evicted(), 1);
        assert!(store.get(2).is_none(), "2 was least recently used");
        assert!(store.get(1).is_some());
        assert!(store.get(3).is_some());
    }

    #[test]
    fn trace_json_merges_timeline_and_spans_chronologically() {
        let mut a = artifact(7);
        a.spans = vec![SpanRecord {
            name: "sweep:dense".into(),
            cat: "kernel".into(),
            ts_us: 0,
            dur_us: 5,
            pid: 0,
            tid: 1,
            detail: String::new(),
            bytes: 64,
        }];
        let json = a.trace_json();
        let v = serde_json::value_from_str(&json).expect("valid trace JSON");
        let events = v
            .get_field("traceEvents")
            .and_then(|e| e.as_array())
            .expect("traceEvents");
        assert_eq!(events.len(), 2);
        // The kernel span starts earlier and must sort first.
        assert_eq!(
            events[0].get_field("name").and_then(|n| n.as_str()),
            Some("sweep:dense")
        );
    }

    #[test]
    fn status_report_from_artifacts_is_terminal() {
        let report = JobStatusReport::from_artifacts(&artifact(9));
        assert!(report.is_terminal());
        assert_eq!(report.phase, "done");
        assert_eq!(report.gates_done, report.gates_total);
        let text = serde_json::to_string(&report).expect("report serialises");
        assert!(text.contains("\"phase\""));
    }
}

//! Edge-case conformance suite for the [`RankComm`] trait, run against
//! *both* implementations — the in-process channel world (`LocalComm`) and
//! the TCP transport (`TcpComm`) — so the two worlds cannot drift apart on
//! the corners the engines rely on: empty payloads in collectives,
//! single-rank worlds, and deep out-of-order tag stashing.

use hisvsim_cluster::{world, NetworkModel, RankComm};
use hisvsim_net::tcp_world;
use std::thread;

/// Drive every rank of a pre-built world on its own thread.
fn drive<C, F>(worlds: Vec<C>, body: F)
where
    C: RankComm<u64> + Send + 'static,
    F: Fn(&mut C) + Send + Sync + Clone + 'static,
{
    let handles: Vec<_> = worlds
        .into_iter()
        .map(|mut comm| {
            let body = body.clone();
            thread::spawn(move || {
                body(&mut comm);
                comm.stats()
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("a rank thread panicked");
    }
}

fn empty_payload_collectives_on<C: RankComm<u64> + Send + 'static>(worlds: Vec<C>) {
    drive(worlds, |comm| {
        // All-empty alltoallv: shapes must survive, nothing is charged.
        let send: Vec<Vec<u64>> = (0..comm.size()).map(|_| Vec::new()).collect();
        let recv = comm.alltoallv(send, 1);
        assert_eq!(recv.len(), comm.size());
        assert!(recv.iter().all(Vec::is_empty));
        assert_eq!(comm.stats().bytes_sent, 0, "empty payloads move no bytes");
        assert_eq!(comm.stats().modeled_time_s, 0.0);

        // Mixed: only even-ranked peers get data.
        let send: Vec<Vec<u64>> = (0..comm.size())
            .map(|to| {
                if to % 2 == 0 {
                    vec![comm.rank() as u64]
                } else {
                    Vec::new()
                }
            })
            .collect();
        let recv = comm.alltoallv(send, 2);
        for (from, buf) in recv.iter().enumerate() {
            if comm.rank() % 2 == 0 {
                assert_eq!(buf, &vec![from as u64]);
            } else {
                assert!(buf.is_empty());
            }
        }

        // Empty allgather.
        let all = comm.allgather(Vec::new(), 3);
        assert_eq!(all.len(), comm.size());
        assert!(all.iter().all(Vec::is_empty));
    });
}

#[test]
fn empty_payload_collectives_local() {
    empty_payload_collectives_on(world::<u64>(4, NetworkModel::hdr100()));
}

#[test]
fn empty_payload_collectives_tcp() {
    empty_payload_collectives_on(tcp_world::<u64>(4, NetworkModel::hdr100()).unwrap());
}

fn single_rank_world_on<C: RankComm<u64> + Send + 'static>(worlds: Vec<C>) {
    assert_eq!(worlds.len(), 1);
    drive(worlds, |comm| {
        assert_eq!(comm.size(), 1);
        comm.barrier(); // must not block
        let recv = comm.alltoallv(vec![vec![7, 8]], 1);
        assert_eq!(recv, vec![vec![7, 8]]);
        let all = comm.allgather(vec![9], 2);
        assert_eq!(all, vec![vec![9]]);
        comm.send(0, 5, vec![42]);
        assert_eq!(comm.recv(0, 5), vec![42]);
        let stats = comm.stats();
        assert_eq!(stats.messages_sent, 0, "a lone rank never hits the wire");
        assert_eq!(stats.bytes_sent, 0);
    });
}

#[test]
fn single_rank_world_local() {
    single_rank_world_on(world::<u64>(1, NetworkModel::hdr100()));
}

#[test]
fn single_rank_world_tcp() {
    single_rank_world_on(tcp_world::<u64>(1, NetworkModel::hdr100()).unwrap());
}

fn out_of_order_stash_exhaustion_on<C: RankComm<u64> + Send + 'static>(worlds: Vec<C>) {
    const DEPTH: u64 = 64;
    drive(worlds, |comm| {
        let me = comm.rank();
        let size = comm.size();
        // Every rank sends DEPTH tagged messages to every peer in
        // *descending* tag order…
        for to in (0..size).filter(|&to| to != me) {
            for tag in (0..DEPTH).rev() {
                comm.send(to, tag, vec![me as u64 * 1000 + tag]);
            }
        }
        // …and receives them in *ascending* tag order, forcing the stash to
        // absorb DEPTH-1 out-of-order messages per peer before it drains.
        for from in (0..size).filter(|&from| from != me) {
            for tag in 0..DEPTH {
                assert_eq!(comm.recv(from, tag), vec![from as u64 * 1000 + tag]);
            }
        }
        comm.barrier();
    });
}

#[test]
fn out_of_order_stash_exhaustion_local() {
    out_of_order_stash_exhaustion_on(world::<u64>(4, NetworkModel::ideal()));
}

#[test]
fn out_of_order_stash_exhaustion_tcp() {
    out_of_order_stash_exhaustion_on(tcp_world::<u64>(4, NetworkModel::ideal()).unwrap());
}

fn barrier_charges_no_payload_traffic_on<C: RankComm<u64> + Send + 'static>(worlds: Vec<C>) {
    // LocalComm's barrier is a shared-memory Barrier and charges nothing;
    // TcpComm's gather–release control frames are an implementation detail
    // and must not show up either — otherwise comm stats of the two worlds
    // stop being comparable for the same schedule.
    drive(worlds, |comm| {
        comm.barrier();
        comm.barrier();
        let stats = comm.stats();
        assert_eq!(stats.messages_sent, 0, "barriers are not payload traffic");
        assert_eq!(stats.bytes_sent, 0);
        assert_eq!(stats.modeled_time_s, 0.0);
    });
}

#[test]
fn barrier_charges_no_payload_traffic_local() {
    barrier_charges_no_payload_traffic_on(world::<u64>(4, NetworkModel::hdr100()));
}

#[test]
fn barrier_charges_no_payload_traffic_tcp() {
    barrier_charges_no_payload_traffic_on(tcp_world::<u64>(4, NetworkModel::hdr100()).unwrap());
}

fn collective_wall_time_is_charged_on<C: RankComm<u64> + Send + 'static>(mut worlds: Vec<C>) {
    // Rank 1 enters the collective late; rank 0 must charge its blocking
    // wait inside alltoallv to wall_time_s (the comm_ratio honesty fix).
    let mut r1 = worlds.pop().unwrap();
    let mut r0 = worlds.pop().unwrap();
    let late = thread::spawn(move || {
        thread::sleep(std::time::Duration::from_millis(200));
        r1.alltoallv(vec![vec![1], vec![2]], 4);
        r1.stats()
    });
    let recv = r0.alltoallv(vec![vec![3], vec![4]], 4);
    assert_eq!(recv, vec![vec![3], vec![1]]);
    assert!(
        r0.stats().wall_time_s >= 0.1,
        "rank 0 blocked ~200ms inside the collective but charged only {}s",
        r0.stats().wall_time_s
    );
    late.join().unwrap();
}

#[test]
fn collective_wall_time_is_charged_local() {
    collective_wall_time_is_charged_on(world::<u64>(2, NetworkModel::ideal()));
}

#[test]
fn collective_wall_time_is_charged_tcp() {
    collective_wall_time_is_charged_on(tcp_world::<u64>(2, NetworkModel::ideal()).unwrap());
}

fn vote_any_agrees_on<C: RankComm<u64> + Send + 'static>(worlds: Vec<C>) {
    drive(worlds, |comm| {
        // Unanimous no.
        assert!(!comm.vote_any(false));
        // One dissenting rank flips everyone.
        assert!(comm.vote_any(comm.rank() == comm.size() - 1));
        // Unanimous yes.
        assert!(comm.vote_any(true));
        // Back to no: the epoch counter keeps rounds apart, so a fresh
        // round is not contaminated by earlier vote frames.
        assert!(!comm.vote_any(false));
        // Like barriers, votes are control traffic, not payload traffic —
        // otherwise comm stats of the cancellable and plain rank bodies
        // would stop being comparable for the same schedule.
        let stats = comm.stats();
        assert_eq!(stats.messages_sent, 0, "votes are not payload traffic");
        assert_eq!(stats.bytes_sent, 0);
        assert_eq!(stats.modeled_time_s, 0.0);
    });
}

#[test]
fn vote_any_agrees_local() {
    vote_any_agrees_on(world::<u64>(4, NetworkModel::hdr100()));
}

#[test]
fn vote_any_agrees_tcp() {
    vote_any_agrees_on(tcp_world::<u64>(4, NetworkModel::hdr100()).unwrap());
}

#[test]
fn vote_any_single_rank_is_its_own_majority() {
    drive(world::<u64>(1, NetworkModel::hdr100()), |comm| {
        assert!(comm.vote_any(true));
        assert!(!comm.vote_any(false));
        assert_eq!(comm.stats().messages_sent, 0);
    });
}

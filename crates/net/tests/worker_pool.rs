//! Persistent worker-pool regression suite: world reuse across a batch
//! (zero respawns, bit-identical to the fresh-launch reference), mid-sweep
//! cooperative cancellation with bounded latency, resident-worker hygiene
//! (warm plan cache, per-job trace state), and crash recovery (a killed
//! rank fails its job but leaves the pool usable).

use hisvsim_circuit::generators;
use hisvsim_cluster::NetworkModel;
use hisvsim_core::CancelToken;
use hisvsim_dag::CircuitDag;
use hisvsim_net::{execute_local_reference, NetError, ShippedJob, WorkerPool};
use hisvsim_partition::Strategy;
use hisvsim_runtime::{
    Backend, EngineKind, EngineSelector, PersistedPlan, SchedulerConfig, SimJob,
};
use hisvsim_service::{ServiceConfig, SimService, DEADLINE_EXCEEDED};
use hisvsim_statevec::{run_circuit, FusionStrategy, DEFAULT_FUSION_WIDTH};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

fn pool(workers: usize) -> WorkerPool {
    WorkerPool::with_worker_binary(workers, PathBuf::from(env!("CARGO_BIN_EXE_hisvsim-net")))
        .with_network(NetworkModel::hdr100())
}

fn single_level_job(engine: EngineKind, qubits: usize, workers: usize) -> ShippedJob {
    let circuit = generators::qft(qubits);
    let dag = CircuitDag::from_circuit(&circuit);
    let local = qubits - workers.trailing_zeros() as usize;
    let partition = Strategy::DagP.partition(&dag, local).unwrap();
    ShippedJob {
        engine,
        circuit,
        fusion: DEFAULT_FUSION_WIDTH,
        strategy: FusionStrategy::Auto,
        dispatch: Default::default(),
        plan: Some(PersistedPlan::Single(partition)),
        trace: false,
    }
}

fn baseline_job(name: &str, qubits: usize) -> ShippedJob {
    ShippedJob {
        engine: EngineKind::Baseline,
        circuit: generators::by_name(name, qubits),
        fusion: DEFAULT_FUSION_WIDTH,
        strategy: FusionStrategy::Auto,
        dispatch: Default::default(),
        plan: None,
        trace: false,
    }
}

/// The headline reuse guarantee: a batch of jobs runs on ONE worker world
/// (zero respawns after warm-up), every result bit-identical to the
/// fresh-launch in-process reference, across engines and circuits — so
/// residency (kept mesh, warm plan cache, recycled slices) changes *when*
/// work happens, never what it produces.
#[test]
fn eight_job_batch_reuses_one_world_and_stays_bit_identical() {
    let workers = 4;
    let pool = pool(workers);
    let jobs = [
        single_level_job(EngineKind::Dist, 12, workers),
        single_level_job(EngineKind::Hier, 11, workers),
        single_level_job(EngineKind::Dist, 12, workers), // repeat fingerprint
        baseline_job("ising", 10),
        single_level_job(EngineKind::Dist, 10, workers),
        single_level_job(EngineKind::Hier, 11, workers), // repeat fingerprint
        baseline_job("qaoa", 10),
        single_level_job(EngineKind::Dist, 12, workers), // repeat fingerprint
    ];
    for (index, job) in jobs.iter().enumerate() {
        let (state, report) = pool.execute(job).unwrap();
        let (reference, _) = execute_local_reference(job, workers, NetworkModel::hdr100()).unwrap();
        assert_eq!(
            state, reference,
            "job {index} on the resident world must be bit-identical to a fresh launch"
        );
        assert!(state.approx_eq(&run_circuit(&job.circuit), 1e-9));
        assert_eq!(report.num_ranks, workers);
    }
    let metrics = pool.metrics();
    assert_eq!(
        metrics.worlds_spawned, 1,
        "a warm batch must never respawn the worker world"
    );
    assert_eq!(metrics.jobs_run, jobs.len() as u64);
    assert_eq!(metrics.jobs_reused_world, jobs.len() as u64 - 1);
    assert_eq!(metrics.jobs_failed, 0);
    assert_eq!(metrics.jobs_cancelled, 0);
}

/// The headline bugfix: a [`CancelToken`] fired while the remote ranks are
/// mid-sweep stops them at their next cancel-vote checkpoint — well before
/// the job would have finished, not at the job boundary — and leaves the
/// world warm for the next job.
#[test]
fn cancel_mid_sweep_is_bounded_and_keeps_the_world_warm() {
    let workers = 2;
    let pool = pool(workers);
    // Heavy enough to make mid-sweep timing meaningful on both debug and
    // release builds; the baseline engine votes before every step, so the
    // cancel latency bound is one step, a small fraction of the run.
    let heavy = baseline_job("qft", 18);

    // Warm the world up and measure the uncancelled wall.
    let uncancelled_start = Instant::now();
    pool.execute(&heavy).unwrap();
    let uncancelled = uncancelled_start.elapsed();

    // Same job again, cancelling from another thread mid-sweep.
    let cancel = CancelToken::new();
    let delay = uncancelled / 5;
    let firer = {
        let cancel = cancel.clone();
        std::thread::spawn(move || {
            std::thread::sleep(delay);
            cancel.cancel();
        })
    };
    let cancelled_start = Instant::now();
    let err = pool
        .execute_detailed_cancellable(&heavy, NetworkModel::hdr100(), &cancel)
        .unwrap_err();
    let elapsed = cancelled_start.elapsed();
    firer.join().unwrap();
    assert!(matches!(err, NetError::Cancelled), "got: {err}");
    assert!(
        elapsed >= delay,
        "the job was rejected before the cancel even fired ({elapsed:?} < {delay:?})"
    );
    assert!(
        elapsed < uncancelled.mul_f64(0.8),
        "cancel was not honoured mid-sweep: cancelled run took {elapsed:?} \
         of an uncancelled {uncancelled:?}"
    );

    let metrics = pool.metrics();
    assert_eq!(metrics.jobs_cancelled, 1);
    assert_eq!(
        metrics.worlds_spawned, 1,
        "a vote-agreed cancel must keep the world warm"
    );

    // The world is genuinely usable afterwards: the next job reuses it and
    // still matches the reference bit for bit.
    let small = single_level_job(EngineKind::Dist, 11, workers);
    let (state, _) = pool.execute(&small).unwrap();
    let (reference, _) = execute_local_reference(&small, workers, NetworkModel::hdr100()).unwrap();
    assert_eq!(state, reference);
    assert_eq!(pool.metrics().worlds_spawned, 1);
}

/// An inert token must cost nothing observable: `execute` (which runs
/// under a token nobody fires) cancels nothing and completes normally —
/// guarding against the canceller thread misfiring.
#[test]
fn uncancelled_jobs_never_observe_the_cancel_machinery() {
    let workers = 2;
    let pool = pool(workers);
    let job = single_level_job(EngineKind::Dist, 10, workers);
    for _ in 0..3 {
        pool.execute(&job).unwrap();
    }
    let metrics = pool.metrics();
    assert_eq!(metrics.jobs_cancelled, 0);
    assert_eq!(metrics.jobs_failed, 0);
}

/// Resident-worker hygiene: a repeated fingerprint is answered from the
/// worker's warm plan cache (no second `fuse` span ships back), and a
/// worker's span recorder resets between jobs — an untraced job after a
/// traced one ships nothing.
#[test]
fn warm_plan_cache_skips_refusing_and_trace_state_resets_between_jobs() {
    let workers = 2;
    let pool = pool(workers);
    let mut job = single_level_job(EngineKind::Dist, 12, workers);
    job.trace = true;
    hisvsim_obs::set_enabled(true);
    let _ = hisvsim_obs::drain();

    let (first, _) = pool.execute(&job).unwrap();
    let spans = hisvsim_obs::drain();
    let worker_fuses = |spans: &[hisvsim_obs::SpanRecord]| {
        spans
            .iter()
            .filter(|s| s.pid >= 1 && s.cat == "job" && s.name == "fuse")
            .count()
    };
    assert_eq!(
        worker_fuses(&spans),
        workers,
        "a cold worker must re-fuse the shipped partition once per rank"
    );

    let (second, _) = pool.execute(&job).unwrap();
    let spans = hisvsim_obs::drain();
    assert_eq!(
        worker_fuses(&spans),
        0,
        "a repeated fingerprint must be served from the warm plan cache"
    );
    assert_eq!(first, second, "cache reuse must not change the result");

    // Satellite 1 regression: after a traced job, an untraced job on the
    // same resident worker must ship no spans at all (recorder disabled
    // and ring drained between jobs).
    job.trace = false;
    pool.execute(&job).unwrap();
    let spans = hisvsim_obs::drain();
    assert!(
        spans.iter().all(|s| s.pid == 0),
        "an untraced job shipped worker spans: {:?}",
        spans
            .iter()
            .filter(|s| s.pid >= 1)
            .map(|s| (&s.cat, &s.name))
            .collect::<Vec<_>>()
    );
    hisvsim_obs::set_enabled(false);
    let _ = hisvsim_obs::drain();
}

/// Crash recovery: killing a rank mid-job fails that job promptly (peer
/// loss is an error, not a hang), drops the world, and the next job
/// respawns a fresh world and succeeds.
#[test]
#[cfg(unix)]
fn killed_worker_mid_job_fails_the_job_but_the_pool_recovers() {
    let workers = 2;
    let pool = Arc::new(pool(workers));
    let heavy = baseline_job("qft", 18);

    // Warm up (and measure, to place the kill mid-job on any machine).
    let warmup_start = Instant::now();
    pool.execute(&heavy).unwrap();
    let heavy_wall = warmup_start.elapsed();
    let pids = pool.worker_pids();
    assert_eq!(pids.len(), workers);

    let runner = {
        let pool = Arc::clone(&pool);
        let heavy = heavy.clone();
        std::thread::spawn(move || pool.execute(&heavy).map(|_| ()))
    };
    std::thread::sleep(heavy_wall / 4);
    let killed = std::process::Command::new("kill")
        .args(["-9", &pids[0].to_string()])
        .status()
        .unwrap();
    assert!(killed.success());

    let err = runner
        .join()
        .unwrap()
        .expect_err("a job must fail when one of its ranks dies");
    assert!(
        !matches!(err, NetError::Cancelled),
        "a killed rank is a failure, not a cancellation"
    );
    assert_eq!(pool.metrics().jobs_failed, 1);

    // The pool recovers: the next job respawns a fresh world (at a fresh
    // epoch) and produces the right answer.
    let small = single_level_job(EngineKind::Dist, 11, workers);
    let (state, _) = pool.execute(&small).unwrap();
    let (reference, _) = execute_local_reference(&small, workers, NetworkModel::hdr100()).unwrap();
    assert_eq!(state, reference);
    assert_eq!(pool.metrics().worlds_spawned, 2);
}

/// The full wiring: `SimJob::with_deadline` on a process-backed job kills
/// the remote ranks mid-sweep through the service's deadline timer → the
/// job's `CancelToken` → the pool's `Cancel{epoch}` frame → the ranks'
/// cancel vote — and the service (and its pooled backend) stay usable.
#[test]
fn deadline_cancels_a_process_job_mid_sweep_through_the_service() {
    let workers = 2;
    let backend = Arc::new(pool(workers));
    let service = SimService::start(
        ServiceConfig::new().with_scheduler(
            SchedulerConfig::default()
                .with_selector(EngineSelector::scaled(4, 8))
                .with_process_backend(Arc::clone(&backend) as _),
        ),
    );

    // Calibrate: how long does the heavy job take uncancelled?
    let heavy = || {
        SimJob::new(generators::qft(18))
            .with_engine(EngineKind::Baseline)
            .with_backend(Backend::Process)
    };
    let uncancelled_start = Instant::now();
    service.submit(heavy()).wait().unwrap();
    let uncancelled = uncancelled_start.elapsed();

    // The same job under a deadline a fraction of its wall: the remote
    // ranks must stop mid-sweep, well before the uncancelled wall.
    let deadline = uncancelled / 5;
    let doomed_start = Instant::now();
    let message = service
        .submit(heavy().with_deadline(deadline))
        .wait()
        .expect_err("the deadline must kill the job")
        .to_string();
    let elapsed = doomed_start.elapsed();
    assert!(
        message.contains(DEADLINE_EXCEEDED),
        "unexpected failure: {message}"
    );
    assert!(
        elapsed < uncancelled.mul_f64(0.8),
        "remote ranks were not cancelled mid-sweep: deadlined run took \
         {elapsed:?} of an uncancelled {uncancelled:?}"
    );

    // Deadline expiry left the world warm and the service usable.
    let ok = service
        .submit(
            SimJob::new(generators::qft(11))
                .with_engine(EngineKind::Dist)
                .with_backend(Backend::Process),
        )
        .wait()
        .unwrap();
    assert!(ok
        .state
        .unwrap()
        .approx_eq(&run_circuit(&generators::qft(11)), 1e-9));
    let metrics_text = service.metrics_text();
    assert!(
        metrics_text.contains("hisvsim_pool_worlds_spawned_total 1\n"),
        "pool metrics missing or world respawned:\n{}",
        metrics_text
            .lines()
            .filter(|l| l.contains("hisvsim_pool"))
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(metrics_text.contains("hisvsim_pool_jobs_cancelled_total 1\n"));
    service.shutdown().unwrap();

    // Service shutdown tears the resident world down (workers exit).
    assert!(backend.worker_pids().is_empty());
}

//! Multi-process cluster tests: real worker processes of the
//! `hisvsim-net` binary on localhost, compared bit-for-bit against the
//! in-process channel world and the flat reference simulator.

use hisvsim_circuit::generators;
use hisvsim_cluster::NetworkModel;
use hisvsim_dag::CircuitDag;
use hisvsim_net::{execute_local_reference, ClusterLauncher, ShippedJob};
use hisvsim_partition::{MultilevelPartitioner, Strategy};
use hisvsim_runtime::{Backend, EngineKind, PersistedPlan, Scheduler, SchedulerConfig, SimJob};
use hisvsim_runtime::{EngineSelector, PlanEffort};
use hisvsim_service::{ServiceConfig, SimService};
use hisvsim_statevec::{run_circuit, FusionStrategy, DEFAULT_FUSION_WIDTH};
use std::path::PathBuf;
use std::sync::Arc;

fn launcher(workers: usize) -> ClusterLauncher {
    ClusterLauncher::with_worker_binary(workers, PathBuf::from(env!("CARGO_BIN_EXE_hisvsim-net")))
        .with_network(NetworkModel::hdr100())
}

fn single_level_job(engine: EngineKind, qubits: usize, workers: usize) -> ShippedJob {
    single_level_job_with_strategy(engine, qubits, workers, FusionStrategy::Auto)
}

fn single_level_job_with_strategy(
    engine: EngineKind,
    qubits: usize,
    workers: usize,
    strategy: FusionStrategy,
) -> ShippedJob {
    let circuit = generators::qft(qubits);
    let dag = CircuitDag::from_circuit(&circuit);
    let local = qubits - workers.trailing_zeros() as usize;
    let partition = Strategy::DagP.partition(&dag, local).unwrap();
    ShippedJob {
        engine,
        circuit,
        fusion: DEFAULT_FUSION_WIDTH,
        strategy,
        dispatch: Default::default(),
        plan: Some(PersistedPlan::Single(partition)),
        trace: false,
    }
}

#[test]
fn four_process_dist_run_is_bit_identical_to_in_process() {
    let workers = 4;
    let job = single_level_job(EngineKind::Dist, 12, workers);
    let (state, report) = launcher(workers).execute(&job).unwrap();
    let (reference, _) = execute_local_reference(&job, workers, NetworkModel::hdr100()).unwrap();
    assert_eq!(state, reference, "process run must be bit-identical");
    assert!(state.approx_eq(&run_circuit(&job.circuit), 1e-9));
    assert_eq!(report.num_ranks, workers);
    assert!(report.comm.bytes_sent > 0, "4 ranks must exchange state");
    assert!(
        report.comm.wall_time_s > 0.0,
        "collectives charge wall time"
    );
}

#[test]
fn four_process_hier_plan_is_bit_identical_to_in_process() {
    let workers = 4;
    let job = single_level_job(EngineKind::Hier, 11, workers);
    let (state, _) = launcher(workers).execute(&job).unwrap();
    let (reference, _) = execute_local_reference(&job, workers, NetworkModel::hdr100()).unwrap();
    assert_eq!(state, reference);
    assert!(state.approx_eq(&run_circuit(&job.circuit), 1e-9));
}

#[test]
fn process_baseline_and_multilevel_match_the_flat_simulator() {
    let workers = 2;
    // Baseline ships no plan; workers derive the static-mapping schedule.
    let baseline = ShippedJob {
        engine: EngineKind::Baseline,
        circuit: generators::by_name("ising", 9),
        fusion: DEFAULT_FUSION_WIDTH,
        strategy: FusionStrategy::Auto,
        dispatch: Default::default(),
        plan: None,
        trace: false,
    };
    let (state, _) = launcher(workers).execute(&baseline).unwrap();
    let (reference, _) =
        execute_local_reference(&baseline, workers, NetworkModel::hdr100()).unwrap();
    assert_eq!(state, reference);
    assert!(state.approx_eq(&run_circuit(&baseline.circuit), 1e-9));

    // Multilevel ships a two-level partition.
    let circuit = generators::by_name("qaoa", 9);
    let dag = CircuitDag::from_circuit(&circuit);
    let ml = MultilevelPartitioner::default()
        .partition(&dag, 8, 3)
        .unwrap();
    let job = ShippedJob {
        engine: EngineKind::Multilevel,
        circuit,
        fusion: DEFAULT_FUSION_WIDTH,
        strategy: FusionStrategy::Auto,
        dispatch: Default::default(),
        plan: Some(PersistedPlan::Two(ml)),
        trace: false,
    };
    let (state, _) = launcher(workers).execute(&job).unwrap();
    let (reference, _) = execute_local_reference(&job, workers, NetworkModel::hdr100()).unwrap();
    assert_eq!(state, reference);
    assert!(state.approx_eq(&run_circuit(&job.circuit), 1e-9));
}

#[test]
fn shipped_dag_strategy_runs_bit_identical_across_transports() {
    // A worker re-fuses the shipped partition with the shipped strategy;
    // the fusion scan is deterministic, so the TCP-process run and the
    // in-process channel-world run of the same job must agree bit for bit
    // under the DAG strategy exactly as under the window strategy.
    let workers = 4;
    for strategy in [FusionStrategy::Window, FusionStrategy::Dag] {
        let job = single_level_job_with_strategy(EngineKind::Dist, 11, workers, strategy);
        let (state, _) = launcher(workers).execute(&job).unwrap();
        let (reference, _) =
            execute_local_reference(&job, workers, NetworkModel::hdr100()).unwrap();
        assert_eq!(
            state, reference,
            "{strategy:?}: process run must be bit-identical to the local world"
        );
        assert!(state.approx_eq(&run_circuit(&job.circuit), 1e-9));
    }
}

#[test]
fn scheduler_routes_process_backend_jobs_through_the_launcher() {
    let backend: Arc<ClusterLauncher> = Arc::new(launcher(4));
    let scheduler = Scheduler::new(
        SchedulerConfig::default()
            .with_selector(EngineSelector::scaled(4, 8))
            .with_effort(PlanEffort::Fast)
            .with_process_backend(backend),
    );
    let circuit = generators::qft(11);
    let expected = run_circuit(&circuit);
    let jobs = vec![
        SimJob::new(circuit.clone())
            .with_engine(EngineKind::Dist)
            .with_backend(Backend::Process),
        SimJob::new(circuit.clone()).with_engine(EngineKind::Dist), // local twin
    ];
    let report = scheduler.run_batch(jobs);
    let process = &report.results[0];
    let local = &report.results[1];
    assert!(process.state.as_ref().unwrap().approx_eq(&expected, 1e-9));
    assert!(local.state.as_ref().unwrap().approx_eq(&expected, 1e-9));
    assert_eq!(process.report.num_ranks, 4);
    assert_eq!(process.report.strategy, "process");
    assert!(process.comm_stats().bytes_sent > 0);
}

#[test]
fn requesting_process_backend_without_registration_fails_cleanly() {
    let service = SimService::start(
        ServiceConfig::new()
            .with_scheduler(SchedulerConfig::default().with_selector(EngineSelector::scaled(4, 8))),
    );
    let handle = service.submit(
        SimJob::new(generators::qft(8))
            .with_engine(EngineKind::Dist)
            .with_backend(Backend::Process),
    );
    let err = handle.wait().unwrap_err();
    let message = err.to_string();
    assert!(
        message.contains("no process backend"),
        "unexpected failure message: {message}"
    );
    service.shutdown().unwrap();
}

#[test]
fn too_small_circuit_is_rejected_before_any_worker_launches() {
    let service = SimService::start(
        ServiceConfig::new().with_scheduler(
            SchedulerConfig::default()
                .with_selector(EngineSelector::scaled(4, 8))
                .with_process_backend(Arc::new(launcher(4))),
        ),
    );
    // 2 qubits cannot give 4 ranks a local slice wide enough for a
    // 2-qubit gate: the pool must reject this cleanly, not let worker
    // processes die on an assert.
    let handle = service.submit(
        SimJob::new(generators::qft(2))
            .with_engine(EngineKind::Dist)
            .with_backend(Backend::Process),
    );
    let message = handle.wait().unwrap_err().to_string();
    assert!(message.contains("too small"), "got: {message}");
    service.shutdown().unwrap();
}

#[test]
#[cfg(unix)]
fn crashed_worker_fails_the_launch_instead_of_hanging() {
    // A "worker binary" that exits immediately: the launcher must surface
    // a Worker error promptly (liveness polling), not block in accept.
    let bad = ClusterLauncher::with_worker_binary(2, PathBuf::from("/bin/false"))
        .with_network(NetworkModel::ideal());
    let job = single_level_job(EngineKind::Dist, 8, 2);
    let start = std::time::Instant::now();
    let err = bad.execute(&job).unwrap_err();
    assert!(
        start.elapsed() < std::time::Duration::from_secs(30),
        "launch failure took too long"
    );
    let message = err.to_string();
    assert!(
        message.contains("worker") || message.contains("i/o"),
        "got: {message}"
    );
}

#[test]
fn restarted_launcher_service_reuses_shipped_plans_with_zero_replans() {
    let dir = std::env::temp_dir().join(format!("hisvsim-net-warm-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let snapshot = dir.join("plans.json");
    let circuit = generators::qft(11);
    let expected = run_circuit(&circuit);
    let config = || {
        ServiceConfig::new()
            .with_scheduler(
                SchedulerConfig::default()
                    .with_selector(EngineSelector::scaled(4, 8))
                    .with_process_backend(Arc::new(launcher(4))),
            )
            .with_persistence(&snapshot)
    };
    let job = || {
        SimJob::new(circuit.clone())
            .with_engine(EngineKind::Dist)
            .with_backend(Backend::Process)
    };

    // First launcher service: plans from scratch, ships, persists.
    let first = SimService::start(config());
    let state1 = first.submit(job()).wait().unwrap().state.unwrap();
    assert_eq!(first.cache_stats().misses, 1);
    first.shutdown().unwrap();

    // Restarted launcher service: the shipped partition is reloaded from
    // the snapshot — zero replans on the repeat workload.
    let second = SimService::start(config());
    let state2 = second.submit(job()).wait().unwrap().state.unwrap();
    let stats = second.cache_stats();
    assert_eq!(stats.misses, 0, "repeat workload must not replan");
    assert_eq!(stats.warm_hits, 1, "plan must come from the snapshot");
    second.shutdown().unwrap();

    // Same partition shipped both times ⇒ bit-identical assembled states.
    assert_eq!(state1, state2);
    assert!(state1.approx_eq(&expected, 1e-9));
    std::fs::remove_file(&snapshot).ok();
}

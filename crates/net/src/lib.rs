//! # hisvsim-net
//!
//! The multi-process cluster transport of HiSVSIM-RS: the piece that turns
//! the virtual cluster (rank threads + channels) into real worker
//! *processes* talking over sockets, behind the same
//! [`RankComm`](hisvsim_cluster::RankComm) trait the engines are written
//! against.
//!
//! * [`wire`] — length-prefixed frames and little-endian item codecs
//!   (hand-rolled: the vendor set has no network serialization crates),
//! * [`tcp`] — [`TcpComm`]: the full-mesh TCP implementation of `RankComm`
//!   (rendezvous handshake, per-peer tag stash, gather–release barrier,
//!   the same [`CommStats`](hisvsim_cluster::CommStats) accounting),
//! * [`proto`] — the pool↔worker control protocol: an epoch-tagged
//!   [`WorkerCommand`] stream over a persistent channel; [`ShippedJob`]
//!   carries the circuit plus the partition in its
//!   [`PersistedPlan`](hisvsim_runtime::PersistedPlan) wire shape — fused
//!   matrices never travel, workers re-fuse locally,
//! * [`worker`] — the `hisvsim-net worker` process body: a resident
//!   command loop running the exact engine rank bodies the in-process
//!   world runs, with a warm plan cache and recycled amplitude slices,
//! * [`pool`] — [`WorkerPool`] (alias [`ClusterLauncher`]): spawn N
//!   workers **once**, then ship `Run` frames and gather slices and stats
//!   per job, with mid-sweep cooperative cancellation (`Cancel { epoch }`
//!   → a cancel *vote* across the ranks); implements the runtime's
//!   [`ProcessBackend`](hisvsim_runtime::ProcessBackend) so a
//!   [`SimJob`](hisvsim_runtime::SimJob) can request
//!   [`Backend::Process`](hisvsim_runtime::Backend::Process),
//! * [`launcher`] — shared launch plumbing (worker-binary discovery,
//!   child-process guard, liveness-aware socket helpers) and the
//!   in-process reference executor.
//!
//! Because every transport implements one trait and the rank bodies are
//! shared, a process-backed run is **bit-identical** to the in-process run
//! of the same plan — the acceptance bar the `smoke` subcommand checks.

#![warn(missing_docs)]

pub mod launcher;
pub mod pool;
pub mod proto;
pub mod tcp;
pub mod wire;
pub mod worker;

pub use launcher::{execute_local_reference, find_worker_binary, NetError, RankSummary};
pub use pool::{ClusterLauncher, WorkerPool};
pub use proto::{LaunchSpec, RankReport, RankStatus, ShippedJob, WorkerCommand, WorkerHello};
pub use tcp::{tcp_world, PeerLost, TcpComm};
pub use wire::WireItem;
pub use worker::{
    execute_shipped_rank, execute_shipped_rank_controlled, run_worker, WorkerPlanCache,
};

//! Worker-process mode (`hisvsim-net worker <control_addr> <rank>`).
//!
//! A worker is one rank of the process cluster: it checks in with the
//! pool, joins the TCP mesh **once**, then serves jobs from a persistent
//! command loop — re-fusing each shipped partition locally (with a warm
//! plan cache, so a repeated fingerprint re-fuses nothing), running the
//! *same* engine rank bodies the in-process world runs, and streaming its
//! identity-layout slice back per job. A reader thread drains
//! [`WorkerCommand`] frames concurrently, so a `Cancel { epoch }` reaches
//! the running job's [`CancelToken`] mid-sweep; the rank bodies observe it
//! at their collective cancel-vote checkpoints.

use crate::launcher::NetError;
use crate::proto::{
    LaunchSpec, RankReport, RankStatus, ShippedJob, WorkerCommand, WorkerHello, AMPS_TAG,
};
use crate::tcp::{PeerLost, TcpComm};
use crate::wire::{recv_json, send_json, write_frame};
use hisvsim_circuit::Complex64;
use hisvsim_cluster::RankComm;
use hisvsim_core::{
    run_baseline_rank_cancellable, run_fused_plan_rank_cancellable,
    run_two_level_plan_rank_cancellable, CancelToken, Cancelled, FusedSinglePlan,
    FusedTwoLevelPlan, RankOutcome,
};
use hisvsim_dag::CircuitDag;
use hisvsim_obs::log;
use hisvsim_runtime::{EngineKind, PersistedPlan};
use hisvsim_statevec::amplitudes_to_le_bytes;
use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::net::{TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};

const LOG_TARGET: &str = "hisvsim-net::worker";

/// A resident worker's warm plan cache: fused plans keyed by everything
/// that determines them (circuit fingerprint, engine, fusion width,
/// strategy, and the shipped partition itself), so a repeated fingerprint
/// re-fuses nothing. Fusion is deterministic, which makes a cache hit
/// bit-identical to a rebuild — reuse changes *when* work happens, never
/// what it produces. Bounded FIFO, sized for parameter-sweep batches.
pub struct WorkerPlanCache {
    plans: HashMap<u64, BuiltPlan>,
    order: VecDeque<u64>,
    capacity: usize,
    hits: u64,
    misses: u64,
}

#[derive(Clone)]
enum BuiltPlan {
    Single(Arc<FusedSinglePlan>),
    Two(Arc<FusedTwoLevelPlan>),
}

impl WorkerPlanCache {
    /// A cache holding at most `capacity` fused plans.
    pub fn new(capacity: usize) -> Self {
        Self {
            plans: HashMap::new(),
            order: VecDeque::new(),
            capacity: capacity.max(1),
            hits: 0,
            misses: 0,
        }
    }

    /// `(hits, misses)` so far — a repeated fingerprint must hit.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    fn get_or_build(&mut self, key: u64, build: impl FnOnce() -> BuiltPlan) -> BuiltPlan {
        if let Some(plan) = self.plans.get(&key) {
            self.hits += 1;
            return plan.clone();
        }
        self.misses += 1;
        let plan = build();
        if self.plans.len() >= self.capacity {
            if let Some(evicted) = self.order.pop_front() {
                self.plans.remove(&evicted);
            }
        }
        self.plans.insert(key, plan.clone());
        self.order.push_back(key);
        plan
    }
}

/// Everything that determines the fused schedule, folded into one key.
fn plan_key(job: &ShippedJob) -> u64 {
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    job.circuit.fingerprint().hash(&mut hasher);
    job.engine.name().hash(&mut hasher);
    job.fusion.hash(&mut hasher);
    job.strategy.name().hash(&mut hasher);
    // The shipped partition travels in its (deterministic) wire shape;
    // hashing it covers plans that differ only in their working-set limit.
    serde_json::to_string(&job.plan)
        .unwrap_or_default()
        .hash(&mut hasher);
    hasher.finish()
}

/// Execute one rank of a shipped job on any [`RankComm`] world. This is the
/// single dispatch point shared by worker processes (over
/// [`TcpComm`]) and the in-process reference executor (over
/// [`LocalComm`](hisvsim_cluster::LocalComm)) — which is what makes the two
/// runs bit-identical by construction. Runs the cancellable rank bodies
/// with an inert token, so its schedule (cancel votes included) matches
/// [`execute_shipped_rank_controlled`] exactly.
pub fn execute_shipped_rank<C: RankComm<Complex64>>(
    job: &ShippedJob,
    comm: &mut C,
) -> Result<RankOutcome, NetError> {
    let mut plans = WorkerPlanCache::new(1);
    execute_shipped_rank_controlled(job, comm, &CancelToken::new(), &mut plans, None)
}

/// [`execute_shipped_rank`] with the resident-worker machinery threaded
/// through: a [`CancelToken`] the rank bodies vote on at their cooperative
/// checkpoints (all ranks stop together or not at all), a warm
/// [`WorkerPlanCache`] so a repeated fingerprint re-fuses nothing, and an
/// optional recycled local-slice allocation from the previous job.
pub fn execute_shipped_rank_controlled<C: RankComm<Complex64>>(
    job: &ShippedJob,
    comm: &mut C,
    cancel: &CancelToken,
    plans: &mut WorkerPlanCache,
    recycled: Option<Vec<Complex64>>,
) -> Result<RankOutcome, NetError> {
    let fusion = job.fusion.max(1);
    let strategy = job.strategy;
    let dispatch = job.dispatch;
    let cancelled = |_: Cancelled| NetError::Cancelled;
    match job.engine {
        EngineKind::Baseline => run_baseline_rank_cancellable(
            comm,
            &job.circuit,
            fusion,
            strategy,
            dispatch,
            cancel,
            recycled,
        )
        .map_err(cancelled),
        EngineKind::Hier | EngineKind::Dist => {
            let Some(PersistedPlan::Single(partition)) = &job.plan else {
                return Err(NetError::Protocol(format!(
                    "engine {} needs a single-level plan, got {:?}",
                    job.engine,
                    job.plan.as_ref().map(plan_shape)
                )));
            };
            let plan = plans.get_or_build(plan_key(job), || {
                let _fuse = hisvsim_obs::span("job", "fuse")
                    .detail(format!("{} gates, width {fusion}", job.circuit.num_gates()));
                let dag = CircuitDag::from_circuit(&job.circuit);
                BuiltPlan::Single(Arc::new(FusedSinglePlan::build_with_strategy(
                    &job.circuit,
                    &dag,
                    partition.clone(),
                    fusion,
                    strategy,
                )))
            });
            let BuiltPlan::Single(plan) = plan else {
                return Err(NetError::Protocol("plan cache shape mismatch".to_string()));
            };
            run_fused_plan_rank_cancellable(
                comm,
                job.circuit.num_qubits(),
                &plan,
                dispatch,
                cancel,
                recycled,
            )
            .map_err(cancelled)
        }
        EngineKind::Multilevel => {
            let Some(PersistedPlan::Two(ml)) = &job.plan else {
                return Err(NetError::Protocol(format!(
                    "engine multilevel needs a two-level plan, got {:?}",
                    job.plan.as_ref().map(plan_shape)
                )));
            };
            let plan = plans.get_or_build(plan_key(job), || {
                let _fuse = hisvsim_obs::span("job", "fuse")
                    .detail(format!("{} gates, width {fusion}", job.circuit.num_gates()));
                let dag = CircuitDag::from_circuit(&job.circuit);
                BuiltPlan::Two(Arc::new(FusedTwoLevelPlan::build_with_strategy(
                    &job.circuit,
                    &dag,
                    ml.clone(),
                    fusion,
                    strategy,
                )))
            });
            let BuiltPlan::Two(plan) = plan else {
                return Err(NetError::Protocol("plan cache shape mismatch".to_string()));
            };
            run_two_level_plan_rank_cancellable(
                comm,
                job.circuit.num_qubits(),
                &plan,
                dispatch,
                cancel,
                recycled,
            )
            .map_err(cancelled)
        }
    }
}

fn plan_shape(plan: &PersistedPlan) -> &'static str {
    match plan {
        PersistedPlan::Single(_) => "single-level",
        PersistedPlan::Two(_) => "two-level",
    }
}

/// Render a caught rank-body panic as a failure message: a typed
/// [`PeerLost`] payload gets its own message, anything else the panic's
/// string payload (or a placeholder).
fn describe_panic(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(lost) = payload.downcast_ref::<PeerLost>() {
        return lost.to_string();
    }
    if let Some(msg) = payload.downcast_ref::<&str>() {
        return (*msg).to_string();
    }
    if let Some(msg) = payload.downcast_ref::<String>() {
        return msg.clone();
    }
    "rank body panicked".to_string()
}

/// The worker-process body: rendezvous and mesh **once**, then serve jobs
/// from the persistent command loop until `Shutdown` (or the pool's side
/// of the control connection closes). A reader thread drains commands so a
/// `Cancel { epoch }` lands on the running job's token mid-sweep; epochs
/// that already finished are ignored.
pub fn run_worker(control_addr: &str, rank: usize) -> Result<(), NetError> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let data_addr = listener.local_addr()?.to_string();
    let mut control = TcpStream::connect(control_addr)?;
    control.set_nodelay(true)?;
    send_json(&mut control, &WorkerHello { rank, data_addr })?;
    let spec: LaunchSpec = recv_json(&mut control)?;
    if spec.rank != rank {
        return Err(NetError::Protocol(format!(
            "launch spec addressed to rank {}, this worker is rank {rank}",
            spec.rank
        )));
    }
    log::debug(
        LOG_TARGET,
        "launch spec received",
        &[
            ("rank", &rank.to_string()),
            ("size", &spec.size.to_string()),
            ("base_epoch", &spec.epoch.to_string()),
        ],
    );
    let mut comm =
        TcpComm::<Complex64>::connect_mesh(rank, spec.size, spec.network, listener, &spec.peers)?;

    // Command reader: Run/Shutdown are queued for the job loop; Cancel
    // fires the matching in-flight token directly (stale epochs miss the
    // map and are dropped). EOF on the control stream — the pool died —
    // reads as Shutdown.
    let (command_tx, command_rx) = mpsc::channel::<Option<(u64, ShippedJob, CancelToken)>>();
    let cancels: Arc<Mutex<HashMap<u64, CancelToken>>> = Arc::new(Mutex::new(HashMap::new()));
    let reader_cancels = Arc::clone(&cancels);
    let mut reader = control.try_clone()?;
    std::thread::spawn(move || loop {
        match recv_json::<WorkerCommand>(&mut reader) {
            Ok(WorkerCommand::Run(epoch, job)) => {
                let token = CancelToken::new();
                reader_cancels
                    .lock()
                    .expect("cancel map poisoned")
                    .insert(epoch, token.clone());
                if command_tx.send(Some((epoch, job, token))).is_err() {
                    return;
                }
            }
            Ok(WorkerCommand::Cancel(epoch)) => {
                if let Some(token) = reader_cancels
                    .lock()
                    .expect("cancel map poisoned")
                    .get(&epoch)
                {
                    token.cancel();
                }
            }
            Ok(WorkerCommand::Shutdown) | Err(_) => {
                let _ = command_tx.send(None);
                return;
            }
        }
    });

    let mut plans = WorkerPlanCache::new(16);
    let mut resident: Option<Vec<Complex64>> = None;
    while let Ok(Some((epoch, job, token))) = command_rx.recv() {
        // Per-job recorder hygiene on a resident worker: drop any stale
        // spans a previous job left in the ring, and track this job's
        // trace flag — an untraced job after a traced one must not keep
        // recording (and must not ship the traced job's leftovers).
        let _ = hisvsim_obs::drain();
        hisvsim_obs::set_enabled(job.trace);
        comm.reset_stats();
        comm.begin_job();
        let result = catch_unwind(AssertUnwindSafe(|| {
            execute_shipped_rank_controlled(&job, &mut comm, &token, &mut plans, resident.take())
        }));
        cancels.lock().expect("cancel map poisoned").remove(&epoch);
        let (cache_hits, cache_misses) = plans.stats();
        match result {
            Ok(Ok(outcome)) => {
                log::debug(
                    LOG_TARGET,
                    "rank body complete",
                    &[
                        ("rank", &rank.to_string()),
                        ("epoch", &epoch.to_string()),
                        ("compute_s", &format!("{:.3}", outcome.compute_time_s)),
                        ("exchanges", &outcome.exchanges.to_string()),
                        ("plan_cache_hits", &cache_hits.to_string()),
                        ("plan_cache_misses", &cache_misses.to_string()),
                    ],
                );
                // Aggregate this rank's measured-cost delta from its own
                // spans before shipping both back: the spans feed the
                // pool's merged timeline, the delta feeds its profile
                // store (cell-wise additive merge). The worker never sees
                // the pool's profile — calibration happens on the pool
                // side only, so shipped jobs stay deterministic.
                let (spans, profile) = if job.trace {
                    let spans = hisvsim_obs::drain();
                    let mut profile = hisvsim_obs::CostProfile::new();
                    profile.absorb_spans(&spans, job.dispatch.resolved_name());
                    profile.absorb_phase(
                        job.engine.name(),
                        "execute",
                        outcome.compute_time_s,
                        outcome.local.len() as u64 * 32,
                    );
                    (spans, profile)
                } else {
                    (Vec::new(), hisvsim_obs::CostProfile::new())
                };
                send_json(
                    &mut control,
                    &RankReport {
                        rank,
                        epoch,
                        status: RankStatus::Ok,
                        compute_time_s: outcome.compute_time_s,
                        comm: outcome.comm,
                        exchanges: outcome.exchanges,
                        amp_count: outcome.local.len(),
                        spans,
                        profile,
                    },
                )?;
                write_frame(
                    &mut control,
                    AMPS_TAG,
                    &amplitudes_to_le_bytes(&outcome.local),
                )?;
                // Keep the slice allocation resident for the next job of
                // the batch (zero-filled on reuse, so results never
                // depend on it).
                resident = Some(outcome.local);
            }
            Ok(Err(NetError::Cancelled)) => {
                log::debug(
                    LOG_TARGET,
                    "job cancelled at a vote checkpoint",
                    &[("rank", &rank.to_string()), ("epoch", &epoch.to_string())],
                );
                // All ranks agreed before entering a part, so the mesh is
                // clean — report and stay resident for the next job.
                let _ = hisvsim_obs::drain();
                send_json(
                    &mut control,
                    &RankReport {
                        rank,
                        epoch,
                        status: RankStatus::Cancelled,
                        compute_time_s: 0.0,
                        comm: comm.stats(),
                        exchanges: 0,
                        amp_count: 0,
                        spans: Vec::new(),
                        profile: hisvsim_obs::CostProfile::new(),
                    },
                )?;
            }
            Ok(Err(e)) => {
                // A protocol-level failure (bad plan shape): the job
                // cannot run, and whether the mesh was touched is
                // unknowable from here — report and exit, letting the
                // pool respawn the world.
                let message = e.to_string();
                let _ = report_failure(&mut control, rank, epoch, &comm, &message);
                return Err(NetError::Worker(message));
            }
            Err(payload) => {
                // Peer loss or a rank-body panic mid-collective: the mesh
                // state is undefined. Report the failure so the pool can
                // fail this job promptly, then exit — the pool respawns
                // the world for the next job.
                let message = describe_panic(payload);
                log::error(
                    LOG_TARGET,
                    "rank body failed",
                    &[
                        ("rank", &rank.to_string()),
                        ("epoch", &epoch.to_string()),
                        ("error", &message),
                    ],
                );
                let _ = report_failure(&mut control, rank, epoch, &comm, &message);
                return Err(NetError::Worker(message));
            }
        }
        hisvsim_obs::set_enabled(false);
    }
    Ok(())
}

fn report_failure<C: RankComm<Complex64>>(
    control: &mut TcpStream,
    rank: usize,
    epoch: u64,
    comm: &C,
    message: &str,
) -> Result<(), NetError> {
    send_json(
        control,
        &RankReport {
            rank,
            epoch,
            status: RankStatus::Failed(message.to_string()),
            compute_time_s: 0.0,
            comm: comm.stats(),
            exchanges: 0,
            amp_count: 0,
            spans: Vec::new(),
            profile: hisvsim_obs::CostProfile::new(),
        },
    )?;
    Ok(())
}

//! Worker-process mode (`hisvsim-net worker <control_addr> <rank>`).
//!
//! A worker is one rank of the process cluster: it checks in with the
//! launcher, joins the TCP mesh, re-fuses the shipped partition locally,
//! runs the *same* engine rank body the in-process world runs, and streams
//! its identity-layout slice back.

use crate::launcher::NetError;
use crate::proto::{LaunchSpec, RankReport, ShippedJob, WorkerHello, AMPS_TAG};
use crate::tcp::TcpComm;
use crate::wire::{recv_json, send_json, write_frame};
use hisvsim_circuit::Complex64;
use hisvsim_cluster::RankComm;
use hisvsim_core::{
    run_baseline_rank, run_fused_plan_rank, run_two_level_plan_rank, FusedSinglePlan,
    FusedTwoLevelPlan, RankOutcome,
};
use hisvsim_dag::CircuitDag;
use hisvsim_obs::log;
use hisvsim_runtime::{EngineKind, PersistedPlan};
use hisvsim_statevec::amplitudes_to_le_bytes;
use std::net::{TcpListener, TcpStream};

const LOG_TARGET: &str = "hisvsim-net::worker";

/// Execute one rank of a shipped job on any [`RankComm`] world. This is the
/// single dispatch point shared by worker processes (over
/// [`TcpComm`]) and the in-process reference executor (over
/// [`LocalComm`](hisvsim_cluster::LocalComm)) — which is what makes the two
/// runs bit-identical by construction.
///
/// Workers re-fuse the shipped partition locally ([`FusedSinglePlan`] /
/// [`FusedTwoLevelPlan`] are rebuilt from the [`PersistedPlan`] wire
/// shape); the fusion scan is deterministic, so every rank derives the
/// identical fused schedule independently.
pub fn execute_shipped_rank<C: RankComm<Complex64>>(
    job: &ShippedJob,
    comm: &mut C,
) -> Result<RankOutcome, NetError> {
    let fusion = job.fusion.max(1);
    let strategy = job.strategy;
    let dispatch = job.dispatch;
    match job.engine {
        EngineKind::Baseline => Ok(run_baseline_rank(
            comm,
            &job.circuit,
            fusion,
            strategy,
            dispatch,
        )),
        EngineKind::Hier | EngineKind::Dist => {
            let Some(PersistedPlan::Single(partition)) = &job.plan else {
                return Err(NetError::Protocol(format!(
                    "engine {} needs a single-level plan, got {:?}",
                    job.engine,
                    job.plan.as_ref().map(plan_shape)
                )));
            };
            let plan = {
                let _fuse = hisvsim_obs::span("job", "fuse")
                    .detail(format!("{} gates, width {fusion}", job.circuit.num_gates()));
                let dag = CircuitDag::from_circuit(&job.circuit);
                FusedSinglePlan::build_with_strategy(
                    &job.circuit,
                    &dag,
                    partition.clone(),
                    fusion,
                    strategy,
                )
            };
            Ok(run_fused_plan_rank(
                comm,
                job.circuit.num_qubits(),
                &plan,
                dispatch,
            ))
        }
        EngineKind::Multilevel => {
            let Some(PersistedPlan::Two(ml)) = &job.plan else {
                return Err(NetError::Protocol(format!(
                    "engine multilevel needs a two-level plan, got {:?}",
                    job.plan.as_ref().map(plan_shape)
                )));
            };
            let plan = {
                let _fuse = hisvsim_obs::span("job", "fuse")
                    .detail(format!("{} gates, width {fusion}", job.circuit.num_gates()));
                let dag = CircuitDag::from_circuit(&job.circuit);
                FusedTwoLevelPlan::build_with_strategy(
                    &job.circuit,
                    &dag,
                    ml.clone(),
                    fusion,
                    strategy,
                )
            };
            Ok(run_two_level_plan_rank(
                comm,
                job.circuit.num_qubits(),
                &plan,
                dispatch,
            ))
        }
    }
}

fn plan_shape(plan: &PersistedPlan) -> &'static str {
    match plan {
        PersistedPlan::Single(_) => "single-level",
        PersistedPlan::Two(_) => "two-level",
    }
}

/// The worker-process body: rendezvous, mesh, execute, report.
pub fn run_worker(control_addr: &str, rank: usize) -> Result<(), NetError> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let data_addr = listener.local_addr()?.to_string();
    let mut control = TcpStream::connect(control_addr)?;
    control.set_nodelay(true)?;
    send_json(&mut control, &WorkerHello { rank, data_addr })?;
    let spec: LaunchSpec = recv_json(&mut control)?;
    if spec.rank != rank {
        return Err(NetError::Protocol(format!(
            "launch spec addressed to rank {}, this worker is rank {rank}",
            spec.rank
        )));
    }
    if spec.job.trace {
        hisvsim_obs::set_enabled(true);
    }
    log::debug(
        LOG_TARGET,
        "launch spec received",
        &[
            ("rank", &rank.to_string()),
            ("size", &spec.size.to_string()),
            ("engine", spec.job.engine.name()),
            ("circuit", &spec.job.circuit.name),
        ],
    );
    let mut comm =
        TcpComm::<Complex64>::connect_mesh(rank, spec.size, spec.network, listener, &spec.peers)?;
    let outcome = execute_shipped_rank(&spec.job, &mut comm)?;
    log::debug(
        LOG_TARGET,
        "rank body complete",
        &[
            ("rank", &rank.to_string()),
            ("compute_s", &format!("{:.3}", outcome.compute_time_s)),
            ("exchanges", &outcome.exchanges.to_string()),
        ],
    );
    // Aggregate this rank's measured-cost delta from its own spans before
    // shipping both back: the spans feed the launcher's merged timeline,
    // the delta feeds its profile store (cell-wise additive merge). The
    // worker never sees the launcher's profile — calibration happens on
    // the launcher side only, so shipped jobs stay deterministic.
    let (spans, profile) = if spec.job.trace {
        let spans = hisvsim_obs::drain();
        let mut profile = hisvsim_obs::CostProfile::new();
        profile.absorb_spans(&spans, spec.job.dispatch.resolved_name());
        profile.absorb_phase(
            spec.job.engine.name(),
            "execute",
            outcome.compute_time_s,
            outcome.local.len() as u64 * 32,
        );
        (spans, profile)
    } else {
        (Vec::new(), hisvsim_obs::CostProfile::new())
    };
    send_json(
        &mut control,
        &RankReport {
            rank,
            compute_time_s: outcome.compute_time_s,
            comm: outcome.comm,
            exchanges: outcome.exchanges,
            amp_count: outcome.local.len(),
            spans,
            profile,
        },
    )?;
    write_frame(
        &mut control,
        AMPS_TAG,
        &amplitudes_to_le_bytes(&outcome.local),
    )?;
    Ok(())
}

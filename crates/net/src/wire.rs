//! The wire format: little-endian item codecs and length-prefixed frames.
//!
//! The vendor set has no network serialization crates, so the framing is
//! hand-rolled: every message on a socket is one *frame* —
//!
//! ```text
//! [payload length: u64 le][tag: u64 le][payload bytes]
//! ```
//!
//! — and payloads are either raw [`WireItem`] arrays (state-vector slices,
//! scalars) or JSON-encoded control messages ([`send_json`]/[`recv_json`]).
//! Amplitude payloads use the same IEEE-754 little-endian layout as
//! [`hisvsim_statevec::amplitudes_to_le_bytes`], so the decode of an encode
//! is bit-exact and a multi-process run can promise bit-identical results.

use hisvsim_circuit::Complex64;
use serde::{Deserialize, Serialize};
use std::io::{self, Read, Write};

/// Upper bound on a single frame's payload (64 GiB would be a 32-qubit
/// slice; anything larger is a corrupt header, not a real message).
pub const MAX_FRAME_BYTES: u64 = 1 << 36;

/// A fixed-size item that can cross the wire. The encoded width must match
/// `std::mem::size_of::<Self>()` for the POD types used here, so byte
/// accounting agrees with the in-process world's
/// [`CommStats`](hisvsim_cluster::CommStats).
pub trait WireItem: Copy + Send + 'static {
    /// Encoded bytes per item.
    const WIRE_SIZE: usize;

    /// Append this item's little-endian encoding to `out`.
    fn write_le(&self, out: &mut Vec<u8>);

    /// Decode one item from exactly [`WireItem::WIRE_SIZE`] bytes.
    fn read_le(bytes: &[u8]) -> Self;
}

macro_rules! int_wire_item {
    ($ty:ty, $size:expr) => {
        impl WireItem for $ty {
            const WIRE_SIZE: usize = $size;
            fn write_le(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn read_le(bytes: &[u8]) -> Self {
                <$ty>::from_le_bytes(bytes.try_into().expect("wire item width"))
            }
        }
    };
}

int_wire_item!(u8, 1);
int_wire_item!(u32, 4);
int_wire_item!(u64, 8);
int_wire_item!(f64, 8);

impl WireItem for usize {
    const WIRE_SIZE: usize = 8;
    fn write_le(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(*self as u64).to_le_bytes());
    }
    fn read_le(bytes: &[u8]) -> Self {
        u64::from_le_bytes(bytes.try_into().expect("wire item width")) as usize
    }
}

impl WireItem for Complex64 {
    const WIRE_SIZE: usize = 16;
    fn write_le(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.re.to_le_bytes());
        out.extend_from_slice(&self.im.to_le_bytes());
    }
    fn read_le(bytes: &[u8]) -> Self {
        Complex64::new(
            f64::from_le_bytes(bytes[0..8].try_into().expect("wire item width")),
            f64::from_le_bytes(bytes[8..16].try_into().expect("wire item width")),
        )
    }
}

/// Encode a slice of items into one payload buffer.
pub fn encode_items<T: WireItem>(items: &[T]) -> Vec<u8> {
    let mut out = Vec::with_capacity(items.len() * T::WIRE_SIZE);
    for item in items {
        item.write_le(&mut out);
    }
    out
}

/// Decode a payload buffer back into items. Errors on a length that is not
/// a multiple of the item width.
pub fn decode_items<T: WireItem>(bytes: &[u8]) -> io::Result<Vec<T>> {
    if !bytes.len().is_multiple_of(T::WIRE_SIZE) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "payload of {} bytes is not a multiple of the {}-byte item width",
                bytes.len(),
                T::WIRE_SIZE
            ),
        ));
    }
    Ok(bytes.chunks_exact(T::WIRE_SIZE).map(T::read_le).collect())
}

/// Write one `[len][tag][payload]` frame: header, then the payload
/// straight from the caller's buffer. No intermediate copy — the largest
/// frames in the system are whole state-vector slices, and doubling them
/// just to prepend 16 bytes would spike peak memory exactly when workers
/// are already at their high-water mark.
pub fn write_frame(stream: &mut impl Write, tag: u64, payload: &[u8]) -> io::Result<()> {
    let mut header = [0u8; 16];
    header[..8].copy_from_slice(&(payload.len() as u64).to_le_bytes());
    header[8..].copy_from_slice(&tag.to_le_bytes());
    stream.write_all(&header)?;
    stream.write_all(payload)
}

/// Read one frame, returning `(tag, payload)`.
pub fn read_frame(stream: &mut impl Read) -> io::Result<(u64, Vec<u8>)> {
    let mut header = [0u8; 16];
    stream.read_exact(&mut header)?;
    let len = u64::from_le_bytes(header[0..8].try_into().expect("header width"));
    let tag = u64::from_le_bytes(header[8..16].try_into().expect("header width"));
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    stream.read_exact(&mut payload)?;
    Ok((tag, payload))
}

/// Tag marking a JSON control frame.
pub const JSON_TAG: u64 = 0x4A50_4E00_0000_0001;

/// Serialize `value` as a JSON control frame.
pub fn send_json<T: Serialize>(stream: &mut impl Write, value: &T) -> io::Result<()> {
    let text = serde_json::to_string(value)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    write_frame(stream, JSON_TAG, text.as_bytes())
}

/// Read one JSON control frame and deserialize it.
pub fn recv_json<T: Deserialize>(stream: &mut impl Read) -> io::Result<T> {
    let (tag, payload) = read_frame(stream)?;
    if tag != JSON_TAG {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("expected a JSON control frame, got tag {tag:#x}"),
        ));
    }
    let text = String::from_utf8(payload)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    serde_json::from_str(&text)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn item_roundtrip_is_bit_exact() {
        let amps = vec![
            Complex64::new(0.1, -0.2),
            Complex64::new(f64::MIN_POSITIVE, -0.0),
        ];
        let bytes = encode_items(&amps);
        assert_eq!(bytes.len(), 32);
        let back: Vec<Complex64> = decode_items(&bytes).unwrap();
        assert_eq!(amps, back);

        let ints = vec![0u64, 1, u64::MAX];
        assert_eq!(decode_items::<u64>(&encode_items(&ints)).unwrap(), ints);
    }

    #[test]
    fn frames_roundtrip_through_a_buffer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 7, b"hello").unwrap();
        write_frame(&mut buf, 9, b"").unwrap();
        let mut cursor = &buf[..];
        assert_eq!(read_frame(&mut cursor).unwrap(), (7, b"hello".to_vec()));
        assert_eq!(read_frame(&mut cursor).unwrap(), (9, Vec::new()));
    }

    #[test]
    fn complex64_codec_agrees_with_the_statevec_byte_layout() {
        // Two encoders exist for amplitudes: this WireItem codec
        // (data-plane frames) and hisvsim_statevec's slice helpers (the
        // AMPS_TAG result frame). The bit-identity guarantee depends on
        // them never drifting apart — pin the agreement byte for byte.
        let amps: Vec<Complex64> = (0..5)
            .map(|i| Complex64::new(1.0 / (i as f64 + 1.0), -(i as f64).sqrt()))
            .collect();
        assert_eq!(
            encode_items(&amps),
            hisvsim_statevec::amplitudes_to_le_bytes(&amps)
        );
        assert_eq!(
            decode_items::<Complex64>(&hisvsim_statevec::amplitudes_to_le_bytes(&amps)).unwrap(),
            amps
        );
    }

    #[test]
    fn misaligned_payload_is_rejected() {
        assert!(decode_items::<u64>(&[0u8; 9]).is_err());
    }

    #[test]
    fn json_frames_roundtrip() {
        use hisvsim_cluster::CommStats;
        let stats = CommStats {
            messages_sent: 3,
            bytes_sent: 128,
            modeled_time_s: 0.5,
            wall_time_s: 0.25,
        };
        let mut buf = Vec::new();
        send_json(&mut buf, &stats).unwrap();
        let mut cursor = &buf[..];
        let back: CommStats = recv_json(&mut cursor).unwrap();
        assert_eq!(stats, back);
    }
}

//! Control-channel protocol between the worker pool and its workers.
//!
//! Everything on the control channel is a JSON frame (see
//! [`crate::wire`]), except each job's amplitude slice, which follows the
//! worker's [`RankReport`] as one raw little-endian frame tagged
//! [`AMPS_TAG`]. The shipped plan is exactly the plan-cache snapshot shape
//! ([`PersistedPlan`]): partitions travel, fused matrices never do —
//! workers re-fuse locally, keeping the fused form process-local by design.
//!
//! The channel is *persistent*: after the one-time rendezvous
//! ([`WorkerHello`] up, [`LaunchSpec`] down), the pool streams
//! [`WorkerCommand`] frames — `Run { epoch, job }` per job,
//! `Cancel { epoch }` to cooperatively stop a running job mid-sweep, and
//! an explicit `Shutdown` for a clean exit. Every job is tagged with a
//! monotonically increasing epoch so a late cancel can never kill the
//! wrong job, and every [`RankReport`] echoes its epoch back.

use hisvsim_circuit::Circuit;
use hisvsim_cluster::{CommStats, NetworkModel};
use hisvsim_obs::{CostProfile, SpanRecord};
use hisvsim_runtime::{EngineKind, FusionStrategy, KernelDispatch, PersistedPlan};
use serde::{Deserialize, Serialize};

/// Tag of the raw amplitude-slice frame a worker sends after its report.
pub const AMPS_TAG: u64 = 0x414D_5053_0000_0001;

/// The job a launcher ships to every worker: engine choice, the circuit,
/// the fusion width to re-fuse at, and the partition plan in its wire shape
/// (`None` for the unpartitioned baseline engine, which derives its own
/// schedule from the circuit).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShippedJob {
    /// Which engine's rank body the workers run. [`EngineKind::Hier`] runs
    /// its single-level plan through the distributed rank body — plan
    /// shapes are shared between the two engines, only the driver differs.
    pub engine: EngineKind,
    /// The circuit to simulate.
    pub circuit: Circuit,
    /// Gate-fusion width each worker re-fuses the shipped partition at.
    pub fusion: usize,
    /// Fusion strategy each worker re-fuses with. The scan is
    /// deterministic, so every rank derives the identical fused schedule
    /// independently — shipping the knob (not the fused matrices) keeps the
    /// wire shape small and the fused form process-local.
    pub strategy: FusionStrategy,
    /// Kernel dispatch every rank applies to its local sweeps. The launcher
    /// and workers are the same binary, so this wire-shape change never
    /// meets an older peer.
    pub dispatch: KernelDispatch,
    /// The partition to execute ([`PersistedPlan::Single`] for hier/dist,
    /// [`PersistedPlan::Two`] for multilevel, `None` for baseline).
    pub plan: Option<PersistedPlan>,
    /// When true, workers enable their span recorder and ship the buffered
    /// spans back in [`RankReport::spans`], so the launcher can merge every
    /// rank into one timeline. (The launcher and workers are the same
    /// binary, so this wire-shape change never meets an older peer.)
    pub trace: bool,
}

impl ShippedJob {
    /// Number of (first-level) parts the shipped plan executes (1 for the
    /// unpartitioned baseline).
    pub fn num_parts(&self) -> usize {
        match &self.plan {
            Some(PersistedPlan::Single(partition)) => partition.num_parts(),
            Some(PersistedPlan::Two(ml)) => ml.num_first_level_parts(),
            None => 1,
        }
    }
}

/// First message on a worker's control connection: which rank it is and
/// where its data-plane listener lives.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkerHello {
    /// The rank assigned on the worker's command line.
    pub rank: usize,
    /// The worker's rendezvous listener address (`127.0.0.1:port`).
    pub data_addr: String,
}

/// The pool's reply once every worker has checked in: the world layout.
/// Sent exactly once per worker world — jobs follow as
/// [`WorkerCommand::Run`] frames on the same (persistent) connection.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LaunchSpec {
    /// The receiving worker's rank (echoed for sanity checking).
    pub rank: usize,
    /// World size (a power of two).
    pub size: usize,
    /// Every rank's data-plane address, indexed by rank.
    pub peers: Vec<String>,
    /// Interconnect model for per-transfer accounting.
    pub network: NetworkModel,
    /// The job epoch the first `Run` on this world will carry. Epochs are
    /// pool-global and monotonically increasing, so a world respawned
    /// after a failure never reuses an epoch a stale frame could match.
    pub epoch: u64,
}

/// One control frame from the pool to a resident worker. (Tuple variants:
/// the vendored serde stub derive has no struct-variant support.)
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum WorkerCommand {
    /// `Run(epoch, job)`: execute the job under the given epoch; the
    /// worker answers with a [`RankReport`] echoing it (plus the amplitude
    /// frame on success).
    Run(u64, ShippedJob),
    /// `Cancel(epoch)`: cooperatively cancel the job with this epoch
    /// (ignored if that job already finished — a late cancel can never
    /// kill a later job). The worker's rank body observes it at its next
    /// cancel-vote checkpoint.
    Cancel(u64),
    /// Exit cleanly after the current job (if any) reports.
    Shutdown,
}

/// How one rank's execution of one job ended.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RankStatus {
    /// The rank finished; its amplitude frame follows the report.
    Ok,
    /// All ranks agreed to cancel at a vote checkpoint; the mesh is clean
    /// and the worker stays resident. No amplitude frame follows.
    Cancelled,
    /// The rank body failed (peer loss, protocol violation, panic); the
    /// mesh state is undefined, the worker exits after reporting, and the
    /// pool respawns the world. No amplitude frame follows.
    Failed(String),
}

/// A worker's per-job result header; on [`RankStatus::Ok`] the amplitude
/// slice follows as a raw [`AMPS_TAG`] frame of `amp_count × 16` bytes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RankReport {
    /// The reporting rank.
    pub rank: usize,
    /// Epoch of the job this report answers (echoed for sanity checking).
    pub epoch: u64,
    /// How this rank's execution ended.
    pub status: RankStatus,
    /// Wall-clock seconds this rank spent applying gates.
    pub compute_time_s: f64,
    /// The rank's communication statistics over the TCP world.
    pub comm: CommStats,
    /// Number of state redistributions this rank participated in.
    pub exchanges: usize,
    /// Amplitudes in the raw frame that follows.
    pub amp_count: usize,
    /// This rank's buffered trace spans (empty unless
    /// [`ShippedJob::trace`] was set). `pid`/`tid` are worker-local; the
    /// launcher re-lanes them to `pid = rank + 1` when merging.
    pub spans: Vec<SpanRecord>,
    /// This rank's measured-cost delta (kernel/collective/phase cells
    /// aggregated from its own spans; empty unless [`ShippedJob::trace`]
    /// was set). [`CostProfile::merge`] is cell-wise additive, so the
    /// launcher folds every rank's delta into its profile store without
    /// double counting.
    pub profile: CostProfile,
}

//! Control-channel protocol between the launcher and its workers.
//!
//! Everything on the control channel is a JSON frame (see
//! [`crate::wire`]), except the final amplitude slice, which follows the
//! worker's [`RankReport`] as one raw little-endian frame tagged
//! [`AMPS_TAG`]. The shipped plan is exactly the plan-cache snapshot shape
//! ([`PersistedPlan`]): partitions travel, fused matrices never do —
//! workers re-fuse locally, keeping the fused form process-local by design.

use hisvsim_circuit::Circuit;
use hisvsim_cluster::{CommStats, NetworkModel};
use hisvsim_obs::{CostProfile, SpanRecord};
use hisvsim_runtime::{EngineKind, FusionStrategy, KernelDispatch, PersistedPlan};
use serde::{Deserialize, Serialize};

/// Tag of the raw amplitude-slice frame a worker sends after its report.
pub const AMPS_TAG: u64 = 0x414D_5053_0000_0001;

/// The job a launcher ships to every worker: engine choice, the circuit,
/// the fusion width to re-fuse at, and the partition plan in its wire shape
/// (`None` for the unpartitioned baseline engine, which derives its own
/// schedule from the circuit).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShippedJob {
    /// Which engine's rank body the workers run. [`EngineKind::Hier`] runs
    /// its single-level plan through the distributed rank body — plan
    /// shapes are shared between the two engines, only the driver differs.
    pub engine: EngineKind,
    /// The circuit to simulate.
    pub circuit: Circuit,
    /// Gate-fusion width each worker re-fuses the shipped partition at.
    pub fusion: usize,
    /// Fusion strategy each worker re-fuses with. The scan is
    /// deterministic, so every rank derives the identical fused schedule
    /// independently — shipping the knob (not the fused matrices) keeps the
    /// wire shape small and the fused form process-local.
    pub strategy: FusionStrategy,
    /// Kernel dispatch every rank applies to its local sweeps. The launcher
    /// and workers are the same binary, so this wire-shape change never
    /// meets an older peer.
    pub dispatch: KernelDispatch,
    /// The partition to execute ([`PersistedPlan::Single`] for hier/dist,
    /// [`PersistedPlan::Two`] for multilevel, `None` for baseline).
    pub plan: Option<PersistedPlan>,
    /// When true, workers enable their span recorder and ship the buffered
    /// spans back in [`RankReport::spans`], so the launcher can merge every
    /// rank into one timeline. (The launcher and workers are the same
    /// binary, so this wire-shape change never meets an older peer.)
    pub trace: bool,
}

impl ShippedJob {
    /// Number of (first-level) parts the shipped plan executes (1 for the
    /// unpartitioned baseline).
    pub fn num_parts(&self) -> usize {
        match &self.plan {
            Some(PersistedPlan::Single(partition)) => partition.num_parts(),
            Some(PersistedPlan::Two(ml)) => ml.num_first_level_parts(),
            None => 1,
        }
    }
}

/// First message on a worker's control connection: which rank it is and
/// where its data-plane listener lives.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkerHello {
    /// The rank assigned on the worker's command line.
    pub rank: usize,
    /// The worker's rendezvous listener address (`127.0.0.1:port`).
    pub data_addr: String,
}

/// The launcher's reply once every worker has checked in: the world layout
/// plus the job itself.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LaunchSpec {
    /// The receiving worker's rank (echoed for sanity checking).
    pub rank: usize,
    /// World size (a power of two).
    pub size: usize,
    /// Every rank's data-plane address, indexed by rank.
    pub peers: Vec<String>,
    /// Interconnect model for per-transfer accounting.
    pub network: NetworkModel,
    /// The work.
    pub job: ShippedJob,
}

/// A worker's result header; the amplitude slice follows as a raw
/// [`AMPS_TAG`] frame of `amp_count × 16` bytes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RankReport {
    /// The reporting rank.
    pub rank: usize,
    /// Wall-clock seconds this rank spent applying gates.
    pub compute_time_s: f64,
    /// The rank's communication statistics over the TCP world.
    pub comm: CommStats,
    /// Number of state redistributions this rank participated in.
    pub exchanges: usize,
    /// Amplitudes in the raw frame that follows.
    pub amp_count: usize,
    /// This rank's buffered trace spans (empty unless
    /// [`ShippedJob::trace`] was set). `pid`/`tid` are worker-local; the
    /// launcher re-lanes them to `pid = rank + 1` when merging.
    pub spans: Vec<SpanRecord>,
    /// This rank's measured-cost delta (kernel/collective/phase cells
    /// aggregated from its own spans; empty unless [`ShippedJob::trace`]
    /// was set). [`CostProfile::merge`] is cell-wise additive, so the
    /// launcher folds every rank's delta into its profile store without
    /// double counting.
    pub profile: CostProfile,
}

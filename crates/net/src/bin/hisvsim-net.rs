//! The `hisvsim-net` binary: worker mode (spawned by the launcher) and a
//! self-contained multi-process smoke check.
//!
//! ```text
//! hisvsim-net worker <control_addr> <rank>        # spawned by ClusterLauncher
//! hisvsim-net smoke [qubits] [workers] [--trace <path>]
//! ```
//!
//! `smoke` runs QFT-n under the `hier` and `dist` engines on a localhost
//! process cluster and demands the assembled amplitudes be **bit-identical**
//! to the in-process channel-world run of the same shipped plan. With
//! `--trace <path>` the launcher records its own spans, collects every
//! worker's span buffer over the control channel, and writes one merged
//! Chrome trace JSON (open in `chrome://tracing` or Perfetto).
//!
//! Failure diagnostics go through the structured logger
//! ([`hisvsim_obs::log`]): JSON lines on stderr, filtered by
//! `HISVSIM_LOG` (launcher/worker lifecycle events surface at
//! `HISVSIM_LOG=debug`). Success output stays on stdout.

use hisvsim_circuit::generators;
use hisvsim_cluster::NetworkModel;
use hisvsim_dag::CircuitDag;
use hisvsim_net::{execute_local_reference, ClusterLauncher, RankSummary, ShippedJob};
use hisvsim_obs::log;
use hisvsim_partition::Strategy;
use hisvsim_runtime::{EngineKind, PersistedPlan};
use hisvsim_statevec::{FusionStrategy, DEFAULT_FUSION_WIDTH};
use std::process::ExitCode;

const LOG_TARGET: &str = "hisvsim-net";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some("worker") => {
            let (Some(control_addr), Some(rank)) = (args.get(2), args.get(3)) else {
                eprintln!("usage: hisvsim-net worker <control_addr> <rank>");
                return ExitCode::FAILURE;
            };
            let rank: usize = match rank.parse() {
                Ok(rank) => rank,
                Err(_) => {
                    log::error(
                        LOG_TARGET,
                        "rank must be an integer",
                        &[("rank", rank.as_str())],
                    );
                    return ExitCode::FAILURE;
                }
            };
            match hisvsim_net::run_worker(control_addr, rank) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    log::error(
                        LOG_TARGET,
                        "worker failed",
                        &[("rank", &rank.to_string()), ("error", &e.to_string())],
                    );
                    ExitCode::FAILURE
                }
            }
        }
        Some("smoke") => {
            let mut positional = Vec::new();
            let mut trace_path: Option<String> = None;
            let mut rest = args[2..].iter();
            while let Some(arg) = rest.next() {
                if arg == "--trace" {
                    match rest.next() {
                        Some(path) => trace_path = Some(path.clone()),
                        None => {
                            eprintln!("--trace needs a file path");
                            return ExitCode::FAILURE;
                        }
                    }
                } else {
                    positional.push(arg.clone());
                }
            }
            let qubits: usize = positional
                .first()
                .map(|s| s.parse().expect("qubits must be an integer"))
                .unwrap_or(20);
            let workers: usize = positional
                .get(1)
                .map(|s| s.parse().expect("workers must be an integer"))
                .unwrap_or(4);
            smoke(qubits, workers, trace_path.as_deref())
        }
        _ => {
            eprintln!("usage: hisvsim-net <worker|smoke> ...");
            ExitCode::FAILURE
        }
    }
}

/// Launch `workers` processes on localhost, run QFT-`qubits` under the
/// hier and dist engines, and verify bit-identical amplitudes against the
/// in-process reference run of the identical shipped plan. Prints a
/// per-rank comm-stats table for every run; with `trace_path`, also writes
/// a merged launcher+workers Chrome trace and validates its contents.
fn smoke(qubits: usize, workers: usize, trace_path: Option<&str>) -> ExitCode {
    let tracing = trace_path.is_some();
    if tracing {
        hisvsim_obs::set_enabled(true);
    }
    let network = NetworkModel::hdr100();
    let launcher =
        ClusterLauncher::with_worker_binary(workers, std::env::current_exe().expect("current exe"))
            .with_network(network);
    let circuit = generators::qft(qubits);
    let dag = CircuitDag::from_circuit(&circuit);
    let local_qubits = qubits - workers.trailing_zeros() as usize;

    for (engine, strategy) in [
        (EngineKind::Hier, FusionStrategy::Window),
        (EngineKind::Hier, FusionStrategy::Dag),
        (EngineKind::Dist, FusionStrategy::Window),
        (EngineKind::Dist, FusionStrategy::Dag),
    ] {
        // Hier ships its single-level plan through the distributed rank
        // body, so both engines' plans must fit a worker's local slice.
        // Both fusion strategies are exercised: workers re-fuse the shipped
        // partition with the shipped strategy, and both must reproduce the
        // in-process run bit for bit.
        let partition = {
            let _plan = hisvsim_obs::span("job", "plan")
                .detail(format!("qft-{qubits} into {workers} parts"));
            Strategy::DagP
                .partition(&dag, local_qubits)
                .expect("partitioning QFT cannot fail at the local-qubit limit")
        };
        let job = ShippedJob {
            engine,
            circuit: circuit.clone(),
            fusion: DEFAULT_FUSION_WIDTH,
            strategy,
            dispatch: Default::default(),
            plan: Some(PersistedPlan::Single(partition)),
            trace: tracing,
        };
        let (state, report, ranks) = match launcher.execute_detailed(&job, network) {
            Ok(result) => result,
            Err(e) => {
                log::error(
                    LOG_TARGET,
                    "smoke process run failed",
                    &[("engine", engine.name()), ("error", &e.to_string())],
                );
                return ExitCode::FAILURE;
            }
        };
        let (reference, _) = match execute_local_reference(&job, workers, network) {
            Ok(result) => result,
            Err(e) => {
                log::error(
                    LOG_TARGET,
                    "smoke reference run failed",
                    &[("engine", engine.name()), ("error", &e.to_string())],
                );
                return ExitCode::FAILURE;
            }
        };
        if state != reference {
            log::error(
                LOG_TARGET,
                "smoke process run diverged from the in-process run",
                &[
                    ("engine", engine.name()),
                    ("strategy", strategy.name()),
                    (
                        "max_abs_diff",
                        &format!("{:.3e}", state.max_abs_diff(&reference)),
                    ),
                ],
            );
            return ExitCode::FAILURE;
        }
        println!(
            "smoke {engine}/{strategy}: qft-{qubits} on {workers} worker processes: bit-identical \
             to the in-process run ({} parts, {} exchanges, {:.1} MiB moved, wall {:.2}s)",
            report.num_parts,
            report.num_exchanges,
            report.comm.bytes_sent as f64 / (1024.0 * 1024.0),
            report.total_time_s,
        );
        print_rank_table(&ranks);
    }
    if let Some(path) = trace_path {
        let spans = hisvsim_obs::drain();
        if let Err(msg) = validate_cluster_spans(&spans, workers) {
            log::error(
                LOG_TARGET,
                "smoke trace validation failed",
                &[("detail", &msg)],
            );
            return ExitCode::FAILURE;
        }
        let json = hisvsim_obs::chrome_trace_json(&spans);
        if let Err(e) = std::fs::write(path, &json) {
            log::error(
                LOG_TARGET,
                "smoke cannot write trace",
                &[("path", path), ("error", &e.to_string())],
            );
            return ExitCode::FAILURE;
        }
        println!(
            "smoke: wrote merged trace ({} spans, launcher + {workers} worker ranks) to {path}",
            spans.len()
        );
    }
    println!("smoke: OK");
    ExitCode::SUCCESS
}

/// Per-rank comm-stats summary of one process-cluster run.
fn print_rank_table(ranks: &[RankSummary]) {
    println!(
        "  {:>4}  {:>10}  {:>11}  {:>10}  {:>9}  {:>9}",
        "rank", "compute_s", "comm_wall_s", "sent_MiB", "messages", "exchanges"
    );
    for r in ranks {
        println!(
            "  {:>4}  {:>10.3}  {:>11.3}  {:>10.1}  {:>9}  {:>9}",
            r.rank,
            r.compute_time_s,
            r.comm.wall_time_s,
            r.comm.bytes_sent as f64 / (1024.0 * 1024.0),
            r.comm.messages_sent,
            r.exchanges,
        );
    }
}

/// Check the merged span set covers the whole cluster: launcher spans on
/// pid 0, at least one span from every worker rank (pid = rank + 1), and
/// the plan/fuse/sweep/collective phases all present.
fn validate_cluster_spans(spans: &[hisvsim_obs::SpanRecord], workers: usize) -> Result<(), String> {
    let has = |pred: &dyn Fn(&hisvsim_obs::SpanRecord) -> bool, what: &str| {
        if spans.iter().any(pred) {
            Ok(())
        } else {
            Err(format!("no {what} span in the merged trace"))
        }
    };
    has(&|s| s.cat == "cluster" && s.pid == 0, "launcher (cluster)")?;
    for rank in 0..workers {
        let pid = rank as u32 + 1;
        has(&|s| s.pid == pid, &format!("rank-{rank} (pid {pid})"))?;
    }
    has(&|s| s.name == "plan", "plan phase")?;
    has(&|s| s.name == "fuse", "fuse phase")?;
    has(&|s| s.name.starts_with("sweep:"), "kernel sweep")?;
    has(&|s| s.cat == "comm", "collective (comm)")?;
    Ok(())
}

//! The `hisvsim-net` binary: worker mode (spawned by the launcher) and a
//! self-contained multi-process smoke check.
//!
//! ```text
//! hisvsim-net worker <control_addr> <rank>   # spawned by ClusterLauncher
//! hisvsim-net smoke [qubits] [workers]       # acceptance check (default 20, 4)
//! ```
//!
//! `smoke` runs QFT-n under the `hier` and `dist` engines on a localhost
//! process cluster and demands the assembled amplitudes be **bit-identical**
//! to the in-process channel-world run of the same shipped plan.

use hisvsim_circuit::generators;
use hisvsim_cluster::NetworkModel;
use hisvsim_dag::CircuitDag;
use hisvsim_net::{execute_local_reference, ClusterLauncher, ShippedJob};
use hisvsim_partition::Strategy;
use hisvsim_runtime::{EngineKind, PersistedPlan};
use hisvsim_statevec::{FusionStrategy, DEFAULT_FUSION_WIDTH};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some("worker") => {
            let (Some(control_addr), Some(rank)) = (args.get(2), args.get(3)) else {
                eprintln!("usage: hisvsim-net worker <control_addr> <rank>");
                return ExitCode::FAILURE;
            };
            let rank: usize = match rank.parse() {
                Ok(rank) => rank,
                Err(_) => {
                    eprintln!("rank must be an integer, got '{rank}'");
                    return ExitCode::FAILURE;
                }
            };
            match hisvsim_net::run_worker(control_addr, rank) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("worker rank {rank}: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("smoke") => {
            let qubits: usize = args
                .get(2)
                .map(|s| s.parse().expect("qubits must be an integer"))
                .unwrap_or(20);
            let workers: usize = args
                .get(3)
                .map(|s| s.parse().expect("workers must be an integer"))
                .unwrap_or(4);
            smoke(qubits, workers)
        }
        _ => {
            eprintln!("usage: hisvsim-net <worker|smoke> ...");
            ExitCode::FAILURE
        }
    }
}

/// Launch `workers` processes on localhost, run QFT-`qubits` under the
/// hier and dist engines, and verify bit-identical amplitudes against the
/// in-process reference run of the identical shipped plan.
fn smoke(qubits: usize, workers: usize) -> ExitCode {
    let network = NetworkModel::hdr100();
    let launcher =
        ClusterLauncher::with_worker_binary(workers, std::env::current_exe().expect("current exe"))
            .with_network(network);
    let circuit = generators::qft(qubits);
    let dag = CircuitDag::from_circuit(&circuit);
    let local_qubits = qubits - workers.trailing_zeros() as usize;

    for (engine, strategy) in [
        (EngineKind::Hier, FusionStrategy::Window),
        (EngineKind::Hier, FusionStrategy::Dag),
        (EngineKind::Dist, FusionStrategy::Window),
        (EngineKind::Dist, FusionStrategy::Dag),
    ] {
        // Hier ships its single-level plan through the distributed rank
        // body, so both engines' plans must fit a worker's local slice.
        // Both fusion strategies are exercised: workers re-fuse the shipped
        // partition with the shipped strategy, and both must reproduce the
        // in-process run bit for bit.
        let partition = Strategy::DagP
            .partition(&dag, local_qubits)
            .expect("partitioning QFT cannot fail at the local-qubit limit");
        let job = ShippedJob {
            engine,
            circuit: circuit.clone(),
            fusion: DEFAULT_FUSION_WIDTH,
            strategy,
            plan: Some(PersistedPlan::Single(partition)),
        };
        let (state, report) = match launcher.execute(&job) {
            Ok(result) => result,
            Err(e) => {
                eprintln!("smoke: {engine} process run failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        let (reference, _) = match execute_local_reference(&job, workers, network) {
            Ok(result) => result,
            Err(e) => {
                eprintln!("smoke: {engine} reference run failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        if state != reference {
            eprintln!(
                "smoke: {engine}/{strategy} process run DIVERGED from the in-process run \
                 (max |diff| = {:.3e})",
                state.max_abs_diff(&reference)
            );
            return ExitCode::FAILURE;
        }
        println!(
            "smoke {engine}/{strategy}: qft-{qubits} on {workers} worker processes: bit-identical \
             to the in-process run ({} parts, {} exchanges, {:.1} MiB moved, wall {:.2}s)",
            report.num_parts,
            report.num_exchanges,
            report.comm.bytes_sent as f64 / (1024.0 * 1024.0),
            report.total_time_s,
        );
    }
    println!("smoke: OK");
    ExitCode::SUCCESS
}

//! [`WorkerPool`]: the persistent worker world. Spawns the worker
//! processes **once**, keeps their control channels and TCP mesh alive
//! across jobs, and streams epoch-tagged [`WorkerCommand`] frames down the
//! resident connections — the multi-process `mpirun` of this reproduction
//! grown into a job server, and the
//! [`ProcessBackend`] the runtime's scheduler drives for
//! [`Backend::Process`](hisvsim_runtime::Backend::Process) jobs.
//!
//! Residency is what the paper's batch workloads want: after the first
//! job warms the world up, a batch of repeats pays zero spawn/rendezvous
//! cost, each worker's plan cache answers repeated fingerprints without
//! re-fusing, and the per-rank amplitude slices recycle their allocations.
//! Failure policy is crash-only: any rank failure drops the whole world
//! (the next job respawns it); a cooperative cancel keeps it warm, because
//! the cancel *vote* guarantees no rank was mid-collective.

use crate::launcher::{
    accept_with_deadline, await_readable, find_worker_binary, ChildGuard, NetError, RankSummary,
};
use crate::proto::{
    LaunchSpec, RankReport, RankStatus, ShippedJob, WorkerCommand, WorkerHello, AMPS_TAG,
};
use crate::wire::{read_frame, recv_json, send_json};
use hisvsim_cluster::NetworkModel;
use hisvsim_core::{aggregate_outcomes, CancelToken, RankOutcome, RunReport};
use hisvsim_obs::log;
use hisvsim_runtime::{ProcessBackend, ProcessError, ProcessPoolStats, ProcessRequest};
use hisvsim_statevec::{amplitudes_from_le_bytes, StateVector};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const LOG_TARGET: &str = "hisvsim-net::pool";

/// How often the canceller thread polls the job's [`CancelToken`]. The
/// end-to-end cancel latency is this poll interval plus one cancel-vote
/// interval on the workers (one fused part / one baseline step).
const CANCEL_POLL: Duration = Duration::from_millis(5);

/// How long [`WorkerPool::shutdown`] waits for workers to honour the
/// `Shutdown` frame before killing them.
const SHUTDOWN_GRACE: Duration = Duration::from_secs(5);

/// A resident worker world: the child processes plus one control stream
/// per rank. The TCP mesh between the workers stays up for the world's
/// whole lifetime.
struct World {
    guard: ChildGuard,
    controls: Vec<TcpStream>,
    /// The interconnect model the world was launched with; a job asking
    /// for a different model forces a respawn (the model is baked into
    /// each worker's transport accounting at mesh time).
    network: NetworkModel,
}

struct PoolInner {
    world: Option<World>,
    /// Pool-global monotonically increasing job epoch. Never reset — a
    /// world respawned after a failure starts at the next fresh epoch, so
    /// a stale `Cancel` frame can never match a new job.
    next_epoch: u64,
}

#[derive(Default)]
struct PoolMetrics {
    worlds_spawned: AtomicU64,
    jobs_run: AtomicU64,
    jobs_reused_world: AtomicU64,
    jobs_cancelled: AtomicU64,
    jobs_failed: AtomicU64,
    launch_micros_total: AtomicU64,
}

/// What one gather produced, before metrics/aggregation.
enum Gathered {
    /// Every rank reported [`RankStatus::Ok`].
    Done(Vec<RankOutcome>, Vec<RankSummary>),
    /// Every rank reported [`RankStatus::Cancelled`].
    Cancelled,
}

/// Spawns `workers` processes of the `hisvsim-net` binary in worker mode
/// **once**, then serves jobs over the resident control channels:
/// [`WorkerPool::execute`] ships a `Run { epoch, job }` frame to every
/// rank and gathers the per-rank results, leaving the world warm for the
/// next job. Plan reuse across jobs is layered: the pool ships whatever
/// partition it is handed (a warm plan cache upstream means zero
/// replans), and each worker keeps its own fused-plan cache (a repeated
/// fingerprint re-fuses nothing).
///
/// Jobs are serialized — the world runs one job at a time, which is
/// exactly the SPMD model (every rank participates in every job).
pub struct WorkerPool {
    workers: usize,
    network: NetworkModel,
    worker_bin: PathBuf,
    handshake_timeout: Duration,
    profile: Option<Arc<hisvsim_obs::ProfileStore>>,
    inner: Mutex<PoolInner>,
    metrics: PoolMetrics,
}

/// The historical name: the pool supersedes the one-shot launcher but
/// keeps its construction and execution surface verbatim.
pub type ClusterLauncher = WorkerPool;

impl WorkerPool {
    /// A pool of `workers` processes (a power of two), discovering the
    /// worker binary automatically (see [`find_worker_binary`]).
    pub fn new(workers: usize) -> Result<Self, NetError> {
        let worker_bin = find_worker_binary().ok_or_else(|| {
            NetError::Protocol(
                "cannot locate the hisvsim-net worker binary; build it (cargo build -p \
                 hisvsim-net) or set HISVSIM_NET_WORKER"
                    .to_string(),
            )
        })?;
        Ok(Self::with_worker_binary(workers, worker_bin))
    }

    /// A pool using an explicit worker binary path.
    pub fn with_worker_binary(workers: usize, worker_bin: PathBuf) -> Self {
        assert!(
            workers.is_power_of_two(),
            "worker count must be a power of two, got {workers}"
        );
        Self {
            workers,
            network: NetworkModel::hdr100(),
            worker_bin,
            handshake_timeout: Duration::from_secs(60),
            profile: None,
            inner: Mutex::new(PoolInner {
                world: None,
                next_epoch: 0,
            }),
            metrics: PoolMetrics::default(),
        }
    }

    /// Use a different network model for the workers' accounting.
    pub fn with_network(mut self, network: NetworkModel) -> Self {
        self.network = network;
        self
    }

    /// Fold every rank's measured-cost delta
    /// ([`RankReport::profile`]) into this store at gather time —
    /// typically the same store the scheduler's
    /// [`SchedulerConfig`](hisvsim_runtime::SchedulerConfig) calibrates
    /// from, closing the loop across process boundaries. Deltas only flow
    /// when tracing is on (the workers aggregate from their own spans).
    pub fn with_profile_store(mut self, store: Arc<hisvsim_obs::ProfileStore>) -> Self {
        self.profile = Some(store);
        self
    }

    /// The worker-process world size.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Lifetime counters: worlds spawned, jobs run/reused/cancelled/failed,
    /// and total launch (spawn + rendezvous) seconds — the reuse evidence
    /// (`worlds_spawned == 1` across a warm batch) and the launch-cost
    /// accounting that is deliberately kept out of per-job wall time.
    pub fn metrics(&self) -> ProcessPoolStats {
        ProcessPoolStats {
            worlds_spawned: self.metrics.worlds_spawned.load(Ordering::Relaxed),
            jobs_run: self.metrics.jobs_run.load(Ordering::Relaxed),
            jobs_reused_world: self.metrics.jobs_reused_world.load(Ordering::Relaxed),
            jobs_cancelled: self.metrics.jobs_cancelled.load(Ordering::Relaxed),
            jobs_failed: self.metrics.jobs_failed.load(Ordering::Relaxed),
            launch_seconds_total: self.metrics.launch_micros_total.load(Ordering::Relaxed) as f64
                / 1e6,
        }
    }

    /// Operating-system pids of the resident workers (empty when no world
    /// is up) — for tests that kill a rank mid-job.
    pub fn worker_pids(&self) -> Vec<u32> {
        let inner = self.inner.lock().expect("pool lock poisoned");
        inner
            .world
            .as_ref()
            .map(|world| world.guard.pids())
            .unwrap_or_default()
    }

    /// Execute `job` on the resident worker world (spawning it on the
    /// first call), and assemble the full state plus the aggregated run
    /// report (per-rank comm stats merged exactly like the in-process
    /// engines').
    pub fn execute(&self, job: &ShippedJob) -> Result<(StateVector, RunReport), NetError> {
        self.execute_with_network(job, self.network)
    }

    /// [`WorkerPool::execute`] with an explicit network model. A model
    /// different from the resident world's forces a respawn (the model is
    /// baked into each worker's transport at mesh time).
    pub fn execute_with_network(
        &self,
        job: &ShippedJob,
        network: NetworkModel,
    ) -> Result<(StateVector, RunReport), NetError> {
        self.execute_detailed(job, network)
            .map(|(state, report, _)| (state, report))
    }

    /// [`WorkerPool::execute_with_network`], additionally returning the
    /// per-rank stats that [`aggregate_outcomes`] would otherwise fold
    /// away (for the smoke command's per-rank table and any caller that
    /// wants rank-resolved comm accounting).
    pub fn execute_detailed(
        &self,
        job: &ShippedJob,
        network: NetworkModel,
    ) -> Result<(StateVector, RunReport, Vec<RankSummary>), NetError> {
        self.execute_detailed_cancellable(job, network, &CancelToken::new())
    }

    /// [`WorkerPool::execute_detailed`] under a [`CancelToken`]: while the
    /// job runs, a canceller thread polls the token and, once it fires,
    /// ships `Cancel { epoch }` to every rank. The workers stop together
    /// at their next cancel-vote checkpoint (mid-sweep, not at the job
    /// boundary) and the call returns [`NetError::Cancelled`] with the
    /// world still warm.
    pub fn execute_detailed_cancellable(
        &self,
        job: &ShippedJob,
        network: NetworkModel,
        cancel: &CancelToken,
    ) -> Result<(StateVector, RunReport, Vec<RankSummary>), NetError> {
        // One job at a time: the lock *is* the job queue (SPMD — every
        // rank participates in every job, so there is nothing to overlap).
        let mut inner = self.inner.lock().expect("pool lock poisoned");
        self.metrics.jobs_run.fetch_add(1, Ordering::Relaxed);
        if inner
            .world
            .as_ref()
            .is_some_and(|world| world.network != network)
        {
            log::info(
                LOG_TARGET,
                "network model changed; respawning the worker world",
                &[],
            );
            inner.world = None;
        }
        if inner.world.is_some() {
            self.metrics
                .jobs_reused_world
                .fetch_add(1, Ordering::Relaxed);
        } else {
            self.spawn_world(&mut inner, network)?;
        }
        let epoch = inner.next_epoch;
        inner.next_epoch += 1;

        // Ship the job (plan partitions + circuit; workers re-fuse
        // locally, or answer from their warm plan cache).
        let ship_start = Instant::now();
        {
            let _ship = hisvsim_obs::span("cluster", "ship");
            let world = inner.world.as_mut().expect("world ensured above");
            for stream in &mut world.controls {
                send_json(stream, &WorkerCommand::Run(epoch, job.clone()))?;
            }
        }

        // The canceller: polls the token, and once it fires ships one
        // `Cancel { epoch }` frame per rank on cloned control handles.
        // Spawned strictly after the `Run` frames, so TCP ordering
        // guarantees no worker can see the cancel before its job.
        let done = Arc::new(AtomicBool::new(false));
        let canceller = {
            let world = inner.world.as_ref().expect("world ensured above");
            let mut streams = Vec::with_capacity(world.controls.len());
            for stream in &world.controls {
                streams.push(stream.try_clone()?);
            }
            let done = Arc::clone(&done);
            let token = cancel.clone();
            std::thread::spawn(move || {
                while !done.load(Ordering::Acquire) {
                    if token.is_cancelled() {
                        for stream in &mut streams {
                            let _ = send_json(stream, &WorkerCommand::Cancel(epoch));
                        }
                        return;
                    }
                    std::thread::sleep(CANCEL_POLL);
                }
            })
        };

        let gathered = self.gather(&mut inner, epoch);
        done.store(true, Ordering::Release);
        canceller.join().expect("canceller thread panicked");

        match gathered {
            Ok(Gathered::Done(outcomes, summaries)) => {
                let wall = ship_start.elapsed().as_secs_f64();
                log::info(
                    LOG_TARGET,
                    "job complete",
                    &[
                        ("epoch", &epoch.to_string()),
                        ("workers", &self.workers.to_string()),
                        ("circuit", &job.circuit.name),
                        ("wall_s", &format!("{wall:.3}")),
                    ],
                );
                let (state, report) = aggregate_outcomes(
                    job.engine.name(),
                    "process",
                    &job.circuit,
                    job.num_parts(),
                    outcomes,
                    wall,
                );
                Ok((state, report, summaries))
            }
            Ok(Gathered::Cancelled) => {
                self.metrics.jobs_cancelled.fetch_add(1, Ordering::Relaxed);
                log::info(
                    LOG_TARGET,
                    "job cancelled; world stays warm",
                    &[("epoch", &epoch.to_string())],
                );
                Err(NetError::Cancelled)
            }
            Err(e) => {
                // Crash-only: any failure mid-gather leaves the mesh state
                // unknowable, so the whole world goes down with the job
                // (ChildGuard's drop kills survivors). The next job
                // respawns a fresh world at a fresh epoch.
                self.metrics.jobs_failed.fetch_add(1, Ordering::Relaxed);
                inner.world = None;
                log::error(
                    LOG_TARGET,
                    "job failed; worker world dropped",
                    &[("epoch", &epoch.to_string()), ("error", &e.to_string())],
                );
                Err(e)
            }
        }
    }

    /// Spawn the worker processes and run the rendezvous, leaving a fresh
    /// resident [`World`] in `inner`. The elapsed launch time is accounted
    /// in [`WorkerPool::metrics`] — deliberately *not* in any job's wall
    /// time (jobs are timed ship-to-gather only).
    fn spawn_world(&self, inner: &mut PoolInner, network: NetworkModel) -> Result<(), NetError> {
        let launch_start = Instant::now();
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let control_addr = listener.local_addr()?.to_string();
        log::info(
            LOG_TARGET,
            "spawning worker world",
            &[
                ("workers", &self.workers.to_string()),
                ("control", &control_addr),
                ("base_epoch", &inner.next_epoch.to_string()),
            ],
        );
        let mut guard = ChildGuard::new();
        {
            let _launch =
                hisvsim_obs::span("cluster", "launch").detail(format!("{} workers", self.workers));
            for rank in 0..self.workers {
                let child = Command::new(&self.worker_bin)
                    .arg("worker")
                    .arg(&control_addr)
                    .arg(rank.to_string())
                    .stdin(Stdio::null())
                    .spawn()?;
                guard.children.push((rank, child));
            }
        }

        // Rendezvous: collect every worker's hello (rank + data address),
        // then ship each the world layout once.
        let rendezvous = hisvsim_obs::span("cluster", "rendezvous");
        let deadline = Instant::now() + self.handshake_timeout;
        let mut controls: Vec<Option<(TcpStream, String)>> =
            (0..self.workers).map(|_| None).collect();
        for _ in 0..self.workers {
            let mut stream = accept_with_deadline(&listener, deadline, &mut guard)?;
            stream.set_nodelay(true)?;
            let hello: WorkerHello = recv_json(&mut stream)?;
            if hello.rank >= self.workers || controls[hello.rank].is_some() {
                return Err(NetError::Protocol(format!(
                    "unexpected hello from rank {}",
                    hello.rank
                )));
            }
            controls[hello.rank] = Some((stream, hello.data_addr));
        }
        let mut controls: Vec<(TcpStream, String)> = controls
            .into_iter()
            .map(|c| c.expect("all checked in"))
            .collect();
        let peers: Vec<String> = controls.iter().map(|(_, addr)| addr.clone()).collect();
        for (rank, (stream, _)) in controls.iter_mut().enumerate() {
            send_json(
                stream,
                &LaunchSpec {
                    rank,
                    size: self.workers,
                    peers: peers.clone(),
                    network,
                    epoch: inner.next_epoch,
                },
            )?;
        }
        drop(rendezvous);

        let launch_s = launch_start.elapsed().as_secs_f64();
        self.metrics.worlds_spawned.fetch_add(1, Ordering::Relaxed);
        self.metrics
            .launch_micros_total
            .fetch_add((launch_s * 1e6) as u64, Ordering::Relaxed);
        log::debug(
            LOG_TARGET,
            "worker world resident",
            &[
                ("workers", &self.workers.to_string()),
                ("launch_s", &format!("{launch_s:.3}")),
            ],
        );
        inner.world = Some(World {
            guard,
            controls: controls.into_iter().map(|(stream, _)| stream).collect(),
            network,
        });
        Ok(())
    }

    /// Gather per-rank reports (and identity-layout slices on success).
    /// Before each blocking read, wait for readability while polling
    /// worker liveness — a crashed worker fails the gather promptly
    /// instead of wedging the pool on a stream that will never produce
    /// bytes.
    fn gather(&self, inner: &mut PoolInner, epoch: u64) -> Result<Gathered, NetError> {
        let _gather = hisvsim_obs::span("cluster", "gather");
        let World {
            guard, controls, ..
        } = inner.world.as_mut().expect("world ensured by caller");
        let mut outcomes = Vec::with_capacity(controls.len());
        let mut summaries = Vec::with_capacity(controls.len());
        let mut cancelled_ranks = 0usize;
        for (rank, stream) in controls.iter_mut().enumerate() {
            await_readable(stream, guard)?;
            let report: RankReport = recv_json(stream)?;
            if report.rank != rank {
                return Err(NetError::Protocol(format!(
                    "rank {rank}'s control channel reported rank {}",
                    report.rank
                )));
            }
            if report.epoch != epoch {
                return Err(NetError::Protocol(format!(
                    "rank {rank} answered epoch {} to a job at epoch {epoch}",
                    report.epoch
                )));
            }
            match report.status {
                RankStatus::Ok => {}
                RankStatus::Cancelled => {
                    cancelled_ranks += 1;
                    continue;
                }
                RankStatus::Failed(message) => {
                    return Err(NetError::Worker(format!("rank {rank}: {message}")));
                }
            }
            let (tag, bytes) = read_frame(stream)?;
            if tag != AMPS_TAG {
                return Err(NetError::Protocol(format!(
                    "expected the amplitude frame, got tag {tag:#x}"
                )));
            }
            let local = amplitudes_from_le_bytes(&bytes);
            if local.len() != report.amp_count {
                return Err(NetError::Protocol(format!(
                    "rank {rank} announced {} amplitudes but sent {}",
                    report.amp_count,
                    local.len()
                )));
            }
            // Splice the worker's spans into the pool's timeline, one
            // process lane per rank (`pid = rank + 1`; the pool is 0).
            for mut span in report.spans {
                span.pid = rank as u32 + 1;
                hisvsim_obs::record(span);
            }
            // Fold the rank's measured-cost delta into the profile sink
            // (a no-op when the store is frozen or no sink is wired).
            if let Some(store) = &self.profile {
                store.merge(&report.profile);
            }
            log::debug(
                LOG_TARGET,
                "rank gathered",
                &[
                    ("rank", &rank.to_string()),
                    ("epoch", &epoch.to_string()),
                    ("amps", &report.amp_count.to_string()),
                    ("exchanges", &report.exchanges.to_string()),
                    ("compute_s", &format!("{:.3}", report.compute_time_s)),
                ],
            );
            summaries.push(RankSummary {
                rank,
                compute_time_s: report.compute_time_s,
                comm: report.comm,
                exchanges: report.exchanges,
            });
            outcomes.push(RankOutcome {
                rank,
                compute_time_s: report.compute_time_s,
                comm: report.comm,
                exchanges: report.exchanges,
                local,
            });
        }
        if cancelled_ranks == controls.len() {
            return Ok(Gathered::Cancelled);
        }
        if cancelled_ranks > 0 {
            // The cancel vote guarantees unanimity; a split means the
            // protocol was violated somewhere.
            return Err(NetError::Protocol(format!(
                "{cancelled_ranks}/{} ranks cancelled while the rest completed",
                controls.len()
            )));
        }
        Ok(Gathered::Done(outcomes, summaries))
    }

    /// Tear the resident world down cleanly: ship every rank a `Shutdown`
    /// frame, give them [`SHUTDOWN_GRACE`] to exit, then kill any
    /// stragglers. Idempotent; the next job after a shutdown simply
    /// respawns the world.
    pub fn shutdown(&self) {
        let Ok(mut inner) = self.inner.lock() else {
            return;
        };
        let Some(mut world) = inner.world.take() else {
            return;
        };
        log::info(
            LOG_TARGET,
            "shutting worker world down",
            &[("workers", &world.controls.len().to_string())],
        );
        for stream in &mut world.controls {
            let _ = send_json(stream, &WorkerCommand::Shutdown);
        }
        if !world
            .guard
            .wait_all_with_deadline(Instant::now() + SHUTDOWN_GRACE)
        {
            log::warn(LOG_TARGET, "workers ignored shutdown; killing them", &[]);
        }
        // ChildGuard::drop reaps (and kills, if needed) the children.
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl ProcessBackend for WorkerPool {
    fn ranks(&self) -> usize {
        self.workers
    }

    fn execute(
        &self,
        request: ProcessRequest<'_>,
        cancel: &CancelToken,
    ) -> Result<(StateVector, RunReport), ProcessError> {
        let job = ShippedJob {
            engine: request.engine,
            circuit: request.circuit.clone(),
            fusion: request.fusion,
            strategy: request.strategy,
            dispatch: request.dispatch,
            plan: request.plan,
            trace: hisvsim_obs::enabled(),
        };
        match self.execute_detailed_cancellable(&job, request.network, cancel) {
            Ok((state, mut report, _)) => {
                report.engine = request.engine.name().to_string();
                Ok((state, report))
            }
            Err(NetError::Cancelled) => Err(ProcessError::Cancelled),
            Err(e) => Err(ProcessError::Failed(e.to_string())),
        }
    }

    fn shutdown(&self) {
        WorkerPool::shutdown(self);
    }

    fn pool_stats(&self) -> Option<ProcessPoolStats> {
        Some(self.metrics())
    }
}

//! [`ClusterLauncher`]: spawn worker processes, ship each its plan, gather
//! per-rank slices and stats back — the multi-process `mpirun` of this
//! reproduction, and the [`ProcessBackend`] the runtime's scheduler drives
//! for [`Backend::Process`](hisvsim_runtime::Backend::Process) jobs.

use crate::proto::{LaunchSpec, RankReport, ShippedJob, WorkerHello, AMPS_TAG};
use crate::wire::{read_frame, recv_json, send_json};
use crate::worker::execute_shipped_rank;
use hisvsim_circuit::Complex64;
use hisvsim_cluster::{run_spmd, NetworkModel};
use hisvsim_core::{aggregate_outcomes, RankOutcome, RunReport};
use hisvsim_obs::log;
use hisvsim_runtime::{ProcessBackend, ProcessRequest};
use hisvsim_statevec::{amplitudes_from_le_bytes, StateVector};
use std::io;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const LOG_TARGET: &str = "hisvsim-net::launcher";

/// Errors of the launcher/worker pipeline.
#[derive(Debug)]
pub enum NetError {
    /// Socket or process I/O failed.
    Io(io::Error),
    /// The control protocol was violated (bad frame, wrong rank, missing
    /// plan shape).
    Protocol(String),
    /// A worker process exited abnormally.
    Worker(String),
}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> Self {
        NetError::Io(e)
    }
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "i/o error: {e}"),
            NetError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            NetError::Worker(msg) => write!(f, "worker failed: {msg}"),
        }
    }
}

impl std::error::Error for NetError {}

/// Locate the `hisvsim-net` worker binary: the `HISVSIM_NET_WORKER`
/// environment variable wins; otherwise walk up from the current
/// executable's directory (covers `target/<profile>/`,
/// `target/<profile>/deps/` for test binaries, and
/// `target/<profile>/examples/`).
pub fn find_worker_binary() -> Option<PathBuf> {
    if let Ok(path) = std::env::var("HISVSIM_NET_WORKER") {
        let path = PathBuf::from(path);
        if path.is_file() {
            return Some(path);
        }
    }
    let exe = std::env::current_exe().ok()?;
    let name = format!("hisvsim-net{}", std::env::consts::EXE_SUFFIX);
    let mut dir = exe.parent()?;
    for _ in 0..3 {
        let candidate = dir.join(&name);
        if candidate.is_file() {
            return Some(candidate);
        }
        dir = dir.parent()?;
    }
    None
}

/// Kills any still-running children on drop, so a failed launch never
/// leaves orphan workers behind.
struct ChildGuard {
    children: Vec<(usize, Child)>,
}

impl ChildGuard {
    fn new() -> Self {
        Self {
            children: Vec::new(),
        }
    }

    /// A worker that already exited with failure, if any (non-blocking).
    fn any_failed(&mut self) -> Option<String> {
        for (rank, child) in &mut self.children {
            if let Ok(Some(status)) = child.try_wait() {
                if !status.success() {
                    return Some(format!("worker rank {rank} exited with {status}"));
                }
            }
        }
        None
    }

    /// Wait for every worker to exit cleanly.
    fn wait_all(&mut self) -> Result<(), NetError> {
        for (rank, mut child) in self.children.drain(..) {
            let status = child.wait()?;
            if !status.success() {
                return Err(NetError::Worker(format!(
                    "worker rank {rank} exited with {status}"
                )));
            }
        }
        Ok(())
    }
}

impl Drop for ChildGuard {
    fn drop(&mut self) {
        for (_, child) in &mut self.children {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// Spawns `workers` processes of the `hisvsim-net` binary in worker mode,
/// ships each one the job over a localhost control channel, and gathers the
/// per-rank results. Stateless across calls: every [`ClusterLauncher::execute`]
/// is one complete launch–run–gather cycle, and plan reuse across calls is
/// the plan cache's job (the launcher ships whatever partition it is
/// handed, so a warm cache means zero replans on a repeat workload).
pub struct ClusterLauncher {
    workers: usize,
    network: NetworkModel,
    worker_bin: PathBuf,
    handshake_timeout: Duration,
    profile: Option<std::sync::Arc<hisvsim_obs::ProfileStore>>,
}

impl ClusterLauncher {
    /// A launcher for `workers` processes (a power of two), discovering the
    /// worker binary automatically (see [`find_worker_binary`]).
    pub fn new(workers: usize) -> Result<Self, NetError> {
        let worker_bin = find_worker_binary().ok_or_else(|| {
            NetError::Protocol(
                "cannot locate the hisvsim-net worker binary; build it (cargo build -p \
                 hisvsim-net) or set HISVSIM_NET_WORKER"
                    .to_string(),
            )
        })?;
        Ok(Self::with_worker_binary(workers, worker_bin))
    }

    /// A launcher using an explicit worker binary path.
    pub fn with_worker_binary(workers: usize, worker_bin: PathBuf) -> Self {
        assert!(
            workers.is_power_of_two(),
            "worker count must be a power of two, got {workers}"
        );
        Self {
            workers,
            network: NetworkModel::hdr100(),
            worker_bin,
            handshake_timeout: Duration::from_secs(60),
            profile: None,
        }
    }

    /// Use a different network model for the workers' accounting.
    pub fn with_network(mut self, network: NetworkModel) -> Self {
        self.network = network;
        self
    }

    /// Fold every rank's measured-cost delta ([`RankReport::profile`]) into
    /// this store at gather time — typically the same store the scheduler's
    /// [`SchedulerConfig`](hisvsim_runtime::SchedulerConfig) calibrates
    /// from, closing the loop across process boundaries. Deltas only flow
    /// when tracing is on (the workers aggregate from their own spans).
    pub fn with_profile_store(mut self, store: std::sync::Arc<hisvsim_obs::ProfileStore>) -> Self {
        self.profile = Some(store);
        self
    }

    /// The worker-process world size.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Launch the worker world, execute `job`, and assemble the full state
    /// plus the aggregated run report (per-rank comm stats merged exactly
    /// like the in-process engines').
    pub fn execute(&self, job: &ShippedJob) -> Result<(StateVector, RunReport), NetError> {
        self.execute_with_network(job, self.network)
    }

    /// [`ClusterLauncher::execute`] with an explicit network model.
    pub fn execute_with_network(
        &self,
        job: &ShippedJob,
        network: NetworkModel,
    ) -> Result<(StateVector, RunReport), NetError> {
        self.execute_detailed(job, network)
            .map(|(state, report, _)| (state, report))
    }

    /// [`ClusterLauncher::execute_with_network`], additionally returning
    /// the per-rank stats that [`aggregate_outcomes`] would otherwise fold
    /// away (for the smoke command's per-rank table and any caller that
    /// wants rank-resolved comm accounting).
    pub fn execute_detailed(
        &self,
        job: &ShippedJob,
        network: NetworkModel,
    ) -> Result<(StateVector, RunReport, Vec<RankSummary>), NetError> {
        let start = Instant::now();
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let control_addr = listener.local_addr()?.to_string();
        log::info(
            LOG_TARGET,
            "launching worker world",
            &[
                ("workers", &self.workers.to_string()),
                ("engine", job.engine.name()),
                ("circuit", &job.circuit.name),
                ("control", &control_addr),
            ],
        );

        let mut guard = ChildGuard::new();
        {
            let _launch =
                hisvsim_obs::span("cluster", "launch").detail(format!("{} workers", self.workers));
            for rank in 0..self.workers {
                let child = Command::new(&self.worker_bin)
                    .arg("worker")
                    .arg(&control_addr)
                    .arg(rank.to_string())
                    .stdin(Stdio::null())
                    .spawn()?;
                guard.children.push((rank, child));
            }
        }

        // Rendezvous: collect every worker's hello (rank + data address).
        let rendezvous = hisvsim_obs::span("cluster", "rendezvous");
        let deadline = Instant::now() + self.handshake_timeout;
        let mut controls: Vec<Option<(TcpStream, String)>> =
            (0..self.workers).map(|_| None).collect();
        for _ in 0..self.workers {
            let mut stream = accept_with_deadline(&listener, deadline, &mut guard)?;
            stream.set_nodelay(true)?;
            let hello: WorkerHello = recv_json(&mut stream)?;
            if hello.rank >= self.workers || controls[hello.rank].is_some() {
                return Err(NetError::Protocol(format!(
                    "unexpected hello from rank {}",
                    hello.rank
                )));
            }
            controls[hello.rank] = Some((stream, hello.data_addr));
        }
        let mut controls: Vec<(TcpStream, String)> = controls
            .into_iter()
            .map(|c| c.expect("all checked in"))
            .collect();
        let peers: Vec<String> = controls.iter().map(|(_, addr)| addr.clone()).collect();
        drop(rendezvous);
        log::debug(
            LOG_TARGET,
            "rendezvous complete",
            &[
                ("workers", &self.workers.to_string()),
                (
                    "elapsed_s",
                    &format!("{:.3}", start.elapsed().as_secs_f64()),
                ),
            ],
        );

        // Ship the job (plan partitions + circuit; workers re-fuse locally).
        {
            let _ship = hisvsim_obs::span("cluster", "ship");
            for (rank, (stream, _)) in controls.iter_mut().enumerate() {
                send_json(
                    stream,
                    &LaunchSpec {
                        rank,
                        size: self.workers,
                        peers: peers.clone(),
                        network,
                        job: job.clone(),
                    },
                )?;
            }
        }

        // Gather per-rank reports and identity-layout slices. Before each
        // blocking read, wait for readability while polling worker
        // liveness — a crashed worker fails the gather promptly instead of
        // wedging the launcher on a stream that will never produce bytes.
        let gather = hisvsim_obs::span("cluster", "gather");
        let mut outcomes = Vec::with_capacity(self.workers);
        let mut summaries = Vec::with_capacity(self.workers);
        for (rank, (stream, _)) in controls.iter_mut().enumerate() {
            await_readable(stream, &mut guard)?;
            let report: RankReport = recv_json(stream)?;
            if report.rank != rank {
                return Err(NetError::Protocol(format!(
                    "rank {rank}'s control channel reported rank {}",
                    report.rank
                )));
            }
            let (tag, bytes) = read_frame(stream)?;
            if tag != AMPS_TAG {
                return Err(NetError::Protocol(format!(
                    "expected the amplitude frame, got tag {tag:#x}"
                )));
            }
            let local = amplitudes_from_le_bytes(&bytes);
            if local.len() != report.amp_count {
                return Err(NetError::Protocol(format!(
                    "rank {rank} announced {} amplitudes but sent {}",
                    report.amp_count,
                    local.len()
                )));
            }
            // Splice the worker's spans into the launcher's timeline, one
            // process lane per rank (`pid = rank + 1`; the launcher is 0).
            for mut span in report.spans {
                span.pid = rank as u32 + 1;
                hisvsim_obs::record(span);
            }
            // Fold the rank's measured-cost delta into the profile sink
            // (a no-op when the store is frozen or no sink is wired).
            if let Some(store) = &self.profile {
                store.merge(&report.profile);
            }
            log::debug(
                LOG_TARGET,
                "rank gathered",
                &[
                    ("rank", &rank.to_string()),
                    ("amps", &report.amp_count.to_string()),
                    ("exchanges", &report.exchanges.to_string()),
                    ("compute_s", &format!("{:.3}", report.compute_time_s)),
                ],
            );
            summaries.push(RankSummary {
                rank,
                compute_time_s: report.compute_time_s,
                comm: report.comm,
                exchanges: report.exchanges,
            });
            outcomes.push(RankOutcome {
                rank,
                compute_time_s: report.compute_time_s,
                comm: report.comm,
                exchanges: report.exchanges,
                local,
            });
        }
        if let Err(failure) = guard.wait_all() {
            log::error(
                LOG_TARGET,
                "worker world failed",
                &[("error", &failure.to_string())],
            );
            return Err(failure);
        }
        drop(gather);

        let wall = start.elapsed().as_secs_f64();
        log::info(
            LOG_TARGET,
            "cluster run complete",
            &[
                ("workers", &self.workers.to_string()),
                ("circuit", &job.circuit.name),
                ("wall_s", &format!("{wall:.3}")),
            ],
        );
        let (state, report) = aggregate_outcomes(
            job.engine.name(),
            "process",
            &job.circuit,
            job.num_parts(),
            outcomes,
            wall,
        );
        Ok((state, report, summaries))
    }
}

/// Per-rank stats extracted from a worker's [`RankReport`], before
/// [`aggregate_outcomes`] folds them into one [`RunReport`].
#[derive(Debug, Clone)]
pub struct RankSummary {
    /// The reporting rank.
    pub rank: usize,
    /// Wall-clock seconds the rank spent applying gates.
    pub compute_time_s: f64,
    /// The rank's communication statistics.
    pub comm: hisvsim_cluster::CommStats,
    /// Number of state redistributions the rank participated in.
    pub exchanges: usize,
}

/// Block until `stream` has readable bytes (or EOF), polling worker
/// liveness every half second so a crashed worker turns into a prompt
/// [`NetError::Worker`] instead of an indefinite blocking read. `peek`
/// consumes nothing, so the frame reader's byte accounting is untouched.
/// A worker that is alive but wedged still blocks — the launch-level
/// `timeout` guard in CI (and the transport's deadlock-free collectives)
/// are the lines of defence there.
fn await_readable(stream: &TcpStream, guard: &mut ChildGuard) -> Result<(), NetError> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    let mut probe = [0u8; 1];
    let result = loop {
        match stream.peek(&mut probe) {
            // Readable data or EOF: hand off to the real reader (EOF
            // surfaces there as UnexpectedEof with the rank attached).
            Ok(_) => break Ok(()),
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if let Some(failure) = guard.any_failed() {
                    log::error(
                        LOG_TARGET,
                        "worker died during gather",
                        &[("error", &failure)],
                    );
                    break Err(NetError::Worker(failure));
                }
            }
            Err(e) => break Err(e.into()),
        }
    };
    stream.set_read_timeout(None)?;
    result
}

/// Accept one connection, polling so a crashed worker fails the launch
/// promptly instead of hanging the accept loop forever.
fn accept_with_deadline(
    listener: &TcpListener,
    deadline: Instant,
    guard: &mut ChildGuard,
) -> Result<TcpStream, NetError> {
    listener.set_nonblocking(true)?;
    let result = loop {
        match listener.accept() {
            Ok((stream, _)) => break Ok(stream),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if let Some(failure) = guard.any_failed() {
                    log::error(
                        LOG_TARGET,
                        "worker died during rendezvous",
                        &[("error", &failure)],
                    );
                    break Err(NetError::Worker(failure));
                }
                if Instant::now() > deadline {
                    log::error(LOG_TARGET, "rendezvous timed out", &[]);
                    break Err(NetError::Protocol(
                        "timed out waiting for workers to check in".to_string(),
                    ));
                }
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => break Err(e.into()),
        }
    };
    listener.set_nonblocking(false)?;
    let stream = result?;
    stream.set_nonblocking(false)?;
    Ok(stream)
}

/// Execute a [`ShippedJob`] on the *in-process* channel world — the
/// reference a process run is compared against. Runs the identical rank
/// body ([`execute_shipped_rank`]) over
/// [`LocalComm`](hisvsim_cluster::LocalComm), so the two runs are
/// bit-identical whenever the transport moves bytes faithfully.
pub fn execute_local_reference(
    job: &ShippedJob,
    ranks: usize,
    network: NetworkModel,
) -> Result<(StateVector, RunReport), NetError> {
    let start = Instant::now();
    let results =
        run_spmd::<Complex64, Result<RankOutcome, String>, _>(ranks, network, |mut comm| {
            execute_shipped_rank(job, &mut comm).map_err(|e| e.to_string())
        });
    let outcomes: Result<Vec<RankOutcome>, String> = results.into_iter().collect();
    let outcomes = outcomes.map_err(NetError::Protocol)?;
    let wall = start.elapsed().as_secs_f64();
    Ok(aggregate_outcomes(
        job.engine.name(),
        "process",
        &job.circuit,
        job.num_parts(),
        outcomes,
        wall,
    ))
}

impl ProcessBackend for ClusterLauncher {
    fn ranks(&self) -> usize {
        self.workers
    }

    fn execute(&self, request: ProcessRequest<'_>) -> Result<(StateVector, RunReport), String> {
        let job = ShippedJob {
            engine: request.engine,
            circuit: request.circuit.clone(),
            fusion: request.fusion,
            strategy: request.strategy,
            dispatch: request.dispatch,
            plan: request.plan,
            trace: hisvsim_obs::enabled(),
        };
        self.execute_with_network(&job, request.network)
            .map(|(state, mut report)| {
                report.engine = request.engine.name().to_string();
                (state, report)
            })
            .map_err(|e| e.to_string())
    }
}

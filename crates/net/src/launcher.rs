//! Shared launch infrastructure: error type, worker-binary discovery,
//! child-process lifetime guard, liveness-aware socket helpers, and the
//! in-process reference executor. The launch–run–gather driver itself
//! lives in [`crate::pool`] — [`WorkerPool`](crate::WorkerPool) spawns the
//! worker world once and keeps it resident across jobs.

use crate::proto::ShippedJob;
use crate::worker::execute_shipped_rank;
use hisvsim_circuit::Complex64;
use hisvsim_cluster::{run_spmd, NetworkModel};
use hisvsim_core::{aggregate_outcomes, RankOutcome, RunReport};
use hisvsim_obs::log;
use hisvsim_statevec::StateVector;
use std::io;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::Child;
use std::time::{Duration, Instant};

const LOG_TARGET: &str = "hisvsim-net::launcher";

/// Errors of the pool/worker pipeline.
#[derive(Debug)]
pub enum NetError {
    /// Socket or process I/O failed.
    Io(io::Error),
    /// The control protocol was violated (bad frame, wrong rank, missing
    /// plan shape).
    Protocol(String),
    /// A worker process exited abnormally.
    Worker(String),
    /// Every rank agreed to stop at a cancel-vote checkpoint; the job
    /// produced no result but the worker world is still healthy.
    Cancelled,
}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> Self {
        NetError::Io(e)
    }
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "i/o error: {e}"),
            NetError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            NetError::Worker(msg) => write!(f, "worker failed: {msg}"),
            NetError::Cancelled => write!(f, "job cancelled"),
        }
    }
}

impl std::error::Error for NetError {}

/// Locate the `hisvsim-net` worker binary: the `HISVSIM_NET_WORKER`
/// environment variable wins; otherwise walk up from the current
/// executable's directory (covers `target/<profile>/`,
/// `target/<profile>/deps/` for test binaries, and
/// `target/<profile>/examples/`).
pub fn find_worker_binary() -> Option<PathBuf> {
    if let Ok(path) = std::env::var("HISVSIM_NET_WORKER") {
        let path = PathBuf::from(path);
        if path.is_file() {
            return Some(path);
        }
    }
    let exe = std::env::current_exe().ok()?;
    let name = format!("hisvsim-net{}", std::env::consts::EXE_SUFFIX);
    let mut dir = exe.parent()?;
    for _ in 0..3 {
        let candidate = dir.join(&name);
        if candidate.is_file() {
            return Some(candidate);
        }
        dir = dir.parent()?;
    }
    None
}

/// Kills any still-running children on drop, so a failed launch (or a
/// dropped pool) never leaves orphan workers behind.
pub(crate) struct ChildGuard {
    pub(crate) children: Vec<(usize, Child)>,
}

impl ChildGuard {
    pub(crate) fn new() -> Self {
        Self {
            children: Vec::new(),
        }
    }

    /// A worker that already exited with failure, if any (non-blocking).
    pub(crate) fn any_failed(&mut self) -> Option<String> {
        for (rank, child) in &mut self.children {
            if let Ok(Some(status)) = child.try_wait() {
                if !status.success() {
                    return Some(format!("worker rank {rank} exited with {status}"));
                }
            }
        }
        None
    }

    /// The operating-system process ids of the live children (for tests
    /// that kill a worker mid-job).
    pub(crate) fn pids(&self) -> Vec<u32> {
        self.children.iter().map(|(_, child)| child.id()).collect()
    }

    /// Poll until every child has exited (any status) or the deadline
    /// passes; returns whether all exited. Leftovers are killed by drop.
    pub(crate) fn wait_all_with_deadline(&mut self, deadline: Instant) -> bool {
        loop {
            let all_done = self
                .children
                .iter_mut()
                .all(|(_, child)| matches!(child.try_wait(), Ok(Some(_))));
            if all_done {
                return true;
            }
            if Instant::now() > deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    }
}

impl Drop for ChildGuard {
    fn drop(&mut self) {
        for (_, child) in &mut self.children {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// Per-rank stats extracted from a worker's
/// [`RankReport`](crate::RankReport), before [`aggregate_outcomes`] folds
/// them into one [`RunReport`].
#[derive(Debug, Clone)]
pub struct RankSummary {
    /// The reporting rank.
    pub rank: usize,
    /// Wall-clock seconds the rank spent applying gates.
    pub compute_time_s: f64,
    /// The rank's communication statistics.
    pub comm: hisvsim_cluster::CommStats,
    /// Number of state redistributions the rank participated in.
    pub exchanges: usize,
}

/// Block until `stream` has readable bytes (or EOF), polling worker
/// liveness every half second so a crashed worker turns into a prompt
/// [`NetError::Worker`] instead of an indefinite blocking read. `peek`
/// consumes nothing, so the frame reader's byte accounting is untouched.
/// A worker that is alive but wedged still blocks — the launch-level
/// `timeout` guard in CI (and the transport's deadlock-free collectives)
/// are the lines of defence there.
pub(crate) fn await_readable(stream: &TcpStream, guard: &mut ChildGuard) -> Result<(), NetError> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    let mut probe = [0u8; 1];
    let result = loop {
        match stream.peek(&mut probe) {
            // Readable data or EOF: hand off to the real reader (EOF
            // surfaces there as UnexpectedEof with the rank attached).
            Ok(_) => break Ok(()),
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if let Some(failure) = guard.any_failed() {
                    log::error(
                        LOG_TARGET,
                        "worker died during gather",
                        &[("error", &failure)],
                    );
                    break Err(NetError::Worker(failure));
                }
            }
            Err(e) => break Err(e.into()),
        }
    };
    stream.set_read_timeout(None)?;
    result
}

/// Accept one connection, polling so a crashed worker fails the launch
/// promptly instead of hanging the accept loop forever.
pub(crate) fn accept_with_deadline(
    listener: &TcpListener,
    deadline: Instant,
    guard: &mut ChildGuard,
) -> Result<TcpStream, NetError> {
    listener.set_nonblocking(true)?;
    let result = loop {
        match listener.accept() {
            Ok((stream, _)) => break Ok(stream),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if let Some(failure) = guard.any_failed() {
                    log::error(
                        LOG_TARGET,
                        "worker died during rendezvous",
                        &[("error", &failure)],
                    );
                    break Err(NetError::Worker(failure));
                }
                if Instant::now() > deadline {
                    log::error(LOG_TARGET, "rendezvous timed out", &[]);
                    break Err(NetError::Protocol(
                        "timed out waiting for workers to check in".to_string(),
                    ));
                }
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => break Err(e.into()),
        }
    };
    listener.set_nonblocking(false)?;
    let stream = result?;
    stream.set_nonblocking(false)?;
    Ok(stream)
}

/// Execute a [`ShippedJob`] on the *in-process* channel world — the
/// reference a process run is compared against. Runs the identical rank
/// body ([`execute_shipped_rank`]) over
/// [`LocalComm`](hisvsim_cluster::LocalComm), so the two runs are
/// bit-identical whenever the transport moves bytes faithfully.
pub fn execute_local_reference(
    job: &ShippedJob,
    ranks: usize,
    network: NetworkModel,
) -> Result<(StateVector, RunReport), NetError> {
    let start = Instant::now();
    let results =
        run_spmd::<Complex64, Result<RankOutcome, String>, _>(ranks, network, |mut comm| {
            execute_shipped_rank(job, &mut comm).map_err(|e| e.to_string())
        });
    let outcomes: Result<Vec<RankOutcome>, String> = results.into_iter().collect();
    let outcomes = outcomes.map_err(NetError::Protocol)?;
    let wall = start.elapsed().as_secs_f64();
    Ok(aggregate_outcomes(
        job.engine.name(),
        "process",
        &job.circuit,
        job.num_parts(),
        outcomes,
        wall,
    ))
}

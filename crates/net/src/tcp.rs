//! [`TcpComm`]: the multi-process [`RankComm`] implementation.
//!
//! A world of `N` ranks is a full mesh of TCP connections — one stream per
//! rank pair, established by a rendezvous handshake: every rank opens a
//! listener, the addresses are distributed (by the launcher, or by
//! [`tcp_world`] for in-process tests), rank `i` connects to every rank
//! `j < i` and accepts connections from every `j > i`; the first frame on
//! each connection is a hello carrying the connecting rank.
//!
//! Semantics match [`LocalComm`](hisvsim_cluster::LocalComm) exactly:
//! tagged matching with an out-of-order stash per peer, self-sends through
//! a local queue at zero network charge, and the same [`CommStats`]
//! accounting (logical payload bytes, modelled α–β wire time, and the full
//! blocking span of collectives charged to `wall_time_s`). The barrier has
//! no shared-memory `Barrier` to lean on, so it is a gather–release through
//! rank 0 on a reserved tag namespace.

use crate::wire::{decode_items, encode_items, read_frame, write_frame, WireItem};
use hisvsim_cluster::{CommStats, NetworkModel, RankComm, VOTE_EPOCH_MASK, VOTE_NS};
use std::collections::VecDeque;
use std::io;
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

/// Tag of the rendezvous hello frame (outside the engines' tag space).
const HELLO_TAG: u64 = 0x0048_454C_4C4F_0000;

/// Reserved namespace for barrier rounds: `BARRIER_NS | epoch`.
const BARRIER_NS: u64 = 0xB55F_0000_0000_0000;

/// Largest barrier epoch before the round counter wraps back to 0. The
/// counter must never escape the low 48 bits, or `BARRIER_NS | epoch`
/// would collide with another namespace — reachable once workers stay
/// resident across thousands of jobs, so the counter wraps (a collision
/// across the wrap needs 2^48 barriers in flight inside one job, which
/// cannot happen) and [`TcpComm::begin_job`] resets it between jobs.
const BARRIER_EPOCH_MASK: u64 = (1 << 48) - 1;

/// Typed panic payload for a lost peer connection inside a collective.
///
/// A dead peer mid-collective leaves this rank's mesh state undefined (a
/// frame may be half-read), so the transport cannot return an error and
/// keep going — but the *worker job loop* can catch this payload at the
/// job boundary (`catch_unwind`), report the job as failed over the
/// control channel, and let the pool respawn the world, instead of the
/// whole worker process dying with an opaque panic message.
#[derive(Debug, Clone)]
pub struct PeerLost {
    /// The rank whose connection died.
    pub peer: usize,
    /// What the transport was doing when the connection died.
    pub detail: String,
}

impl std::fmt::Display for PeerLost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "connection to rank {} lost: {}", self.peer, self.detail)
    }
}

/// Abort the collective with a catchable [`PeerLost`] payload.
fn peer_lost(peer: usize, during: &str, error: io::Error) -> ! {
    std::panic::panic_any(PeerLost {
        peer,
        detail: format!("{during}: {error}"),
    })
}

/// Upper bound on the bytes a pairwise exchange puts in flight per
/// direction per step (see [`TcpComm::alltoallv`]): far below any kernel's
/// socket buffering, so alternating chunk sends can never wedge.
const CHUNK_BYTES: usize = 64 * 1024;

/// One rank's endpoint of a multi-process TCP world.
pub struct TcpComm<T: WireItem> {
    rank: usize,
    size: usize,
    net: NetworkModel,
    /// One stream per peer (`None` at this rank's own slot).
    streams: Vec<Option<TcpStream>>,
    /// Out-of-order messages per peer, waiting for a matching recv.
    stash: Vec<Vec<(u64, Vec<T>)>>,
    /// Self-sends, delivered locally in FIFO order per tag.
    self_queue: VecDeque<(u64, Vec<T>)>,
    /// Barrier round counter (both sides must agree; they do, because
    /// barriers are collective). Wraps at [`BARRIER_EPOCH_MASK`].
    barrier_epoch: u64,
    /// Vote round counter (see [`RankComm::vote_any`]); wraps at
    /// [`VOTE_EPOCH_MASK`].
    vote_epoch: u64,
    stats: CommStats,
}

/// Connect with a handful of retries: the rendezvous guarantees every
/// listener exists before its address is distributed, but the accept loop
/// may not have started yet under load.
fn connect_retry(addr: &str) -> io::Result<TcpStream> {
    let mut last = None;
    for _ in 0..50 {
        match TcpStream::connect(addr) {
            Ok(stream) => return Ok(stream),
            Err(e) => {
                last = Some(e);
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
    Err(last.unwrap_or_else(|| io::Error::other("connect failed")))
}

impl<T: WireItem> TcpComm<T> {
    /// Build this rank's endpoint of a full mesh: connect to every rank
    /// below `rank` (sending a hello frame), accept a connection from every
    /// rank above it (reading the peer's hello). `peers[j]` is rank `j`'s
    /// listener address; `listener` is this rank's own (already bound)
    /// listener, consumed here.
    pub fn connect_mesh(
        rank: usize,
        size: usize,
        net: NetworkModel,
        listener: TcpListener,
        peers: &[String],
    ) -> io::Result<Self> {
        assert!(rank < size, "rank {rank} out of range for world {size}");
        assert_eq!(peers.len(), size, "need one rendezvous address per rank");
        let mut streams: Vec<Option<TcpStream>> = (0..size).map(|_| None).collect();
        for to in 0..rank {
            let mut stream = connect_retry(&peers[to])?;
            stream.set_nodelay(true)?;
            write_frame(&mut stream, HELLO_TAG, &(rank as u64).to_le_bytes())?;
            streams[to] = Some(stream);
        }
        for _ in rank + 1..size {
            let (mut stream, _) = listener.accept()?;
            stream.set_nodelay(true)?;
            let (tag, payload) = read_frame(&mut stream)?;
            if tag != HELLO_TAG || payload.len() != 8 {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "rendezvous connection did not start with a hello frame",
                ));
            }
            let from = u64::from_le_bytes(payload[..].try_into().expect("hello width")) as usize;
            if from <= rank || from >= size || streams[from].is_some() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unexpected hello from rank {from}"),
                ));
            }
            streams[from] = Some(stream);
        }
        Ok(Self {
            rank,
            size,
            net,
            streams,
            stash: (0..size).map(|_| Vec::new()).collect(),
            self_queue: VecDeque::new(),
            barrier_epoch: 0,
            vote_epoch: 0,
            stats: CommStats::default(),
        })
    }

    /// Reset per-job transport state on a persistent mesh: collective
    /// round counters restart at 0 (every rank calls this at the same job
    /// boundary, so the counters stay agreed), and the stashes must be
    /// empty — a leftover message would mean the previous job's schedule
    /// did not consume everything it sent, which would corrupt the next
    /// job's matching.
    pub fn begin_job(&mut self) {
        debug_assert!(
            self.stash.iter().all(Vec::is_empty),
            "stashed messages left over from the previous job"
        );
        debug_assert!(
            self.self_queue.is_empty(),
            "self-sends left over from the previous job"
        );
        self.barrier_epoch = 0;
        self.vote_epoch = 0;
    }

    /// Send without wall-time accounting (collectives own their window).
    fn send_inner(&mut self, to: usize, tag: u64, payload: Vec<T>) {
        assert!(to < self.size, "destination rank {to} out of range");
        if to == self.rank {
            self.self_queue.push_back((tag, payload));
            return;
        }
        let bytes = payload.len() * T::WIRE_SIZE;
        self.stats.messages_sent += 1;
        self.stats.bytes_sent += bytes as u64;
        self.stats.modeled_time_s += self.net.message_time(bytes);
        let encoded = encode_items(&payload);
        let stream = self.streams[to].as_mut().expect("no stream to peer");
        if let Err(e) = write_frame(stream, tag, &encoded) {
            peer_lost(to, "sending a message", e);
        }
    }

    /// Symmetric bounded-buffer exchange with one peer: both sides send a
    /// small item-count header, then strictly alternate sending and
    /// receiving chunks of at most [`CHUNK_BYTES`]. Because the two
    /// endpoints follow the identical schedule, no more than one chunk per
    /// direction is ever in flight between a matched send/receive step —
    /// the kernel's socket buffers always absorb it, so the exchange never
    /// deadlocks regardless of payload size (the failure mode of a naive
    /// send-all-then-receive schedule).
    ///
    /// Charges the same logical accounting as a single message: one
    /// `messages_sent`, the payload bytes, one α–β `message_time`.
    fn exchange_chunked(&mut self, peer: usize, tag: u64, payload: Vec<T>) -> Vec<T> {
        debug_assert_ne!(peer, self.rank);
        let bytes = payload.len() * T::WIRE_SIZE;
        self.stats.messages_sent += 1;
        self.stats.bytes_sent += bytes as u64;
        self.stats.modeled_time_s += self.net.message_time(bytes);

        let items_per_chunk = (CHUNK_BYTES / T::WIRE_SIZE).max(1);
        {
            let stream = self.streams[peer].as_mut().expect("no stream to peer");
            if let Err(e) = write_frame(stream, tag, &(payload.len() as u64).to_le_bytes()) {
                peer_lost(peer, "sending an exchange header", e);
            }
        }
        // The peer's header may be preceded by stashable backlog (earlier
        // point-to-point sends we have not recv'd yet) — drain through the
        // stash-aware raw reader. Everything after the header is ours: the
        // peer writes nothing else to this stream until its exchange ends.
        let header = self.read_matching_raw(peer, tag);
        assert_eq!(header.len(), 8, "malformed exchange header from peer");
        let their_count = u64::from_le_bytes(header[..].try_into().expect("header width")) as usize;
        let mut incoming: Vec<T> = Vec::with_capacity(their_count);
        let my_chunks = payload.len().div_ceil(items_per_chunk);
        let their_chunks = their_count.div_ceil(items_per_chunk);
        for step in 0..my_chunks.max(their_chunks) {
            if step < my_chunks {
                let first = step * items_per_chunk;
                let last = (first + items_per_chunk).min(payload.len());
                let encoded = encode_items(&payload[first..last]);
                let stream = self.streams[peer].as_mut().expect("no stream to peer");
                if let Err(e) = write_frame(stream, tag, &encoded) {
                    peer_lost(peer, "sending an exchange chunk", e);
                }
            }
            if step < their_chunks {
                let stream = self.streams[peer].as_mut().expect("no stream to peer");
                let (got_tag, chunk) = match read_frame(stream) {
                    Ok(frame) => frame,
                    Err(e) => peer_lost(peer, "receiving an exchange chunk", e),
                };
                assert_eq!(got_tag, tag, "stray frame inside a pairwise exchange");
                incoming.extend(decode_items::<T>(&chunk).expect("malformed chunk from peer"));
            }
        }
        assert_eq!(incoming.len(), their_count, "peer sent a short exchange");
        incoming
    }

    /// Read raw frames from `from`'s stream until one carries `tag`,
    /// stashing (decoded) mismatching frames for later matching receives.
    /// The caller guarantees no *stashed* message already carries `tag`.
    fn read_matching_raw(&mut self, from: usize, tag: u64) -> Vec<u8> {
        debug_assert!(
            !self.stash[from].iter().any(|(t, _)| *t == tag),
            "raw read would bypass a stashed message with the same tag"
        );
        loop {
            let stream = self.streams[from].as_mut().expect("no stream to peer");
            let (got_tag, payload) = match read_frame(stream) {
                Ok(frame) => frame,
                Err(e) => peer_lost(from, "receiving a message", e),
            };
            if got_tag == tag {
                return payload;
            }
            let items = decode_items(&payload).expect("malformed payload from peer");
            self.stash[from].push((got_tag, items));
        }
    }

    /// Receive one vote frame from `from`: any tag whose epoch bits match
    /// `base` (the low bit carries the sender's flag), stashing decoded
    /// mismatching frames like [`TcpComm::read_matching_raw`].
    fn recv_vote(&mut self, from: usize, base: u64) -> bool {
        if let Some(pos) = self.stash[from].iter().position(|(t, _)| *t & !1 == base) {
            return self.stash[from].swap_remove(pos).0 & 1 == 1;
        }
        loop {
            let stream = self.streams[from].as_mut().expect("no stream to peer");
            let (got_tag, payload) = match read_frame(stream) {
                Ok(frame) => frame,
                Err(e) => peer_lost(from, "receiving a vote", e),
            };
            if got_tag & !1 == base {
                return got_tag & 1 == 1;
            }
            let items = decode_items(&payload).expect("malformed payload from peer");
            self.stash[from].push((got_tag, items));
        }
    }

    /// Receive without wall-time accounting (see [`TcpComm::send_inner`]).
    fn recv_inner(&mut self, from: usize, tag: u64) -> Vec<T> {
        assert!(from < self.size, "source rank {from} out of range");
        if from == self.rank {
            let pos = self
                .self_queue
                .iter()
                .position(|(t, _)| *t == tag)
                .expect("no self-send with this tag pending");
            return self.self_queue.remove(pos).expect("index in range").1;
        }
        if let Some(pos) = self.stash[from].iter().position(|(t, _)| *t == tag) {
            return self.stash[from].swap_remove(pos).1;
        }
        let payload = self.read_matching_raw(from, tag);
        decode_items(&payload).expect("malformed payload from peer")
    }
}

impl<T: WireItem> RankComm<T> for TcpComm<T> {
    #[inline]
    fn rank(&self) -> usize {
        self.rank
    }

    #[inline]
    fn size(&self) -> usize {
        self.size
    }

    #[inline]
    fn network(&self) -> NetworkModel {
        self.net
    }

    #[inline]
    fn stats(&self) -> CommStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = CommStats::default();
    }

    fn send(&mut self, to: usize, tag: u64, payload: Vec<T>) {
        self.send_inner(to, tag, payload);
    }

    fn recv(&mut self, from: usize, tag: u64) -> Vec<T> {
        let span = hisvsim_obs::span("comm", "recv");
        let start = Instant::now();
        let payload = self.recv_inner(from, tag);
        self.stats.wall_time_s += start.elapsed().as_secs_f64();
        let _span = span.bytes((payload.len() * std::mem::size_of::<T>()) as u64);
        payload
    }

    /// Gather–release barrier through rank 0 on a reserved tag namespace.
    /// Each round uses a fresh epoch tag, so traffic from adjacent barriers
    /// can never be confused even if a rank races ahead.
    fn barrier(&mut self) {
        if self.size == 1 {
            return;
        }
        let _span = hisvsim_obs::span("comm", "barrier");
        let start = Instant::now();
        let payload_stats = self.stats;
        debug_assert!(
            self.barrier_epoch <= BARRIER_EPOCH_MASK,
            "barrier epoch escaped its tag namespace"
        );
        let tag = BARRIER_NS | self.barrier_epoch;
        self.barrier_epoch = (self.barrier_epoch + 1) & BARRIER_EPOCH_MASK;
        if self.rank == 0 {
            for from in 1..self.size {
                let _ = self.recv_inner(from, tag);
            }
            for to in 1..self.size {
                self.send_inner(to, tag, Vec::new());
            }
        } else {
            self.send_inner(0, tag, Vec::new());
            let _ = self.recv_inner(0, tag);
        }
        // The gather–release control frames are an implementation detail
        // of this transport, not payload traffic: LocalComm's barrier (a
        // shared-memory Barrier) charges nothing, and the two RankComm
        // implementations must account identically. Only the blocking
        // wall time is charged.
        self.stats = payload_stats;
        self.stats.wall_time_s += start.elapsed().as_secs_f64();
    }

    /// Gather–release OR through rank 0 on the [`VOTE_NS`] namespace, with
    /// the flag in the tag's low bit — no payload travels. Charged exactly
    /// like the barrier: stats restored, only blocking wall time counted.
    fn vote_any(&mut self, flag: bool) -> bool {
        if self.size == 1 {
            return flag;
        }
        let _span = hisvsim_obs::span("comm", "vote");
        let start = Instant::now();
        let payload_stats = self.stats;
        let base = VOTE_NS | (self.vote_epoch << 1);
        self.vote_epoch = (self.vote_epoch + 1) & VOTE_EPOCH_MASK;
        let agreed = if self.rank == 0 {
            let mut agreed = flag;
            for from in 1..self.size {
                agreed |= self.recv_vote(from, base);
            }
            for to in 1..self.size {
                self.send_inner(to, base | agreed as u64, Vec::new());
            }
            agreed
        } else {
            self.send_inner(0, base | flag as u64, Vec::new());
            self.recv_vote(0, base)
        };
        self.stats = payload_stats;
        self.stats.wall_time_s += start.elapsed().as_secs_f64();
        agreed
    }

    /// Pairwise chunk-interleaved all-to-all-v.
    ///
    /// The naive schedule — blocking sends to every peer, then receives —
    /// deadlocks over real sockets once a pair's payload exceeds the
    /// kernel's socket buffering: both endpoints sit in `write_all`
    /// forever, each waiting for the other to drain. This implementation
    /// runs a *pairwise exchange schedule* instead (XOR rounds for the
    /// power-of-two worlds the engines use; a lexicographic pair order
    /// otherwise), and within a pair both sides strictly alternate
    /// bounded-size send and receive chunks — at most [`CHUNK_BYTES`] in
    /// flight per direction per step, which the kernel always absorbs.
    /// Payload size is therefore unbounded.
    fn alltoallv(&mut self, send_bufs: Vec<Vec<T>>, tag: u64) -> Vec<Vec<T>> {
        assert_eq!(
            send_bufs.len(),
            self.size,
            "alltoallv needs one send buffer per rank"
        );
        let send_bytes = send_bufs.iter().map(Vec::len).sum::<usize>() * std::mem::size_of::<T>();
        let _span = hisvsim_obs::span("comm", "alltoallv").bytes(send_bytes as u64);
        let start = Instant::now();
        let mut recv: Vec<Option<Vec<T>>> = (0..self.size).map(|_| None).collect();
        let mut send_bufs: Vec<Option<Vec<T>>> = send_bufs.into_iter().map(Some).collect();
        recv[self.rank] = send_bufs[self.rank].take();
        let (rank, size) = (self.rank, self.size);
        if size.is_power_of_two() {
            // XOR rounds: in round r every rank exchanges with rank^r — a
            // perfect matching per round, so both endpoints of every pair
            // are in the same exchange at the same time.
            for round in 1..size {
                let peer = rank ^ round;
                let outgoing = send_bufs[peer].take().expect("one exchange per peer");
                recv[peer] = Some(self.exchange_chunked(peer, tag, outgoing));
            }
        } else {
            // Fallback for non-power-of-two worlds: walk all pairs (a, b)
            // in one global lexicographic order. The total order on pairs
            // admits no waiting cycle, so progress is guaranteed (just
            // with less round-parallelism than the XOR schedule).
            for a in 0..size {
                for b in a + 1..size {
                    let peer = if rank == a {
                        b
                    } else if rank == b {
                        a
                    } else {
                        continue;
                    };
                    let outgoing = send_bufs[peer].take().expect("one exchange per peer");
                    recv[peer] = Some(self.exchange_chunked(peer, tag, outgoing));
                }
            }
        }
        self.stats.wall_time_s += start.elapsed().as_secs_f64();
        recv.into_iter().map(|b| b.unwrap()).collect()
    }
}

/// Build a full in-process TCP world on localhost: every rank gets a real
/// socket mesh, but all endpoints live in this process. This is the test
/// and benchmark harness for [`TcpComm`] — the transport code exercised is
/// exactly what worker processes run, only the process boundary is missing.
pub fn tcp_world<T: WireItem>(size: usize, net: NetworkModel) -> io::Result<Vec<TcpComm<T>>> {
    assert!(size > 0, "a communicator needs at least one rank");
    let listeners: Vec<TcpListener> = (0..size)
        .map(|_| TcpListener::bind("127.0.0.1:0"))
        .collect::<io::Result<_>>()?;
    let peers: Vec<String> = listeners
        .iter()
        .map(|l| l.local_addr().map(|a| a.to_string()))
        .collect::<io::Result<_>>()?;
    let handles: Vec<_> = listeners
        .into_iter()
        .enumerate()
        .map(|(rank, listener)| {
            let peers = peers.clone();
            std::thread::spawn(move || TcpComm::connect_mesh(rank, size, net, listener, &peers))
        })
        .collect();
    handles
        .into_iter()
        .map(|h| h.join().expect("mesh setup thread panicked"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn mesh_roundtrip_and_stats_match_local_semantics() {
        let mut world = tcp_world::<u64>(2, NetworkModel::hdr100()).unwrap();
        let mut r1 = world.pop().unwrap();
        let mut r0 = world.pop().unwrap();
        let handle = thread::spawn(move || {
            r1.send(0, 7, vec![1, 2, 3]);
            let got = r1.recv(0, 8);
            assert_eq!(got, vec![9]);
            r1.stats()
        });
        assert_eq!(r0.recv(1, 7), vec![1, 2, 3]);
        r0.send(1, 8, vec![9]);
        let s1 = handle.join().unwrap();
        assert_eq!(s1.messages_sent, 1);
        assert_eq!(s1.bytes_sent, 24);
        assert!(s1.modeled_time_s > 0.0);
    }

    #[test]
    fn large_alltoallv_does_not_deadlock() {
        // Regression: a naive send-all-then-receive schedule wedges once a
        // pair's payload exceeds the kernel's socket buffering (~MBs). The
        // chunk-interleaved pairwise exchange must survive 16 MiB per
        // direction between two ranks.
        const ITEMS: usize = 2 * 1024 * 1024; // × 8 B = 16 MiB per direction
        let world = tcp_world::<u64>(2, NetworkModel::ideal()).unwrap();
        let handles: Vec<_> = world
            .into_iter()
            .map(|mut comm| {
                thread::spawn(move || {
                    let me = comm.rank() as u64;
                    let send: Vec<Vec<u64>> = (0..comm.size())
                        .map(|to| vec![me * 10 + to as u64; ITEMS])
                        .collect();
                    let recv = comm.alltoallv(send, 11);
                    for (from, buf) in recv.iter().enumerate() {
                        assert_eq!(buf.len(), ITEMS);
                        assert!(buf.iter().all(|&v| v == from as u64 * 10 + me));
                    }
                    assert_eq!(comm.stats().bytes_sent, (ITEMS * 8) as u64);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn barrier_and_alltoallv_synchronise_a_tcp_world() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        let size = 4;
        let world = tcp_world::<usize>(size, NetworkModel::ideal()).unwrap();
        let counter = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = world
            .into_iter()
            .map(|mut comm| {
                let counter = Arc::clone(&counter);
                thread::spawn(move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                    comm.barrier();
                    assert_eq!(counter.load(Ordering::SeqCst), size as u64);
                    let me = comm.rank();
                    let send: Vec<Vec<usize>> =
                        (0..comm.size()).map(|to| vec![me * 100 + to]).collect();
                    let recv = comm.alltoallv(send, 3);
                    for (from, buf) in recv.iter().enumerate() {
                        assert_eq!(buf, &vec![from * 100 + me]);
                    }
                    comm.barrier();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }
}

//! Explicit-width SIMD kernels (x86_64 AVX2+FMA) with runtime dispatch and a
//! bit-identical scalar contract.
//!
//! The fused execution pipeline made the scalar complex multiply-accumulate
//! loops the wall (see `BENCH_fusion.json`); this module claims the hardware
//! headroom without giving up reproducibility. Every vector routine here
//! replays the *exact* IEEE-754 operation sequence of its scalar twin in
//! `kernels.rs`/`fusion.rs` — one multiply, one add/sub per component, in the
//! same order — so forced-`Scalar` and `Auto` dispatch produce bit-identical
//! amplitudes. That is why the complex MAC below is built from
//! `mul`/`add`/`addsub` rather than a true fused `vfmaddsub` (an FMA skips
//! the intermediate rounding and would diverge from the scalar fallback in
//! the last ulp). FMA presence is still part of the detection gate so the
//! dispatch decision matches the CPU generation the kernels were tuned on.
//!
//! Dispatch is decided once per process ([`simd_available`]): the
//! `HISVSIM_KERNEL=scalar` environment override (how CI pins the fallback
//! path) wins over CPU detection, and non-x86_64 targets always resolve to
//! scalar. Per-call forcing goes through
//! [`ApplyOptions::dispatch`](crate::kernels::ApplyOptions).

use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

/// Which kernel implementation a sweep runs.
///
/// Threaded through [`ApplyOptions`](crate::kernels::ApplyOptions), every
/// engine config, `SimJob`, and shipped cluster jobs, so a whole run — local
/// or multi-process — resolves its kernels the same way. The differential
/// harness runs every engine under both variants and asserts bit-identical
/// amplitudes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum KernelDispatch {
    /// Use the SIMD kernels when the CPU supports them (AVX2+FMA on x86_64)
    /// and no `HISVSIM_KERNEL=scalar` override is set; scalar otherwise.
    #[default]
    Auto,
    /// Always run the scalar kernels (the reference path).
    Scalar,
}

impl KernelDispatch {
    /// Stable lowercase name (reports, JSON).
    pub fn name(&self) -> &'static str {
        match self {
            KernelDispatch::Auto => "auto",
            KernelDispatch::Scalar => "scalar",
        }
    }

    /// Whether this dispatch resolves to the SIMD kernels on this process.
    #[inline]
    pub fn use_simd(&self) -> bool {
        match self {
            KernelDispatch::Scalar => false,
            KernelDispatch::Auto => simd_available(),
        }
    }

    /// The kernel implementation this dispatch resolves to on this process
    /// (`"avx2"` or `"scalar"`).
    pub fn resolved_name(&self) -> &'static str {
        if self.use_simd() {
            "avx2"
        } else {
            "scalar"
        }
    }
}

impl std::fmt::Display for KernelDispatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Whether `Auto` dispatch resolves to the SIMD kernels: decided once per
/// process from the `HISVSIM_KERNEL` environment override (`scalar` forces
/// the fallback everywhere — the CI forced-scalar job sets it) and runtime
/// CPU feature detection (AVX2+FMA on x86_64; always false elsewhere).
pub fn simd_available() -> bool {
    static AVAILABLE: OnceLock<bool> = OnceLock::new();
    *AVAILABLE.get_or_init(|| {
        if let Ok(kind) = std::env::var("HISVSIM_KERNEL") {
            if kind.eq_ignore_ascii_case("scalar") {
                return false;
            }
        }
        #[cfg(target_arch = "x86_64")]
        {
            is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma")
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            false
        }
    })
}

#[cfg(target_arch = "x86_64")]
pub(crate) use avx2::*;

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use crate::kernels::{SparseRows, STACK_DIM};
    use hisvsim_circuit::{Complex64, UnitaryMatrix};
    use std::arch::x86_64::*;

    // -- bit-exact primitives ------------------------------------------------
    //
    // A 256-bit vector holds two interleaved complex amplitudes:
    // `[z0.re, z0.im, z1.re, z1.im]`. The scalar reference operations are
    //
    //   mul_add:  acc + m·z  =  ((acc.re + m.re·z.re) - m.im·z.im,
    //                            (acc.im + m.re·z.im) + m.im·z.re)
    //   mul:            a·b  =  (a.re·b.re - a.im·b.im,
    //                            a.re·b.im + a.im·b.re)
    //
    // (parenthesisation is the scalar evaluation order in
    // `hisvsim_circuit::Complex64`). Each component below is computed with
    // exactly one multiply feeding one add/sub per scalar op — `addsub`
    // subtracts in even (re) lanes and adds in odd (im) lanes, which is
    // precisely the sign pattern of both formulas — so every lane rounds
    // identically to the scalar code. The helpers are `inline(always)` so
    // they compile inside their `#[target_feature]` callers.

    /// `acc + m·z` per lane pair, with `m` pre-splatted into `m_re`/`m_im`.
    #[inline(always)]
    unsafe fn macc(acc: __m256d, m_re: __m256d, m_im: __m256d, vz: __m256d) -> __m256d {
        let t1 = _mm256_add_pd(acc, _mm256_mul_pd(m_re, vz));
        let t2 = _mm256_mul_pd(m_im, _mm256_permute_pd(vz, 0b0101));
        _mm256_addsub_pd(t1, t2)
    }

    /// `a·b` per lane pair (both operands interleaved complex).
    #[inline(always)]
    pub(crate) unsafe fn cmul(va: __m256d, vb: __m256d) -> __m256d {
        let t1 = _mm256_mul_pd(_mm256_movedup_pd(va), vb);
        let t2 = _mm256_mul_pd(_mm256_permute_pd(va, 0b1111), _mm256_permute_pd(vb, 0b0101));
        _mm256_addsub_pd(t1, t2)
    }

    /// Load two (possibly non-adjacent) amplitudes into one vector:
    /// lane pair 0 = `*lo`, lane pair 1 = `*hi`.
    #[inline(always)]
    pub(crate) unsafe fn load2(lo: *const Complex64, hi: *const Complex64) -> __m256d {
        let l = _mm_loadu_pd(lo as *const f64);
        let h = _mm_loadu_pd(hi as *const f64);
        _mm256_insertf128_pd(_mm256_castpd128_pd256(l), h, 1)
    }

    /// Broadcast one amplitude into both lane pairs (unaligned-safe —
    /// `Complex64` is only 8-byte aligned, so never form `&__m128d` to it).
    #[inline(always)]
    pub(crate) unsafe fn broadcast1(z: *const Complex64) -> __m256d {
        let v = _mm_loadu_pd(z as *const f64);
        _mm256_set_m128d(v, v)
    }

    /// Store the two lane pairs of `v` to two (possibly non-adjacent) slots.
    #[inline(always)]
    unsafe fn store2(lo: *mut Complex64, hi: *mut Complex64, v: __m256d) {
        _mm_storeu_pd(lo as *mut f64, _mm256_castpd256_pd128(v));
        _mm_storeu_pd(hi as *mut f64, _mm256_extractf128_pd(v, 1));
    }

    #[inline(always)]
    unsafe fn splat_re_im(v: Complex64) -> (__m256d, __m256d) {
        (_mm256_set1_pd(v.re), _mm256_set1_pd(v.im))
    }

    // -- single-qubit dense kernel ------------------------------------------

    /// AVX2 twin of the scalar `apply_single` pair loop: `new_lo[j] =
    /// m0·lo[j] + m1·hi[j]`, `new_hi[j] = m2·lo[j] + m3·hi[j]`, two `j` per
    /// iteration.
    ///
    /// # Safety
    /// Caller must have verified AVX2+FMA support; `lo` and `hi` must have
    /// equal, even lengths.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(crate) unsafe fn apply_single_pairs(
        lo: &mut [Complex64],
        hi: &mut [Complex64],
        m: &[Complex64; 4],
    ) {
        debug_assert_eq!(lo.len(), hi.len());
        debug_assert_eq!(lo.len() % 2, 0);
        let (m0re, m0im) = splat_re_im(m[0]);
        let (m1re, m1im) = splat_re_im(m[1]);
        let (m2re, m2im) = splat_re_im(m[2]);
        let (m3re, m3im) = splat_re_im(m[3]);
        let zero = _mm256_setzero_pd();
        let n = lo.len();
        let lo_ptr = lo.as_mut_ptr();
        let hi_ptr = hi.as_mut_ptr();
        let mut j = 0usize;
        while j < n {
            let va = _mm256_loadu_pd(lo_ptr.add(j) as *const f64);
            let vb = _mm256_loadu_pd(hi_ptr.add(j) as *const f64);
            let na = macc(macc(zero, m0re, m0im, va), m1re, m1im, vb);
            let nb = macc(macc(zero, m2re, m2im, va), m3re, m3im, vb);
            _mm256_storeu_pd(lo_ptr.add(j) as *mut f64, na);
            _mm256_storeu_pd(hi_ptr.add(j) as *mut f64, nb);
            j += 2;
        }
    }

    /// Qubit-0 case: the (a, b) pairs are adjacent in memory, so process two
    /// pairs per iteration by deinterleaving across 128-bit lanes. A trailing
    /// lone pair (slice length 2) is finished scalar — the vector path
    /// replays the scalar op sequence, so the seam is invisible.
    ///
    /// # Safety
    /// Caller must have verified AVX2+FMA support; `amps.len()` must be even.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(crate) unsafe fn apply_single_q0(amps: &mut [Complex64], m: &[Complex64; 4]) {
        debug_assert_eq!(amps.len() % 2, 0);
        let len = amps.len();
        let (m0re, m0im) = splat_re_im(m[0]);
        let (m1re, m1im) = splat_re_im(m[1]);
        let (m2re, m2im) = splat_re_im(m[2]);
        let (m3re, m3im) = splat_re_im(m[3]);
        let zero = _mm256_setzero_pd();
        let ptr = amps.as_mut_ptr();
        let mut i = 0usize;
        while i + 4 <= len {
            let v0 = _mm256_loadu_pd(ptr.add(i) as *const f64); // [a0, b0]
            let v1 = _mm256_loadu_pd(ptr.add(i + 2) as *const f64); // [a1, b1]
            let va = _mm256_permute2f128_pd(v0, v1, 0x20); // [a0, a1]
            let vb = _mm256_permute2f128_pd(v0, v1, 0x31); // [b0, b1]
            let na = macc(macc(zero, m0re, m0im, va), m1re, m1im, vb);
            let nb = macc(macc(zero, m2re, m2im, va), m3re, m3im, vb);
            _mm256_storeu_pd(ptr.add(i) as *mut f64, _mm256_permute2f128_pd(na, nb, 0x20));
            _mm256_storeu_pd(
                ptr.add(i + 2) as *mut f64,
                _mm256_permute2f128_pd(na, nb, 0x31),
            );
            i += 4;
        }
        while i + 2 <= len {
            let a = *ptr.add(i);
            let b = *ptr.add(i + 1);
            *ptr.add(i) = Complex64::ZERO.mul_add(m[0], a).mul_add(m[1], b);
            *ptr.add(i + 1) = Complex64::ZERO.mul_add(m[2], a).mul_add(m[3], b);
            i += 2;
        }
    }

    // -- two-qubit dense kernel ---------------------------------------------

    /// The 4×4 matrix pre-splatted for row-pair accumulation, built once per
    /// gate application: lane pair 0 carries row `r`, lane pair 1 row `r+1`,
    /// one `(re, im)` splat vector pair per column.
    #[derive(Clone, Copy)]
    pub(crate) struct TwoQubitMat {
        re01: [__m256d; 4],
        im01: [__m256d; 4],
        re23: [__m256d; 4],
        im23: [__m256d; 4],
    }

    impl TwoQubitMat {
        /// # Safety
        /// Caller must have verified AVX2+FMA support; `matrix` must be 4×4.
        #[target_feature(enable = "avx2", enable = "fma")]
        pub(crate) unsafe fn new(matrix: &UnitaryMatrix) -> Self {
            let m = matrix.as_slice();
            let mut re01 = [_mm256_setzero_pd(); 4];
            let mut im01 = [_mm256_setzero_pd(); 4];
            let mut re23 = [_mm256_setzero_pd(); 4];
            let mut im23 = [_mm256_setzero_pd(); 4];
            for c in 0..4 {
                re01[c] = _mm256_setr_pd(m[c].re, m[c].re, m[4 + c].re, m[4 + c].re);
                im01[c] = _mm256_setr_pd(m[c].im, m[c].im, m[4 + c].im, m[4 + c].im);
                re23[c] = _mm256_setr_pd(m[8 + c].re, m[8 + c].re, m[12 + c].re, m[12 + c].re);
                im23[c] = _mm256_setr_pd(m[8 + c].im, m[8 + c].im, m[12 + c].im, m[12 + c].im);
            }
            Self {
                re01,
                im01,
                re23,
                im23,
            }
        }

        /// Apply the matrix to one 4-amplitude group at `ptr + idx[sub]`,
        /// columns accumulated in ascending order (the scalar order).
        ///
        /// # Safety
        /// Caller guarantees AVX2+FMA, in-bounds indices, and exclusive
        /// access to the group (the group partition is disjoint by
        /// construction).
        #[target_feature(enable = "avx2", enable = "fma")]
        pub(crate) unsafe fn apply_group(&self, ptr: *mut Complex64, idx: &[usize; 4]) {
            let mut acc01 = _mm256_setzero_pd();
            let mut acc23 = _mm256_setzero_pd();
            for (col, &i) in idx.iter().enumerate() {
                let vz = broadcast1(ptr.add(i));
                acc01 = macc(acc01, self.re01[col], self.im01[col], vz);
                acc23 = macc(acc23, self.re23[col], self.im23[col], vz);
            }
            store2(ptr.add(idx[0]), ptr.add(idx[1]), acc01);
            store2(ptr.add(idx[2]), ptr.add(idx[3]), acc23);
        }
    }

    // -- k-qubit prepared kernel --------------------------------------------

    /// Apply a prepared `k ≤ 5` unitary to a *pair* of amplitude groups at
    /// once: lane pair 0 is group `base_a`, lane pair 1 group `base_b`. The
    /// matrix traversal (sparse rows or contiguous dense rows) is identical
    /// to the scalar kernel's, so the accumulation order matches exactly.
    ///
    /// # Safety
    /// Caller guarantees AVX2+FMA, in-bounds indices for both groups,
    /// exclusive access to both groups, and `offsets.len()` equal to the
    /// matrix dimension (≤ `2^MAX_STACK_KERNEL_QUBITS`).
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(crate) unsafe fn apply_k_group_pair(
        ptr: *mut Complex64,
        base_a: usize,
        base_b: usize,
        offsets: &[usize],
        rows: &[Complex64],
        sparse: Option<&SparseRows>,
    ) {
        let dim = offsets.len();
        debug_assert!(dim <= STACK_DIM);
        let mut local = [_mm256_setzero_pd(); STACK_DIM];
        for (slot, &off) in local[..dim].iter_mut().zip(offsets.iter()) {
            *slot = load2(ptr.add(base_a | off), ptr.add(base_b | off));
        }
        match sparse {
            Some(sparse) => {
                for (row, &off) in offsets.iter().enumerate() {
                    let mut acc = _mm256_setzero_pd();
                    for &(col, v) in sparse.row(row) {
                        acc = macc(
                            acc,
                            _mm256_set1_pd(v.re),
                            _mm256_set1_pd(v.im),
                            local[col as usize],
                        );
                    }
                    store2(ptr.add(base_a | off), ptr.add(base_b | off), acc);
                }
            }
            None => {
                for (row, &off) in offsets.iter().enumerate() {
                    let mut acc = _mm256_setzero_pd();
                    for (col, &lv) in local[..dim].iter().enumerate() {
                        let v = rows[row * dim + col];
                        acc = macc(acc, _mm256_set1_pd(v.re), _mm256_set1_pd(v.im), lv);
                    }
                    store2(ptr.add(base_a | off), ptr.add(base_b | off), acc);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_names_are_stable() {
        assert_eq!(KernelDispatch::Auto.name(), "auto");
        assert_eq!(KernelDispatch::Scalar.name(), "scalar");
        assert!(!KernelDispatch::Scalar.use_simd());
        assert_eq!(KernelDispatch::Scalar.resolved_name(), "scalar");
        // Auto's resolution is machine-dependent, but must be consistent.
        assert_eq!(KernelDispatch::Auto.use_simd(), simd_available());
        assert_eq!(simd_available(), simd_available());
    }

    #[test]
    fn dispatch_round_trips_through_serde() {
        for d in [KernelDispatch::Auto, KernelDispatch::Scalar] {
            let json = serde_json::to_string(&d).unwrap();
            let back: KernelDispatch = serde_json::from_str(&json).unwrap();
            assert_eq!(d, back);
        }
    }
}

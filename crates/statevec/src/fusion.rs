//! Gate fusion: merge runs of gates acting on a small qubit set into one
//! dense unitary applied with a single sweep of the state vector.
//!
//! The paper positions HiSVSIM's circuit partitioning as *orthogonal and
//! complementary* to gate fusion and the other kernel-level optimisations of
//! existing simulators (Sec. II-C). This module provides exactly that
//! complementary optimisation so the combination can be exercised: fusing
//! reduces the number of passes over the (inner or outer) state vector, the
//! partitioner reduces the size of the vector each pass touches.
//!
//! The fusion strategy is the standard greedy one: scan the circuit in order,
//! accumulate consecutive gates into the current *fusion group* while the
//! union of their qubits stays within `max_fused_qubits`, and emit the
//! group's product matrix when the next gate does not fit.

use crate::kernels::{apply_k_qubit, ApplyOptions};
use crate::state::StateVector;
use hisvsim_circuit::{Circuit, Complex64, Qubit, UnitaryMatrix};

/// One fused operation: a dense unitary over a small set of qubits.
#[derive(Debug, Clone)]
pub struct FusedGate {
    /// The qubits the fused unitary acts on; operand `j` is matrix bit `j`
    /// (the same convention as [`hisvsim_circuit::GateKind::matrix`]).
    pub qubits: Vec<Qubit>,
    /// The fused unitary, of dimension `2^qubits.len()`.
    pub matrix: UnitaryMatrix,
    /// How many original gates were merged into this one.
    pub fused_count: usize,
}

impl FusedGate {
    /// Apply this fused gate to a state vector.
    pub fn apply(&self, state: &mut StateVector, opts: &ApplyOptions) {
        apply_k_qubit(state, &self.qubits, &self.matrix, opts);
    }
}

/// Fuse a circuit into dense multi-qubit unitaries of at most
/// `max_fused_qubits` qubits each.
///
/// `max_fused_qubits` of 1 disables cross-qubit fusion but still merges runs
/// of single-qubit gates on the same wire; typical values are 2–5 (larger
/// matrices cost exponentially more arithmetic per amplitude, so there is a
/// sweet spot, usually around 3–4 for CPU simulation).
pub fn fuse_circuit(circuit: &Circuit, max_fused_qubits: usize) -> Vec<FusedGate> {
    assert!(max_fused_qubits >= 1, "fusion width must be at least 1");
    let mut fused: Vec<FusedGate> = Vec::new();
    let mut group: Vec<usize> = Vec::new(); // gate indices of the open group
    let mut group_qubits: Vec<Qubit> = Vec::new();

    let flush =
        |group: &mut Vec<usize>, group_qubits: &mut Vec<Qubit>, fused: &mut Vec<FusedGate>| {
            if group.is_empty() {
                return;
            }
            let qubits = std::mem::take(group_qubits);
            let matrix = build_group_matrix(circuit, group, &qubits);
            fused.push(FusedGate {
                qubits,
                matrix,
                fused_count: group.len(),
            });
            group.clear();
        };

    for (index, gate) in circuit.gates().iter().enumerate() {
        if gate.arity() > max_fused_qubits {
            // Emit the open group, then the oversized gate on its own.
            flush(&mut group, &mut group_qubits, &mut fused);
            fused.push(FusedGate {
                qubits: gate.qubits.clone(),
                matrix: gate.matrix(),
                fused_count: 1,
            });
            continue;
        }
        let mut union = group_qubits.clone();
        for &q in &gate.qubits {
            if !union.contains(&q) {
                union.push(q);
            }
        }
        if union.len() > max_fused_qubits {
            flush(&mut group, &mut group_qubits, &mut fused);
            group_qubits = gate.qubits.clone();
        } else {
            group_qubits = union;
        }
        group.push(index);
    }
    flush(&mut group, &mut group_qubits, &mut fused);
    fused
}

/// Multiply the gates of a fusion group into one dense matrix over
/// `group_qubits` (operand `j` of the fused gate = `group_qubits[j]`).
fn build_group_matrix(circuit: &Circuit, group: &[usize], group_qubits: &[Qubit]) -> UnitaryMatrix {
    let k = group_qubits.len();
    let dim = 1usize << k;
    let position = |q: Qubit| group_qubits.iter().position(|&g| g == q).unwrap();
    let mut total = UnitaryMatrix::identity(dim);
    for &gate_index in group {
        let gate = &circuit.gates()[gate_index];
        let g = gate.matrix();
        // Embed the gate into the group space.
        let mut embedded = UnitaryMatrix::from_rows(vec![Complex64::ZERO; dim * dim]);
        for col in 0..dim {
            let mut sub_col = 0usize;
            for (j, &q) in gate.qubits.iter().enumerate() {
                sub_col |= ((col >> position(q)) & 1) << j;
            }
            for sub_row in 0..g.dim() {
                let amp = g.get(sub_row, sub_col);
                if amp == Complex64::ZERO {
                    continue;
                }
                let mut row = col;
                for (j, &q) in gate.qubits.iter().enumerate() {
                    let bit = (sub_row >> j) & 1;
                    let p = position(q);
                    row = (row & !(1 << p)) | (bit << p);
                }
                *embedded.get_mut(row, col) = amp;
            }
        }
        total = embedded.matmul(&total);
    }
    total
}

/// Run a circuit from `|0…0⟩` through its fused form.
pub fn run_fused(circuit: &Circuit, max_fused_qubits: usize, opts: &ApplyOptions) -> StateVector {
    let fused = fuse_circuit(circuit, max_fused_qubits);
    let mut state = StateVector::zero_state(circuit.num_qubits());
    for op in &fused {
        op.apply(&mut state, opts);
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::run_circuit;
    use hisvsim_circuit::generators;

    #[test]
    fn fused_execution_matches_unfused_across_suite() {
        for name in generators::FAMILY_NAMES {
            let circuit = generators::by_name(name, 8);
            let expected = run_circuit(&circuit);
            for width in [2usize, 3, 4] {
                let got = run_fused(&circuit, width, &ApplyOptions::sequential());
                assert!(
                    got.approx_eq(&expected, 1e-9),
                    "{name} fused at width {width} diverges (max diff {})",
                    got.max_abs_diff(&expected)
                );
            }
        }
    }

    #[test]
    fn fusion_reduces_the_operation_count() {
        let circuit = generators::by_name("qft", 10);
        let fused = fuse_circuit(&circuit, 4);
        assert!(
            fused.len() < circuit.num_gates() / 2,
            "fusion produced {} ops for {} gates",
            fused.len(),
            circuit.num_gates()
        );
        let total: usize = fused.iter().map(|f| f.fused_count).sum();
        assert_eq!(
            total,
            circuit.num_gates(),
            "every gate must be fused exactly once"
        );
    }

    #[test]
    fn fused_matrices_are_unitary_and_within_width() {
        let circuit = generators::random_circuit(7, 60, 5);
        for op in fuse_circuit(&circuit, 3) {
            assert!(op.qubits.len() <= 3);
            assert_eq!(op.matrix.dim(), 1 << op.qubits.len());
            assert!(op.matrix.is_unitary(1e-9));
        }
    }

    #[test]
    fn oversized_gates_pass_through_unfused() {
        let circuit = generators::adder(8); // contains 3-qubit Toffolis
        let fused = fuse_circuit(&circuit, 2);
        assert!(fused
            .iter()
            .any(|f| f.qubits.len() == 3 && f.fused_count == 1));
        let expected = run_circuit(&circuit);
        let got = run_fused(&circuit, 2, &ApplyOptions::sequential());
        assert!(got.approx_eq(&expected, 1e-9));
    }

    #[test]
    fn width_one_fusion_merges_single_qubit_runs() {
        let mut circuit = hisvsim_circuit::Circuit::new(2);
        circuit.h(0).t(0).h(0).s(1).h(1);
        let fused = fuse_circuit(&circuit, 1);
        // Two groups: the run on qubit 0 and the run on qubit 1.
        assert_eq!(fused.len(), 2);
        assert_eq!(fused[0].fused_count, 3);
        assert_eq!(fused[1].fused_count, 2);
        let got = run_fused(&circuit, 1, &ApplyOptions::sequential());
        assert!(got.approx_eq(&run_circuit(&circuit), 1e-12));
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_width_is_rejected() {
        let circuit = generators::cat_state(4);
        let _ = fuse_circuit(&circuit, 0);
    }
}

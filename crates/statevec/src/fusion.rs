//! Gate fusion: merge runs of gates acting on a small qubit set into one
//! dense unitary applied with a single sweep of the state vector.
//!
//! The paper positions HiSVSIM's circuit partitioning as *orthogonal and
//! complementary* to gate fusion and the other kernel-level optimisations of
//! existing simulators (Sec. II-C). This module provides exactly that
//! complementary optimisation so the combination can be exercised: fusing
//! reduces the number of passes over the (inner or outer) state vector, the
//! partitioner reduces the size of the vector each pass touches.
//!
//! Two fusion forms live here:
//!
//! * [`FusedCircuit`] — the engine-facing pipeline: commutation-aware
//!   grouping into cost-model-gated dense groups, width-unlimited diagonal
//!   runs executed as one blocked streaming pass, and solo fast-path gates,
//!   with per-op kernel data (sparse rows, block classification) derived
//!   once at build time. Every engine executes circuits through this form.
//! * [`fuse_circuit`] — the minimal adjacent-only greedy scanner, kept as a
//!   simple reference implementation and test oracle (dense groups only, no
//!   reordering, no specialisation).

use crate::kernels::{
    apply_gate_with_matrix_amps, apply_k_qubit, apply_k_qubit_prepared,
    apply_k_qubit_prepared_amps, apply_single, apply_single_amps, apply_two_qubit_dense,
    apply_two_qubit_dense_amps, ApplyOptions, SparseRows, MAX_STACK_KERNEL_QUBITS,
};
use crate::state::StateVector;
use hisvsim_circuit::{Circuit, Complex64, Gate, Qubit, UnitaryMatrix};
use hisvsim_dag::{antichain_fusion_groups, CircuitDag, GateClass};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// The default fusion width engines use when the caller does not pick one.
///
/// Wider groups cut the number of state-vector sweeps but pay `2^k`
/// multiply-adds per gathered amplitude, so the CPU sweet spot sits at 3–4;
/// 3 is the conservative default (the `fusion_sweep` bench maps the curve).
pub const DEFAULT_FUSION_WIDTH: usize = 3;

/// How fusion groups are discovered.
///
/// Both strategies produce the same executable form ([`FusedCircuit`]) and
/// are gated by the same per-amplitude cost model and width caps — they
/// differ only in *which* gates they can see as mergeable:
///
/// * [`Window`](FusionStrategy::Window) — the program-order scanner with a
///   bounded set of open groups (cheap, and near-optimal for layered
///   circuits like the QFT, where mergeable gates sit close together);
/// * [`Dag`](FusionStrategy::Dag) — grouping along antichains of the
///   gate-dependency DAG ([`hisvsim_dag::antichain_fusion_groups`]): gates
///   with no dependency path between them commute structurally, so deep
///   interleaved circuits form large groups the window can never reach;
/// * [`Auto`](FusionStrategy::Auto) — run the window pass, and fall back to
///   the DAG pass when the window's group-size histogram degenerates (mean
///   absorbed gates per sweep below [`AUTO_DEGENERATE_MEAN_GATES`], or
///   mostly singleton groups), keeping whichever form models cheaper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum FusionStrategy {
    /// Bounded-window program-order scanning (the PR 2 pipeline).
    Window,
    /// DAG-driven antichain grouping over the gate-dependency graph.
    Dag,
    /// Window first; switch to Dag when the window's group-size histogram
    /// degenerates and the DAG form models cheaper.
    #[default]
    Auto,
}

impl FusionStrategy {
    /// Stable lowercase name (cache keys, reports, JSON).
    pub fn name(&self) -> &'static str {
        match self {
            FusionStrategy::Window => "window",
            FusionStrategy::Dag => "dag",
            FusionStrategy::Auto => "auto",
        }
    }
}

impl std::fmt::Display for FusionStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Mean source gates per fused sweep below which [`FusionStrategy::Auto`]
/// considers the window pass degenerate and tries the DAG pass instead.
pub const AUTO_DEGENERATE_MEAN_GATES: f64 = 4.0;

/// One fused operation: a dense unitary over a small set of qubits.
#[derive(Debug, Clone)]
pub struct FusedGate {
    /// The qubits the fused unitary acts on; operand `j` is matrix bit `j`
    /// (the same convention as [`hisvsim_circuit::GateKind::matrix`]).
    pub qubits: Vec<Qubit>,
    /// The fused unitary, of dimension `2^qubits.len()`.
    pub matrix: UnitaryMatrix,
    /// How many original gates were merged into this one.
    pub fused_count: usize,
}

impl FusedGate {
    /// Apply this fused gate to a state vector.
    pub fn apply(&self, state: &mut StateVector, opts: &ApplyOptions) {
        apply_k_qubit(state, &self.qubits, &self.matrix, opts);
    }
}

/// Fuse a circuit into dense multi-qubit unitaries of at most
/// `max_fused_qubits` qubits each.
///
/// `max_fused_qubits` of 1 disables cross-qubit fusion but still merges runs
/// of single-qubit gates on the same wire; typical values are 2–5 (larger
/// matrices cost exponentially more arithmetic per amplitude, so there is a
/// sweet spot, usually around 3–4 for CPU simulation).
pub fn fuse_circuit(circuit: &Circuit, max_fused_qubits: usize) -> Vec<FusedGate> {
    assert!(max_fused_qubits >= 1, "fusion width must be at least 1");
    let mut fused: Vec<FusedGate> = Vec::new();
    let mut group: Vec<usize> = Vec::new(); // gate indices of the open group
    let mut group_qubits: Vec<Qubit> = Vec::new();

    let flush =
        |group: &mut Vec<usize>, group_qubits: &mut Vec<Qubit>, fused: &mut Vec<FusedGate>| {
            if group.is_empty() {
                return;
            }
            let qubits = std::mem::take(group_qubits);
            let matrix = build_group_matrix(circuit, group, &qubits);
            fused.push(FusedGate {
                qubits,
                matrix,
                fused_count: group.len(),
            });
            group.clear();
        };

    for (index, gate) in circuit.gates().iter().enumerate() {
        if gate.arity() > max_fused_qubits {
            // Emit the open group, then the oversized gate on its own.
            flush(&mut group, &mut group_qubits, &mut fused);
            fused.push(FusedGate {
                qubits: gate.qubits.clone(),
                matrix: gate.matrix(),
                fused_count: 1,
            });
            continue;
        }
        let mut union = group_qubits.clone();
        for &q in &gate.qubits {
            if !union.contains(&q) {
                union.push(q);
            }
        }
        if union.len() > max_fused_qubits {
            flush(&mut group, &mut group_qubits, &mut fused);
            group_qubits = gate.qubits.clone();
        } else {
            group_qubits = union;
        }
        group.push(index);
    }
    flush(&mut group, &mut group_qubits, &mut fused);
    fused
}

/// Multiply the gates of a fusion group into one dense matrix over
/// `group_qubits` (operand `j` of the fused gate = `group_qubits[j]`).
fn build_group_matrix(circuit: &Circuit, group: &[usize], group_qubits: &[Qubit]) -> UnitaryMatrix {
    let k = group_qubits.len();
    let dim = 1usize << k;
    let position = |q: Qubit| group_qubits.iter().position(|&g| g == q).unwrap();
    let mut total = UnitaryMatrix::identity(dim);
    for &gate_index in group {
        let gate = &circuit.gates()[gate_index];
        let g = gate.matrix();
        // Embed the gate into the group space.
        let mut embedded = UnitaryMatrix::from_rows(vec![Complex64::ZERO; dim * dim]);
        for col in 0..dim {
            let mut sub_col = 0usize;
            for (j, &q) in gate.qubits.iter().enumerate() {
                sub_col |= ((col >> position(q)) & 1) << j;
            }
            for sub_row in 0..g.dim() {
                let amp = g.get(sub_row, sub_col);
                if amp == Complex64::ZERO {
                    continue;
                }
                let mut row = col;
                for (j, &q) in gate.qubits.iter().enumerate() {
                    let bit = (sub_row >> j) & 1;
                    let p = position(q);
                    row = (row & !(1 << p)) | (bit << p);
                }
                *embedded.get_mut(row, col) = amp;
            }
        }
        total = embedded.matmul(&total);
    }
    total
}

/// Run a circuit from `|0…0⟩` through its fused form.
pub fn run_fused(circuit: &Circuit, max_fused_qubits: usize, opts: &ApplyOptions) -> StateVector {
    let fused = fuse_circuit(circuit, max_fused_qubits);
    let mut state = StateVector::zero_state(circuit.num_qubits());
    for op in &fused {
        op.apply(&mut state, opts);
    }
    state
}

// ---------------------------------------------------------------------------
// the fused execution pipeline
// ---------------------------------------------------------------------------

/// One diagonal factor of a [`FusedOp::Diagonal`] run: a small diagonal table
/// over a few qubits (bit `b` of the table index is `qubits[b]`).
#[derive(Debug, Clone)]
pub struct DiagonalFactor {
    /// The qubits the factor depends on.
    pub qubits: Vec<Qubit>,
    /// `2^qubits.len()` diagonal entries.
    pub diag: Vec<Complex64>,
}

impl DiagonalFactor {
    /// The diagonal of a single diagonal gate.
    fn from_gate(qubits: &[Qubit], matrix: &UnitaryMatrix) -> Self {
        Self {
            qubits: qubits.to_vec(),
            diag: (0..matrix.dim()).map(|i| matrix.get(i, i)).collect(),
        }
    }

    /// Fold another diagonal gate into this factor; the gate's qubits must
    /// already be accounted for in the (possibly grown) `qubits` list.
    fn absorb(&mut self, gate_qubits: &[Qubit], matrix: &UnitaryMatrix) {
        let old_len = self.qubits.len();
        let mut grown = false;
        for &q in gate_qubits {
            if !self.qubits.contains(&q) {
                self.qubits.push(q);
                grown = true;
            }
        }
        if grown {
            // Expand the table: old qubits keep the low bit positions.
            let dim = 1usize << self.qubits.len();
            let old_mask = (1usize << old_len) - 1;
            let old = std::mem::replace(&mut self.diag, vec![Complex64::ONE; dim]);
            for (i, slot) in self.diag.iter_mut().enumerate() {
                *slot = old[i & old_mask];
            }
        }
        for (i, slot) in self.diag.iter_mut().enumerate() {
            let mut sub = 0usize;
            for (j, &q) in gate_qubits.iter().enumerate() {
                let p = self.qubits.iter().position(|&g| g == q).unwrap();
                sub |= ((i >> p) & 1) << j;
            }
            *slot *= matrix.get(sub, sub);
        }
    }
}

/// One operation of a [`FusedCircuit`].
#[derive(Debug, Clone)]
pub enum FusedOp {
    /// A dense fused unitary (≥ 2 source gates), dispatched to the
    /// width-specialised kernels.
    Dense(FusedGate),
    /// A gate that stayed alone in its group (nothing adjacent fit): applied
    /// through the full [`crate::kernels::apply_gate_with_matrix`] dispatch,
    /// so X/CX/SWAP/controlled gates keep their matrix-free fast paths. The
    /// matrix is precomputed when that dispatch consumes one.
    Solo(Gate, Option<UnitaryMatrix>),
    /// A run of diagonal gates, applied in one streaming pass regardless of
    /// how many qubits the run touches (diagonals never mix amplitudes, so
    /// the run has no width limit).
    Diagonal {
        /// The diagonal factors, each covering a few qubits.
        factors: Vec<DiagonalFactor>,
        /// How many original gates the run absorbed.
        fused_count: usize,
    },
}

/// Per-op data derived from the fused form once at build time (sparse rows
/// of dense matrices, block classification of diagonal runs), so the
/// per-assignment hot loops of the hierarchical engines never re-derive it.
#[derive(Debug, Clone)]
enum PreparedOp {
    Dense(Option<SparseRows>),
    Diagonal(PreparedDiagonal),
    Solo,
}

fn prepare_op(op: &FusedOp) -> PreparedOp {
    match op {
        FusedOp::Dense(g) => PreparedOp::Dense(SparseRows::build(&g.matrix)),
        FusedOp::Diagonal { factors, .. } => PreparedOp::Diagonal(prepare_diagonal(factors, None)),
        FusedOp::Solo(..) => PreparedOp::Solo,
    }
}

impl FusedOp {
    /// Apply this op to a state vector.
    pub fn apply(&self, state: &mut StateVector, opts: &ApplyOptions) {
        self.apply_inner(state, &prepare_op(self), None, opts);
    }

    /// How many original gates this op absorbed.
    pub fn fused_count(&self) -> usize {
        match self {
            FusedOp::Dense(g) => g.fused_count,
            FusedOp::Solo(..) => 1,
            FusedOp::Diagonal { fused_count, .. } => *fused_count,
        }
    }

    /// Static trace-span name for this op's sweep kind.
    fn span_name(&self) -> &'static str {
        match self {
            FusedOp::Dense(_) => "sweep:dense",
            FusedOp::Solo(..) => "sweep:solo",
            FusedOp::Diagonal { .. } => "sweep:diagonal",
        }
    }

    /// Apply this op with an optional qubit translation (`map[q]` = target
    /// qubit). The distributed engines use the map to aim one shared fused
    /// circuit at each rank's layout without re-fusing; the prepared data
    /// (matrix-shaped, so translation-invariant for dense ops) is shared.
    fn apply_inner(
        &self,
        state: &mut StateVector,
        prep: &PreparedOp,
        map: Option<&[Qubit]>,
        opts: &ApplyOptions,
    ) {
        let translate = |qs: &[Qubit]| -> Vec<Qubit> {
            match map {
                Some(map) => qs.iter().map(|&q| map[q]).collect(),
                None => qs.to_vec(),
            }
        };
        match (self, prep) {
            (FusedOp::Dense(op), PreparedOp::Dense(sparse)) => {
                match (map, op.qubits.as_slice()) {
                    (None, &[q]) => apply_dense_one(state, q, &op.matrix, opts),
                    (None, &[a, b]) => apply_two_qubit_dense(state, a, b, &op.matrix, opts),
                    (None, qs) => {
                        apply_k_qubit_prepared(state, qs, &op.matrix, sparse.as_ref(), opts)
                    }
                    (Some(map), &[q]) => apply_dense_one(state, map[q], &op.matrix, opts),
                    (Some(map), &[a, b]) => {
                        apply_two_qubit_dense(state, map[a], map[b], &op.matrix, opts)
                    }
                    // The sparse rows depend only on the matrix, never on the
                    // qubit targets, so the translated application shares them.
                    (Some(_), qs) => apply_k_qubit_prepared(
                        state,
                        &translate(qs),
                        &op.matrix,
                        sparse.as_ref(),
                        opts,
                    ),
                }
            }
            (FusedOp::Solo(gate, matrix), _) => match map {
                None => crate::kernels::apply_gate_with_matrix(state, gate, matrix.as_ref(), opts),
                Some(_) => {
                    let remapped = Gate {
                        kind: gate.kind,
                        qubits: translate(&gate.qubits),
                    };
                    crate::kernels::apply_gate_with_matrix(state, &remapped, matrix.as_ref(), opts)
                }
            },
            (FusedOp::Diagonal { factors, .. }, prep) => {
                if state.len() < DIAG_BLOCK {
                    apply_diagonal_small(state, factors, map, opts);
                    return;
                }
                match (map, prep) {
                    (None, PreparedOp::Diagonal(prepared)) => {
                        run_prepared_diagonal(state, prepared, opts)
                    }
                    // The classification depends on qubit positions, so the
                    // translated path re-derives it (once per rank per part —
                    // outside the per-assignment hot loops).
                    _ => run_prepared_diagonal(state, &prepare_diagonal(factors, map), opts),
                }
            }
            (FusedOp::Dense(_), _) => {
                // Mismatched prepared data (never produced by FusedCircuit):
                // derive it and retry through the matched dispatch.
                self.apply_inner(state, &prepare_op(self), map, opts)
            }
        }
    }
}

/// Single-qubit dense dispatch helper.
fn apply_dense_one(state: &mut StateVector, q: Qubit, m: &UnitaryMatrix, opts: &ApplyOptions) {
    let mat = [m.get(0, 0), m.get(0, 1), m.get(1, 0), m.get(1, 1)];
    apply_single(state, q, &mat, opts);
}

/// Block size of the diagonal streaming pass: factors whose qubits all sit
/// at or above this bit are constant across a block and cost one table
/// lookup per 64 amplitudes instead of one per amplitude.
const DIAG_BLOCK_BITS: usize = 6;
const DIAG_BLOCK: usize = 1 << DIAG_BLOCK_BITS;
/// Blocks per parallel work item (scratch reuse granularity).
const DIAG_BLOCKS_PER_CHUNK: usize = 64;

/// High-qubit bit extraction shared by both block-factor kinds.
#[inline(always)]
fn hi_sub(hi_bits: &[(usize, usize)], base: usize) -> usize {
    let mut sub = 0usize;
    for &(q, b) in hi_bits {
        sub |= ((base >> q) & 1) << b;
    }
    sub
}

/// A factor whose qubits all sit at or above [`DIAG_BLOCK_BITS`]: constant
/// across a block — one lookup per 64 amplitudes.
#[derive(Debug, Clone)]
struct ConstFactor {
    diag: Vec<Complex64>,
    hi_bits: Vec<(usize, usize)>,
}

/// A factor touching low qubits: per-amplitude lookup through a 64-entry
/// low-bit table built once per classification.
#[derive(Debug, Clone)]
struct VarFactor {
    diag: Vec<Complex64>,
    hi_bits: Vec<(usize, usize)>,
    lo_map: Box<[u32; DIAG_BLOCK]>,
}

/// A diagonal run classified for the block sweep. Built once per
/// [`FusedCircuit`] (so the per-assignment hot loops of the hierarchical
/// engines never re-derive it), or per rank translation in the mapped path.
#[derive(Debug, Clone)]
struct PreparedDiagonal {
    constant: Vec<ConstFactor>,
    varying: Vec<VarFactor>,
}

/// Classify a diagonal run's factors for the block sweep, optionally
/// translating qubits through `map` first (the per-rank path).
fn prepare_diagonal(factors: &[DiagonalFactor], map: Option<&[Qubit]>) -> PreparedDiagonal {
    let mut prepared = PreparedDiagonal {
        constant: Vec::new(),
        varying: Vec::new(),
    };
    for factor in factors {
        let mut hi_bits = Vec::new();
        let mut lo_map: Option<Box<[u32; DIAG_BLOCK]>> = None;
        for (b, &q) in factor.qubits.iter().enumerate() {
            let q = map.map_or(q, |m| m[q]);
            if q < DIAG_BLOCK_BITS {
                let map = lo_map.get_or_insert_with(|| Box::new([0u32; DIAG_BLOCK]));
                for (j, slot) in map.iter_mut().enumerate() {
                    *slot |= (((j >> q) & 1) as u32) << b;
                }
            } else {
                hi_bits.push((q, b));
            }
        }
        match lo_map {
            Some(lo_map) => prepared.varying.push(VarFactor {
                diag: factor.diag.clone(),
                hi_bits,
                lo_map,
            }),
            None => prepared.constant.push(ConstFactor {
                diag: factor.diag.clone(),
                hi_bits,
            }),
        }
    }
    prepared
}

/// Apply a run of diagonal factors in one streaming pass: every amplitude is
/// read and written exactly once, multiplied by the product of its factors.
///
/// The per-amplitude work is kept minimal by splitting factors per block of
/// 64 contiguous amplitudes: factors on high qubits collapse to a single
/// per-block phase, and the remaining factors index their tables through a
/// precomputed low-bit lookup (no per-amplitude bit scanning).
fn run_prepared_diagonal(
    state: &mut StateVector,
    prepared: &PreparedDiagonal,
    opts: &ApplyOptions,
) {
    run_prepared_diagonal_amps(state.amplitudes_mut(), 0, prepared, opts);
}

/// Slice form of [`run_prepared_diagonal`], shared with the cache-blocked
/// tile executor. `amps.len()` must be a multiple of [`DIAG_BLOCK`] and
/// `offset` (the slice's absolute start index in the full state — tiles pass
/// their [`TILE`]-aligned base, whole-state callers pass 0) must be
/// block-aligned, so every block's phase classification sees the same
/// absolute base as the untiled sweep and results stay bit-identical.
fn run_prepared_diagonal_amps(
    amps: &mut [Complex64],
    offset: usize,
    prepared: &PreparedDiagonal,
    opts: &ApplyOptions,
) {
    let len = amps.len();
    debug_assert!(len >= DIAG_BLOCK);
    debug_assert_eq!(offset % DIAG_BLOCK, 0);
    let constant = &prepared.constant;
    let varying = &prepared.varying;

    let blocks = len >> DIAG_BLOCK_BITS;
    let amps_ptr = SharedAmpsSlice::new(amps);
    #[cfg(target_arch = "x86_64")]
    let use_simd = opts.use_simd();
    let run_chunk = |first: usize, last: usize| {
        let mut hi_subs = vec![0usize; varying.len()];
        for block in first..last {
            let rel = block << DIAG_BLOCK_BITS;
            let base = offset + rel;
            let mut block_phase = Complex64::ONE;
            for factor in constant {
                block_phase *= factor.diag[hi_sub(&factor.hi_bits, base)];
            }
            for (slot, factor) in hi_subs.iter_mut().zip(varying) {
                *slot = hi_sub(&factor.hi_bits, base);
            }
            // SAFETY: blocks are disjoint contiguous ranges.
            let amps = unsafe { amps_ptr.slice_mut(rel, DIAG_BLOCK) };
            #[cfg(target_arch = "x86_64")]
            if use_simd {
                // SAFETY: dispatch resolution verified AVX2+FMA support.
                unsafe { run_diag_block_avx2(amps, block_phase, varying, &hi_subs) };
                continue;
            }
            if varying.is_empty() {
                for amp in amps {
                    *amp *= block_phase;
                }
            } else {
                for (j, amp) in amps.iter_mut().enumerate() {
                    let mut phase = block_phase;
                    for (factor, &hi) in varying.iter().zip(hi_subs.iter()) {
                        phase *= factor.diag[hi | factor.lo_map[j] as usize];
                    }
                    *amp *= phase;
                }
            }
        }
    };
    if opts.parallel && len >= opts.parallel_threshold {
        let chunks = blocks.div_ceil(DIAG_BLOCKS_PER_CHUNK);
        (0..chunks).into_par_iter().for_each(|c| {
            let first = c * DIAG_BLOCKS_PER_CHUNK;
            run_chunk(first, (first + DIAG_BLOCKS_PER_CHUNK).min(blocks));
        });
    } else {
        run_chunk(0, blocks);
    }
}

/// AVX2 twin of the per-block diagonal body: two amplitudes per iteration,
/// phases chained through [`crate::simd::cmul`] in the exact multiply order
/// of the scalar loop (`phase = phase * factor[...]`, then
/// `amp = amp * phase`), so results are bit-identical. [`DIAG_BLOCK`] is
/// even, so there is never a tail.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn run_diag_block_avx2(
    amps: &mut [Complex64],
    block_phase: Complex64,
    varying: &[VarFactor],
    hi_subs: &[usize],
) {
    use crate::simd::{broadcast1, cmul, load2};
    use std::arch::x86_64::*;
    let vbase = broadcast1(&block_phase);
    let ptr = amps.as_mut_ptr();
    let n = amps.len();
    let mut j = 0usize;
    while j < n {
        let mut vphase = vbase;
        for (factor, &hi) in varying.iter().zip(hi_subs.iter()) {
            let d = factor.diag.as_ptr();
            let vd = load2(
                d.add(hi | factor.lo_map[j] as usize),
                d.add(hi | factor.lo_map[j + 1] as usize),
            );
            vphase = cmul(vphase, vd);
        }
        let vamp = _mm256_loadu_pd(ptr.add(j) as *const f64);
        _mm256_storeu_pd(ptr.add(j) as *mut f64, cmul(vamp, vphase));
        j += 2;
    }
}

/// Streaming pass over states too small for the block sweep, with an
/// optional qubit translation.
fn apply_diagonal_small(
    state: &mut StateVector,
    factors: &[DiagonalFactor],
    map: Option<&[Qubit]>,
    opts: &ApplyOptions,
) {
    let _ = opts;
    let amps = state.amplitudes_mut();
    for (i, amp) in amps.iter_mut().enumerate() {
        let mut phase = Complex64::ONE;
        for factor in factors {
            let mut sub = 0usize;
            for (b, &q) in factor.qubits.iter().enumerate() {
                let q = map.map_or(q, |m| m[q]);
                sub |= ((i >> q) & 1) << b;
            }
            phase *= factor.diag[sub];
        }
        *amp *= phase;
    }
}

/// A `Sync` wrapper handing out disjoint mutable sub-slices of the amplitude
/// buffer to parallel block workers.
#[derive(Clone, Copy)]
struct SharedAmpsSlice {
    ptr: *mut Complex64,
    len: usize,
}

unsafe impl Sync for SharedAmpsSlice {}
unsafe impl Send for SharedAmpsSlice {}

impl SharedAmpsSlice {
    fn new(slice: &mut [Complex64]) -> Self {
        Self {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
        }
    }

    /// # Safety
    /// Ranges handed out concurrently must be disjoint and in bounds.
    #[allow(clippy::mut_from_ref)]
    unsafe fn slice_mut(&self, start: usize, len: usize) -> &mut [Complex64] {
        debug_assert!(start + len <= self.len);
        std::slice::from_raw_parts_mut(self.ptr.add(start), len)
    }
}

/// A circuit compiled for fused execution: the first-class form every engine
/// executes. Construction pays the fusion cost once (greedy grouping plus the
/// small matrix products); `apply` then sweeps the state once per op with the
/// width-specialised, allocation-free kernels.
#[derive(Debug, Clone)]
pub struct FusedCircuit {
    num_qubits: usize,
    ops: Vec<FusedOp>,
    /// Per-op derived data (sparse rows, diagonal classification), index-
    /// aligned with `ops`; built once so `apply` never re-derives it.
    prepared: Vec<PreparedOp>,
    fusion_width: usize,
    source_gates: usize,
    /// The *resolved* strategy that produced the ops (never `Auto`).
    strategy: FusionStrategy,
}

impl FusedCircuit {
    /// Fuse `circuit` at the given width (≥ 1) with the window scanner
    /// (equivalent to [`FusedCircuit::with_strategy`] at
    /// [`FusionStrategy::Window`]). Dense groups are capped at
    /// `max_fused_qubits`; runs of diagonal gates collapse into single
    /// streaming passes with no width limit. Grouping is commutation-aware:
    /// a gate may join an earlier open group when it commutes with every
    /// group in between (disjoint qubits, or diagonal-past-diagonal), so
    /// interleaved circuits fuse as well as layered ones — within the
    /// bounded window.
    pub fn new(circuit: &Circuit, max_fused_qubits: usize) -> Self {
        assert!(max_fused_qubits >= 1, "fusion width must be at least 1");
        let mut builder = Builder {
            circuit,
            width: max_fused_qubits,
            ops: Vec::new(),
            pending: Vec::new(),
        };
        for (index, gate) in circuit.gates().iter().enumerate() {
            builder.push(index, gate);
        }
        builder.flush_all();
        Self::from_ops(
            circuit,
            builder.ops,
            max_fused_qubits,
            FusionStrategy::Window,
        )
    }

    /// Fuse `circuit` under the given [`FusionStrategy`]. `Auto` resolves to
    /// either window or DAG fusion deterministically (same circuit, width
    /// and strategy ⇒ identical fused form — the property the plan cache,
    /// the SPMD engines and the process workers all rely on).
    pub fn with_strategy(
        circuit: &Circuit,
        max_fused_qubits: usize,
        strategy: FusionStrategy,
    ) -> Self {
        match strategy {
            FusionStrategy::Window => Self::new(circuit, max_fused_qubits),
            FusionStrategy::Dag => {
                let dag = CircuitDag::from_circuit(circuit);
                Self::from_dag(circuit, &dag, max_fused_qubits)
            }
            FusionStrategy::Auto => {
                let window = Self::new(circuit, max_fused_qubits);
                if !window.window_histogram_degenerated() {
                    return window;
                }
                let dag = CircuitDag::from_circuit(circuit);
                let dag_form = Self::from_dag(circuit, &dag, max_fused_qubits);
                if dag_form.estimated_sweep_cost() < window.estimated_sweep_cost() {
                    dag_form
                } else {
                    window
                }
            }
        }
    }

    /// Resolve [`FusionStrategy::Auto`] to an explicit strategy under the
    /// given cost model, without keeping the built forms. With
    /// [`SweepCosts::default`] this returns exactly what
    /// [`FusedCircuit::with_strategy`] would resolve `Auto` to; with
    /// measured costs the window-vs-DAG adjudication uses the machine's
    /// observed pass cost instead of the static constant. Both candidate
    /// forms are still *built* with the static model — only the
    /// comparison between them is calibrated — so the returned explicit
    /// strategy reproduces bit-identical fused forms everywhere,
    /// including on remote workers that never see the profile.
    pub fn resolve_auto_with(
        circuit: &Circuit,
        max_fused_qubits: usize,
        costs: &SweepCosts,
    ) -> FusionStrategy {
        let window = Self::new(circuit, max_fused_qubits);
        if !window.window_histogram_degenerated() {
            return FusionStrategy::Window;
        }
        let dag = CircuitDag::from_circuit(circuit);
        let dag_form = Self::from_dag(circuit, &dag, max_fused_qubits);
        if dag_form.estimated_sweep_cost_with(costs) < window.estimated_sweep_cost_with(costs) {
            FusionStrategy::Dag
        } else {
            FusionStrategy::Window
        }
    }

    /// Fuse `circuit` by covering its gate-dependency DAG with antichain
    /// groups ([`hisvsim_dag::antichain_fusion_groups`]): gates with no
    /// dependency path between them commute structurally, so no matrix
    /// commutation check is needed, and mergeable gates arbitrarily far
    /// apart in program order still land in one group. The same
    /// per-amplitude cost model and width caps gate group growth as in the
    /// window scanner.
    pub fn from_dag(circuit: &Circuit, dag: &CircuitDag, max_fused_qubits: usize) -> Self {
        assert!(max_fused_qubits >= 1, "fusion width must be at least 1");
        let classes: Vec<GateClass> = circuit
            .gates()
            .iter()
            .map(|gate| GateClass {
                diagonal: gate.kind.is_diagonal(),
                widen_allowance: solo_cost(gate),
            })
            .collect();
        let groups = antichain_fusion_groups(dag, &classes, max_fused_qubits);
        let mut ops = Vec::with_capacity(groups.len());
        for group in groups {
            if group.diagonal {
                let mut factors: Vec<DiagonalFactor> = Vec::new();
                for &index in &group.gates {
                    absorb_diagonal_gate(&mut factors, &circuit.gates()[index]);
                }
                ops.push(FusedOp::Diagonal {
                    factors,
                    fused_count: group.gates.len(),
                });
            } else {
                emit_dense_group(circuit, group.gates, group.qubits, &mut ops);
            }
        }
        Self::from_ops(circuit, ops, max_fused_qubits, FusionStrategy::Dag)
    }

    /// Assemble the executable form from built ops (derives the prepared
    /// per-op data once).
    fn from_ops(
        circuit: &Circuit,
        ops: Vec<FusedOp>,
        fusion_width: usize,
        strategy: FusionStrategy,
    ) -> Self {
        let prepared = ops.iter().map(prepare_op).collect();
        Self {
            num_qubits: circuit.num_qubits(),
            ops,
            prepared,
            fusion_width,
            source_gates: circuit.num_gates(),
            strategy,
        }
    }

    /// Whether the window pass's group-size histogram is degenerate: few
    /// gates absorbed per sweep on average, or mostly singleton groups —
    /// the signature of a deep interleaved circuit the bounded window
    /// cannot reorder across. [`FusionStrategy::Auto`] uses this to decide
    /// when the DAG pass is worth building.
    fn window_histogram_degenerated(&self) -> bool {
        if self.ops.is_empty() {
            return false;
        }
        let mean = self.source_gates as f64 / self.ops.len() as f64;
        let singletons = self.ops.iter().filter(|op| op.fused_count() == 1).count();
        mean < AUTO_DEGENERATE_MEAN_GATES || singletons * 2 > self.ops.len()
    }

    /// Modelled per-amplitude cost of executing all ops (sweep + arithmetic
    /// terms, same units as the fusion cost model). Used to compare the
    /// window and DAG forms under [`FusionStrategy::Auto`].
    fn estimated_sweep_cost(&self) -> f64 {
        self.estimated_sweep_cost_with(&SweepCosts::default())
    }

    /// [`Self::estimated_sweep_cost`] under an explicit (possibly
    /// measured) cost model. Evaluates an already-built fused form — it
    /// never changes the form itself.
    pub fn estimated_sweep_cost_with(&self, costs: &SweepCosts) -> f64 {
        self.ops
            .iter()
            .map(|op| match op {
                FusedOp::Dense(g) => costs.pass + (1u64 << g.qubits.len()) as f64,
                FusedOp::Solo(gate, _) => solo_cost_with(gate, costs.pass),
                FusedOp::Diagonal { factors, .. } => costs.pass + 0.5 * factors.len() as f64,
            })
            .sum()
    }

    /// The resolved strategy that produced this fused form (never
    /// [`FusionStrategy::Auto`]: auto resolves at construction).
    pub fn strategy(&self) -> FusionStrategy {
        self.strategy
    }

    /// Number of qubits of the source circuit.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The fused operations, in execution order.
    pub fn ops(&self) -> &[FusedOp] {
        &self.ops
    }

    /// Number of fused operations (state-vector sweeps).
    pub fn num_ops(&self) -> usize {
        self.ops.len()
    }

    /// Number of gates of the source circuit.
    pub fn source_gates(&self) -> usize {
        self.source_gates
    }

    /// The width this circuit was fused at.
    pub fn fusion_width(&self) -> usize {
        self.fusion_width
    }

    /// Apply the fused circuit to a state vector.
    pub fn apply(&self, state: &mut StateVector, opts: &ApplyOptions) {
        assert!(
            self.num_qubits <= state.num_qubits(),
            "fused circuit needs {} qubits, state has {}",
            self.num_qubits,
            state.num_qubits()
        );
        self.apply_with_map(state, None, opts);
    }

    /// Apply with a qubit translation: fused qubit `q` acts on state qubit
    /// `map[q]`. Lets the distributed engines share one fused circuit across
    /// every rank and layout: the fused matrices and their sparse rows are
    /// never recomputed — only qubit references are translated (diagonal
    /// runs additionally re-classify their small tables per call, since the
    /// block split depends on the translated positions).
    pub fn apply_mapped(&self, state: &mut StateVector, map: &[Qubit], opts: &ApplyOptions) {
        assert!(
            map.len() >= self.num_qubits,
            "qubit map covers {} qubits, fused circuit has {}",
            map.len(),
            self.num_qubits
        );
        self.apply_with_map(state, Some(map), opts);
    }

    /// Shared sweep loop behind [`apply`](Self::apply) and
    /// [`apply_mapped`](Self::apply_mapped), with sampled per-sweep trace
    /// spans: when the recorder is enabled, full-size sweeps (≥ 2^16
    /// amplitudes) are always recorded and small inner-state sweeps (the
    /// hierarchical engines run millions of them) are sampled 1-in-64 to
    /// keep the tracing overhead off the hot path.
    fn apply_with_map(&self, state: &mut StateVector, map: Option<&[Qubit]>, opts: &ApplyOptions) {
        let tracing = hisvsim_obs::enabled();
        if state.len() > TILE {
            self.apply_tiled(state, map, opts, tracing);
            return;
        }
        for (op, prep) in self.ops.iter().zip(&self.prepared) {
            self.apply_one(state, op, prep, map, opts, tracing);
        }
    }

    /// One whole-state sweep with the sampled trace span.
    fn apply_one(
        &self,
        state: &mut StateVector,
        op: &FusedOp,
        prep: &PreparedOp,
        map: Option<&[Qubit]>,
        opts: &ApplyOptions,
        tracing: bool,
    ) {
        if tracing && sample_sweep(state.len()) {
            // Amplitudes read + written once per sweep (2 × 16 bytes each):
            // the byte count the cost profiler turns into effective GB/s.
            let _g = hisvsim_obs::span("kernel", op.span_name())
                .detail(format!("{} gates, {} amps", op.fused_count(), state.len()))
                .bytes(state.len() as u64 * 32);
            op.apply_inner(state, prep, map, opts);
        } else {
            op.apply_inner(state, prep, map, opts);
        }
    }

    /// Cache-blocked sweep order for states larger than one [`TILE`]: maximal
    /// runs of ≥ 2 consecutive tileable ops (see [`op_tileable`] — dense ops
    /// whose (translated) qubits all sit below [`TILE_BITS`], plus diagonal
    /// runs at *any* qubits) are executed tile-by-tile — each 1 MiB tile of
    /// amplitudes streams through the whole run while L2-resident, instead of
    /// the run streaming the whole state from memory once per op. Dense ops
    /// touching higher qubits (or lone tileable ops, which gain nothing) fall
    /// through to the ordinary whole-state sweep. Tile bases are
    /// [`TILE`]-aligned, so relative bit indexing inside a tile coincides
    /// with absolute indexing for every qubit below [`TILE_BITS`], and
    /// diagonal runs receive the tile's absolute base so high-qubit factors
    /// classify exactly as in the untiled order — the per-amplitude
    /// arithmetic is bit-identical either way.
    fn apply_tiled(
        &self,
        state: &mut StateVector,
        map: Option<&[Qubit]>,
        opts: &ApplyOptions,
        tracing: bool,
    ) {
        let mut i = 0usize;
        while i < self.ops.len() {
            let mut j = i;
            while j < self.ops.len() && op_tileable(&self.ops[j], map) {
                j += 1;
            }
            if j - i >= 2 {
                self.apply_tiled_run(state, i, j, map, opts, tracing);
                i = j;
            } else {
                // A non-tileable op (j == i) or a lone tileable one: run it
                // as a whole-state sweep.
                let end = j.max(i + 1);
                for idx in i..end {
                    self.apply_one(
                        state,
                        &self.ops[idx],
                        &self.prepared[idx],
                        map,
                        opts,
                        tracing,
                    );
                }
                i = end;
            }
        }
    }

    /// Execute ops `first..last` (all tileable) tile-by-tile. Per-run
    /// translation and specialisation happen once up front; the per-tile loop
    /// allocates nothing.
    fn apply_tiled_run(
        &self,
        state: &mut StateVector,
        first: usize,
        last: usize,
        map: Option<&[Qubit]>,
        opts: &ApplyOptions,
        tracing: bool,
    ) {
        let items: Vec<TileOp<'_>> = (first..last)
            .map(|idx| tile_op(&self.ops[idx], &self.prepared[idx], map))
            .collect();
        let len = state.len();
        let _g = (tracing && sample_sweep(len)).then(|| {
            let gates: usize = self.ops[first..last].iter().map(FusedOp::fused_count).sum();
            hisvsim_obs::span("kernel", "sweep:tiled")
                .detail(format!(
                    "{} ops, {} gates, {} amps",
                    last - first,
                    gates,
                    len
                ))
                // One streaming pass over the state carries the whole run.
                .bytes(len as u64 * 32)
        });
        // Within a tile the run is sequential; parallelism comes from the
        // disjoint tiles (nesting both would oversubscribe the pool).
        let tile_opts = ApplyOptions {
            parallel: false,
            parallel_threshold: usize::MAX,
            dispatch: opts.dispatch,
        };
        let amps = state.amplitudes_mut();
        let tiles = amps.len() / TILE;
        let amps_ptr = SharedAmpsSlice::new(amps);
        let work = |t: usize| {
            let base = t * TILE;
            // SAFETY: tiles are disjoint contiguous ranges.
            let tile = unsafe { amps_ptr.slice_mut(base, TILE) };
            for item in &items {
                item.apply(tile, base, &tile_opts);
            }
        };
        if opts.parallel && len >= opts.parallel_threshold {
            (0..tiles).into_par_iter().for_each(work);
        } else {
            (0..tiles).for_each(work);
        }
    }

    /// Run from `|0…0⟩` and return the resulting state.
    pub fn run(&self, opts: &ApplyOptions) -> StateVector {
        let mut state = StateVector::zero_state(self.num_qubits);
        self.apply(&mut state, opts);
        state
    }
}

/// Sweep-span sampling decision: record every sweep over a full-size state
/// (the interesting ones for kernel optimisation), and of the small
/// inner-state sweeps the first on each thread plus 1-in-64 after, so
/// hierarchical runs always leave a kernel footprint in the trace without
/// flooding the ring buffers.
fn sample_sweep(amps: usize) -> bool {
    if amps >= (1 << 16) {
        return true;
    }
    thread_local! {
        static SWEEP_TICK: std::cell::Cell<u32> = const { std::cell::Cell::new(0) };
    }
    SWEEP_TICK.with(|c| {
        let n = c.get().wrapping_add(1);
        c.set(n);
        n % 64 == 1
    })
}

/// Tile size of the cache-blocked sweep order: 2^16 amplitudes = 1 MiB of
/// `Complex64`, sized so a run's working set stays L2-resident (2 MiB L2 on
/// the reference Xeon) while keeping two more qubits below the tile
/// boundary than a 256 KiB tile would — every extra tileable qubit lets
/// more dense ops join tiled runs instead of forcing whole-state sweeps.
const TILE_BITS: usize = 16;
/// One tile of the cache-blocked sweep, in amplitudes.
const TILE: usize = 1 << TILE_BITS;

/// Whether an op can execute inside one tile. Dense ops qualify when every
/// (translated) qubit sits below [`TILE_BITS`], so they never pair amplitudes
/// across a tile boundary. Diagonal runs qualify at *any* qubit positions:
/// each amplitude is only scaled in place, and the block kernel classifies
/// factors from the block's absolute base index — factors on qubits at or
/// above [`TILE_BITS`] are constant within a tile and fold into the per-block
/// phase exactly as in the whole-state sweep.
fn op_tileable(op: &FusedOp, map: Option<&[Qubit]>) -> bool {
    let fits = |&q: &Qubit| map.map_or(q, |m| m[q]) < TILE_BITS;
    match op {
        FusedOp::Dense(g) => g.qubits.iter().all(fits),
        FusedOp::Solo(gate, _) => gate.qubits.iter().all(fits),
        FusedOp::Diagonal { .. } => true,
    }
}

/// One op of a tiled run, pre-translated and pre-specialised so the per-tile
/// loop does no allocation or qubit translation.
enum TileOp<'a> {
    Single {
        q: Qubit,
        m: [Complex64; 4],
    },
    TwoDense {
        a: Qubit,
        b: Qubit,
        matrix: &'a UnitaryMatrix,
    },
    KDense {
        qubits: Vec<Qubit>,
        matrix: &'a UnitaryMatrix,
        sparse: Option<&'a SparseRows>,
    },
    Solo {
        gate: Gate,
        matrix: Option<&'a UnitaryMatrix>,
    },
    Diag(std::borrow::Cow<'a, PreparedDiagonal>),
}

/// Specialise one fused op for tile-relative execution, mirroring the
/// dispatch of [`FusedOp::apply_inner`] exactly (same kernels, same qubit
/// translation) so tiled and untiled orders agree bitwise.
fn tile_op<'a>(op: &'a FusedOp, prep: &'a PreparedOp, map: Option<&[Qubit]>) -> TileOp<'a> {
    let translate = |qs: &[Qubit]| -> Vec<Qubit> {
        match map {
            Some(map) => qs.iter().map(|&q| map[q]).collect(),
            None => qs.to_vec(),
        }
    };
    match (op, prep) {
        (FusedOp::Dense(g), PreparedOp::Dense(sparse)) => {
            let qubits = translate(&g.qubits);
            if qubits.len() == 1 {
                let m = &g.matrix;
                TileOp::Single {
                    q: qubits[0],
                    m: [m.get(0, 0), m.get(0, 1), m.get(1, 0), m.get(1, 1)],
                }
            } else if qubits.len() == 2 {
                TileOp::TwoDense {
                    a: qubits[0],
                    b: qubits[1],
                    matrix: &g.matrix,
                }
            } else {
                TileOp::KDense {
                    qubits,
                    matrix: &g.matrix,
                    sparse: sparse.as_ref(),
                }
            }
        }
        (FusedOp::Solo(gate, matrix), _) => TileOp::Solo {
            gate: match map {
                None => gate.clone(),
                Some(_) => Gate {
                    kind: gate.kind,
                    qubits: translate(&gate.qubits),
                },
            },
            matrix: matrix.as_ref(),
        },
        (FusedOp::Diagonal { factors, .. }, prep) => match (map, prep) {
            (None, PreparedOp::Diagonal(prepared)) => {
                TileOp::Diag(std::borrow::Cow::Borrowed(prepared))
            }
            // The block classification depends on translated positions;
            // re-derived once per run, shared by every tile.
            _ => TileOp::Diag(std::borrow::Cow::Owned(prepare_diagonal(factors, map))),
        },
        (FusedOp::Dense(_), _) => {
            unreachable!("FusedCircuit keeps prepared data index-aligned with ops")
        }
    }
}

impl TileOp<'_> {
    /// Apply this op to one tile starting at absolute amplitude index `base`.
    /// The tile base is [`TILE`]-aligned and every dense qubit is below
    /// [`TILE_BITS`], so tile-relative indexing matches absolute indexing
    /// bit-for-bit; diagonal runs additionally receive `base` so factors on
    /// high qubits classify against the same absolute block bases as the
    /// whole-state sweep.
    fn apply(&self, amps: &mut [Complex64], base: usize, opts: &ApplyOptions) {
        match self {
            TileOp::Single { q, m } => apply_single_amps(amps, *q, m, opts),
            TileOp::TwoDense { a, b, matrix } => {
                apply_two_qubit_dense_amps(amps, *a, *b, matrix, opts)
            }
            TileOp::KDense {
                qubits,
                matrix,
                sparse,
            } => apply_k_qubit_prepared_amps(amps, qubits, matrix, *sparse, opts),
            TileOp::Solo { gate, matrix } => apply_gate_with_matrix_amps(amps, gate, *matrix, opts),
            TileOp::Diag(prepared) => run_prepared_diagonal_amps(amps, base, prepared, opts),
        }
    }
}

/// Estimated cost of streaming the state through the cache hierarchy
/// once, relative to one complex multiply-add per amplitude.
const PASS: f64 = 2.0;

/// Tunable constants of the sweep cost model. The default reproduces the
/// static model ([`PASS`] = 2.0) exactly; a measured-cost profile can
/// supply a calibrated `pass` instead.
///
/// **Scope guard:** calibrated costs only ever adjudicate *between* fused
/// forms (the [`FusionStrategy::Auto`] window-vs-DAG comparison, via
/// [`FusedCircuit::resolve_auto_with`]). The forms themselves — group
/// boundaries, demotion decisions, widen allowances — are always built
/// with the static model, so a fused circuit stays a pure function of
/// (circuit, width, resolved strategy) and every engine, local or remote,
/// derives bit-identical schedules with or without a profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepCosts {
    /// Cost of one streaming pass over the state relative to one complex
    /// multiply-add per amplitude.
    pub pass: f64,
}

impl Default for SweepCosts {
    fn default() -> Self {
        SweepCosts { pass: PASS }
    }
}

/// Process-wide count of fused groups demoted back to their member gates
/// because the modelled fused sweep cost exceeded the sum of the members'
/// solo costs (see [`emit_dense_group`]). Monotonic; the service layer syncs
/// it into the metrics registry at scrape time.
static FUSION_FALLBACKS: AtomicU64 = AtomicU64::new(0);

/// How many fused groups have been demoted to their solo form process-wide
/// because fusing them modelled *slower* than not fusing them. A steadily
/// growing value is expected on interleaved circuits (the group builders can
/// pair cheap fast-path gates whose dense form costs more than two sweeps);
/// it is exported as `hisvsim_fusion_fallback_total`.
pub fn fusion_fallback_count() -> u64 {
    FUSION_FALLBACKS.load(Ordering::Relaxed)
}

/// Per-amplitude cost (in complex multiply-add units) of applying a gate
/// through its standalone specialised kernel, including an estimated sweep
/// (memory-traffic) term. Only relative magnitudes matter: the fusion
/// builder compares this against the arithmetic a wider dense group adds.
fn solo_cost(gate: &Gate) -> f64 {
    solo_cost_with(gate, PASS)
}

/// [`solo_cost`] with an explicit pass cost (see [`SweepCosts`]).
fn solo_cost_with(gate: &Gate, pass: f64) -> f64 {
    use hisvsim_circuit::GateKind::*;
    match (&gate.kind, gate.arity()) {
        (I, _) => 0.0,
        (X, 1) => pass,
        (Cx, 2) | (Swap, 2) => 0.5 * pass + 0.5,
        (Cz, 2) => pass + 0.5,
        (kind, 1) if kind.is_diagonal() => pass + 1.0,
        (_, 1) => pass + 2.0,
        (kind, 2) if kind.num_controls() == 1 => 0.5 * pass + 1.0,
        (kind, 2) if kind.is_diagonal() => pass + 1.0,
        (_, 2) => pass + 4.0,
        (_, k) => pass + (1u64 << k) as f64,
    }
}

/// Fold `gate` (diagonal) into a run's factor list: coalesce into the
/// youngest factor while its qubit union stays small (bounded arithmetic
/// per amplitude), otherwise open a new factor. Shared by the window
/// scanner's open diagonal runs and the DAG grouper's emitted runs.
fn absorb_diagonal_gate(factors: &mut Vec<DiagonalFactor>, gate: &Gate) {
    let matrix = gate.matrix();
    let cap = MAX_STACK_KERNEL_QUBITS.max(gate.arity());
    let coalesced = match factors.last_mut() {
        Some(last) => {
            let extra = gate
                .qubits
                .iter()
                .filter(|q| !last.qubits.contains(q))
                .count();
            if last.qubits.len() + extra <= cap {
                last.absorb(&gate.qubits, &matrix);
                true
            } else {
                false
            }
        }
        None => false,
    };
    if !coalesced {
        factors.push(DiagonalFactor::from_gate(&gate.qubits, &matrix));
    }
}

/// Emit a dense group as a fused op: a lone gate keeps its specialised
/// fast path ([`FusedOp::Solo`]), multi-gate groups multiply into one
/// matrix. Shared by both fusion strategies.
///
/// Cost guard: a group the model says is *slower* fused than unfused (e.g.
/// two fast-path CX gates whose dense 4×4 form costs `PASS + 4` against two
/// half-sweeps) is demoted back to its member gates, in the same product
/// order the group matrix would have applied them — the demotion is
/// operator-identical, it only changes how many sweeps carry it. Demotions
/// are counted in [`fusion_fallback_count`].
fn emit_dense_group(
    circuit: &Circuit,
    indices: Vec<usize>,
    qubits: Vec<Qubit>,
    ops: &mut Vec<FusedOp>,
) {
    if indices.len() == 1 {
        // A lone gate gains nothing from the dense-matrix form and would
        // lose its fast path (SWAP/CX/controlled); keep it as written.
        let gate = &circuit.gates()[indices[0]];
        let matrix = crate::kernels::uses_dense_matrix(gate).then(|| gate.matrix());
        ops.push(FusedOp::Solo(gate.clone(), matrix));
        return;
    }
    let fused_cost = PASS + (1u64 << qubits.len()) as f64;
    let unfused_cost: f64 = indices
        .iter()
        .map(|&i| solo_cost(&circuit.gates()[i]))
        .sum();
    if fused_cost > unfused_cost {
        FUSION_FALLBACKS.fetch_add(1, Ordering::Relaxed);
        for &i in &indices {
            let gate = &circuit.gates()[i];
            let matrix = crate::kernels::uses_dense_matrix(gate).then(|| gate.matrix());
            ops.push(FusedOp::Solo(gate.clone(), matrix));
        }
        return;
    }
    let matrix = build_group_matrix(circuit, &indices, &qubits);
    ops.push(FusedOp::Dense(FusedGate {
        qubits,
        matrix,
        fused_count: indices.len(),
    }));
}

/// How many groups stay open at once. Bounds the commutation scan and the
/// reordering distance; flushed oldest-first beyond this.
const MAX_PENDING: usize = 8;

/// One open (still absorbing) group of the fusion scan.
enum Pending {
    /// A dense group: source gate indices and the qubit union.
    Dense {
        indices: Vec<usize>,
        qubits: Vec<Qubit>,
    },
    /// A diagonal run: coalesced factors, absorbed-gate count, qubit union.
    Diag {
        factors: Vec<DiagonalFactor>,
        count: usize,
        qubits: Vec<Qubit>,
    },
}

impl Pending {
    fn qubits(&self) -> &[Qubit] {
        match self {
            Pending::Dense { qubits, .. } => qubits,
            Pending::Diag { qubits, .. } => qubits,
        }
    }
}

/// Scan state for [`FusedCircuit::new`]: an ordered list of open groups.
/// A gate may join any group it can reach by commuting past every younger
/// group (checked at join time; see `commutes_past`), which lets interleaved
/// circuits build long diagonal runs and full dense groups.
struct Builder<'a> {
    circuit: &'a Circuit,
    width: usize,
    ops: Vec<FusedOp>,
    pending: Vec<Pending>,
}

impl Builder<'_> {
    fn push(&mut self, index: usize, gate: &Gate) {
        let diagonal = gate.kind.is_diagonal();
        // Width only limits dense groups; diagonal runs are width-free, so a
        // wide diagonal gate still joins (or opens) a run.
        let oversized = !diagonal && gate.arity() > self.width;

        // Scan open groups young-to-old for one this gate can join; stop at
        // the first group it cannot commute past.
        if !oversized {
            let mut target = None;
            for i in (0..self.pending.len()).rev() {
                if self.can_join(&self.pending[i], gate, diagonal) {
                    target = Some(i);
                    break;
                }
                if !commutes_past(&self.pending[i], gate, diagonal) {
                    break;
                }
            }
            if let Some(i) = target {
                self.join(i, index, gate, diagonal);
                return;
            }
        }

        // No reachable group: open a new one (always order-correct at the
        // end of the list).
        let group = if diagonal {
            Pending::Diag {
                factors: vec![DiagonalFactor::from_gate(&gate.qubits, &gate.matrix())],
                count: 1,
                qubits: gate.qubits.clone(),
            }
        } else {
            Pending::Dense {
                indices: vec![index],
                qubits: gate.qubits.clone(),
            }
        };
        self.pending.push(group);
        if self.pending.len() > MAX_PENDING {
            let oldest = self.pending.remove(0);
            self.emit(oldest);
        }
    }

    /// Whether `gate` may be absorbed by group `p`.
    fn can_join(&self, p: &Pending, gate: &Gate, diagonal: bool) -> bool {
        match p {
            // Diagonal runs absorb any diagonal gate (no width limit).
            Pending::Diag { .. } => diagonal,
            Pending::Dense { indices, qubits } => {
                if diagonal {
                    // Absorbing a diagonal into a dense group is free only
                    // when it adds no qubits (the matrix product keeps its
                    // dimension); otherwise the streaming run is cheaper.
                    return gate.qubits.iter().all(|q| qubits.contains(q));
                }
                let extra = gate.qubits.iter().filter(|q| !qubits.contains(q)).count();
                let union = qubits.len() + extra;
                if union > self.width {
                    return false;
                }
                // Widening multiplies the dense kernel's per-amplitude
                // arithmetic by 2 per added qubit; only pay that when it
                // undercuts the gate's standalone sweep (a CX — nearly free
                // on its own — never inflates a group, dense rotations fuse
                // eagerly).
                let widen_cost = ((1u64 << union) - (1u64 << qubits.len())) as f64;
                !indices.is_empty() && widen_cost <= solo_cost(gate)
            }
        }
    }

    /// Absorb `gate` into group `i`.
    fn join(&mut self, i: usize, index: usize, gate: &Gate, diagonal: bool) {
        match &mut self.pending[i] {
            Pending::Dense { indices, qubits } => {
                for &q in &gate.qubits {
                    if !qubits.contains(&q) {
                        qubits.push(q);
                    }
                }
                indices.push(index);
            }
            Pending::Diag {
                factors,
                count,
                qubits,
            } => {
                debug_assert!(diagonal);
                absorb_diagonal_gate(factors, gate);
                *count += 1;
                for &q in &gate.qubits {
                    if !qubits.contains(&q) {
                        qubits.push(q);
                    }
                }
            }
        }
    }

    /// Emit a closed group as a fused op.
    fn emit(&mut self, group: Pending) {
        match group {
            Pending::Dense { indices, qubits } => {
                emit_dense_group(self.circuit, indices, qubits, &mut self.ops);
            }
            Pending::Diag { factors, count, .. } => {
                self.ops.push(FusedOp::Diagonal {
                    factors,
                    fused_count: count,
                });
            }
        }
    }

    /// Close every open group in order.
    fn flush_all(&mut self) {
        for group in std::mem::take(&mut self.pending) {
            self.emit(group);
        }
    }
}

/// Whether `gate` commutes with every gate of group `p` (so it may be
/// reordered before the whole group): disjoint qubits always commute, and
/// diagonal gates commute with diagonal runs regardless of overlap.
fn commutes_past(p: &Pending, gate: &Gate, diagonal: bool) -> bool {
    if diagonal && matches!(p, Pending::Diag { .. }) {
        return true;
    }
    gate.qubits.iter().all(|q| !p.qubits().contains(q))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::run_circuit;
    use hisvsim_circuit::generators;

    #[test]
    fn fused_execution_matches_unfused_across_suite() {
        for name in generators::FAMILY_NAMES {
            let circuit = generators::by_name(name, 8);
            let expected = run_circuit(&circuit);
            for width in [2usize, 3, 4] {
                let got = run_fused(&circuit, width, &ApplyOptions::sequential());
                assert!(
                    got.approx_eq(&expected, 1e-9),
                    "{name} fused at width {width} diverges (max diff {})",
                    got.max_abs_diff(&expected)
                );
            }
        }
    }

    #[test]
    fn fusion_reduces_the_operation_count() {
        let circuit = generators::by_name("qft", 10);
        let fused = fuse_circuit(&circuit, 4);
        assert!(
            fused.len() < circuit.num_gates() / 2,
            "fusion produced {} ops for {} gates",
            fused.len(),
            circuit.num_gates()
        );
        let total: usize = fused.iter().map(|f| f.fused_count).sum();
        assert_eq!(
            total,
            circuit.num_gates(),
            "every gate must be fused exactly once"
        );
    }

    #[test]
    fn fused_matrices_are_unitary_and_within_width() {
        let circuit = generators::random_circuit(7, 60, 5);
        for op in fuse_circuit(&circuit, 3) {
            assert!(op.qubits.len() <= 3);
            assert_eq!(op.matrix.dim(), 1 << op.qubits.len());
            assert!(op.matrix.is_unitary(1e-9));
        }
    }

    #[test]
    fn oversized_gates_pass_through_unfused() {
        let circuit = generators::adder(8); // contains 3-qubit Toffolis
        let fused = fuse_circuit(&circuit, 2);
        assert!(fused
            .iter()
            .any(|f| f.qubits.len() == 3 && f.fused_count == 1));
        let expected = run_circuit(&circuit);
        let got = run_fused(&circuit, 2, &ApplyOptions::sequential());
        assert!(got.approx_eq(&expected, 1e-9));
    }

    #[test]
    fn width_one_fusion_merges_single_qubit_runs() {
        let mut circuit = hisvsim_circuit::Circuit::new(2);
        circuit.h(0).t(0).h(0).s(1).h(1);
        let fused = fuse_circuit(&circuit, 1);
        // Two groups: the run on qubit 0 and the run on qubit 1.
        assert_eq!(fused.len(), 2);
        assert_eq!(fused[0].fused_count, 3);
        assert_eq!(fused[1].fused_count, 2);
        let got = run_fused(&circuit, 1, &ApplyOptions::sequential());
        assert!(got.approx_eq(&run_circuit(&circuit), 1e-12));
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_width_is_rejected() {
        let circuit = generators::cat_state(4);
        let _ = fuse_circuit(&circuit, 0);
    }

    // -- FusedCircuit (the engine-facing pipeline) --------------------------

    #[test]
    fn fused_circuit_matches_unfused_across_suite_and_widths() {
        for name in generators::FAMILY_NAMES {
            let circuit = generators::by_name(name, 8);
            let expected = run_circuit(&circuit);
            for width in [1usize, 2, 3, 4, 5] {
                let fused = FusedCircuit::new(&circuit, width);
                for opts in [ApplyOptions::sequential(), ApplyOptions::default()] {
                    let got = fused.run(&opts);
                    assert!(
                        got.approx_eq(&expected, 1e-9),
                        "{name} fused-circuit at width {width} (parallel={}) diverges (max diff {})",
                        opts.parallel,
                        got.max_abs_diff(&expected)
                    );
                }
            }
        }
    }

    #[test]
    fn fused_circuit_accounts_for_every_gate_once() {
        for name in ["qft", "adder", "qaoa"] {
            let circuit = generators::by_name(name, 9);
            let fused = FusedCircuit::new(&circuit, 3);
            let total: usize = fused.ops().iter().map(|op| op.fused_count()).sum();
            assert_eq!(total, circuit.num_gates(), "{name}: gates lost in fusion");
            assert_eq!(fused.source_gates(), circuit.num_gates());
        }
    }

    #[test]
    fn diagonal_runs_collapse_into_streaming_passes() {
        // The QFT is mostly controlled-phase cascades (diagonal); the fused
        // form must execute far fewer sweeps than it has gates, and the
        // diagonal runs must absorb multi-gate cascades wider than the
        // fusion width.
        let circuit = generators::by_name("qft", 10);
        let fused = FusedCircuit::new(&circuit, 2);
        assert!(
            fused.num_ops() < circuit.num_gates() / 2,
            "{} ops for {} gates",
            fused.num_ops(),
            circuit.num_gates()
        );
        let wide_run = fused.ops().iter().any(|op| match op {
            FusedOp::Diagonal {
                factors,
                fused_count,
            } => {
                *fused_count > 2
                    && factors
                        .iter()
                        .flat_map(|f| f.qubits.iter())
                        .collect::<std::collections::HashSet<_>>()
                        .len()
                        > 2
            }
            _ => false,
        });
        assert!(wide_run, "no width-unlimited diagonal run found in the QFT");
    }

    #[test]
    fn pure_diagonal_circuit_is_a_single_pass() {
        // An H layer puts the register in superposition (so the diagonal
        // phases are observable), then a run of diagonal gates of assorted
        // widths must collapse to exactly one streaming op.
        let mut prefix = hisvsim_circuit::Circuit::new(6);
        for q in 0..6 {
            prefix.h(q);
        }
        let mut diagonals = hisvsim_circuit::Circuit::new(6);
        diagonals
            .rz(0.3, 0)
            .cz(0, 5)
            .cp(0.7, 2, 4)
            .t(3)
            .rzz(0.2, 1, 5)
            .s(2);
        let fused = FusedCircuit::new(&diagonals, 3);
        assert_eq!(fused.num_ops(), 1, "diagonal run must be one streaming op");

        let mut full = prefix.clone();
        full.extend(&diagonals);
        let expected = run_circuit(&full);
        let mut state = run_circuit(&prefix);
        fused.apply(&mut state, &ApplyOptions::sequential());
        assert!(state.approx_eq(&expected, 1e-10));
    }

    #[test]
    fn apply_mapped_translates_qubits() {
        // Fuse a 3-qubit circuit, then run it on qubits (4, 1, 3) of a
        // 5-qubit register and compare against the remapped original.
        let mut small = hisvsim_circuit::Circuit::new(3);
        small.h(0).cx(0, 1).t(2).cp(0.4, 2, 0).ry(0.7, 1);
        let fused = FusedCircuit::new(&small, 2);
        let map = [4usize, 1, 3];

        let mut big = hisvsim_circuit::Circuit::new(5);
        for gate in small.gates() {
            let qubits: Vec<usize> = gate.qubits.iter().map(|&q| map[q]).collect();
            big.push(hisvsim_circuit::Gate::new(gate.kind, qubits));
        }
        let expected = run_circuit(&big);

        let mut state = StateVector::zero_state(5);
        fused.apply_mapped(&mut state, &map, &ApplyOptions::sequential());
        assert!(state.approx_eq(&expected, 1e-10));
    }

    // -- DAG-driven fusion --------------------------------------------------

    #[test]
    fn dag_fusion_matches_unfused_across_suite_and_widths() {
        for name in generators::FAMILY_NAMES {
            let circuit = generators::by_name(name, 8);
            let expected = run_circuit(&circuit);
            for width in [1usize, 2, 3, 5] {
                let fused = FusedCircuit::with_strategy(&circuit, width, FusionStrategy::Dag);
                assert_eq!(fused.strategy(), FusionStrategy::Dag);
                let total: usize = fused.ops().iter().map(|op| op.fused_count()).sum();
                assert_eq!(total, circuit.num_gates(), "{name}: gates lost");
                for opts in [ApplyOptions::sequential(), ApplyOptions::default()] {
                    let got = fused.run(&opts);
                    assert!(
                        got.approx_eq(&expected, 1e-9),
                        "{name} dag-fused at width {width} diverges (max diff {})",
                        got.max_abs_diff(&expected)
                    );
                }
            }
        }
    }

    #[test]
    fn dag_fusion_random_interleaved_circuits_match() {
        for seed in 0..8 {
            let circuit = generators::random_circuit(7, 90, seed);
            let expected = run_circuit(&circuit);
            for width in [2usize, 3, 4] {
                let got = FusedCircuit::with_strategy(&circuit, width, FusionStrategy::Dag)
                    .run(&ApplyOptions::sequential());
                assert!(
                    got.approx_eq(&expected, 1e-9),
                    "seed {seed} width {width}: max diff {}",
                    got.max_abs_diff(&expected)
                );
            }
        }
    }

    #[test]
    fn dag_fusion_needs_fewer_sweeps_on_interleaved_circuits() {
        // The gap the DAG strategy exists to close: on deep interleaved
        // circuits the bounded window strands mergeable gates in separate
        // groups, the dependency frontier does not.
        let circuit = generators::random_circuit(16, 400, 0x5EED);
        let window = FusedCircuit::new(&circuit, 3);
        let dag = FusedCircuit::with_strategy(&circuit, 3, FusionStrategy::Dag);
        assert!(
            dag.num_ops() < window.num_ops(),
            "dag {} ops vs window {} ops",
            dag.num_ops(),
            window.num_ops()
        );
    }

    #[test]
    fn auto_keeps_window_on_layered_circuits_and_resolves_deterministically() {
        // The QFT fuses densely under the window already; Auto must keep it.
        let qft = generators::by_name("qft", 10);
        let auto = FusedCircuit::with_strategy(&qft, 3, FusionStrategy::Auto);
        assert_eq!(auto.strategy(), FusionStrategy::Window);

        // Auto is deterministic and always matches the reference.
        let circuit = generators::random_circuit(8, 120, 3);
        let a = FusedCircuit::with_strategy(&circuit, 3, FusionStrategy::Auto);
        let b = FusedCircuit::with_strategy(&circuit, 3, FusionStrategy::Auto);
        assert_eq!(a.strategy(), b.strategy());
        assert_eq!(a.num_ops(), b.num_ops());
        let expected = run_circuit(&circuit);
        assert!(a
            .run(&ApplyOptions::sequential())
            .approx_eq(&expected, 1e-9));
    }

    #[test]
    fn from_dag_reuses_a_prebuilt_dag() {
        let circuit = generators::random_circuit(7, 60, 11);
        let dag = CircuitDag::from_circuit(&circuit);
        let via_dag = FusedCircuit::from_dag(&circuit, &dag, 3);
        let via_strategy = FusedCircuit::with_strategy(&circuit, 3, FusionStrategy::Dag);
        assert_eq!(via_dag.num_ops(), via_strategy.num_ops());
        let expected = run_circuit(&circuit);
        assert!(via_dag
            .run(&ApplyOptions::sequential())
            .approx_eq(&expected, 1e-9));
    }

    #[test]
    fn fused_circuit_random_circuits_match() {
        for seed in 0..6 {
            let circuit = generators::random_circuit(7, 70, seed);
            let expected = run_circuit(&circuit);
            for width in [2usize, 4] {
                let got = FusedCircuit::new(&circuit, width).run(&ApplyOptions::sequential());
                assert!(
                    got.approx_eq(&expected, 1e-9),
                    "seed {seed} width {width}: max diff {}",
                    got.max_abs_diff(&expected)
                );
            }
        }
    }

    #[test]
    fn tiled_execution_matches_untiled_bitwise() {
        use crate::simd::KernelDispatch;
        // 15 qubits = 32768 amplitudes > TILE, so apply_with_map takes the
        // cache-blocked path; the per-op reference below never tiles.
        for circuit in [
            generators::random_circuit(15, 150, 0xA11CE),
            generators::by_name("qft", 15),
        ] {
            for strategy in [FusionStrategy::Window, FusionStrategy::Dag] {
                let fused = FusedCircuit::with_strategy(&circuit, 3, strategy);
                let opts = ApplyOptions::default();
                let tiled = fused.run(&opts);
                let mut untiled = StateVector::zero_state(15);
                for op in fused.ops() {
                    op.apply(&mut untiled, &opts);
                }
                for (t, u) in tiled.amplitudes().iter().zip(untiled.amplitudes()) {
                    assert_eq!(t.re.to_bits(), u.re.to_bits());
                    assert_eq!(t.im.to_bits(), u.im.to_bits());
                }
                let scalar = fused.run(&opts.with_dispatch(KernelDispatch::Scalar));
                for (t, s) in tiled.amplitudes().iter().zip(scalar.amplitudes()) {
                    assert_eq!(t.re.to_bits(), s.re.to_bits());
                    assert_eq!(t.im.to_bits(), s.im.to_bits());
                }
            }
        }
    }

    #[test]
    fn modelled_worse_groups_fall_back_to_their_solo_form() {
        // Two CXs over the same pair: the dense 4×4 form models PASS + 4
        // against two half-sweep fast paths (2 × (0.5·PASS + 0.5)), so the
        // group must demote to its members — and stay correct.
        let mut circuit = Circuit::new(3);
        circuit.cx(0, 1).cx(0, 1).cx(1, 2);
        let before = fusion_fallback_count();
        let fused = FusedCircuit::new(&circuit, 2);
        assert!(
            fused.ops().iter().all(|op| matches!(op, FusedOp::Solo(..))),
            "cheap fast-path gates must not stay in a dense group"
        );
        assert!(fusion_fallback_count() > before);
        let total: usize = fused.ops().iter().map(FusedOp::fused_count).sum();
        assert_eq!(total, circuit.num_gates());
        let expected = run_circuit(&circuit);
        assert!(fused
            .run(&ApplyOptions::sequential())
            .approx_eq(&expected, 1e-12));

        // A pair of dense single-qubit gates models cheaper fused
        // (PASS + 2 < 2 × (PASS + 2)) and must keep the dense form.
        let mut dense = Circuit::new(1);
        dense.h(0).h(0);
        let fused = FusedCircuit::new(&dense, 2);
        assert!(fused.ops().iter().any(|op| matches!(op, FusedOp::Dense(_))));
    }
}

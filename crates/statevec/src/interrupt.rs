//! Cooperative interruption of long-running sweeps.
//!
//! A 30-qubit simulation walks gigabytes of amplitudes; once an engine's
//! execution loop is underway nothing above it can reclaim the worker
//! without help from below. [`CancelToken`] is that help: a clonable,
//! thread-safe flag the service layer sets and the engines poll at their
//! natural checkpoints (between fused groups, gather assignments and part
//! switches), so an abandoned job stops within one checkpoint instead of
//! running to completion.
//!
//! The token is deliberately *cooperative*: it never interrupts a kernel
//! mid-sweep, so every checkpoint observes a consistent state vector and a
//! cancelled run simply abandons its (private) state.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A clonable cancellation flag shared between a controller (the service's
/// job handle) and the execution loops acting on it. Cancellation is
/// one-way and sticky: once [`CancelToken::cancel`] is called every clone
/// observes it forever.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Has cancellation been requested (by any clone)?
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }

    /// Checkpoint helper: `Err(Cancelled)` once cancellation was requested.
    pub fn check(&self) -> Result<(), Cancelled> {
        if self.is_cancelled() {
            Err(Cancelled)
        } else {
            Ok(())
        }
    }
}

/// The error a cooperative execution loop returns when it observed its
/// [`CancelToken`] at a checkpoint and stopped early. The partial state is
/// discarded by the caller; no result is produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cancelled;

impl std::fmt::Display for Cancelled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("execution cancelled at a cooperative checkpoint")
    }
}

impl std::error::Error for Cancelled {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_is_sticky_and_shared_across_clones() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!token.is_cancelled());
        assert!(clone.check().is_ok());
        clone.cancel();
        assert!(token.is_cancelled());
        assert_eq!(token.check(), Err(Cancelled));
        token.cancel(); // idempotent
        assert!(clone.is_cancelled());
    }

    #[test]
    fn token_crosses_threads() {
        let token = CancelToken::new();
        let observer = token.clone();
        std::thread::scope(|scope| {
            scope.spawn(|| token.cancel());
        });
        assert!(observer.is_cancelled());
    }
}
